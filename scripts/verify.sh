#!/usr/bin/env sh
# Tier-1 verification gate (see ROADMAP.md).
#
# The workspace is hermetic: every dependency is an in-tree path crate,
# so --offline both works and *enforces* that no crates.io dependency
# sneaks back in — a registry fetch attempt fails the build outright.
set -eu
cd "$(dirname "$0")/.."

cargo build --workspace --release --offline
cargo test -q --workspace --offline
cargo clippy --workspace --offline -- -D warnings
cargo fmt --check

# Report-pipeline smoke: two same-seed traced mini-runs must diff clean,
# summarize as JSON, and render into a non-empty self-contained report.
SMOKE="$(mktemp -d)"
trap 'rm -rf "$SMOKE"' EXIT
./target/release/icm-experiments fig2 fig3 --fast --quiet \
    --trace "$SMOKE/a.jsonl" --results "$SMOKE/results.json" \
    --profile "$SMOKE/profile.json" > /dev/null
./target/release/icm-experiments fig2 fig3 --fast --quiet \
    --trace "$SMOKE/b.jsonl" > /dev/null
./target/release/icm-trace diff "$SMOKE/a.jsonl" "$SMOKE/b.jsonl"
./target/release/icm-trace summarize "$SMOKE/a.jsonl" --json > /dev/null
./target/release/icm-report "$SMOKE/results.json" --profile "$SMOKE/profile.json" \
    --out "$SMOKE/report.html" --text > /dev/null
test -s "$SMOKE/report.html"
echo "verify: report smoke OK"

# Fault-injection smoke: the robustness sweep injects probe failures,
# stragglers and corrupted measurements — two same-seed faulty runs must
# still write byte-identical traces, and the sweep must render under the
# strict (fail-on-Fail-verdict) report gate.
./target/release/icm-experiments robustness --fast --quiet \
    --trace "$SMOKE/fault-a.jsonl" --results "$SMOKE/robustness.json" > /dev/null
./target/release/icm-experiments robustness --fast --quiet \
    --trace "$SMOKE/fault-b.jsonl" > /dev/null
./target/release/icm-trace diff "$SMOKE/fault-a.jsonl" "$SMOKE/fault-b.jsonl"
./target/release/icm-report "$SMOKE/robustness.json" --strict \
    --out "$SMOKE/robustness.html" > /dev/null
test -s "$SMOKE/robustness.html"
echo "verify: fault-injection smoke OK"

# Recovery smoke: the self-healing runtime supervises scripted crash and
# drift scenarios — two same-seed managed sweeps must write byte-identical
# traces, the trace summary must show supervisory actions, and the sweep
# must pass the strict report gate (managed ≤ unmanaged violation time).
./target/release/icm-experiments recovery --fast --quiet \
    --trace "$SMOKE/recovery-a.jsonl" --results "$SMOKE/recovery.json" > /dev/null
./target/release/icm-experiments recovery --fast --quiet \
    --trace "$SMOKE/recovery-b.jsonl" > /dev/null
./target/release/icm-trace diff "$SMOKE/recovery-a.jsonl" "$SMOKE/recovery-b.jsonl"
# Anneal-determinism smoke: every search the manager launches runs the
# default two parallel lanes, and the same-seed byte-identical diff
# above proves the lane merge is deterministic — but only if the lanes
# actually ran. Check the serialized span-start marker.
grep -q '"lanes":2' "$SMOKE/recovery-a.jsonl" \
    || { echo "verify: no lane-parallel anneal spans in the recovery trace" >&2; exit 1; }
./target/release/icm-trace summarize "$SMOKE/recovery-a.jsonl" \
    | grep -q "action migrate" \
    || { echo "verify: no manager actions in the recovery trace" >&2; exit 1; }
./target/release/icm-report "$SMOKE/recovery.json" --strict \
    --out "$SMOKE/recovery.html" > /dev/null
test -s "$SMOKE/recovery.html"
echo "verify: recovery smoke OK"

# Telemetry smoke: the same recovery sweep with streaming telemetry
# teed alongside the trace must leave the raw trace byte-identical,
# write a parseable health artifact under the fixed byte budget that a
# second same-seed run reproduces byte-for-byte, and feed both the
# flamegraph reconstruction and the strict report gate.
./target/release/icm-experiments recovery --fast --quiet \
    --trace "$SMOKE/tel-a.jsonl" --telemetry "$SMOKE/tel-a.json" > /dev/null
./target/release/icm-experiments recovery --fast --quiet \
    --telemetry "$SMOKE/tel-b.json" > /dev/null
./target/release/icm-trace diff "$SMOKE/recovery-a.jsonl" "$SMOKE/tel-a.jsonl"
cmp "$SMOKE/tel-a.json" "$SMOKE/tel-b.json" \
    || { echo "verify: same-seed telemetry artifacts diverged" >&2; exit 1; }
TEL_BYTES=$(wc -c < "$SMOKE/tel-a.json")
test "$TEL_BYTES" -le 262144 \
    || { echo "verify: telemetry artifact is $TEL_BYTES bytes, over budget" >&2; exit 1; }
grep -q '"snapshots"' "$SMOKE/tel-a.json" \
    || { echo "verify: no health snapshots in the telemetry artifact" >&2; exit 1; }
./target/release/icm-trace flame "$SMOKE/tel-a.jsonl" > /dev/null
./target/release/icm-report "$SMOKE/recovery.json" --strict \
    --telemetry "$SMOKE/tel-a.json" --flame "$SMOKE/tel-a.jsonl" \
    --out "$SMOKE/telemetry.html" > /dev/null
test -s "$SMOKE/telemetry.html"
echo "verify: telemetry smoke OK"

# Provenance smoke: every manager action in the recovery trace must
# explain to a complete causal chain that closes with an outcome line,
# the explanation must be byte-identical across the two same-seed
# traces, and the violation attribution must render.
./target/release/icm-trace explain "$SMOKE/recovery-a.jsonl" --action 0 \
    > "$SMOKE/explain-a.txt"
grep -q "outcome" "$SMOKE/explain-a.txt" \
    || { echo "verify: action 0 chain has no outcome hop" >&2; exit 1; }
./target/release/icm-trace explain "$SMOKE/recovery-b.jsonl" --action 0 \
    > "$SMOKE/explain-b.txt"
cmp "$SMOKE/explain-a.txt" "$SMOKE/explain-b.txt" \
    || { echo "verify: same-seed explanations diverged" >&2; exit 1; }
./target/release/icm-trace explain "$SMOKE/recovery-a.jsonl" --violations \
    | grep -q "attributed" \
    || { echo "verify: violation attribution did not render" >&2; exit 1; }
echo "verify: provenance smoke OK"

# Kill-and-resume smoke: a checkpointed endurance run is aborted
# mid-flight (--kill-after: no flushes, no destructors — a SIGKILL
# stand-in), then resumed from the newest good snapshot generation.
# The resumed run's event trace and results document must be
# byte-identical to an uninterrupted same-seed checkpointed run's.
./target/release/icm-experiments endurance --fast --quiet \
    --checkpoint-every 2 --checkpoint-dir "$SMOKE/ref-ckpt" \
    --trace "$SMOKE/endure-ref.jsonl" --results "$SMOKE/endure-ref.json" > /dev/null
if ./target/release/icm-experiments endurance --fast --quiet \
    --checkpoint-every 2 --checkpoint-dir "$SMOKE/kill-ckpt" \
    --kill-after 5 --trace "$SMOKE/endure-kill.jsonl" > /dev/null 2>&1; then
    echo "verify: --kill-after did not kill the run" >&2; exit 1
fi
test -s "$SMOKE/kill-ckpt/gen-000002.icmsnap" \
    || { echo "verify: the killed run left no second checkpoint generation" >&2; exit 1; }
./target/release/icm-experiments --resume "$SMOKE/kill-ckpt" --fast --quiet \
    --checkpoint-every 2 --checkpoint-dir "$SMOKE/kill-ckpt" \
    --trace "$SMOKE/endure-kill.jsonl" --results "$SMOKE/endure-kill.json" > /dev/null
cmp "$SMOKE/endure-ref.jsonl" "$SMOKE/endure-kill.jsonl" \
    || { echo "verify: resumed trace diverged from the uninterrupted run" >&2; exit 1; }
cmp "$SMOKE/endure-ref.json" "$SMOKE/endure-kill.json" \
    || { echo "verify: resumed results diverged from the uninterrupted run" >&2; exit 1; }
echo "verify: kill-and-resume smoke OK"
# A replay of action 0 needs a starting point: explain must name the
# newest checkpoint generation that precedes the action's tick.
./target/release/icm-trace explain "$SMOKE/endure-ref.jsonl" --action 0 \
    --checkpoint-dir "$SMOKE/ref-ckpt" | grep -q "checkpoint: gen-" \
    || { echo "verify: explain did not name a resume checkpoint" >&2; exit 1; }
echo "verify: checkpoint naming smoke OK"

# Serve smoke: the placement daemon works a scripted mix (timed
# requests, a malformed line, a deliberate overload burst), is killed
# with SIGABRT mid-stream (--kill-after-commits: no flushes, no
# destructors), and is restarted on the same state directory. Every
# acknowledged (journaled) reply must survive the kill byte-for-byte,
# the recovered journal must equal an uninterrupted same-script run's,
# and a same-seed rerun must be byte-identical end to end.
{
    printf '%s\n' \
        '{"id":"w1","kind":"predict","app":"M.milc","corunners":["H.KM"],"at_ms":100,"deadline_ms":500}' \
        '{"id":"o1","kind":"observe","app":"M.milc","corunners":["H.KM"],"normalized":1.4,"at_ms":140,"deadline_ms":500}' \
        'this is not a request' \
        '{"id":"a1","kind":"place","iterations":200,"at_ms":200,"deadline_ms":500}'
    i=0
    while [ "$i" -lt 12 ]; do
        printf '{"id":"b%d","kind":"predict","app":"H.KM","corunners":["M.milc"],"priority":%d,"at_ms":400,"deadline_ms":60}\n' \
            "$i" $((i % 4))
        i=$((i + 1))
    done
    printf '%s\n' \
        '{"id":"s1","kind":"status","at_ms":900,"deadline_ms":500}' \
        '{"id":"w2","kind":"predict","app":"M.milc","corunners":["H.KM"],"at_ms":1000,"deadline_ms":500}' \
        '{"id":"t1","kind":"tick","at_ms":1100,"deadline_ms":120000}' \
        '{"id":"s2","kind":"status","at_ms":1300,"deadline_ms":500}'
} > "$SMOKE/serve-script.jsonl"
./target/release/icm-server --fast --state "$SMOKE/ref-serve" --checkpoint-every 6 \
    --input "$SMOKE/serve-script.jsonl" --quiet > /dev/null
grep -q '"status":"overloaded"' "$SMOKE/ref-serve/journal.log" \
    || { echo "verify: the burst shed nothing" >&2; exit 1; }
grep -q '"status":"error"' "$SMOKE/ref-serve/journal.log" \
    || { echo "verify: the malformed line got no typed error" >&2; exit 1; }
if ./target/release/icm-server --fast --state "$SMOKE/kill-serve" --checkpoint-every 6 \
    --kill-after-commits 9 --input "$SMOKE/serve-script.jsonl" --quiet \
    > /dev/null 2>&1; then
    echo "verify: --kill-after-commits did not kill the daemon" >&2; exit 1
fi
test -s "$SMOKE/kill-serve/journal.log" \
    || { echo "verify: the killed daemon journaled nothing" >&2; exit 1; }
cp "$SMOKE/kill-serve/journal.log" "$SMOKE/pre-kill-journal.log"
./target/release/icm-server --fast --state "$SMOKE/kill-serve" --checkpoint-every 6 \
    --input "$SMOKE/serve-script.jsonl" --quiet > /dev/null
head -c "$(wc -c < "$SMOKE/pre-kill-journal.log")" "$SMOKE/kill-serve/journal.log" \
    | cmp - "$SMOKE/pre-kill-journal.log" \
    || { echo "verify: acknowledged replies were lost across the kill" >&2; exit 1; }
cmp "$SMOKE/ref-serve/journal.log" "$SMOKE/kill-serve/journal.log" \
    || { echo "verify: recovered journal diverged from the uninterrupted run" >&2; exit 1; }
./target/release/icm-server --fast --state "$SMOKE/rerun-serve" --checkpoint-every 6 \
    --input "$SMOKE/serve-script.jsonl" --quiet > /dev/null
cmp "$SMOKE/ref-serve/journal.log" "$SMOKE/rerun-serve/journal.log" \
    || { echo "verify: same-seed serve reruns diverged" >&2; exit 1; }
echo "verify: serve smoke OK"
