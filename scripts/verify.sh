#!/usr/bin/env sh
# Tier-1 verification gate (see ROADMAP.md).
#
# The workspace is hermetic: every dependency is an in-tree path crate,
# so --offline both works and *enforces* that no crates.io dependency
# sneaks back in — a registry fetch attempt fails the build outright.
set -eu
cd "$(dirname "$0")/.."

cargo build --workspace --release --offline
cargo test -q --workspace --offline
cargo clippy --workspace --offline -- -D warnings
cargo fmt --check
