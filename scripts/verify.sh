#!/usr/bin/env sh
# Tier-1 verification gate (see ROADMAP.md).
#
# The workspace is hermetic: every dependency is an in-tree path crate,
# so --offline both works and *enforces* that no crates.io dependency
# sneaks back in — a registry fetch attempt fails the build outright.
set -eu
cd "$(dirname "$0")/.."

cargo build --workspace --release --offline
cargo test -q --workspace --offline
cargo clippy --workspace --offline -- -D warnings
cargo fmt --check

# Report-pipeline smoke: two same-seed traced mini-runs must diff clean,
# summarize as JSON, and render into a non-empty self-contained report.
SMOKE="$(mktemp -d)"
trap 'rm -rf "$SMOKE"' EXIT
./target/release/icm-experiments fig2 fig3 --fast --quiet \
    --trace "$SMOKE/a.jsonl" --results "$SMOKE/results.json" \
    --profile "$SMOKE/profile.json" > /dev/null
./target/release/icm-experiments fig2 fig3 --fast --quiet \
    --trace "$SMOKE/b.jsonl" > /dev/null
./target/release/icm-trace diff "$SMOKE/a.jsonl" "$SMOKE/b.jsonl"
./target/release/icm-trace summarize "$SMOKE/a.jsonl" --json > /dev/null
./target/release/icm-report "$SMOKE/results.json" --profile "$SMOKE/profile.json" \
    --out "$SMOKE/report.html" --text > /dev/null
test -s "$SMOKE/report.html"
echo "verify: report smoke OK"

# Fault-injection smoke: the robustness sweep injects probe failures,
# stragglers and corrupted measurements — two same-seed faulty runs must
# still write byte-identical traces, and the sweep must render under the
# strict (fail-on-Fail-verdict) report gate.
./target/release/icm-experiments robustness --fast --quiet \
    --trace "$SMOKE/fault-a.jsonl" --results "$SMOKE/robustness.json" > /dev/null
./target/release/icm-experiments robustness --fast --quiet \
    --trace "$SMOKE/fault-b.jsonl" > /dev/null
./target/release/icm-trace diff "$SMOKE/fault-a.jsonl" "$SMOKE/fault-b.jsonl"
./target/release/icm-report "$SMOKE/robustness.json" --strict \
    --out "$SMOKE/robustness.html" > /dev/null
test -s "$SMOKE/robustness.html"
echo "verify: fault-injection smoke OK"
