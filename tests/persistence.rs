//! Model persistence: a profiled fleet can be serialized, stored and
//! reloaded without behavioural drift — and every persisted type
//! round-trips exactly through the vendored `icm-json` codec, while
//! malformed inputs are rejected instead of silently misparsed.

use icm::core::model::ModelBuilder;
use icm::core::{InterferenceModel, ModelStore, PropagationMatrix, SensitivityCurve};
use icm::placement::{AcceptRule, AnnealConfig, PlacementProblem, PlacementState};
use icm::workloads::{Catalog, TestbedBuilder};

/// Serialize → parse → compare, for any type that is `PartialEq`.
fn round_trip<T>(value: &T)
where
    T: icm::json::ToJson + icm::json::FromJson + PartialEq + std::fmt::Debug,
{
    let json = icm::json::to_string(value);
    let back: T = icm::json::from_str(&json).expect("round-trip parse");
    assert_eq!(&back, value, "value drifted through {json}");
    // Pretty output must parse back to the same value too.
    let pretty: T = icm::json::from_str(&icm::json::to_string_pretty(value)).expect("pretty parse");
    assert_eq!(&pretty, value);
}

#[test]
fn model_fleet_round_trips_through_json() {
    let mut tb = TestbedBuilder::new(&Catalog::paper()).seed(13).build();
    let apps = ["M.milc", "H.KM", "S.PR"];
    let fleet: Vec<InterferenceModel> = apps
        .iter()
        .map(|app| {
            ModelBuilder::new(*app)
                .policy_samples(8)
                .build(&mut tb)
                .expect("builds")
        })
        .collect();

    let json = icm_json::to_string_pretty(&fleet);
    let restored: Vec<InterferenceModel> = icm_json::from_str(&json).expect("deserializes");
    assert_eq!(restored.len(), fleet.len());

    let probe = [4.0, 0.0, 2.0, 0.0, 6.0, 0.0, 0.0, 1.0];
    for (orig, back) in fleet.iter().zip(&restored) {
        assert_eq!(orig.app(), back.app());
        assert_eq!(orig.policy(), back.policy());
        let a = orig.predict(&probe);
        let b = back.predict(&probe);
        assert!(
            (a - b).abs() < 1e-9,
            "{}: prediction drifted through JSON: {a} vs {b}",
            orig.app()
        );
    }
}

#[test]
fn model_json_is_self_describing() {
    let mut tb = TestbedBuilder::new(&Catalog::paper()).seed(13).build();
    let model = ModelBuilder::new("M.zeus")
        .policy_samples(8)
        .build(&mut tb)
        .expect("builds");
    let json = icm_json::to_string(&model);
    // Key fields are visible for external tooling.
    for field in ["bubble_score", "propagation", "policy", "solo_seconds"] {
        assert!(json.contains(field), "JSON lacks `{field}`");
    }
}

#[test]
fn catalog_and_cluster_serialize_for_config_files() {
    let catalog = Catalog::paper();
    let json = icm_json::to_string(catalog.workloads());
    let back: Vec<icm::workloads::WorkloadSpec> = icm_json::from_str(&json).expect("deserializes");
    assert_eq!(back.len(), 18);

    let cluster = icm::simcluster::ClusterSpec::ec2_32();
    let json = icm_json::to_string(&cluster);
    let back: icm::simcluster::ClusterSpec = icm_json::from_str(&json).expect("deserializes");
    assert_eq!(back, cluster);
}

#[test]
fn every_persisted_type_round_trips() {
    // Model-layer records.
    round_trip(&SensitivityCurve::new(vec![1.0, 1.2, 1.45, 1.8]).expect("valid"));
    round_trip(
        &PropagationMatrix::new(vec![vec![1.0, 1.1, 1.2, 1.3], vec![1.0, 1.25, 1.5, 1.75]])
            .expect("valid"),
    );
    let mut tb = TestbedBuilder::new(&Catalog::paper()).seed(29).build();
    let model = ModelBuilder::new("S.PR")
        .policy_samples(8)
        .build(&mut tb)
        .expect("builds");
    round_trip(&model);
    round_trip(&ModelStore::from_models([model]));

    // Placement-layer state.
    let problem =
        PlacementProblem::paper_default(vec!["a".into(), "b".into(), "c".into(), "d".into()])
            .expect("valid");
    round_trip(&problem);
    let mut rng = icm::rng::Rng::from_seed(0x9E_0001);
    round_trip(&PlacementState::random(&problem, &mut rng));
    round_trip(&AnnealConfig::default());
    round_trip(&AnnealConfig {
        accept: AcceptRule::Metropolis {
            initial_temperature: 0.5,
            cooling: 0.999,
        },
        ..AnnealConfig::default()
    });

    // Workload catalog and mixes.
    for spec in Catalog::paper().workloads() {
        round_trip(spec);
    }
    for mix in icm::workloads::table5_mixes() {
        round_trip(&mix);
    }
    for qos in icm::workloads::qos_mixes() {
        round_trip(&qos);
    }

    // Cluster and application descriptors.
    round_trip(&icm::simcluster::ClusterSpec::ec2_32());
    for spec in Catalog::paper().workloads() {
        round_trip(spec.app());
    }
}

#[test]
fn malformed_inputs_are_rejected_not_misparsed() {
    let store = ModelStore::from_models([{
        let mut tb = TestbedBuilder::new(&Catalog::paper()).seed(31).build();
        ModelBuilder::new("N.cg")
            .policy_samples(6)
            .build(&mut tb)
            .expect("builds")
    }]);
    let json = icm::json::to_string(&store);

    // Truncated payloads must fail at every prefix length, never panic
    // or return a half-parsed store.
    for cut in [1, json.len() / 4, json.len() / 2, json.len() - 1] {
        let truncated = &json[..cut];
        assert!(
            icm::json::from_str::<ModelStore>(truncated).is_err(),
            "truncation at {cut} bytes must be rejected"
        );
    }

    // Trailing garbage after a valid document is rejected.
    assert!(icm::json::from_str::<ModelStore>(&format!("{json}garbage")).is_err());

    // Non-finite numbers are not valid JSON and must not sneak into
    // model arithmetic.
    for bad in ["NaN", "Infinity", "-Infinity", "1e999"] {
        let doctored = json.replacen(char::is_numeric, bad, 1);
        assert!(
            icm::json::from_str::<ModelStore>(&doctored).is_err(),
            "non-finite literal `{bad}` must be rejected"
        );
    }

    // Duplicate keys are ambiguous; the strict parser refuses them.
    assert!(
        icm::json::from_str::<icm::json::Json>(r#"{"version": 1, "version": 2}"#).is_err(),
        "duplicate keys must be rejected"
    );

    // Type confusion: a curve is `{"values": [numbers]}`, so arrays,
    // string values, and missing fields are all rejected.
    assert!(icm::json::from_str::<SensitivityCurve>("[]").is_err());
    assert!(icm::json::from_str::<SensitivityCurve>(r#"{"values": ["a"]}"#).is_err());
    assert!(icm::json::from_str::<SensitivityCurve>("{}").is_err());
}
