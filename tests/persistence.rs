//! Model persistence: a profiled fleet can be serialized, stored and
//! reloaded without behavioural drift.

use icm::core::model::ModelBuilder;
use icm::core::InterferenceModel;
use icm::workloads::{Catalog, TestbedBuilder};

#[test]
fn model_fleet_round_trips_through_json() {
    let mut tb = TestbedBuilder::new(&Catalog::paper()).seed(13).build();
    let apps = ["M.milc", "H.KM", "S.PR"];
    let fleet: Vec<InterferenceModel> = apps
        .iter()
        .map(|app| {
            ModelBuilder::new(*app)
                .policy_samples(8)
                .build(&mut tb)
                .expect("builds")
        })
        .collect();

    let json = serde_json::to_string_pretty(&fleet).expect("serializes");
    let restored: Vec<InterferenceModel> = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(restored.len(), fleet.len());

    let probe = [4.0, 0.0, 2.0, 0.0, 6.0, 0.0, 0.0, 1.0];
    for (orig, back) in fleet.iter().zip(&restored) {
        assert_eq!(orig.app(), back.app());
        assert_eq!(orig.policy(), back.policy());
        let a = orig.predict(&probe);
        let b = back.predict(&probe);
        assert!(
            (a - b).abs() < 1e-9,
            "{}: prediction drifted through JSON: {a} vs {b}",
            orig.app()
        );
    }
}

#[test]
fn model_json_is_self_describing() {
    let mut tb = TestbedBuilder::new(&Catalog::paper()).seed(13).build();
    let model = ModelBuilder::new("M.zeus")
        .policy_samples(8)
        .build(&mut tb)
        .expect("builds");
    let json = serde_json::to_string(&model).expect("serializes");
    // Key fields are visible for external tooling.
    for field in ["bubble_score", "propagation", "policy", "solo_seconds"] {
        assert!(json.contains(field), "JSON lacks `{field}`");
    }
}

#[test]
fn catalog_and_cluster_serialize_for_config_files() {
    let catalog = Catalog::paper();
    let json = serde_json::to_string(catalog.workloads()).expect("serializes");
    let back: Vec<icm::workloads::WorkloadSpec> =
        serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back.len(), 18);

    let cluster = icm::simcluster::ClusterSpec::ec2_32();
    let json = serde_json::to_string(&cluster).expect("serializes");
    let back: icm::simcluster::ClusterSpec = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back, cluster);
}
