//! Placement case studies end-to-end: models built from profiling drive
//! the annealer, and outcomes are verified on the simulator.

use std::collections::BTreeMap;

use icm::core::model::ModelBuilder;
use icm::core::InterferenceModel;
use icm::placement::{
    anneal_unconstrained, exhaustive, place_qos, AnnealConfig, Estimator, PlacementProblem,
    QosConfig,
};
use icm::simcluster::{Deployment, Placement};
use icm::workloads::{Catalog, SimTestbedAdapter, TestbedBuilder};

fn build_models(
    tb: &mut SimTestbedAdapter,
    apps: &[&str],
    hosts: usize,
) -> BTreeMap<String, InterferenceModel> {
    apps.iter()
        .map(|app| {
            (
                (*app).to_owned(),
                ModelBuilder::new(*app)
                    .hosts(hosts)
                    .policy_samples(10)
                    .seed(9)
                    .build(tb)
                    .expect("model builds"),
            )
        })
        .collect()
}

fn measured_times(
    tb: &mut SimTestbedAdapter,
    problem: &PlacementProblem,
    models: &BTreeMap<String, InterferenceModel>,
    state: &icm::placement::PlacementState,
) -> Vec<f64> {
    let placements: Vec<Placement> = problem
        .workloads()
        .iter()
        .enumerate()
        .map(|(i, app)| Placement::new(app.clone(), state.hosts_of(problem, i)))
        .collect();
    let runs = tb
        .sim_mut()
        .run_deployment(&Deployment::of_placements(placements))
        .expect("deployment runs");
    runs.iter()
        .map(|r| r.seconds / models[&r.app].solo_seconds())
        .collect()
}

#[test]
fn qos_placement_guarantee_verified_on_simulator() {
    let mut tb = TestbedBuilder::new(&Catalog::paper()).seed(41).build();
    let apps = ["M.lmps", "C.libq", "H.KM", "N.cg"];
    let models = build_models(&mut tb, &apps, 4);
    let problem = PlacementProblem::paper_default(apps.iter().map(|a| (*a).to_owned()).collect())
        .expect("valid");
    let estimator = Estimator::from_map(&problem, &models).expect("valid");
    let outcome = place_qos(
        &estimator,
        0,
        &QosConfig {
            qos_fraction: 0.9,
            anneal: AnnealConfig {
                iterations: 1500,
                ..AnnealConfig::default()
            },
            ..QosConfig::default()
        },
    )
    .expect("places");
    assert!(outcome.predicted_satisfied, "a safe placement exists");
    // Average a few measured runs to dodge noise.
    let mut total = 0.0;
    for _ in 0..3 {
        total += measured_times(&mut tb, &problem, &models, &outcome.state)[0];
    }
    let measured = total / 3.0;
    assert!(
        measured <= (1.0 / 0.9) * 1.04,
        "measured target time {measured:.3} violates the guarantee"
    );
}

#[test]
fn annealer_matches_exhaustive_oracle_on_small_problem() {
    let mut tb = TestbedBuilder::new(&Catalog::paper()).seed(43).build();
    // 2 workloads × 4 slots on 4 hosts: 16 valid states, enumerable.
    let apps = ["M.milc", "H.KM"];
    let models = build_models(&mut tb, &apps, 4);
    let problem =
        PlacementProblem::new(4, 2, apps.iter().map(|a| (*a).to_owned()).collect()).expect("valid");
    let estimator = Estimator::from_map(&problem, &models).expect("valid");
    let cost = |state: &icm::placement::PlacementState| {
        estimator.estimate(state).expect("estimates").weighted_total
    };
    let (oracle_state, oracle_cost) =
        exhaustive::exhaustive_best(&problem, cost).expect("enumerates");
    let result = anneal_unconstrained(
        &problem,
        |s| Ok(cost(s)),
        &AnnealConfig {
            iterations: 400,
            ..AnnealConfig::default()
        },
    )
    .expect("search runs");
    assert!(
        result.cost <= oracle_cost + 1e-9,
        "annealer ({}) must reach the oracle optimum ({oracle_cost})",
        result.cost
    );
    // With every host forced to hold {milc, hkm}, all placements tie; the
    // oracle state is structurally equivalent.
    assert_eq!(
        oracle_state.hosts_of(&problem, 0).len(),
        result.state.hosts_of(&problem, 0).len()
    );
}

#[test]
fn model_guided_best_beats_worst_on_simulator() {
    let mut tb = TestbedBuilder::new(&Catalog::paper()).seed(47).build();
    let apps = ["N.mg", "N.cg", "H.KM", "M.lmps"]; // Table 5 HW1
    let models = build_models(&mut tb, &apps, 4);
    let problem = PlacementProblem::paper_default(apps.iter().map(|a| (*a).to_owned()).collect())
        .expect("valid");
    let estimator = Estimator::from_map(&problem, &models).expect("valid");
    let placements = icm::placement::find_placements(
        &estimator,
        &icm::placement::ThroughputConfig {
            anneal: AnnealConfig {
                iterations: 1500,
                ..AnnealConfig::default()
            },
            random_samples: 2,
        },
    )
    .expect("finds");
    let avg = |tb: &mut SimTestbedAdapter, state| {
        let mut totals = vec![0.0; 4];
        for _ in 0..3 {
            for (t, v) in totals
                .iter_mut()
                .zip(measured_times(tb, &problem, &models, state))
            {
                *t += v / 3.0;
            }
        }
        totals
    };
    let best = avg(&mut tb, &placements.best);
    let worst = avg(&mut tb, &placements.worst);
    let speedup = icm::placement::average_speedup(&best, &worst);
    assert!(
        speedup > 1.05,
        "model-guided placement must visibly beat the worst: speedup {speedup:.3}"
    );
}

#[test]
fn duplicate_instance_mix_places_cleanly() {
    // Table 5's HM3 runs two M.Gems instances: same model object, two
    // placement entities.
    let mut tb = TestbedBuilder::new(&Catalog::paper()).seed(53).build();
    let distinct = ["S.CF", "H.KM", "M.Gems"];
    let models = build_models(&mut tb, &distinct, 4);
    let problem = PlacementProblem::paper_default(vec![
        "S.CF".into(),
        "H.KM".into(),
        "M.Gems".into(),
        "M.Gems".into(),
    ])
    .expect("valid");
    let estimator = Estimator::from_map(&problem, &models).expect("valid");
    let result = anneal_unconstrained(
        &problem,
        |s| Ok(estimator.estimate(s)?.weighted_total),
        &AnnealConfig {
            iterations: 500,
            ..AnnealConfig::default()
        },
    )
    .expect("search runs");
    // Both Gems instances own 4 distinct hosts each.
    let gems_a = result.state.hosts_of(&problem, 2);
    let gems_b = result.state.hosts_of(&problem, 3);
    assert_eq!(gems_a.len(), 4);
    assert_eq!(gems_b.len(), 4);
    // And the ground truth run executes without errors.
    let times = measured_times(&mut tb, &problem, &models, &result.state);
    assert_eq!(times.len(), 4);
    for t in times {
        assert!(t >= 0.9, "normalized time {t}");
    }
}
