//! Savestate contract, end to end: a checkpointed endurance run that is
//! killed mid-flight (a real `abort()` in a child process — no flushes,
//! no destructors) and resumed from its newest good snapshot must
//! produce the same final world, the same structured result, and a
//! byte-identical event trace as the uninterrupted same-seed run.
//!
//! Also: damaged snapshot generations — torn writes, flipped bytes,
//! unknown format versions, missing fields — must fall back to the
//! previous good generation with a typed error trail, never a panic.

use std::fs::OpenOptions;
use std::path::{Path, PathBuf};
use std::process::Command;

use icm::experiments::endurance;
use icm::experiments::ExpConfig;
use icm::json::fs::SnapshotStore;
use icm_manager::snapshot::WorldSnapshot;
use icm_obs::{JsonlSink, Tracer};

fn fast_cfg() -> ExpConfig {
    ExpConfig {
        seed: 2016,
        fast: true,
    }
}

/// A scratch directory unique to this test process, cleaned on a best-
/// effort basis (a re-run with the same pid overwrites it anyway).
fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("icm-savestate-{}-{label}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Loads one specific generation from a checkpoint directory.
fn read_generation(dir: &Path, generation: u64) -> WorldSnapshot {
    let store = SnapshotStore::open(dir).expect("store opens");
    let bytes = store.load(generation).expect("generation loads");
    let text = String::from_utf8(bytes).expect("utf-8 payload");
    WorldSnapshot::parse(&text).expect("payload parses")
}

/// Serializes a snapshot with its trace position cleared, so snapshots
/// from runs tracing into different files can be compared for world
/// equality.
fn world_text(mut snapshot: WorldSnapshot) -> String {
    snapshot.trace_path = None;
    snapshot.trace_bytes = 0;
    snapshot.to_text()
}

/// Not a test of its own: the crash half of the kill-and-resume drill.
/// When spawned by [`a_killed_run_resumes_byte_identically`] (signalled
/// via environment), it checkpoints every 2 ticks and `abort()`s after
/// tick 5 — the closest `#![forbid(unsafe_code)]` gets to SIGKILL. When
/// run as part of the normal suite it is a no-op.
#[test]
fn savestate_child_runs_and_aborts() {
    let Ok(dir) = std::env::var("ICM_SAVESTATE_DIR") else {
        return;
    };
    let trace = std::env::var("ICM_SAVESTATE_TRACE").expect("trace path env");
    let tracer = Tracer::jsonl_file(Path::new(&trace)).expect("trace file");
    let outcome = endurance::drive(
        &fast_cfg(),
        &tracer,
        None,
        Some((Path::new(&dir), 2)),
        Some(5),
        Some(Path::new(&trace)),
    );
    unreachable!("drive must abort at tick 5, yet returned {outcome:?}");
}

#[test]
fn a_killed_run_resumes_byte_identically() {
    let base = scratch("kill-resume");
    let kill_dir = base.join("ckpt");
    let kill_trace = base.join("killed-trace.jsonl");

    // Crash drill: run the checkpointing child in its own process and
    // let it abort mid-run, taking whatever it had buffered with it.
    let exe = std::env::current_exe().expect("test binary path");
    let status = Command::new(exe)
        .args(["savestate_child_runs_and_aborts", "--exact"])
        .env("ICM_SAVESTATE_DIR", &kill_dir)
        .env("ICM_SAVESTATE_TRACE", &kill_trace)
        .status()
        .expect("child spawns");
    assert!(!status.success(), "the child must die mid-run");

    // Resume from the newest good generation: checkpoints landed after
    // ticks 2 and 4, the kill hit after tick 5.
    let (generation, snapshot) = endurance::load_resumable(&kill_dir).expect("resumable");
    assert_eq!(generation, 2, "two checkpoints before the kill");
    assert_eq!(snapshot.run.next_tick(), 5);

    // The dead process may have flushed events past the checkpoint;
    // rewind the trace to the checkpointed offset and continue it.
    let file = OpenOptions::new()
        .write(true)
        .open(&kill_trace)
        .expect("trace reopens");
    file.set_len(snapshot.trace_bytes).expect("trace truncates");
    drop(file);
    let tracer = Tracer::with_sink(JsonlSink::append(&kill_trace).expect("append sink"));
    tracer.restore_state(&snapshot.tracer);
    let resumed = endurance::drive(
        &fast_cfg(),
        &tracer,
        Some(snapshot),
        Some((&kill_dir, 2)),
        None,
        Some(&kill_trace),
    )
    .expect("resumed run finishes");
    tracer.flush();

    // The uninterrupted reference, same seed, same checkpoint cadence.
    let ref_dir = base.join("ref-ckpt");
    let ref_trace = base.join("ref-trace.jsonl");
    let tracer = Tracer::jsonl_file(&ref_trace).expect("trace file");
    let reference = endurance::drive(
        &fast_cfg(),
        &tracer,
        None,
        Some((&ref_dir, 2)),
        None,
        Some(&ref_trace),
    )
    .expect("reference run finishes");
    tracer.flush();

    // Structured results: identical, byte for byte.
    assert_eq!(resumed, reference);
    assert_eq!(
        icm::json::to_string(&resumed),
        icm::json::to_string(&reference)
    );

    // Event traces: the resumed file is the byte-identical whole.
    let killed_bytes = std::fs::read(&kill_trace).expect("killed trace");
    let ref_bytes = std::fs::read(&ref_trace).expect("reference trace");
    assert!(!ref_bytes.is_empty(), "the trace must carry events");
    assert_eq!(
        killed_bytes, ref_bytes,
        "resumed trace must be the byte-identical suffix-completed trace"
    );

    // Final world: the tick-6 checkpoint both runs wrote is the same
    // world (trace position aside — the files differ by name only).
    assert_eq!(
        world_text(read_generation(&kill_dir, 3)),
        world_text(read_generation(&ref_dir, 3)),
    );

    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn damaged_generations_fall_back_to_the_previous_good_snapshot() {
    let base = scratch("corruption");
    let dir = base.join("ckpt");

    // An untraced checkpointed run: generations 1, 2, 3 land after
    // ticks 2, 4, 6 of the 8-tick fast horizon.
    endurance::drive(
        &fast_cfg(),
        &Tracer::disabled(),
        None,
        Some((&dir, 2)),
        None,
        None,
    )
    .expect("checkpointed run finishes");
    let (generation, newest) = endurance::load_resumable(&dir).expect("loads");
    assert_eq!(generation, 3);
    assert_eq!(newest.run.next_tick(), 7);

    let store = SnapshotStore::open(&dir).expect("store opens");

    // Unknown format version in a perfectly intact store frame: the
    // payload check rejects it, the previous generation wins.
    store.save(b"{\"version\":9}").expect("saves gen 4");
    assert_eq!(endurance::load_resumable(&dir).expect("falls back").0, 3);

    // Right version, missing fields: same fallback.
    store.save(b"{\"version\":1}").expect("saves gen 5");
    assert_eq!(endurance::load_resumable(&dir).expect("falls back").0, 3);

    // One flipped byte mid-payload: the checksum rejects generation 3.
    let gen3 = dir.join("gen-000003.icmsnap");
    let mut bytes = std::fs::read(&gen3).expect("reads");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&gen3, &bytes).expect("writes damage");
    let (generation, fallback) = endurance::load_resumable(&dir).expect("falls back");
    assert_eq!(generation, 2);
    assert_eq!(fallback.run.next_tick(), 5);

    // A torn (truncated) generation 2: fall through to generation 1.
    let gen2 = dir.join("gen-000002.icmsnap");
    let len = std::fs::metadata(&gen2).expect("meta").len();
    let file = OpenOptions::new().write(true).open(&gen2).expect("opens");
    file.set_len(len / 2).expect("truncates");
    drop(file);
    assert_eq!(endurance::load_resumable(&dir).expect("falls back").0, 1);

    // Nothing left: a typed error that lists every failed generation.
    std::fs::write(dir.join("gen-000001.icmsnap"), b"garbage").expect("writes");
    let err = endurance::load_resumable(&dir).expect_err("nothing usable");
    let message = err.to_string();
    for generation in 1..=5 {
        assert!(
            message.contains(&format!("generation {generation}")),
            "error must list generation {generation}: {message}"
        );
    }

    let _ = std::fs::remove_dir_all(&base);
}
