//! Smoke-runs every experiment in fast mode: each must succeed and emit a
//! non-trivial table.

use icm::experiments::{ExpConfig, Experiment};

fn cfg() -> ExpConfig {
    ExpConfig {
        seed: 2016,
        fast: true,
    }
}

fn check(exp: Experiment) {
    let output = exp
        .run(&cfg())
        .unwrap_or_else(|e| panic!("{} failed: {e}", exp.id()));
    assert!(
        output.lines().count() >= 4,
        "{} produced a suspiciously short table:\n{output}",
        exp.id()
    );
    assert!(output.contains("=="), "{} lacks a title", exp.id());
}

#[test]
fn motivation_and_propagation() {
    check(Experiment::Fig2);
    check(Experiment::Fig3);
}

#[test]
fn heterogeneity() {
    check(Experiment::Fig4);
    check(Experiment::Table2);
}

#[test]
fn profiling_cost() {
    check(Experiment::Table3);
    check(Experiment::Fig6);
    check(Experiment::Fig7);
}

#[test]
fn scores_and_validation() {
    check(Experiment::Table4);
    check(Experiment::Fig8);
    check(Experiment::Fig9);
}

#[test]
fn placement_studies() {
    check(Experiment::Fig10);
    check(Experiment::Fig11);
    check(Experiment::Table5);
}

#[test]
fn ec2_study() {
    check(Experiment::Fig12);
    check(Experiment::Table6);
    check(Experiment::Fig13);
}

#[test]
fn ablations() {
    check(Experiment::AblationInterp);
    check(Experiment::AblationSa);
    check(Experiment::AblationSamples);
    check(Experiment::AblationMultiApp);
}

#[test]
fn extensions() {
    check(Experiment::ExtOnline);
    check(Experiment::ExtMultiApp);
    check(Experiment::ExtEnergy);
    check(Experiment::ExtPhases);
    check(Experiment::ExtTransfer);
    check(Experiment::ExtScale);
    check(Experiment::ExtIoChannel);
}
