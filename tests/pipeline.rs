//! End-to-end pipeline tests spanning the whole workspace: simulate →
//! profile → model → predict → validate.

use icm::core::model::ModelBuilder;
use icm::core::{measure_bubble_score, NaiveModel, ProfilingAlgorithm, Testbed};
use icm::workloads::{Catalog, TestbedBuilder};

fn testbed(seed: u64) -> icm::workloads::SimTestbedAdapter {
    TestbedBuilder::new(&Catalog::paper()).seed(seed).build()
}

#[test]
fn profile_model_predict_validate_round_trip() {
    let mut tb = testbed(101);
    let model = ModelBuilder::new("M.milc")
        .algorithm(ProfilingAlgorithm::BinaryOptimized)
        .policy_samples(16)
        .seed(1)
        .build(&mut tb)
        .expect("model builds");

    // Validate against fresh measurements the model has never seen.
    let solo = model.solo_seconds();
    for (pressures, label) in [
        (
            vec![8.0, 8.0, 8.0, 8.0, 8.0, 8.0, 8.0, 8.0],
            "full pressure",
        ),
        (vec![6.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0], "one node"),
        (
            vec![4.0, 2.0, 7.0, 0.0, 1.0, 0.0, 0.0, 0.0],
            "heterogeneous",
        ),
    ] {
        let measured = tb.run_app("M.milc", &pressures).expect("runs") / solo;
        let predicted = model.predict(&pressures);
        let err = ((predicted - measured) / measured).abs();
        assert!(
            err < 0.12,
            "{label}: predicted {predicted:.3} vs measured {measured:.3} ({:.1}% off)",
            err * 100.0
        );
    }
}

#[test]
fn all_profiling_algorithms_build_usable_models() {
    for algorithm in [
        ProfilingAlgorithm::Full,
        ProfilingAlgorithm::BinaryBrute,
        ProfilingAlgorithm::BinaryOptimized,
        ProfilingAlgorithm::random30(),
        ProfilingAlgorithm::random50(),
    ] {
        let mut tb = testbed(55);
        let model = ModelBuilder::new("N.cg")
            .algorithm(algorithm)
            .policy_samples(10)
            .build(&mut tb)
            .unwrap_or_else(|e| panic!("{}: {e}", algorithm.name()));
        let full = model.predict(&[8.0; 8]);
        assert!(
            full > 1.3,
            "{}: full-pressure prediction {full} too tame",
            algorithm.name()
        );
        let none = model.predict(&[0.0; 8]);
        assert!(
            (none - 1.0).abs() < 0.05,
            "{}: baseline {none}",
            algorithm.name()
        );
    }
}

#[test]
fn naive_model_underestimates_coupled_apps_on_the_real_testbed() {
    // The Fig. 2 motivation as an integration test.
    let mut tb = testbed(7);
    let model = ModelBuilder::new("M.lmps")
        .policy_samples(12)
        .build(&mut tb)
        .expect("model builds");
    let naive = NaiveModel::from_model(&model);
    let solo = model.solo_seconds();
    let mut one = vec![0.0; 8];
    one[7] = 8.0;
    let measured = tb.run_app("M.lmps", &one).expect("runs") / solo;
    assert!(
        naive.predict(&one) < measured - 0.3,
        "naive {} should badly undershoot measured {measured}",
        naive.predict(&one)
    );
    let full_model_err = ((model.predict(&one) - measured) / measured).abs();
    assert!(full_model_err < 0.1, "full model error {full_model_err}");
}

#[test]
fn bubble_scores_order_matches_aggressiveness() {
    let mut tb = testbed(31);
    let libq = measure_bubble_score(&mut tb, "C.libq", 3).expect("scores");
    let milc = measure_bubble_score(&mut tb, "M.milc", 3).expect("scores");
    let hkm = measure_bubble_score(&mut tb, "H.KM", 3).expect("scores");
    assert!(
        libq > milc && milc > hkm,
        "libq {libq} > milc {milc} > hkm {hkm}"
    );

    // And the scores actually predict cross-app interference: a model
    // for zeus + the scores alone ranks co-runners correctly.
    let model = ModelBuilder::new("M.zeus")
        .policy_samples(10)
        .build(&mut tb)
        .expect("model builds");
    let with = |score: f64| model.predict(&[score; 8]);
    assert!(with(libq) > with(milc));
    assert!(with(milc) > with(hkm));
}

#[test]
fn model_spans_and_cluster_spans_compose() {
    // A model profiled at 4-host span predicts 4-length vectors; the same
    // app can also be modeled at full span.
    let mut tb = testbed(77);
    let small = ModelBuilder::new("M.lu")
        .hosts(4)
        .policy_samples(8)
        .build(&mut tb)
        .expect("builds");
    let large = ModelBuilder::new("M.lu")
        .policy_samples(8)
        .build(&mut tb)
        .expect("builds");
    assert_eq!(small.hosts(), 4);
    assert_eq!(large.hosts(), 8);
    assert!(
        small.try_predict(&[3.0; 8]).is_err(),
        "span mismatch rejected"
    );
    let s4 = small.predict(&[3.0; 4]);
    let s8 = large.predict(&[3.0; 8]);
    // Full homogeneous interference should look similar at either span.
    assert!(
        (s4 - s8).abs() / s8 < 0.15,
        "homogeneous full-pressure predictions should agree: {s4} vs {s8}"
    );
}
