//! End-to-end report guarantees: the figure-grade HTML page built from
//! a fixed-seed results document is byte-identical across regenerations,
//! covers the acceptance figures (2, 3, 11), and is fully self-contained
//! (no scripts, stylesheets, images, or network references).

use icm_experiments::context::ExpConfig;
use icm_experiments::results::ResultsDoc;
use icm_experiments::Experiment;
use icm_report::{build_report, render_html, render_text};

/// Runs the acceptance figures at `seed` into one results document.
fn results_doc(seed: u64) -> ResultsDoc {
    let cfg = ExpConfig {
        seed,
        fast: true,
        ..ExpConfig::default()
    };
    let mut doc = ResultsDoc::new(cfg.seed, cfg.fast);
    for exp in [Experiment::Fig2, Experiment::Fig3, Experiment::Fig11] {
        let (_, json) = exp.run_full(&cfg).expect("experiment runs");
        doc.push(exp.id(), json);
    }
    doc
}

#[test]
fn html_report_is_byte_identical_across_same_seed_runs() {
    let first = render_html(&build_report(&results_doc(2016), None, None, None));
    let second = render_html(&build_report(&results_doc(2016), None, None, None));
    assert_eq!(
        first, second,
        "same seed must regenerate a byte-identical report"
    );
}

#[test]
fn html_report_covers_the_acceptance_figures_and_is_self_contained() {
    let html = render_html(&build_report(&results_doc(2016), None, None, None));
    for needle in ["Figure 2", "Figure 3", "Figure 11", "<svg"] {
        assert!(html.contains(needle), "report must contain `{needle}`");
    }
    for forbidden in ["<script", "<link", "<img", "http://", "https://"] {
        assert!(
            !html.contains(forbidden),
            "self-contained report must not contain `{forbidden}`"
        );
    }
    // Both color schemes ship inline.
    assert!(html.contains("prefers-color-scheme"));
}

#[test]
fn text_report_carries_a_verdict_per_section_and_an_overall_line() {
    let doc = results_doc(2016);
    let report = build_report(&doc, None, None, None);
    let text = render_text(&report);
    for needle in ["Figure 2", "Figure 3", "Figure 11", "overall:"] {
        assert!(text.contains(needle), "text report must contain `{needle}`");
    }
    // Experiments that were not run surface as missing, not as silence.
    assert!(text.contains("missing"));
}
