//! `icm-trace diff` end-to-end: perturbing one event in the middle of a
//! real fixed-seed trace is pinpointed at exactly that event index with
//! the offending field named, and a truncated replay is reported as a
//! length divergence at the cut point.

use icm_core::{profile_traced, ProfilerConfig, ProfilingAlgorithm};
use icm_experiments::context::{private_testbed, ExpConfig};
use icm_experiments::profiling_source::AppSource;
use icm_experiments::tracediff::diff_traces;
use icm_obs::{parse_events, Event, JsonlSink, SharedBuf, Tracer, Value};

/// One real profiling-sweep trace at a fixed seed.
fn real_trace() -> Vec<Event> {
    let cfg = ExpConfig {
        fast: true,
        seed: 2016,
        ..ExpConfig::default()
    };
    let mut testbed = private_testbed(&cfg);
    let buf = SharedBuf::new();
    let tracer = Tracer::with_sink(JsonlSink::new(buf.clone()));
    testbed.sim_mut().set_tracer(tracer.clone());
    let mut source = AppSource::new(&mut testbed, "M.zeus", 8, 1).expect("solo runs");
    profile_traced(
        &mut source,
        ProfilingAlgorithm::BinaryOptimized,
        &ProfilerConfig::default(),
        &tracer,
    )
    .expect("profiles");
    tracer.flush();
    parse_events(&buf.text()).expect("trace parses")
}

#[test]
fn perturbed_middle_event_is_pinpointed_with_the_field_name() {
    let a = real_trace();
    assert!(a.len() >= 3, "need a non-trivial trace");
    let mut b = a.clone();
    let mid = a.len() / 2;
    // Find a numeric field in the middle event (or the nearest event
    // after it that has one) and nudge it.
    let (index, field) = (mid..b.len())
        .find_map(|i| {
            b[i].fields
                .iter()
                .position(|(_, v)| matches!(v, Value::F64(_)))
                .map(|p| (i, p))
        })
        .expect("a middle event with a numeric field");
    let field_name = b[index].fields[field].0.clone();
    let Value::F64(old) = b[index].fields[field].1 else {
        unreachable!()
    };
    b[index].fields[field].1 = Value::F64(old + 1.0);

    let report = diff_traces(&a, &b);
    assert!(!report.identical());
    assert_eq!(report.divergences.len(), 1, "only the first fork matters");
    let d = &report.divergences[0];
    assert_eq!(d.index, index as u64, "divergence at the perturbed event");
    assert_eq!(d.kind, "fields");
    assert_eq!(d.name_a, a[index].name);
    assert!(
        d.deltas.iter().any(|delta| delta.field == field_name),
        "the perturbed field `{field_name}` must be named"
    );
}

#[test]
fn truncated_replay_reports_length_divergence_at_the_cut() {
    let a = real_trace();
    let cut = a.len() - 2;
    let report = diff_traces(&a, &a[..cut]);
    let d = &report.divergences[0];
    assert_eq!(d.kind, "length");
    assert_eq!(d.index, cut as u64);
    assert_eq!(d.name_b, "(end of trace)");
    assert_eq!(d.name_a, a[cut].name);
    assert_eq!(report.events_a, a.len() as u64);
    assert_eq!(report.events_b, cut as u64);
}

#[test]
fn same_seed_traces_diff_clean() {
    let a = real_trace();
    let b = real_trace();
    let report = diff_traces(&a, &b);
    assert!(report.identical(), "fixed-seed replays must be identical");
}
