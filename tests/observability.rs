//! End-to-end observability guarantees: at a fixed seed, traced runs of
//! a profiling sweep and an annealing search emit byte-identical JSONL,
//! every line round-trips through `icm-json`, and the `icm-trace`
//! summarizer reconstructs exactly the probe budget the testbed itself
//! accounted.

use icm_core::{profile_traced, ProfilerConfig, ProfilingAlgorithm};
use icm_experiments::context::{private_testbed, ExpConfig};
use icm_experiments::profiling_source::AppSource;
use icm_experiments::trace::summarize;
use icm_obs::{parse_events, Event, JsonlSink, SharedBuf, Tracer};
use icm_placement::{anneal_traced, AcceptRule, AnnealConfig, PlacementProblem, PlacementState};
use icm_simcluster::TestbedStats;

/// Runs the same profiling sweep with a JSONL sink — optionally with the
/// wall-time side channel enabled — and returns the raw trace bytes, the
/// testbed's own accounting, and the tracer (for wall-profile access).
fn traced_profiling_sweep_wall(seed: u64, wall: bool) -> (String, TestbedStats, Tracer) {
    let cfg = ExpConfig {
        fast: true,
        seed,
        ..ExpConfig::default()
    };
    let mut testbed = private_testbed(&cfg);
    let buf = SharedBuf::new();
    let tracer = Tracer::with_sink(JsonlSink::new(buf.clone()));
    if wall {
        tracer.enable_wall_profiling();
    }
    testbed.sim_mut().set_tracer(tracer.clone());
    let mut source = AppSource::new(&mut testbed, "M.zeus", 8, 1).expect("solo runs");
    profile_traced(
        &mut source,
        ProfilingAlgorithm::BinaryOptimized,
        &ProfilerConfig::default(),
        &tracer,
    )
    .expect("profiles");
    let stats = source.testbed_stats();
    tracer.flush();
    (buf.text(), stats, tracer)
}

/// Runs the same profiling sweep with a JSONL sink and returns the raw
/// trace bytes plus the testbed's own accounting.
fn traced_profiling_sweep(seed: u64) -> (String, TestbedStats) {
    let (trace, stats, _) = traced_profiling_sweep_wall(seed, false);
    (trace, stats)
}

fn anneal_cost(problem: &PlacementProblem, state: &PlacementState) -> f64 {
    state
        .assignment()
        .iter()
        .enumerate()
        .map(|(slot, &w)| (w + 1) as f64 * (problem.host_of_slot(slot) + 1) as f64)
        .sum()
}

/// Runs the same Metropolis search with a JSONL sink and returns the raw
/// trace bytes.
fn traced_search(seed: u64) -> String {
    let problem =
        PlacementProblem::paper_default(vec!["a".into(), "b".into(), "c".into(), "d".into()])
            .expect("valid problem");
    let buf = SharedBuf::new();
    let tracer = Tracer::with_sink(JsonlSink::new(buf.clone()));
    anneal_traced(
        &problem,
        |state| Ok(anneal_cost(&problem, state)),
        |_| Ok(0.0),
        &AnnealConfig {
            iterations: 300,
            seed,
            accept: AcceptRule::Metropolis {
                initial_temperature: 0.5,
                cooling: 0.995,
            },
            ..AnnealConfig::default()
        },
        &tracer,
    )
    .expect("search runs");
    tracer.flush();
    buf.text()
}

#[test]
fn profiling_sweep_trace_is_byte_identical_across_runs() {
    let (first, _) = traced_profiling_sweep(2016);
    let (second, _) = traced_profiling_sweep(2016);
    assert!(!first.is_empty());
    assert_eq!(first, second, "same seed must produce identical traces");
}

#[test]
fn wall_profiling_leaves_the_deterministic_trace_byte_identical() {
    let (plain, _, _) = traced_profiling_sweep_wall(2016, false);
    let (profiled, _, tracer) = traced_profiling_sweep_wall(2016, true);
    assert_eq!(
        plain, profiled,
        "the wall-time side channel must never perturb the JSONL stream"
    );
    let profile = tracer.wall_profile().expect("profiling was enabled");
    assert!(
        !profile.is_empty(),
        "enabled profiling must record at least one span"
    );
    for span in ["profile.fit", "sim.contention", "sim.execute"] {
        let stats = profile
            .get(span)
            .unwrap_or_else(|| panic!("wall profile must cover `{span}`"));
        assert!(stats.count() > 0, "`{span}` must have samples");
        assert!(stats.total_ns() >= stats.max_ns().unwrap_or(0));
    }
    // The disabled run records nothing.
    let (_, _, off) = traced_profiling_sweep_wall(2016, false);
    assert!(off.wall_profile().is_none());
}

#[test]
fn annealing_trace_is_byte_identical_across_runs() {
    let first = traced_search(7);
    let second = traced_search(7);
    assert!(!first.is_empty());
    assert_eq!(first, second, "same seed must produce identical traces");
}

#[test]
fn traces_round_trip_through_icm_json() {
    let (trace, _) = traced_profiling_sweep(2016);
    let events = parse_events(&trace).expect("trace parses");
    assert!(!events.is_empty());
    let reserialized: String = events
        .iter()
        .map(|e| {
            let mut line = icm_json::to_string(e);
            line.push('\n');
            line
        })
        .collect();
    assert_eq!(trace, reserialized, "parse → serialize must be lossless");
    let back: Vec<Event> = parse_events(&reserialized).expect("reparses");
    assert_eq!(events, back);
}

#[test]
fn trace_summary_matches_testbed_accounting() {
    let (trace, stats) = traced_profiling_sweep(2016);
    let events = parse_events(&trace).expect("trace parses");
    let summary = summarize(&events);
    assert_eq!(
        summary.budget.as_stats(),
        stats,
        "icm-trace probe budget must reproduce TestbedStats exactly"
    );
    assert!(summary.budget.solo > 0);
    assert!(summary.budget.bubble > 0);
    assert_eq!(summary.profiles.len(), 1);
}

#[test]
fn search_trace_summarizes_the_objective_trajectory() {
    let trace = traced_search(7);
    let events = parse_events(&trace).expect("trace parses");
    let summary = summarize(&events);
    assert_eq!(summary.searches.len(), 1);
    let search = &summary.searches[0];
    assert_eq!(search.rule, "metropolis");
    assert_eq!(search.trajectory.len() as u64, search.iterations);
    assert!(search.iterations > 0);
    // The running best is monotone non-increasing and ends at best_cost.
    let mut prev = f64::INFINITY;
    for point in &search.trajectory {
        assert!(point.best <= prev + 1e-12);
        prev = point.best;
    }
    assert!((prev - search.best_cost).abs() < 1e-12);
}
