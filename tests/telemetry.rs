//! End-to-end acceptance for streaming telemetry (`icm-obs`):
//! constant-memory aggregation is part of the determinism contract.
//!
//! * A 10× longer same-seed managed run produces a telemetry artifact
//!   of essentially identical size — the rings bound it, and both stay
//!   under the fixed byte budget.
//! * Two same-seed managed runs serialize byte-identical artifacts.
//! * Tee mode (raw trace + telemetry) leaves the raw JSONL trace
//!   byte-identical to a telemetry-off run: aggregation is observation,
//!   never perturbation.

use icm_core::model::ModelBuilder;
use icm_core::{DriftConfig, OnlineModel};
use icm_manager::{run_managed, Fleet, ManagedApp, ManagerConfig, ManagerOutcome};
use icm_obs::{
    JsonlSink, SharedBuf, Telemetry, TelemetryConfig, TelemetrySink, Tracer, TELEMETRY_BYTE_BUDGET,
};
use icm_placement::QosConfig;
use icm_simcluster::{CrashWindow, FaultPlan};
use icm_workloads::{Catalog, SimTestbedAdapter, TestbedBuilder};

const SPAN: usize = 4;

fn testbed(seed: u64) -> SimTestbedAdapter {
    TestbedBuilder::new(&Catalog::paper()).seed(seed).build()
}

fn managed_apps(tb: &mut SimTestbedAdapter, names: &[(&str, u32)]) -> Vec<ManagedApp> {
    names
        .iter()
        .map(|&(name, priority)| {
            let model = ModelBuilder::new(name)
                .hosts(SPAN)
                .policy_samples(6)
                .solo_repeats(1)
                .score_repeats(1)
                .seed(0xFEED)
                .build(tb)
                .expect("model builds");
            ManagedApp::new(name, priority, OnlineModel::new(model))
        })
        .collect()
}

fn lenient(ticks: u64) -> ManagerConfig {
    ManagerConfig {
        ticks,
        initial_iterations: 600,
        reanneal_iterations: 250,
        qos: QosConfig {
            qos_fraction: 0.5,
            ..QosConfig::default()
        },
        drift: DriftConfig {
            threshold: 0.5,
            ..DriftConfig::default()
        },
        ..ManagerConfig::default()
    }
}

/// Rings small enough that even the short run saturates them, so the
/// size comparison exercises the steady state rather than the ramp.
fn small_rings() -> TelemetryConfig {
    TelemetryConfig {
        window_s: 200.0,
        max_windows: 4,
        snapshot_every_s: 500.0,
        max_snapshots: 4,
        ..TelemetryConfig::default()
    }
}

/// The crash schedule shared by every test: a permanent outage on a
/// host the first application occupies, two ticks in. Discovered on
/// clones — identical seeds make the probe's placement the real run's
/// placement.
fn crash_plan() -> FaultPlan {
    let mut tb = testbed(2016);
    let mut fleet = Fleet::new(
        8,
        2,
        SPAN,
        managed_apps(&mut tb, &[("M.milc", 2), ("H.KM", 1)]),
    )
    .expect("fleet packs");
    let from_run = tb.sim().peek_run() + 2;
    let probe = run_managed(tb.sim_mut(), &mut fleet, &lenient(1), &Tracer::disabled())
        .expect("discovery run");
    FaultPlan {
        crash_windows: vec![CrashWindow {
            host: probe.finals[0].hosts[0] as usize,
            from_run,
            until_run: u64::MAX,
        }],
        ..FaultPlan::default()
    }
}

/// One managed run in telemetry-replace mode (no raw trace at all),
/// with a final snapshot stamped the way the CLI does it.
fn telemetry_run(ticks: u64, plan: FaultPlan) -> (Telemetry, ManagerOutcome) {
    let mut tb = testbed(2016);
    let mut fleet = Fleet::new(
        8,
        2,
        SPAN,
        managed_apps(&mut tb, &[("M.milc", 2), ("H.KM", 1)]),
    )
    .expect("fleet packs");
    tb.sim_mut().set_fault_plan(Some(plan));
    let telemetry = Telemetry::new(small_rings());
    let tracer = Tracer::with_telemetry(TelemetrySink::new(telemetry.clone()));
    tb.sim_mut().set_tracer(tracer.clone());
    let outcome =
        run_managed(tb.sim_mut(), &mut fleet, &lenient(ticks), &tracer).expect("managed run");
    tracer.flush();
    let stamp = tracer.now();
    telemetry.snapshot_now(stamp.step, stamp.sim_s);
    (telemetry, outcome)
}

#[test]
fn a_10x_longer_run_keeps_the_artifact_at_the_same_bounded_size() {
    let plan = crash_plan();
    let (short, _) = telemetry_run(4, plan.clone());
    let (long, _) = telemetry_run(40, plan);
    let short_text = short.to_text();
    let long_text = long.to_text();
    assert!(short.events() > 0, "telemetry saw no events");
    assert!(
        long.events() > short.events(),
        "the long run must fold more events"
    );
    assert!(
        short_text.len() <= TELEMETRY_BYTE_BUDGET && long_text.len() <= TELEMETRY_BYTE_BUDGET,
        "artifact over budget: short {} / long {} vs {}",
        short_text.len(),
        long_text.len(),
        TELEMETRY_BYTE_BUDGET
    );
    // Constant memory, not merely bounded growth: once the rings are
    // full, 10× the ticks may only move the digit widths.
    assert!(
        long_text.len() * 4 <= short_text.len() * 5,
        "10x ticks grew the artifact {} -> {} bytes (>25%)",
        short_text.len(),
        long_text.len()
    );
}

#[test]
fn same_seed_runs_serialize_byte_identical_artifacts() {
    let plan = crash_plan();
    let (a, outcome_a) = telemetry_run(6, plan.clone());
    let (b, outcome_b) = telemetry_run(6, plan);
    assert!(
        !outcome_a.actions.is_empty(),
        "the crash schedule never fired"
    );
    assert_eq!(outcome_a.action_log(), outcome_b.action_log());
    let text_a = a.to_text();
    assert_eq!(text_a, b.to_text(), "same-seed telemetry diverged");
    // The artifact actually carries the health vocabulary.
    assert_eq!(a.counter("manager.ticks.managed"), 6, "one count per tick");
    assert!(a.snapshot_count() >= 1, "no health snapshot was stamped");
    for needle in ["manager.ticks.managed", "anneal.cost", "testbed.run_s"] {
        assert!(text_a.contains(needle), "artifact lacks `{needle}`");
    }
}

#[test]
fn tee_mode_leaves_the_raw_trace_byte_identical() {
    let plan = crash_plan();
    let run = |telemetry: Option<Telemetry>| -> String {
        let mut tb = testbed(2016);
        let mut fleet = Fleet::new(
            8,
            2,
            SPAN,
            managed_apps(&mut tb, &[("M.milc", 2), ("H.KM", 1)]),
        )
        .expect("fleet packs");
        tb.sim_mut().set_fault_plan(Some(plan.clone()));
        let buf = SharedBuf::new();
        let sink = JsonlSink::new(buf.clone());
        let tracer = match telemetry {
            Some(t) => Tracer::with_telemetry(TelemetrySink::tee(t, sink)),
            None => Tracer::with_sink(sink),
        };
        tb.sim_mut().set_tracer(tracer.clone());
        run_managed(tb.sim_mut(), &mut fleet, &lenient(6), &tracer).expect("managed run");
        tracer.flush();
        buf.text()
    };
    let plain = run(None);
    let telemetry = Telemetry::new(small_rings());
    let teed = run(Some(telemetry.clone()));
    assert!(!plain.is_empty());
    assert_eq!(plain, teed, "tee mode perturbed the raw trace");
    assert!(
        telemetry.events() > 0,
        "the tee forwarded but never aggregated"
    );
}

/// Tee under compound faults: a crash outage *and* ambient stragglers
/// drive the manager through its error paths (failed ticks, straggler
/// kills, re-anneals, provenance-linked violation events), and the raw
/// trace must still be byte-identical to a telemetry-off run. The
/// aggregation side channel may never perturb the stream it observes —
/// least of all on the eventful ticks where provenance is emitted.
#[test]
fn tee_under_faults_leaves_the_raw_trace_byte_identical() {
    let plan = FaultPlan {
        straggler_prob: 0.2,
        straggler_severity: 0.8,
        ..crash_plan()
    };
    let run = |telemetry: Option<Telemetry>| -> (String, ManagerOutcome) {
        let mut tb = testbed(2016);
        let mut fleet = Fleet::new(
            8,
            2,
            SPAN,
            managed_apps(&mut tb, &[("M.milc", 2), ("H.KM", 1)]),
        )
        .expect("fleet packs");
        tb.sim_mut().set_fault_plan(Some(plan.clone()));
        let buf = SharedBuf::new();
        let sink = JsonlSink::new(buf.clone());
        let tracer = match telemetry {
            Some(t) => Tracer::with_telemetry(TelemetrySink::tee(t, sink)),
            None => Tracer::with_sink(sink),
        };
        tb.sim_mut().set_tracer(tracer.clone());
        let outcome =
            run_managed(tb.sim_mut(), &mut fleet, &lenient(8), &tracer).expect("managed run");
        tracer.flush();
        (buf.text(), outcome)
    };
    let (plain, outcome) = run(None);
    let telemetry = Telemetry::new(small_rings());
    let (teed, teed_outcome) = run(Some(telemetry.clone()));
    assert!(
        !outcome.actions.is_empty(),
        "the compound fault plan never drove a reaction"
    );
    assert_eq!(outcome.action_log(), teed_outcome.action_log());
    assert_eq!(plain, teed, "tee under faults perturbed the raw trace");
    assert!(
        plain.contains("\"causes\""),
        "the faulted run emitted no cause-linked events"
    );
    assert!(
        telemetry.events() > 0,
        "the tee forwarded but never aggregated"
    );
}
