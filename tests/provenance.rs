//! End-to-end acceptance for decision provenance: every manager action
//! must be explainable back to the measurements that justified it, and
//! every violation-second must be attributable to a cause — without the
//! provenance layer ever perturbing the determinism or invisibility
//! contracts.
//!
//! * `explain --action N` renders a complete chain (action → detections
//!   → observations, closed by an outcome line) for *every* action in a
//!   faulted managed trace.
//! * `explain --violations` attributes 100% of the violation time the
//!   run outcome reports.
//! * Same-seed traces explain byte-identically.
//! * With faults disabled, a managed run with provenance enabled stays
//!   byte-identical to the unmanaged path and carries no provenance.

use icm_core::model::ModelBuilder;
use icm_core::{DriftConfig, OnlineModel};
use icm_experiments::explain::{explain_action, explain_all, explain_violations};
use icm_manager::{
    run_managed, run_unmanaged, EnvironmentDrift, Fleet, ManagedApp, ManagerConfig, ManagerOutcome,
};
use icm_obs::manager::MANAGER_OUTCOME;
use icm_obs::{parse_events, Event, JsonlSink, SharedBuf, Tracer, Value};
use icm_placement::QosConfig;
use icm_simcluster::{CrashWindow, FaultPlan};
use icm_workloads::{Catalog, SimTestbedAdapter, TestbedBuilder};

const SPAN: usize = 4;

fn testbed(seed: u64) -> SimTestbedAdapter {
    TestbedBuilder::new(&Catalog::paper()).seed(seed).build()
}

fn managed_apps(tb: &mut SimTestbedAdapter, names: &[(&str, u32)]) -> Vec<ManagedApp> {
    names
        .iter()
        .map(|&(name, priority)| {
            let model = ModelBuilder::new(name)
                .hosts(SPAN)
                .policy_samples(6)
                .solo_repeats(1)
                .score_repeats(1)
                .seed(0xFEED)
                .build(tb)
                .expect("model builds");
            ManagedApp::new(name, priority, OnlineModel::new(model))
        })
        .collect()
}

fn lenient(ticks: u64) -> ManagerConfig {
    ManagerConfig {
        ticks,
        initial_iterations: 600,
        reanneal_iterations: 250,
        qos: QosConfig {
            qos_fraction: 0.5,
            ..QosConfig::default()
        },
        drift: DriftConfig {
            threshold: 0.5,
            ..DriftConfig::default()
        },
        ..ManagerConfig::default()
    }
}

/// One traced run. With `stamp`, mirrors the recovery experiment by
/// emitting a `manager_outcome` event at the end so violation
/// attribution has a reported total to cover; the quiet-run comparison
/// leaves it off because the stamp names the mode, which would differ
/// between the otherwise byte-identical managed and unmanaged traces.
fn traced_run(managed: bool, plan: Option<FaultPlan>, stamp: bool) -> (String, ManagerOutcome) {
    traced_run_with(managed, plan, &lenient(6), stamp)
}

fn traced_run_with(
    managed: bool,
    plan: Option<FaultPlan>,
    config: &ManagerConfig,
    stamp: bool,
) -> (String, ManagerOutcome) {
    let mut tb = testbed(2016);
    let mut fleet = Fleet::new(
        8,
        2,
        SPAN,
        managed_apps(&mut tb, &[("M.milc", 2), ("H.KM", 1)]),
    )
    .expect("fleet packs");
    tb.sim_mut().set_fault_plan(plan);
    let buf = SharedBuf::new();
    let tracer = Tracer::with_sink(JsonlSink::new(buf.clone()));
    tb.sim_mut().set_tracer(tracer.clone());
    let outcome = if managed {
        run_managed(tb.sim_mut(), &mut fleet, config, &tracer).expect("managed run")
    } else {
        run_unmanaged(tb.sim_mut(), &mut fleet, config, &tracer).expect("unmanaged run")
    };
    if stamp {
        tracer.event(
            MANAGER_OUTCOME,
            &[
                ("scenario", Value::from("acceptance")),
                ("managed", Value::from(managed)),
                ("violation_s", Value::from(outcome.violation_seconds)),
            ],
        );
    }
    tracer.flush();
    (buf.text(), outcome)
}

/// The crash schedule: a permanent outage on a host the first
/// application occupies, two ticks into the run. Discovered on clones —
/// identical seeds make the probe's placement the real run's placement.
fn fault_plan() -> FaultPlan {
    let mut tb = testbed(2016);
    let mut fleet = Fleet::new(
        8,
        2,
        SPAN,
        managed_apps(&mut tb, &[("M.milc", 2), ("H.KM", 1)]),
    )
    .expect("fleet packs");
    let from_run = tb.sim().peek_run() + 2;
    let probe = run_managed(tb.sim_mut(), &mut fleet, &lenient(1), &Tracer::disabled())
        .expect("discovery run");
    FaultPlan {
        crash_windows: vec![CrashWindow {
            host: probe.finals[0].hosts[0] as usize,
            from_run,
            until_run: u64::MAX,
        }],
        ..FaultPlan::default()
    }
}

fn parse(trace: &str) -> Vec<Event> {
    parse_events(trace).expect("trace parses")
}

#[test]
fn every_action_explains_to_a_complete_chain() {
    let (trace, outcome) = traced_run(true, Some(fault_plan()), true);
    assert!(!outcome.actions.is_empty(), "the crash never fired");
    assert_eq!(
        outcome.provenance.len(),
        outcome.actions.len(),
        "one provenance record per action"
    );
    let events = parse(&trace);
    let names: std::collections::BTreeMap<u64, &str> =
        events.iter().map(|e| (e.step, e.name.as_str())).collect();
    for (n, record) in outcome.provenance.iter().enumerate() {
        assert_eq!(record.action_index as usize, n);
        assert_eq!(record.kind, outcome.actions[n].kind.as_str());
        assert!(
            !record.detections.is_empty(),
            "action {n} ({}) carries no detection inputs",
            record.kind
        );
        // The record's event ids resolve to the right trace events.
        assert_eq!(names.get(&record.event), Some(&"manager_action"));
        for det in &record.detections {
            assert_eq!(names.get(&det.event), Some(&"manager_detection"));
        }
        let text = explain_action(&events, n).expect("chain renders");
        assert!(text.starts_with(&format!("action {n}: ")), "got: {text}");
        assert!(text.contains("detection:"), "no detection hop: {text}");
        assert!(
            text.contains("outcome:"),
            "chain must close with an outcome line: {text}"
        );
    }
    // Resolved actions carry a realized slowdown for the audit.
    assert!(
        outcome
            .provenance
            .iter()
            .any(|r| r.resolved && r.realized_slowdown > 0.0),
        "no action was ever resolved against a completed tick"
    );
}

#[test]
fn violations_are_fully_attributed_to_causes() {
    // The crash alone is dodged preemptively (the host-down peek fires
    // before any run lands on the dead host), so pile on ambient drift
    // and a tight QoS bound: violations accrue on the observed ticks and
    // must flow through the attribution taxonomy.
    let mut config = lenient(6);
    config.qos.qos_fraction = 0.6;
    config.drift = DriftConfig {
        threshold: 0.2,
        trip_after: 2,
    };
    config.environment = Some(EnvironmentDrift {
        from_tick: 2,
        pressures: (0..8).map(|h| if h < 4 { 6.0 } else { 0.0 }).collect(),
    });
    let (trace, outcome) = traced_run_with(true, Some(fault_plan()), &config, true);
    assert!(outcome.violation_seconds > 0.0, "the faults cost nothing");
    let events = parse(&trace);
    let attributed: f64 = events
        .iter()
        .filter(|e| e.name == "qos_violation")
        .map(|e| e.num("violation_s").unwrap_or(0.0))
        .sum();
    assert!(
        (attributed - outcome.violation_seconds).abs() < 1e-6,
        "attributed {attributed} vs reported {}",
        outcome.violation_seconds
    );
    // Every violation event names a known cause and a causal parent.
    for event in events.iter().filter(|e| e.name == "qos_violation") {
        let cause = event.str("cause").expect("cause field");
        assert!(
            ["fault", "mispredict", "latency"].contains(&cause),
            "unknown cause `{cause}`"
        );
        assert!(!event.causes.is_empty(), "violation with no causal parent");
    }
    let text = explain_violations(&events).expect("renders");
    assert!(text.contains("(100.0%)"), "coverage short of 100%: {text}");
    assert!(text.contains("fault"), "got: {text}");
}

#[test]
fn same_seed_traces_explain_byte_identically() {
    let plan = fault_plan();
    let (trace_a, _) = traced_run(true, Some(plan.clone()), true);
    let (trace_b, _) = traced_run(true, Some(plan), true);
    assert_eq!(trace_a, trace_b, "same-seed traces diverged");
    let events_a = parse(&trace_a);
    let events_b = parse(&trace_b);
    assert_eq!(
        explain_all(&events_a).expect("a explains"),
        explain_all(&events_b).expect("b explains"),
        "same-seed explanations diverged"
    );
    assert_eq!(
        explain_violations(&events_a).expect("a attributes"),
        explain_violations(&events_b).expect("b attributes"),
        "same-seed attributions diverged"
    );
}

#[test]
fn quiet_managed_runs_stay_invisible_with_provenance_enabled() {
    let (managed_trace, managed) = traced_run(true, None, false);
    let (unmanaged_trace, unmanaged) = traced_run(false, None, false);
    assert_eq!(
        managed_trace, unmanaged_trace,
        "provenance perturbed the quiet run"
    );
    assert!(
        !managed_trace.contains("manager_detection"),
        "quiet ticks must stay silent"
    );
    assert!(
        managed.provenance.is_empty() && unmanaged.provenance.is_empty(),
        "provenance records on a quiet run"
    );
    assert_eq!(managed.violation_seconds, unmanaged.violation_seconds);
}
