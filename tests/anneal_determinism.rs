//! Lane-parallel annealing determinism end-to-end: the same seed must
//! produce byte-identical JSONL traces and identical placements no
//! matter how the OS schedules the lane threads, because lanes buffer
//! their events and the caller replays them in lane order after the
//! join. `icm-trace diff` on two same-seed traces must come back clean.

use std::collections::BTreeMap;

use icm::core::model::ModelBuilder;
use icm::core::InterferenceModel;
use icm::experiments::tracediff::diff_traces;
use icm::placement::{anneal_estimator, AnnealConfig, Estimator, PlacementProblem, SearchGoal};
use icm::workloads::{Catalog, SimTestbedAdapter, TestbedBuilder};
use icm_obs::{parse_events, JsonlSink, SharedBuf, Tracer};

fn build_models(
    tb: &mut SimTestbedAdapter,
    apps: &[&str],
    hosts: usize,
) -> BTreeMap<String, InterferenceModel> {
    apps.iter()
        .map(|app| {
            (
                (*app).to_owned(),
                ModelBuilder::new(*app)
                    .hosts(hosts)
                    .policy_samples(8)
                    .seed(11)
                    .build(tb)
                    .expect("model builds"),
            )
        })
        .collect()
}

/// One lane-parallel traced search at a fixed seed; returns the raw
/// JSONL bytes and the winning assignment.
fn traced_run(
    problem: &PlacementProblem,
    models: &BTreeMap<String, InterferenceModel>,
    lanes: usize,
) -> (String, Vec<usize>, f64) {
    let estimator = Estimator::from_map(problem, models).expect("valid estimator");
    let buf = SharedBuf::new();
    let tracer = Tracer::with_sink(JsonlSink::new(buf.clone()));
    let result = anneal_estimator(
        &estimator,
        SearchGoal::MinWeightedTotal,
        &AnnealConfig {
            iterations: 600,
            seed: 0xD15C,
            lanes,
            ..AnnealConfig::default()
        },
        &tracer,
    )
    .expect("anneal runs");
    tracer.flush();
    (buf.text(), result.state.assignment().to_vec(), result.cost)
}

#[test]
fn same_seed_lane_parallel_traces_are_byte_identical() {
    let mut tb = TestbedBuilder::new(&Catalog::paper()).seed(23).build();
    let apps = ["M.lmps", "C.libq", "H.KM", "N.cg"];
    let models = build_models(&mut tb, &apps, 4);
    let problem = PlacementProblem::paper_default(apps.iter().map(|a| (*a).to_owned()).collect())
        .expect("valid problem");

    let (text_a, assign_a, cost_a) = traced_run(&problem, &models, 4);
    let (text_b, assign_b, cost_b) = traced_run(&problem, &models, 4);

    assert!(!text_a.is_empty(), "trace must not be empty");
    assert_eq!(text_a, text_b, "same-seed traces must be byte-identical");
    assert_eq!(assign_a, assign_b, "same-seed placements must match");
    assert_eq!(cost_a.to_bits(), cost_b.to_bits());

    // The span start advertises the lane fan-out in its serialized form
    // (this exact byte sequence is what scripts/verify.sh greps for).
    assert!(
        text_a.contains("\"lanes\":4"),
        "span start must carry the lane count"
    );
    // Every lane contributes a summary record.
    let lane_events = text_a.matches("\"anneal_lane\"").count();
    assert_eq!(lane_events, 4, "one anneal_lane summary per lane");

    // The structural differ agrees: no divergence anywhere.
    let a = parse_events(&text_a).expect("trace parses");
    let b = parse_events(&text_b).expect("trace parses");
    let report = diff_traces(&a, &b);
    assert!(report.identical(), "diff_traces must come back clean");
}

#[test]
fn lane_merge_is_deterministic_across_lane_counts() {
    // Lane 0 of a K-lane run follows the exact RNG stream of a 1-lane
    // run, so adding lanes can only improve (or tie) the winning cost —
    // the deterministic argmin merge never regresses the single-lane
    // result.
    let mut tb = TestbedBuilder::new(&Catalog::paper()).seed(23).build();
    let apps = ["M.lmps", "C.libq", "H.KM", "N.cg"];
    let models = build_models(&mut tb, &apps, 4);
    let problem = PlacementProblem::paper_default(apps.iter().map(|a| (*a).to_owned()).collect())
        .expect("valid problem");

    let (_, _, cost_1) = traced_run(&problem, &models, 1);
    let (_, _, cost_4) = traced_run(&problem, &models, 4);
    assert!(
        cost_4 <= cost_1 + 1e-12,
        "lane merge regressed: 4 lanes {cost_4} vs 1 lane {cost_1}"
    );
}
