//! Reproducibility guarantees: everything is a pure function of the
//! seed.

use icm::core::model::ModelBuilder;
use icm::core::Testbed;
use icm::experiments::{ExpConfig, Experiment};
use icm::workloads::{Catalog, TestbedBuilder};

#[test]
fn identical_seeds_give_identical_measurement_histories() {
    let catalog = Catalog::paper();
    let mut a = TestbedBuilder::new(&catalog).seed(99).build();
    let mut b = TestbedBuilder::new(&catalog).seed(99).build();
    for app in ["M.milc", "H.KM", "C.libq"] {
        for _ in 0..3 {
            assert_eq!(
                a.run_app(app, &[2.0; 8]).expect("runs"),
                b.run_app(app, &[2.0; 8]).expect("runs"),
                "{app} diverged"
            );
        }
    }
}

#[test]
fn different_seeds_give_different_noise() {
    let catalog = Catalog::paper();
    let mut a = TestbedBuilder::new(&catalog).seed(1).build();
    let mut b = TestbedBuilder::new(&catalog).seed(2).build();
    let ta = a.run_app("M.milc", &[2.0; 8]).expect("runs");
    let tb = b.run_app("M.milc", &[2.0; 8]).expect("runs");
    assert_ne!(ta, tb);
    // But only by noise, not by behaviour.
    assert!((ta - tb).abs() / ta < 0.1);
}

#[test]
fn model_building_is_reproducible() {
    let build = || {
        let mut tb = TestbedBuilder::new(&Catalog::paper()).seed(4).build();
        ModelBuilder::new("M.zeus")
            .policy_samples(8)
            .seed(6)
            .build(&mut tb)
            .expect("builds")
    };
    let m1 = build();
    let m2 = build();
    assert_eq!(m1.bubble_score(), m2.bubble_score());
    assert_eq!(m1.policy(), m2.policy());
    assert_eq!(
        m1.predict(&[3.0, 1.0, 0.0, 0.0, 5.0, 0.0, 0.0, 2.0]),
        m2.predict(&[3.0, 1.0, 0.0, 0.0, 5.0, 0.0, 0.0, 2.0])
    );
}

#[test]
fn profiler_json_is_byte_identical_across_runs() {
    // The whole point of the vendored RNG: two fresh processes-worth of
    // state, same seeds, must persist *byte-identical* artifacts — not
    // just behaviourally equivalent ones.
    let profile = || {
        let mut tb = TestbedBuilder::new(&Catalog::paper()).seed(17).build();
        let model = ModelBuilder::new("C.libq")
            .policy_samples(8)
            .seed(19)
            .build(&mut tb)
            .expect("builds");
        icm::json::to_string_pretty(&model)
    };
    assert_eq!(profile(), profile(), "profiler JSON must not drift");
}

#[test]
fn placement_json_is_byte_identical_across_runs() {
    use icm::placement::{
        anneal_unconstrained, AnnealConfig, Estimator, PlacementProblem, RuntimePredictor,
    };
    let search = || {
        let mut tb = TestbedBuilder::new(&Catalog::paper()).seed(23).build();
        let apps = ["M.milc", "C.libq", "H.KM", "N.cg"];
        let models: Vec<_> = apps
            .iter()
            .map(|app| {
                ModelBuilder::new(*app)
                    .hosts(4)
                    .policy_samples(6)
                    .build(&mut tb)
                    .expect("builds")
            })
            .collect();
        let problem =
            PlacementProblem::paper_default(apps.iter().map(|a| (*a).to_owned()).collect())
                .expect("valid");
        let refs: Vec<&dyn RuntimePredictor> =
            models.iter().map(|m| m as &dyn RuntimePredictor).collect();
        let estimator = Estimator::new(&problem, refs).expect("valid");
        let result = anneal_unconstrained(
            &problem,
            |s| Ok(estimator.estimate(s)?.weighted_total),
            &AnnealConfig {
                iterations: 400,
                ..AnnealConfig::default()
            },
        )
        .expect("search runs");
        icm::json::to_string_pretty(&result)
    };
    assert_eq!(search(), search(), "placement JSON must not drift");
}

#[test]
fn experiment_outputs_are_reproducible() {
    let cfg = ExpConfig {
        seed: 12,
        fast: true,
    };
    for exp in [Experiment::Fig2, Experiment::Table4] {
        let first = exp.run(&cfg).expect("runs");
        let second = exp.run(&cfg).expect("runs");
        assert_eq!(first, second, "{} not reproducible", exp.id());
    }
}

#[test]
fn experiment_seed_changes_output() {
    let a = Experiment::Table4
        .run(&ExpConfig {
            seed: 1,
            fast: true,
        })
        .expect("runs");
    let b = Experiment::Table4
        .run(&ExpConfig {
            seed: 2,
            fast: true,
        })
        .expect("runs");
    assert_ne!(a, b, "different seeds must change measured values");
}
