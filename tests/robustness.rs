//! End-to-end robustness guarantees: fault injection is part of the
//! determinism contract, not an exception to it.
//!
//! * With faults *disabled* — no plan, or an inactive plan — the
//!   resilient driver and the testbed are byte-identical to the pre-PR
//!   no-injector pipeline: same traces, same accounting, same matrices.
//! * With faults *enabled*, two same-seed runs still write byte-identical
//!   JSONL traces, retry and fault events included.
//! * At a 10% injected probe-failure rate, binary-optimized profiling
//!   through the resilient driver still delivers a full-coverage model.

use icm_core::{
    profile_full, profile_resilient, profile_traced, ProfileResult, ProfilerConfig,
    ProfilingAlgorithm, ResilientOutcome, RetryPolicy,
};
use icm_experiments::context::{private_testbed, ExpConfig};
use icm_experiments::profiling_source::AppSource;
use icm_obs::{JsonlSink, SharedBuf, Tracer};
use icm_simcluster::{FaultPlan, TestbedStats};

fn cfg(seed: u64) -> ExpConfig {
    ExpConfig {
        fast: true,
        seed,
        ..ExpConfig::default()
    }
}

/// One traced binary-optimized sweep of M.zeus through the *resilient*
/// driver, with an optional fault plan installed after the solo
/// baseline. Returns the raw trace bytes, the testbed's accounting, and
/// the driver's outcome.
fn resilient_sweep(seed: u64, plan: Option<FaultPlan>) -> (String, TestbedStats, ResilientOutcome) {
    let cfg = cfg(seed);
    let mut testbed = private_testbed(&cfg);
    let buf = SharedBuf::new();
    let tracer = Tracer::with_sink(JsonlSink::new(buf.clone()));
    testbed.sim_mut().set_tracer(tracer.clone());
    let mut source = AppSource::new(&mut testbed, "M.zeus", 8, 1).expect("solo runs");
    source.set_fault_plan(plan);
    let outcome = profile_resilient(
        &mut source,
        ProfilingAlgorithm::BinaryOptimized,
        &ProfilerConfig::default(),
        &RetryPolicy::default(),
        &tracer,
    )
    .expect("profiles");
    let stats = source.testbed_stats();
    tracer.flush();
    (buf.text(), stats, outcome)
}

/// The same sweep through the plain (pre-PR) driver, no fault plan.
fn plain_sweep(seed: u64) -> (String, TestbedStats, ProfileResult) {
    let cfg = cfg(seed);
    let mut testbed = private_testbed(&cfg);
    let buf = SharedBuf::new();
    let tracer = Tracer::with_sink(JsonlSink::new(buf.clone()));
    testbed.sim_mut().set_tracer(tracer.clone());
    let mut source = AppSource::new(&mut testbed, "M.zeus", 8, 1).expect("solo runs");
    let result = profile_traced(
        &mut source,
        ProfilingAlgorithm::BinaryOptimized,
        &ProfilerConfig::default(),
        &tracer,
    )
    .expect("profiles");
    let stats = source.testbed_stats();
    tracer.flush();
    (buf.text(), stats, result)
}

#[test]
fn faults_disabled_is_byte_identical_to_the_no_injector_path() {
    let (plain_trace, plain_stats, plain_result) = plain_sweep(11);
    // No plan at all: the resilient wrapper must be invisible.
    let (no_plan_trace, no_plan_stats, no_plan) = resilient_sweep(11, None);
    assert_eq!(
        no_plan_trace, plain_trace,
        "resilient driver perturbed the trace"
    );
    assert_eq!(no_plan_stats, plain_stats);
    assert_eq!(no_plan.result.matrix, plain_result.matrix);
    assert_eq!(no_plan.result.measured, plain_result.measured);
    assert_eq!(no_plan.stats.retries, 0);
    assert_eq!(no_plan.stats.defaulted_settings, 0);
    // An installed-but-inactive plan: also invisible.
    let inactive = FaultPlan::uniform(0.0);
    assert!(!inactive.is_active());
    let (inactive_trace, inactive_stats, inactive_outcome) = resilient_sweep(11, Some(inactive));
    assert_eq!(
        inactive_trace, plain_trace,
        "inactive plan perturbed the trace"
    );
    assert_eq!(inactive_stats, plain_stats);
    assert_eq!(inactive_outcome.result.matrix, plain_result.matrix);
}

#[test]
fn same_seed_faulty_runs_write_byte_identical_traces() {
    let plan = FaultPlan::uniform(0.25);
    let (trace_a, stats_a, outcome_a) = resilient_sweep(7, Some(plan.clone()));
    let (trace_b, stats_b, outcome_b) = resilient_sweep(7, Some(plan));
    assert!(!trace_a.is_empty());
    assert_eq!(trace_a, trace_b, "same-seed faulty traces diverged");
    assert_eq!(stats_a, stats_b);
    assert_eq!(outcome_a.result.matrix, outcome_b.result.matrix);
    assert_eq!(outcome_a.stats, outcome_b.stats);
    // The identical traces must actually contain the fault machinery:
    // injections from the testbed and retries from the driver.
    assert!(
        trace_a.contains("\"fault\""),
        "no injected-fault events in the trace"
    );
    assert!(
        trace_a.contains("\"probe_retry\""),
        "no retry events in the trace"
    );
    assert!(outcome_a.stats.retries > 0, "the plan never fired");
}

#[test]
fn ten_percent_probe_failures_still_yield_a_full_coverage_model() {
    // Faultless ground truth: the fully measured matrix.
    let cfg0 = cfg(31);
    let mut testbed = private_testbed(&cfg0);
    let mut source = AppSource::new(&mut testbed, "M.zeus", 8, 1).expect("solo runs");
    let truth = profile_full(&mut source).expect("profiles").matrix;

    let (_, _, outcome) = resilient_sweep(31, Some(FaultPlan::probe_failures(0.10)));
    let (_, _, defaulted) = outcome.quality.counts();
    assert_eq!(defaulted, 0, "retry budget failed to cover every setting");
    assert_eq!(outcome.quality.defaulted_fraction(), 0.0);
    assert!(outcome.stats.retries > 0, "10% failures never fired");
    // Lost probes cost retries, not fidelity: the model still validates
    // against the faultless full profile.
    let err = outcome
        .result
        .matrix
        .mean_abs_error_pct(&truth)
        .expect("same shape");
    assert!(err < 5.0, "model error {err:.2}% too high under probe loss");
}
