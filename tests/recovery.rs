//! End-to-end acceptance for the self-healing runtime (`icm-manager`):
//! supervision is part of the determinism contract, not an exception
//! to it.
//!
//! * With faults *disabled*, a managed run is byte-identical to the
//!   unmanaged path — same trace, same accounting, same outcome
//!   numbers. The supervisor is invisible until something goes wrong.
//! * With a scripted crash schedule, two same-seed managed runs replay
//!   byte-identical action logs and traces.
//! * When a host dies mid-run, the managed fleet ends with every
//!   surviving application inside its QoS bound while the unmanaged
//!   baseline does not.
//! * When no feasible placement exists, the manager sheds the
//!   lowest-priority application through a typed outcome instead of
//!   looping or panicking.

use icm_core::model::ModelBuilder;
use icm_core::{DriftConfig, OnlineModel};
use icm_manager::{
    run_managed, run_unmanaged, ActionKind, DetectionKind, Fleet, ManagedApp, ManagerConfig,
    ManagerOutcome,
};
use icm_obs::{JsonlSink, SharedBuf, Tracer};
use icm_placement::QosConfig;
use icm_simcluster::{CrashWindow, FaultPlan};
use icm_workloads::{Catalog, SimTestbedAdapter, TestbedBuilder};

const SPAN: usize = 4;

fn testbed(seed: u64) -> SimTestbedAdapter {
    TestbedBuilder::new(&Catalog::paper()).seed(seed).build()
}

fn managed_apps(tb: &mut SimTestbedAdapter, names: &[(&str, u32)]) -> Vec<ManagedApp> {
    names
        .iter()
        .map(|&(name, priority)| {
            let model = ModelBuilder::new(name)
                .hosts(SPAN)
                .policy_samples(6)
                .solo_repeats(1)
                .score_repeats(1)
                .seed(0xFEED)
                .build(tb)
                .expect("model builds");
            ManagedApp::new(name, priority, OnlineModel::new(model))
        })
        .collect()
}

fn lenient(ticks: u64) -> ManagerConfig {
    ManagerConfig {
        ticks,
        initial_iterations: 600,
        reanneal_iterations: 250,
        qos: QosConfig {
            qos_fraction: 0.5,
            ..QosConfig::default()
        },
        drift: DriftConfig {
            threshold: 0.5,
            ..DriftConfig::default()
        },
        ..ManagerConfig::default()
    }
}

/// One traced supervised (or baseline) run over a fresh fleet, with an
/// optional fault plan installed after the models are profiled so the
/// profiling phase stays clean. Returns the trace bytes and the
/// outcome.
fn traced_run(managed: bool, plan: Option<FaultPlan>) -> (String, ManagerOutcome) {
    let mut tb = testbed(2016);
    let mut fleet = Fleet::new(
        8,
        2,
        SPAN,
        managed_apps(&mut tb, &[("M.milc", 2), ("H.KM", 1)]),
    )
    .expect("fleet packs");
    tb.sim_mut().set_fault_plan(plan);
    let buf = SharedBuf::new();
    let tracer = Tracer::with_sink(JsonlSink::new(buf.clone()));
    tb.sim_mut().set_tracer(tracer.clone());
    let config = lenient(6);
    let outcome = if managed {
        run_managed(tb.sim_mut(), &mut fleet, &config, &tracer).expect("managed run")
    } else {
        run_unmanaged(tb.sim_mut(), &mut fleet, &config, &tracer).expect("unmanaged run")
    };
    tracer.flush();
    (buf.text(), outcome)
}

/// The crash schedule used by the failure tests: a permanent outage on
/// a host the first application occupies, two ticks into the run.
/// Discovered on clones — identical seeds make the probe's placement
/// the real run's placement.
fn crash_plan() -> FaultPlan {
    let mut tb = testbed(2016);
    let mut fleet = Fleet::new(
        8,
        2,
        SPAN,
        managed_apps(&mut tb, &[("M.milc", 2), ("H.KM", 1)]),
    )
    .expect("fleet packs");
    let from_run = tb.sim().peek_run() + 2;
    let probe = run_managed(tb.sim_mut(), &mut fleet, &lenient(1), &Tracer::disabled())
        .expect("discovery run");
    FaultPlan {
        crash_windows: vec![CrashWindow {
            host: probe.finals[0].hosts[0] as usize,
            from_run,
            until_run: u64::MAX,
        }],
        ..FaultPlan::default()
    }
}

#[test]
fn faults_disabled_managed_run_is_byte_identical_to_the_unmanaged_path() {
    let (managed_trace, managed) = traced_run(true, None);
    let (unmanaged_trace, unmanaged) = traced_run(false, None);
    assert!(!managed_trace.is_empty());
    assert_eq!(
        managed_trace, unmanaged_trace,
        "an idle supervisor perturbed the trace"
    );
    assert!(
        !managed_trace.contains("manager_"),
        "quiet ticks must stay silent"
    );
    assert!(managed.detections.is_empty() && managed.actions.is_empty());
    assert_eq!(managed.sim_seconds, unmanaged.sim_seconds);
    assert_eq!(managed.violation_seconds, unmanaged.violation_seconds);
    // An installed-but-empty plan is also invisible.
    let inactive = FaultPlan::uniform(0.0);
    assert!(!inactive.is_active());
    let (inactive_trace, _) = traced_run(true, Some(inactive));
    assert_eq!(inactive_trace, managed_trace, "inactive plan perturbed it");
}

#[test]
fn same_seed_crash_runs_replay_byte_identical_action_logs_and_traces() {
    let plan = crash_plan();
    let (trace_a, a) = traced_run(true, Some(plan.clone()));
    let (trace_b, b) = traced_run(true, Some(plan));
    assert!(!a.actions.is_empty(), "the crash schedule never fired");
    assert_eq!(a.action_log(), b.action_log(), "action logs diverged");
    assert_eq!(trace_a, trace_b, "same-seed managed traces diverged");
    assert_eq!(a.sim_seconds, b.sim_seconds);
    assert_eq!(a.violation_seconds, b.violation_seconds);
    // The identical traces actually contain the supervision machinery.
    for needle in [
        "manager_detection",
        "manager_action",
        "checkpoint",
        "resume",
    ] {
        assert!(
            trace_a.contains(needle),
            "no `{needle}` events in the trace"
        );
    }
}

#[test]
fn a_mid_run_crash_is_survived_managed_but_not_unmanaged() {
    let plan = crash_plan();
    let (_, managed) = traced_run(true, Some(plan.clone()));
    let (_, unmanaged) = traced_run(false, Some(plan));

    assert!(managed
        .detections
        .iter()
        .any(|d| d.kind == DetectionKind::HostDown));
    assert!(managed.action_count(ActionKind::Migrate) >= 1);
    assert!(managed.shed.is_empty(), "capacity sufficed");
    assert!(
        managed.finals.iter().all(|f| f.meets_bound),
        "every surviving app must end inside its QoS bound: {:?}",
        managed.finals
    );
    assert!(
        unmanaged.finals.iter().any(|f| !f.meets_bound),
        "the unmanaged baseline must be hurt by the outage"
    );
    assert!(
        managed.violation_seconds < unmanaged.violation_seconds,
        "managed {} vs unmanaged {}",
        managed.violation_seconds,
        unmanaged.violation_seconds
    );
}

#[test]
fn an_infeasible_outage_degrades_gracefully_through_a_typed_shed() {
    // One slot per host: two span-4 applications fill the cluster, so a
    // permanent outage leaves no feasible placement.
    let mut tb = testbed(2016);
    let mut fleet = Fleet::new(
        8,
        1,
        SPAN,
        managed_apps(&mut tb, &[("M.milc", 2), ("H.KM", 1)]),
    )
    .expect("fleet packs");
    let plan = FaultPlan {
        crash_windows: vec![CrashWindow {
            host: 0,
            from_run: tb.sim().peek_run(),
            until_run: u64::MAX,
        }],
        ..FaultPlan::default()
    };
    tb.sim_mut().set_fault_plan(Some(plan));

    let outcome = run_managed(tb.sim_mut(), &mut fleet, &lenient(4), &Tracer::disabled())
        .expect("the manager must degrade, not error");

    assert_eq!(
        outcome.shed,
        vec!["H.KM".to_owned()],
        "lowest priority sheds"
    );
    assert_eq!(
        outcome.action_count(ActionKind::Shed),
        1,
        "exactly one shed"
    );
    let shed = outcome.finals.iter().find(|f| f.app == "H.KM").unwrap();
    assert!(shed.shed && shed.hosts.is_empty());
    let survivor = outcome.finals.iter().find(|f| f.app == "M.milc").unwrap();
    assert!(!survivor.shed && survivor.meets_bound, "{survivor:?}");
    assert!(
        !survivor.hosts.contains(&0),
        "survivor avoids the dead host"
    );
}
