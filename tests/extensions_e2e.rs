//! End-to-end tests of the extension features working together: model
//! store → placement, synthetic workloads → profiling, online refinement
//! on live co-runs, multi-tenant hosts against the simulator.

use icm::core::model::ModelBuilder;
use icm::core::online::OnlineModel;
use icm::core::{combine_scores, measure_bubble_score, ModelStore};
use icm::placement::{anneal_unconstrained, AcceptRule, AnnealConfig, Estimator, PlacementProblem};
use icm::simcluster::{Deployment, Placement};
use icm::workloads::{Catalog, PropagationClass, SyntheticWorkload, TestbedBuilder};

#[test]
fn stored_fleet_drives_placement_after_reload() {
    let mut testbed = TestbedBuilder::new(&Catalog::paper()).seed(61).build();
    let apps = ["M.milc", "C.libq", "H.KM", "N.cg"];
    let mut store = ModelStore::new();
    for app in apps {
        store.insert(
            ModelBuilder::new(app)
                .hosts(4)
                .policy_samples(8)
                .build(&mut testbed)
                .expect("builds"),
        );
    }
    // Round-trip through bytes, as a scheduler restart would.
    let mut buffer = Vec::new();
    store.save_to(&mut buffer).expect("saves");
    let store = ModelStore::load_from(buffer.as_slice()).expect("loads");

    let problem = PlacementProblem::paper_default(apps.iter().map(|a| (*a).to_owned()).collect())
        .expect("valid");
    let estimator = Estimator::from_map(&problem, store.models()).expect("valid");
    // Metropolis acceptance: strict hill climbing can stall with the
    // aggressor still on the sensitive app's hosts (see
    // `icm_placement::annealing`), which this test asserts against.
    let result = anneal_unconstrained(
        &problem,
        |s| Ok(estimator.estimate(s)?.weighted_total),
        &AnnealConfig {
            iterations: 800,
            accept: AcceptRule::Metropolis {
                initial_temperature: 0.5,
                cooling: 0.999,
            },
            ..AnnealConfig::default()
        },
    )
    .expect("search runs");
    assert!(result.cost > 0.0);
    // The reloaded models must drive the search to a placement clearly
    // better than chance. (Which apps pair up in the optimum depends on
    // the profiled curves — for these models the best pattern co-locates
    // the two tolerant heavyweights — so the robust end-to-end assertion
    // is the cost, not a specific pairing.)
    let mut rng = icm::rng::Rng::from_seed(0xE2E_0001);
    let random_mean = (0..20)
        .map(|_| {
            let s = icm::placement::PlacementState::random(&problem, &mut rng);
            estimator.estimate(&s).expect("estimates").weighted_total
        })
        .sum::<f64>()
        / 20.0;
    assert!(
        result.cost < random_mean,
        "search ({}) must beat average random placement ({random_mean})",
        result.cost
    );
}

#[test]
fn synthetic_workload_profiles_like_a_catalog_app() {
    let mut testbed = TestbedBuilder::new(&Catalog::paper()).seed(67).build();
    let synthetic = SyntheticWorkload::new("tenant-x")
        .intensity(0.5)
        .sensitivity(0.7)
        .propagation(PropagationClass::High)
        .build()
        .expect("builds");
    testbed.sim_mut().register_app(synthetic.app().clone());
    let model = ModelBuilder::new("tenant-x")
        .policy_samples(10)
        .build(&mut testbed)
        .expect("builds");
    assert!(
        model.bubble_score() > 1.0,
        "intensity 0.5 generates pressure"
    );
    // High-propagation: one pressured node causes most of the damage.
    let t = model.propagation();
    let frac = (t.at(8, 1) - 1.0) / (t.at(8, 8) - 1.0);
    assert!(
        frac > 0.55,
        "synthetic high-propagation phenotype, got {frac:.2}"
    );
}

#[test]
fn online_model_tracks_live_drift() {
    let mut testbed = TestbedBuilder::new(&Catalog::paper()).seed(73).build();
    let model = ModelBuilder::new("M.Gems")
        .policy_samples(10)
        .build(&mut testbed)
        .expect("builds");
    let score = measure_bubble_score(&mut testbed, "S.WC", 3).expect("scores");
    let pressures = vec![score; model.hosts()];
    let mut online = OnlineModel::new(model.clone());
    let mut static_err = 0.0;
    let mut online_err = 0.0;
    let runs = 10;
    for _ in 0..runs {
        let (seconds, _) = testbed.sim_mut().run_pair("M.Gems", "S.WC").expect("runs");
        let actual = seconds / model.solo_seconds();
        // Evaluate *before* observing, so the online model only ever uses
        // past information.
        static_err += ((model.predict(&pressures) - actual) / actual).abs();
        online_err +=
            ((online.predict_for("S.WC", &pressures).expect("valid") - actual) / actual).abs();
        online
            .observe_for("S.WC", &pressures, actual)
            .expect("valid");
    }
    assert!(
        online_err < static_err,
        "online ({:.3}) must beat static ({:.3}) even counting warm-up",
        online_err / runs as f64,
        static_err / runs as f64
    );
}

#[test]
fn three_tenant_host_prediction_verified_against_simulator() {
    let mut testbed = TestbedBuilder::new(&Catalog::paper()).seed(79).build();
    let target = "N.cg";
    let model = ModelBuilder::new(target)
        .policy_samples(10)
        .build(&mut testbed)
        .expect("builds");
    let score_a = measure_bubble_score(&mut testbed, "M.zeus", 3).expect("scores");
    let score_b = measure_bubble_score(&mut testbed, "H.KM", 3).expect("scores");
    let combined = combine_scores(&[score_a, score_b], 0.0);
    let predicted = model.predict(&vec![combined; model.hosts()]);

    let hosts: Vec<usize> = (0..8).collect();
    let mut total = 0.0;
    for _ in 0..3 {
        let runs = testbed
            .sim_mut()
            .run_deployment(&Deployment::of_placements(vec![
                Placement::new(target, hosts.clone()),
                Placement::new("M.zeus", hosts.clone()),
                Placement::new("H.KM", hosts.clone()),
            ]))
            .expect("runs");
        total += runs[0].seconds;
    }
    let actual = total / 3.0 / model.solo_seconds();
    let err = ((predicted - actual) / actual).abs();
    assert!(
        err < 0.12,
        "combined-score prediction {predicted:.3} vs measured {actual:.3} ({:.0}% off)",
        err * 100.0
    );
}
