//! # icm — Interference management for distributed parallel applications
//!
//! Umbrella crate re-exporting the full reproduction of *"Interference
//! Management for Distributed Parallel Applications in Consolidated
//! Clusters"* (Han, Jeon, Choi, Huh — ASPLOS 2016).
//!
//! The workspace is organized bottom-up:
//!
//! * [`rng`] — vendored deterministic PRNG (xoshiro256++), the only
//!   randomness source in the workspace.
//! * [`json`] — vendored JSON value type, serializer, and parser backing
//!   all persistence.
//! * [`simnode`] — single-node LLC/memory-bandwidth contention substrate.
//! * [`simcluster`] — consolidated virtual-cluster testbed simulator for
//!   distributed parallel applications.
//! * [`workloads`] — catalog of the paper's 18 benchmark applications as
//!   synthetic workload descriptors.
//! * [`core`] — the paper's contribution: the interference propagation +
//!   heterogeneity model and the profiling algorithms that build it.
//! * [`placement`] — the two case studies: QoS-aware and
//!   throughput-maximizing interference-aware VM placement.
//! * [`experiments`] — regeneration harness for every table and figure of
//!   the paper's evaluation.
//!
//! # Quickstart
//!
//! ```
//! use icm::workloads::{Catalog, TestbedBuilder};
//! use icm::core::profiling::ProfilingAlgorithm;
//! use icm::core::model::ModelBuilder;
//!
//! // A simulated 8-node cluster, the paper's private testbed.
//! let catalog = Catalog::paper();
//! let mut testbed = TestbedBuilder::new(&catalog).seed(7).build();
//!
//! // Profile one application and build its interference model.
//! let model = ModelBuilder::new("M.lmps")
//!     .algorithm(ProfilingAlgorithm::BinaryOptimized)
//!     .policy_samples(12)
//!     .build(&mut testbed)
//!     .expect("profiling succeeds on the simulated testbed");
//!
//! // Predict the normalized runtime under heterogeneous interference.
//! let slowdown = model.predict(&[3.0, 2.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0]);
//! assert!(slowdown >= 1.0);
//! ```

#![forbid(unsafe_code)]

pub use icm_core as core;
pub use icm_experiments as experiments;
pub use icm_json as json;
pub use icm_placement as placement;
pub use icm_rng as rng;
pub use icm_simcluster as simcluster;
pub use icm_simnode as simnode;
pub use icm_workloads as workloads;
