//! Profiling-budget study: compare the four profiling algorithms on a
//! real modeling task, then validate the cheap model end-to-end against
//! measured co-runs.
//!
//! Scenario: an operator wants interference models for an MPI solver and
//! a Spark job but can only afford a limited number of profiling runs.
//! How much accuracy does the binary-optimized algorithm give up versus
//! exhaustive measurement?
//!
//! ```text
//! cargo run --release --example profile_and_predict
//! ```

use icm::core::model::ModelBuilder;
use icm::core::{measure_bubble_score, ProfilingAlgorithm, ValidationReport};
use icm::workloads::{Catalog, TestbedBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = Catalog::paper();
    let mut testbed = TestbedBuilder::new(&catalog).seed(99).build();

    for app in ["M.lu", "S.PR"] {
        println!("=== {app} ===");
        // Build one model per profiling algorithm and compare cost.
        let mut models = Vec::new();
        for algorithm in [
            ProfilingAlgorithm::Full,
            ProfilingAlgorithm::BinaryBrute,
            ProfilingAlgorithm::BinaryOptimized,
            ProfilingAlgorithm::random30(),
        ] {
            let model = ModelBuilder::new(app)
                .algorithm(algorithm)
                .policy_samples(30)
                .seed(5)
                .build(&mut testbed)?;
            println!(
                "  {:<17} cost {:>5.1}%  policy {:<11} score {:.2}",
                algorithm.name(),
                model.profiling_cost() * 100.0,
                model.policy().name(),
                model.bubble_score(),
            );
            models.push((algorithm.name(), model));
        }

        // Validate the cheapest model against measured co-runs with three
        // very different co-runners.
        let (_, cheap) = &models[2];
        let mut predicted = Vec::new();
        let mut actual = Vec::new();
        for corunner in ["C.libq", "M.zeus", "H.KM"] {
            let score = measure_bubble_score(&mut testbed, corunner, 3)?;
            let (seconds, _) = testbed.sim_mut().run_pair(app, corunner)?;
            predicted.push(cheap.predict(&vec![score; cheap.hosts()]));
            actual.push(seconds / cheap.solo_seconds());
        }
        let report = ValidationReport::from_slices(&predicted, &actual);
        println!(
            "  binary-optimized end-to-end error vs live co-runs: mean {:.1}% (max {:.1}%)",
            report.errors.mean, report.errors.max
        );
        println!();
    }
    Ok(())
}
