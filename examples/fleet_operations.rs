//! Fleet operations: model *your own* application with the synthetic
//! builder, profile it, persist the fleet, and keep the model honest in
//! production with online refinement.
//!
//! ```text
//! cargo run --release --example fleet_operations
//! ```

use icm::core::model::ModelBuilder;
use icm::core::online::OnlineModel;
use icm::core::{measure_bubble_score, ModelStore};
use icm::workloads::{Catalog, PropagationClass, SyntheticWorkload, TestbedBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = Catalog::paper();
    let mut testbed = TestbedBuilder::new(&catalog).seed(71).build();

    // 1. Describe an in-house application with high-level knobs instead
    //    of raw cache numbers: a fairly aggressive, very sensitive,
    //    barrier-coupled solver.
    let inhouse = SyntheticWorkload::new("acme-solver")
        .intensity(0.6)
        .sensitivity(0.9)
        .propagation(PropagationClass::High)
        .base_runtime_s(400.0)
        .build()?;
    testbed.sim_mut().register_app(inhouse.app().clone());

    // 2. Profile it alongside a couple of catalog tenants and persist
    //    the fleet.
    let mut store = ModelStore::new();
    for app in ["acme-solver", "C.libq", "H.KM"] {
        let model = ModelBuilder::new(app)
            .policy_samples(30)
            .seed(4)
            .build(&mut testbed)?;
        println!(
            "profiled {:<12} score {:>4.2}  policy {:<11} cost {:>5.1}%",
            app,
            model.bubble_score(),
            model.policy().name(),
            model.profiling_cost() * 100.0
        );
        store.insert(model);
    }
    let path = std::env::temp_dir().join("icm-fleet.json");
    store.save_to_path(&path)?;
    println!("\nfleet persisted to {}", path.display());

    // 3. Reload (as a scheduler process would) and predict.
    let store = ModelStore::load_from_path(&path)?;
    let model = store.get("acme-solver").expect("profiled above").clone();
    let libq_score = measure_bubble_score(&mut testbed, "C.libq", 3)?;
    let pressures = vec![libq_score; model.hosts()];
    println!(
        "\nstatic prediction with C.libq everywhere: {:.3}× solo",
        model.predict(&pressures)
    );

    // 4. In production, feed observed runs back into an online wrapper;
    //    the model tracks reality even if the environment drifts.
    let mut online = OnlineModel::new(model.clone());
    for run in 1..=5 {
        let (seconds, _) = testbed.sim_mut().run_pair("acme-solver", "C.libq")?;
        let actual = seconds / model.solo_seconds();
        online.observe_for("C.libq", &pressures, actual)?;
        println!(
            "run {run}: observed {actual:.3}×, corrected prediction now {:.3}×",
            online.predict_for("C.libq", &pressures)?
        );
    }
    let _ = std::fs::remove_file(&path);
    Ok(())
}
