//! Porting the methodology to a bigger, noisier cloud: re-profile a
//! workload on the 32-instance EC2-style cluster (unobserved background
//! tenants included) and compare model quality against the private
//! cluster — a miniature §6.
//!
//! ```text
//! cargo run --release --example ec2_study
//! ```

use icm::core::model::ModelBuilder;
use icm::core::{measure_bubble_score, Testbed};
use icm::simcluster::ClusterSpec;
use icm::workloads::{Catalog, SimTestbedAdapter, TestbedBuilder};

fn validate(
    testbed: &mut SimTestbedAdapter,
    app: &str,
    corunner: &str,
    label: &str,
) -> Result<(), Box<dyn std::error::Error>> {
    let model = ModelBuilder::new(app)
        .policy_samples(30)
        .seed(2)
        .build(testbed)?;
    let score = measure_bubble_score(testbed, corunner, 3)?;
    let mut err_total = 0.0;
    let repeats = 5;
    for _ in 0..repeats {
        let (seconds, _) = testbed.sim_mut().run_pair(app, corunner)?;
        let actual = seconds / model.solo_seconds();
        let predicted = model.predict(&vec![score; model.hosts()]);
        err_total += ((predicted - actual) / actual).abs() * 100.0;
    }
    println!(
        "{label:<16} {app} vs {corunner}: policy {:<11} score({corunner}) {score:.2}  mean error {:.1}%",
        model.policy().name(),
        err_total / f64::from(repeats)
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = Catalog::paper();

    // Private 8-host cluster: controlled, quiet.
    let mut private = TestbedBuilder::new(&catalog).seed(5).build();
    println!(
        "private cluster : {} hosts, background tenants: none",
        private.cluster_hosts()
    );
    validate(&mut private, "M.milc", "M.zeus", "private")?;

    // EC2-style 32-instance cluster: more nodes, more noise, and other
    // customers' VMs the profiler cannot observe.
    let mut ec2 = TestbedBuilder::new(&catalog)
        .cluster(ClusterSpec::ec2_32())
        .seed(5)
        .build();
    let background = ec2.sim().cluster().background().expect("EC2 has tenants");
    println!(
        "EC2-style cloud : {} hosts, background tenant probability {:.0}%",
        ec2.cluster_hosts(),
        background.probability * 100.0
    );
    validate(&mut ec2, "M.milc", "M.zeus", "ec2")?;

    println!();
    println!(
        "Expect the EC2 errors to be larger — the model parameters must be\n\
         re-measured per environment (§6), and unobserved co-tenants add\n\
         variance no static profile can capture."
    );
    Ok(())
}
