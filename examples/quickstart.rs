//! Quickstart: build an interference model for one distributed
//! application and predict its slowdown under a hypothetical placement.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use icm::core::model::ModelBuilder;
use icm::core::ProfilingAlgorithm;
use icm::workloads::{Catalog, TestbedBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A consolidated cluster. On real hardware this would be your
    //    cluster behind the `icm_core::Testbed` trait; here it is the
    //    paper-calibrated simulator (8 hosts, dual Xeon E5-2650 each).
    let catalog = Catalog::paper();
    let mut testbed = TestbedBuilder::new(&catalog).seed(42).build();

    // 2. Profile `M.milc` with the cheap binary-optimized algorithm:
    //    bubble co-runs measure its sensitivity curves, propagation
    //    matrix, bubble score and the best heterogeneity policy.
    let model = ModelBuilder::new("M.milc")
        .algorithm(ProfilingAlgorithm::BinaryOptimized)
        .policy_samples(30)
        .seed(7)
        .build(&mut testbed)?;

    println!("application      : {}", model.app());
    println!("solo runtime     : {:.1} s", model.solo_seconds());
    println!("bubble score     : {:.2}", model.bubble_score());
    println!("mapping policy   : {}", model.policy());
    println!(
        "profiling cost   : {:.1}% of all interference settings",
        model.profiling_cost() * 100.0
    );

    // 3. Predict: suppose a scheduler wants to co-locate aggressive
    //    workloads (pressure ≈ 5) on two of milc's eight hosts and a mild
    //    one (pressure ≈ 1.5) on a third.
    let pressures = [5.0, 5.0, 1.5, 0.0, 0.0, 0.0, 0.0, 0.0];
    let hom = model.convert(&pressures);
    let normalized = model.predict(&pressures);
    println!();
    println!("placement pressures  : {pressures:?}");
    println!(
        "policy conversion    : {:.1} pressure on {:.0} node(s)",
        hom.pressure, hom.nodes
    );
    println!("predicted slowdown   : {normalized:.3}×");
    println!(
        "predicted runtime    : {:.1} s",
        model.predict_seconds(&pressures)?
    );
    Ok(())
}
