//! Throughput-oriented scheduling: given a mix of four tenants, compare
//! the interference-aware placement against random and worst placements
//! by actually running all of them — a miniature Fig. 11.
//!
//! ```text
//! cargo run --release --example cluster_scheduler
//! ```

use std::collections::BTreeMap;

use icm::core::model::ModelBuilder;
use icm::core::InterferenceModel;
use icm::placement::{
    average_speedup, find_placements, AnnealConfig, Estimator, PlacementProblem, PlacementState,
    ThroughputConfig,
};
use icm::simcluster::{Deployment, Placement};
use icm::workloads::{Catalog, SimTestbedAdapter, TestbedBuilder};

fn measure(
    testbed: &mut SimTestbedAdapter,
    problem: &PlacementProblem,
    models: &BTreeMap<String, InterferenceModel>,
    state: &PlacementState,
) -> Result<Vec<f64>, Box<dyn std::error::Error>> {
    let placements: Vec<Placement> = problem
        .workloads()
        .iter()
        .enumerate()
        .map(|(i, app)| Placement::new(app.clone(), state.hosts_of(problem, i)))
        .collect();
    let runs = testbed
        .sim_mut()
        .run_deployment(&Deployment::of_placements(placements))?;
    Ok(runs
        .iter()
        .map(|r| r.seconds / models[&r.app].solo_seconds())
        .collect())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = Catalog::paper();
    let mut testbed = TestbedBuilder::new(&catalog).seed(23).build();

    // Table 5's HW1 mix: two NPB solvers, K-means and lammps.
    let workloads = ["N.mg", "N.cg", "H.KM", "M.lmps"];
    let mut models = BTreeMap::new();
    for app in workloads {
        models.insert(
            app.to_owned(),
            ModelBuilder::new(app)
                .hosts(4)
                .policy_samples(30)
                .seed(11)
                .build(&mut testbed)?,
        );
    }

    let problem =
        PlacementProblem::paper_default(workloads.iter().map(|w| (*w).to_owned()).collect())?;
    let estimator = Estimator::from_map(&problem, &models)?;
    let placements = find_placements(
        &estimator,
        &ThroughputConfig {
            anneal: AnnealConfig {
                iterations: 4000,
                ..AnnealConfig::default()
            },
            random_samples: 5,
        },
    )?;

    let worst_times = measure(&mut testbed, &problem, &models, &placements.worst)?;
    let best_times = measure(&mut testbed, &problem, &models, &placements.best)?;
    let mut random_speedup = 0.0;
    for random in &placements.randoms {
        let times = measure(&mut testbed, &problem, &models, random)?;
        random_speedup += average_speedup(&times, &worst_times) / placements.randoms.len() as f64;
    }

    println!("mix: {workloads:?}");
    println!();
    println!("chosen (best) placement:");
    for (i, app) in workloads.iter().enumerate() {
        let hosts = placements.best.hosts_of(&problem, i);
        println!("  {app:<7} → hosts {hosts:?}");
    }
    println!();
    println!("measured normalized runtimes (best placement):");
    for (app, t) in workloads.iter().zip(&best_times) {
        println!("  {app:<7} {t:.3}×");
    }
    println!();
    println!(
        "average speedup vs worst placement: best {:.3}, random {:.3}, worst 1.000",
        average_speedup(&best_times, &worst_times),
        random_speedup
    );
    Ok(())
}
