//! QoS-guaranteed consolidation: place a mission-critical MPI job with
//! three batch/analytics co-tenants so the critical job keeps ≥ 90% of
//! its solo performance, then verify the guarantee by actually running
//! the placement.
//!
//! ```text
//! cargo run --release --example qos_placement
//! ```

use std::collections::BTreeMap;

use icm::core::model::ModelBuilder;
use icm::core::InterferenceModel;
use icm::placement::{place_qos, AnnealConfig, Estimator, PlacementProblem, QosConfig};
use icm::simcluster::{Deployment, Placement};
use icm::workloads::{Catalog, TestbedBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = Catalog::paper();
    let mut testbed = TestbedBuilder::new(&catalog).seed(17).build();

    // The tenants: lammps is mission-critical; libquantum is a cache
    // monster; K-means and CG fill the cluster.
    let workloads = ["M.lmps", "C.libq", "H.KM", "N.cg"];
    let target = "M.lmps";

    // Profile each tenant at its deployment span (4 of 8 hosts).
    let mut models: BTreeMap<String, InterferenceModel> = BTreeMap::new();
    for app in workloads {
        let model = ModelBuilder::new(app)
            .hosts(4)
            .policy_samples(30)
            .seed(3)
            .build(&mut testbed)?;
        println!(
            "profiled {:<7} score {:>4.1}  policy {:<11} solo {:>6.1}s",
            app,
            model.bubble_score(),
            model.policy().name(),
            model.solo_seconds()
        );
        models.insert(app.to_owned(), model);
    }

    // Search for a placement that guarantees the target 90% of solo
    // performance and minimizes everyone's total runtime.
    let problem =
        PlacementProblem::paper_default(workloads.iter().map(|w| (*w).to_owned()).collect())?;
    let estimator = Estimator::from_map(&problem, &models)?;
    let outcome = place_qos(
        &estimator,
        0, // index of M.lmps
        &QosConfig {
            qos_fraction: 0.9,
            anneal: AnnealConfig {
                iterations: 4000,
                ..AnnealConfig::default()
            },
            ..QosConfig::default()
        },
    )?;
    println!();
    println!(
        "predicted {target} time : {:.3}× solo",
        outcome.predicted_target_time
    );
    println!("predicted satisfied    : {}", outcome.predicted_satisfied);
    for (i, app) in workloads.iter().enumerate() {
        println!(
            "  {:<7} on hosts {:?}",
            app,
            outcome.state.hosts_of(&problem, i)
        );
    }

    // Deploy the placement on the (simulated) cluster and check reality.
    let placements: Vec<Placement> = workloads
        .iter()
        .enumerate()
        .map(|(i, app)| Placement::new(*app, outcome.state.hosts_of(&problem, i)))
        .collect();
    let runs = testbed
        .sim_mut()
        .run_deployment(&Deployment::of_placements(placements))?;
    println!();
    for run in &runs {
        let solo = models[&run.app].solo_seconds();
        println!(
            "measured {:<7} {:>7.1}s = {:.3}× solo",
            run.app,
            run.seconds,
            run.seconds / solo
        );
    }
    let measured = runs[0].seconds / models[target].solo_seconds();
    println!();
    if measured <= 1.0 / 0.9 {
        println!("QoS guarantee held: {measured:.3}× ≤ 1.111×");
    } else {
        println!("QoS guarantee VIOLATED: {measured:.3}× > 1.111×");
    }
    Ok(())
}
