//! Vendored deterministic pseudo-random number generation.
//!
//! Every stochastic component of the ICM reproduction — profiling-order
//! shuffles, annealing move proposals, synthetic background-pressure
//! sampling, testbed noise — draws from this crate instead of an external
//! PRNG. The generator is a [xoshiro256++] stream seeded from a single
//! `u64` through [SplitMix64], both implemented in-tree so that the byte
//! stream behind every figure in the paper reproduction is a *frozen
//! contract*: it cannot drift when a third-party crate changes its
//! algorithm, word-consumption pattern, or range-sampling strategy
//! between versions.
//!
//! The stream contract is pinned by doc-tests on [`Rng::from_seed`] and
//! exercised by the workspace-level determinism suite
//! (`tests/determinism.rs`), which asserts byte-identical JSON output for
//! identical seeds.
//!
//! [xoshiro256++]: https://prng.di.unimi.it/
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c
//!
//! # Example
//!
//! ```
//! use icm_rng::{Rng, Shuffle};
//!
//! let mut rng = Rng::from_seed(7);
//! let die = rng.gen_range(1..=6u32);
//! assert!((1..=6).contains(&die));
//! let coin = rng.gen_bool(0.5);
//! let unit = rng.gen_f64();
//! assert!((0.0..1.0).contains(&unit));
//! let _ = coin;
//!
//! let mut items = vec![1, 2, 3, 4, 5];
//! items.shuffle(&mut rng);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Advances a SplitMix64 state and returns the next output.
///
/// Used only to expand the one-word seed into the four words of
/// xoshiro256++ state, exactly as Blackman & Vigna recommend.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed of an independent sub-stream from a base seed.
///
/// Stream `0` is the base seed itself, so code that grows from one
/// stream to `k` parallel streams keeps its original stream byte-exact
/// as stream 0. Higher stream indices are decorrelated with a SplitMix64
/// finalizer over `seed ⊕ mix(stream)` — the same mixer that expands
/// seeds into generator state, so sub-streams inherit its avalanche
/// properties.
///
/// Like [`Rng::from_seed`], the mapping is a frozen contract:
///
/// ```
/// assert_eq!(icm_rng::split_seed(42, 0), 42);
/// assert_eq!(icm_rng::split_seed(42, 1), 14216130040228855828);
/// assert_eq!(icm_rng::split_seed(42, 2), 14820483933399919426);
/// ```
pub fn split_seed(seed: u64, stream: u64) -> u64 {
    if stream == 0 {
        return seed;
    }
    let mut state = seed ^ stream.wrapping_mul(0xA076_1D64_78BD_642F);
    splitmix64(&mut state)
}

/// A deterministic xoshiro256++ generator.
///
/// Construct with [`Rng::from_seed`]; the same seed always yields the
/// same stream, on every platform, forever. The generator is `Clone`, so
/// a stream can be forked for what-if exploration without disturbing the
/// parent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator whose 256-bit state is expanded from `seed`
    /// with SplitMix64.
    ///
    /// The raw 64-bit output stream is a frozen contract. These are the
    /// first four words of the seed-42 stream; if this test ever fails,
    /// the reproduction's figures are no longer comparable across
    /// versions:
    ///
    /// ```
    /// let mut rng = icm_rng::Rng::from_seed(42);
    /// assert_eq!(rng.next_u64(), 15021278609987233951);
    /// assert_eq!(rng.next_u64(), 5881210131331364753);
    /// assert_eq!(rng.next_u64(), 18149643915985481100);
    /// assert_eq!(rng.next_u64(), 12933668939759105464);
    /// ```
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// Returns the next raw 64-bit word of the stream.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s = s;
        result
    }

    /// Uniform `f64` in `[0, 1)`, using the top 53 bits of one word.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo` or `hi` is not finite or `lo > hi`.
    pub fn gen_f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "invalid f64 range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.gen_f64()
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        self.gen_f64() < p
    }

    /// Uniform integer below `n` (consumes exactly one stream word).
    ///
    /// Uses the widening-multiply range reduction; the bias for the
    /// `n ≪ 2^64` values used in this workspace is far below measurement
    /// noise, and fixed word consumption keeps replays aligned.
    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform draw from an integer range, e.g. `rng.gen_range(0..10)`
    /// or `rng.gen_range(1..=6u32)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// The raw 256-bit generator state, for whole-world savestates.
    ///
    /// Together with [`Rng::from_state`] this makes a generator
    /// perfectly resumable: a restored generator continues the exact
    /// word stream the saved one would have produced. The words are
    /// full-range `u64`s — serializers that go through JSON numbers
    /// (exact only up to 2⁵³) must encode them as strings.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state captured by [`Rng::state`].
    ///
    /// The all-zero state is a xoshiro256++ fixed point (it only ever
    /// emits zeros) and can never be produced by [`Rng::from_seed`] or
    /// by advancing a seeded generator; it is remapped to the seed-0
    /// state so a corrupted savestate cannot smuggle in a degenerate
    /// stream.
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0; 4] {
            return Self::from_seed(0);
        }
        Self { s }
    }
}

/// An integer range that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The integer type produced.
    type Output;
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[allow(irrefutable_let_patterns)]
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as u64) - (start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + rng.below(span + 1) as $t
            }
        }
    )+};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// In-place Fisher–Yates shuffling driven by a [`Rng`].
pub trait Shuffle {
    /// Uniformly permutes `self`.
    fn shuffle(&mut self, rng: &mut Rng);
}

impl<T> Shuffle for [T] {
    fn shuffle(&mut self, rng: &mut Rng) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::from_seed(123);
        let mut b = Rng::from_seed(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::from_seed(1);
        let mut b = Rng::from_seed(2);
        assert_ne!((a.next_u64(), a.next_u64()), (b.next_u64(), b.next_u64()));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::from_seed(9);
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_roughly_half() {
        let mut rng = Rng::from_seed(4);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_f64()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = Rng::from_seed(5);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            let v = rng.gen_range(1..=6u32);
            assert!((1..=6).contains(&v));
            seen[(v - 1) as usize] = true;
            let w = rng.gen_range(0..10usize);
            assert!(w < 10);
        }
        assert!(seen.iter().all(|&s| s), "six-sided die missed a face");
    }

    #[test]
    fn singleton_range_is_constant() {
        let mut rng = Rng::from_seed(6);
        assert_eq!(rng.gen_range(3..4usize), 3);
        assert_eq!(rng.gen_range(7..=7u32), 7);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Rng::from_seed(6);
        let _ = rng.gen_range(3..3usize);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Rng::from_seed(8);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b = a.clone();
        a.shuffle(&mut Rng::from_seed(11));
        b.shuffle(&mut Rng::from_seed(11));
        assert_eq!(a, b, "same seed must give the same permutation");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(a, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn split_streams_are_distinct_and_stream_zero_is_the_base() {
        assert_eq!(split_seed(0xA11E, 0), 0xA11E);
        let mut seen = std::collections::BTreeSet::new();
        for stream in 0..64 {
            assert!(
                seen.insert(split_seed(0xA11E, stream)),
                "stream {stream} collided"
            );
        }
        // Adjacent base seeds do not alias adjacent streams.
        assert_ne!(split_seed(1, 1), split_seed(2, 0));
        assert_ne!(split_seed(1, 2), split_seed(2, 1));
    }

    #[test]
    fn forked_stream_is_independent() {
        let mut rng = Rng::from_seed(21);
        let _ = rng.next_u64();
        let mut fork = rng.clone();
        assert_eq!(rng.next_u64(), fork.next_u64());
    }

    #[test]
    fn gen_f64_range_spans() {
        let mut rng = Rng::from_seed(13);
        for _ in 0..1000 {
            let x = rng.gen_f64_range(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn saved_state_resumes_the_exact_stream() {
        let mut rng = Rng::from_seed(0xC0FFEE);
        for _ in 0..17 {
            let _ = rng.next_u64();
        }
        let saved = rng.state();
        let expect: Vec<u64> = (0..64).map(|_| rng.next_u64()).collect();
        let mut resumed = Rng::from_state(saved);
        let got: Vec<u64> = (0..64).map(|_| resumed.next_u64()).collect();
        assert_eq!(expect, got, "restored generator must continue the stream");
        // Round-trip again mid-stream to make sure state() is not lossy.
        assert_eq!(Rng::from_state(resumed.state()).next_u64(), rng.next_u64());
    }

    #[test]
    fn all_zero_state_is_remapped_to_a_live_generator() {
        let mut degenerate = Rng::from_state([0; 4]);
        assert_eq!(degenerate.next_u64(), Rng::from_seed(0).next_u64());
    }
}
