//! Property-style tests of the distributed-execution engine, driven by
//! seeded deterministic loops over `icm-rng` (vendored; no external
//! property-testing framework). Each test replays a fixed pseudo-random
//! case list, so a failure reproduces exactly and prints its case index.

use icm_rng::Rng;
use icm_simcluster::{execute, Noise, SyncPattern};

/// Cases per property; the old proptest default was 256.
const CASES: usize = 256;

fn random_pattern(rng: &mut Rng) -> SyncPattern {
    if rng.gen_bool(0.5) {
        SyncPattern::Collective {
            phases: rng.gen_range(1..64usize),
            coupling: rng.gen_f64_range(0.0, 1.0),
        }
    } else {
        SyncPattern::TaskQueue {
            tasks: rng.gen_range(1..128usize),
            stages: rng.gen_range(1..8usize),
        }
    }
}

fn random_slowdowns(rng: &mut Rng) -> Vec<f64> {
    let n = rng.gen_range(1..16usize);
    (0..n).map(|_| rng.gen_f64_range(1.0, 4.0)).collect()
}

#[test]
fn runtime_is_positive_and_finite() {
    let mut rng = Rng::from_seed(0x5C_0001);
    for case in 0..CASES {
        let pattern = random_pattern(&mut rng);
        let slowdowns = random_slowdowns(&mut rng);
        let seed = rng.next_u64();
        let run = rng.next_u64();
        let t = execute(pattern, &slowdowns, &Noise::new(seed), 0.02, run);
        assert!(t.is_finite(), "case {case}: non-finite runtime");
        assert!(t > 0.0, "case {case}: non-positive runtime {t}");
    }
}

#[test]
fn runtime_at_least_mean_slowdown_without_noise() {
    let mut rng = Rng::from_seed(0x5C_0002);
    for case in 0..CASES {
        let pattern = random_pattern(&mut rng);
        let slowdowns = random_slowdowns(&mut rng);
        // Any coupling scheme is ≥ the perfectly balanced lower bound
        // (mean slowdown) and ≤ the fully serialized upper bound (max),
        // modulo task-granularity remainder effects for TaskQueue.
        let t = execute(pattern, &slowdowns, &Noise::new(0), 0.0, 0);
        let mean = slowdowns.iter().sum::<f64>() / slowdowns.len() as f64;
        let max = slowdowns.iter().cloned().fold(0.0f64, f64::max);
        match pattern {
            SyncPattern::Collective { .. } => {
                assert!(t >= mean - 1e-9, "case {case}: t={t} below mean {mean}");
                assert!(t <= max + 1e-9, "case {case}: t={t} above max {max}");
            }
            SyncPattern::TaskQueue { .. } => {
                // Harmonic-mean work sharing can beat the arithmetic
                // mean; with very coarse tasks a single node may take the
                // whole stage, so the only universal upper bound is the
                // fully serialized one.
                let harmonic =
                    slowdowns.len() as f64 / slowdowns.iter().map(|s| 1.0 / s).sum::<f64>();
                assert!(
                    t >= harmonic - 1e-9,
                    "case {case}: t={t} below harmonic {harmonic}"
                );
                assert!(
                    t <= max * slowdowns.len() as f64 + 1e-9,
                    "case {case}: t={t} above the serialized bound"
                );
            }
        }
    }
}

#[test]
fn uniformly_slowing_all_nodes_scales_runtime() {
    let mut rng = Rng::from_seed(0x5C_0003);
    for case in 0..CASES {
        let pattern = random_pattern(&mut rng);
        let nodes = rng.gen_range(1..12usize);
        let factor = rng.gen_f64_range(1.0, 3.0);
        let noise = Noise::new(1);
        let base = execute(pattern, &vec![1.0; nodes], &noise, 0.0, 0);
        let slowed = execute(pattern, &vec![factor; nodes], &noise, 0.0, 0);
        assert!(
            (slowed / base - factor).abs() < 1e-6,
            "case {case}: uniform slowdown must scale: {slowed}/{base} vs {factor}"
        );
    }
}

#[test]
fn runtime_monotone_in_any_node_slowdown() {
    let mut rng = Rng::from_seed(0x5C_0004);
    for case in 0..CASES {
        let pattern = random_pattern(&mut rng);
        let slowdowns = random_slowdowns(&mut rng);
        let bump = rng.gen_f64_range(0.0, 2.0);
        let noise = Noise::new(3);
        let before = execute(pattern, &slowdowns, &noise, 0.0, 0);
        let mut bumped = slowdowns.clone();
        let idx = rng.gen_range(0..bumped.len());
        bumped[idx] += bump;
        let after = execute(pattern, &bumped, &noise, 0.0, 0);
        match pattern {
            SyncPattern::Collective { .. } => {
                assert!(
                    after >= before - 1e-9,
                    "case {case}: slowing node {idx} sped things up"
                );
            }
            SyncPattern::TaskQueue { tasks, stages } => {
                // Greedy dispatch has Graham scheduling anomalies:
                // slowing a node can re-route tasks and shrink the
                // makespan by up to roughly one task quantum on the
                // slowest node. Require monotonicity modulo that quantum.
                let max_sd = bumped.iter().cloned().fold(0.0f64, f64::max);
                let quantum =
                    bumped.len() as f64 / (tasks * stages) as f64 * max_sd * stages as f64;
                assert!(
                    after >= before - quantum - 1e-9,
                    "case {case}: slowing node {idx} helped beyond one task quantum: \
                     {before} → {after}"
                );
            }
        }
    }
}

#[test]
fn noise_addressing_is_deterministic() {
    let mut rng = Rng::from_seed(0x5C_0005);
    for case in 0..CASES {
        let seed = rng.next_u64();
        let stream = rng.next_u64();
        let run = rng.next_u64();
        let unit = rng.next_u64();
        let sigma = rng.gen_f64_range(0.0, 0.3);
        let noise = Noise::new(seed);
        assert_eq!(
            noise.lognormal(sigma, stream, run, unit),
            noise.lognormal(sigma, stream, run, unit),
            "case {case}"
        );
        let u = noise.uniform(stream, run, unit);
        assert!((0.0..1.0).contains(&u), "case {case}: uniform {u}");
    }
}
