//! Property-based tests of the distributed-execution engine.

use icm_simcluster::{execute, Noise, SyncPattern};
use proptest::prelude::*;

fn arb_pattern() -> impl Strategy<Value = SyncPattern> {
    prop_oneof![
        (1usize..64, 0.0..=1.0f64)
            .prop_map(|(phases, coupling)| SyncPattern::Collective { phases, coupling }),
        (1usize..128, 1usize..8)
            .prop_map(|(tasks, stages)| SyncPattern::TaskQueue { tasks, stages }),
    ]
}

fn arb_slowdowns() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(1.0..4.0f64, 1..16)
}

proptest! {
    #[test]
    fn runtime_is_positive_and_finite(
        pattern in arb_pattern(),
        slowdowns in arb_slowdowns(),
        seed in any::<u64>(),
        run in any::<u64>(),
    ) {
        let t = execute(pattern, &slowdowns, &Noise::new(seed), 0.02, run);
        prop_assert!(t.is_finite());
        prop_assert!(t > 0.0);
    }

    #[test]
    fn runtime_at_least_mean_slowdown_without_noise(
        pattern in arb_pattern(),
        slowdowns in arb_slowdowns(),
    ) {
        // Any coupling scheme is ≥ the perfectly balanced lower bound
        // (mean slowdown) and ≤ the fully serialized upper bound (max),
        // modulo task-granularity remainder effects for TaskQueue.
        let t = execute(pattern, &slowdowns, &Noise::new(0), 0.0, 0);
        let mean = slowdowns.iter().sum::<f64>() / slowdowns.len() as f64;
        let max = slowdowns.iter().cloned().fold(0.0f64, f64::max);
        match pattern {
            SyncPattern::Collective { .. } => {
                prop_assert!(t >= mean - 1e-9, "t={t} below mean {mean}");
                prop_assert!(t <= max + 1e-9, "t={t} above max {max}");
            }
            SyncPattern::TaskQueue { .. } => {
                // Harmonic-mean work sharing can beat the arithmetic
                // mean; with very coarse tasks a single node may take the
                // whole stage, so the only universal upper bound is the
                // fully serialized one.
                let harmonic = slowdowns.len() as f64
                    / slowdowns.iter().map(|s| 1.0 / s).sum::<f64>();
                prop_assert!(t >= harmonic - 1e-9, "t={t} below harmonic {harmonic}");
                prop_assert!(
                    t <= max * slowdowns.len() as f64 + 1e-9,
                    "t={t} above the serialized bound"
                );
            }
        }
    }

    #[test]
    fn uniformly_slowing_all_nodes_scales_runtime(
        pattern in arb_pattern(),
        nodes in 1usize..12,
        factor in 1.0..3.0f64,
    ) {
        let noise = Noise::new(1);
        let base = execute(pattern, &vec![1.0; nodes], &noise, 0.0, 0);
        let slowed = execute(pattern, &vec![factor; nodes], &noise, 0.0, 0);
        prop_assert!(
            (slowed / base - factor).abs() < 1e-6,
            "uniform slowdown must scale: {slowed}/{base} vs {factor}"
        );
    }

    #[test]
    fn runtime_monotone_in_any_node_slowdown(
        pattern in arb_pattern(),
        slowdowns in arb_slowdowns(),
        which in any::<prop::sample::Index>(),
        bump in 0.0..2.0f64,
    ) {
        let noise = Noise::new(3);
        let before = execute(pattern, &slowdowns, &noise, 0.0, 0);
        let mut bumped = slowdowns.clone();
        let idx = which.index(bumped.len());
        bumped[idx] += bump;
        let after = execute(pattern, &bumped, &noise, 0.0, 0);
        match pattern {
            SyncPattern::Collective { .. } => {
                prop_assert!(after >= before - 1e-9, "slowing node {idx} sped things up");
            }
            SyncPattern::TaskQueue { tasks, stages } => {
                // Greedy dispatch has Graham scheduling anomalies:
                // slowing a node can re-route tasks and shrink the
                // makespan by up to roughly one task quantum on the
                // slowest node. Require monotonicity modulo that quantum.
                let max_sd = bumped.iter().cloned().fold(0.0f64, f64::max);
                let quantum =
                    bumped.len() as f64 / (tasks * stages) as f64 * max_sd * stages as f64;
                prop_assert!(
                    after >= before - quantum - 1e-9,
                    "slowing node {idx} helped beyond one task quantum: {before} → {after}"
                );
            }
        }
    }

    #[test]
    fn noise_addressing_is_deterministic(
        seed in any::<u64>(),
        stream in any::<u64>(),
        run in any::<u64>(),
        unit in any::<u64>(),
        sigma in 0.0..0.3f64,
    ) {
        let noise = Noise::new(seed);
        prop_assert_eq!(
            noise.lognormal(sigma, stream, run, unit),
            noise.lognormal(sigma, stream, run, unit)
        );
        let u = noise.uniform(stream, run, unit);
        prop_assert!((0.0..1.0).contains(&u));
    }
}
