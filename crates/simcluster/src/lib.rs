//! Consolidated virtual-cluster testbed simulator.
//!
//! This crate stands in for the physical testbed of the ASPLOS'16 paper
//! (8 Xen hosts / 32 EC2 instances): it executes *distributed parallel
//! applications* on a simulated cluster whose nodes contend on LLC
//! capacity and memory bandwidth (via [`icm_simnode`]), and returns noisy
//! wall-clock measurements, exactly the interface a profiler has against
//! real hardware.
//!
//! Key pieces:
//!
//! * [`ClusterSpec`] — the cluster: hosts, noise levels, optional
//!   unobserved background tenants (EC2 mode).
//! * [`AppSpec`] / [`SyncPattern`] — a distributed application: per-host
//!   memory behaviour plus the synchronization structure that governs how
//!   node-local slowdowns *propagate* into the final runtime.
//! * [`SimTestbed`] — run applications solo, against per-host bubbles,
//!   co-located in pairs, or in arbitrary [`Deployment`]s; measure the
//!   reporter-bubble slowdowns used for bubble scoring.
//! * [`FaultPlan`] — deterministic fault injection: transient probe
//!   failures, straggler runs killed at a deadline, corrupted
//!   measurements, and per-host crash windows, all addressed through the
//!   same seeded noise so faulty histories stay byte-reproducible.
//!
//! Everything is deterministic given a seed; repeated runs differ by
//! realistic, addressable pseudo-random noise.
//!
//! # Example
//!
//! ```
//! use icm_simcluster::{AppSpec, ClusterSpec, SimTestbed, SyncPattern};
//! use icm_simnode::MemoryProfile;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut testbed = SimTestbed::new(ClusterSpec::private8(), 1);
//! testbed.register_app(
//!     AppSpec::builder("solver")
//!         .base_runtime_s(300.0)
//!         .worker_profile(MemoryProfile::builder().working_set_mb(30.0).build()?)
//!         .pattern(SyncPattern::high_propagation(64))
//!         .build()?,
//! );
//! // Interference on two of the eight nodes:
//! let mut pressures = vec![0.0; 8];
//! pressures[0] = 6.0;
//! pressures[1] = 6.0;
//! let seconds = testbed.run_with_bubbles("solver", &pressures)?;
//! assert!(seconds > 300.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod app;
mod cluster;
mod fault;
mod noise;
mod sync;
mod testbed;

pub use app::{AppSpec, AppSpecBuilder, MasterBehavior};
pub use cluster::{BackgroundTenants, ClusterSpec};
pub use fault::{CrashWindow, FaultPlan, FaultPlanError};
pub use noise::Noise;
pub use sync::{execute, execute_phased, PhaseModulation, SyncPattern};
pub use testbed::{
    AppRun, Deployment, Placement, RunKind, SimTestbed, TestbedError, TestbedSnapshot, TestbedStats,
};
