use crate::noise::{stream, unit_id, Noise};

/// Parallelism/synchronization structure of a distributed application.
///
/// The paper (§3.2) observes that interference *propagation* is governed
/// by how an application's parallelism couples its nodes:
///
/// * barrier/allreduce-heavy MPI codes stall every node on the slowest one
///   (**high propagation**),
/// * codes with few collectives degrade proportionally to the number of
///   slowed nodes (**proportional propagation**, e.g. `M.Gems`), and
/// * frameworks with dynamic task scheduling route work away from slow
///   nodes (Hadoop/Spark), which combined with small working sets yields
///   **low propagation**.
///
/// The two variants here implement those coupling mechanisms directly, so
/// the propagation classes *emerge* from structure rather than being
/// hard-coded curves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SyncPattern {
    /// Phased execution with a (partial) barrier after each phase.
    ///
    /// Per phase, every participating node computes for
    /// `phase_work × slowdown × jitter`; the phase completes after
    /// `coupling × max + (1 − coupling) × mean` of the node times.
    /// `coupling = 1` is a full barrier (high propagation); `coupling = 0`
    /// is fully decoupled (proportional propagation).
    Collective {
        /// Number of compute/synchronize phases.
        phases: usize,
        /// Barrier strength in `[0, 1]`.
        coupling: f64,
    },
    /// Dynamically scheduled task queue (MapReduce/Spark style).
    ///
    /// Each of `stages` stages splits the stage's work into `tasks` equal
    /// tasks, greedily dispatched to the earliest-available worker; the
    /// stage ends when the last task finishes (stragglers matter only at
    /// the tail, so slow nodes simply process fewer tasks).
    TaskQueue {
        /// Tasks per stage.
        tasks: usize,
        /// Number of barrier-separated stages.
        stages: usize,
    },
}

impl icm_json::ToJson for SyncPattern {
    fn to_json(&self) -> icm_json::Json {
        match *self {
            SyncPattern::Collective { phases, coupling } => icm_json::Json::object([(
                "Collective",
                icm_json::Json::object([
                    ("phases", phases.to_json()),
                    ("coupling", coupling.to_json()),
                ]),
            )]),
            SyncPattern::TaskQueue { tasks, stages } => icm_json::Json::object([(
                "TaskQueue",
                icm_json::Json::object([("tasks", tasks.to_json()), ("stages", stages.to_json())]),
            )]),
        }
    }
}

impl icm_json::FromJson for SyncPattern {
    fn from_json(value: &icm_json::Json) -> Result<Self, icm_json::JsonError> {
        if let Some(body) = value.get("Collective") {
            let fields = icm_json::expect_object(body, "SyncPattern::Collective")?;
            return Ok(SyncPattern::Collective {
                phases: icm_json::parse_field(fields, "Collective", "phases")?,
                coupling: icm_json::parse_field(fields, "Collective", "coupling")?,
            });
        }
        if let Some(body) = value.get("TaskQueue") {
            let fields = icm_json::expect_object(body, "SyncPattern::TaskQueue")?;
            return Ok(SyncPattern::TaskQueue {
                tasks: icm_json::parse_field(fields, "TaskQueue", "tasks")?,
                stages: icm_json::parse_field(fields, "TaskQueue", "stages")?,
            });
        }
        Err(icm_json::JsonError::msg("unknown SyncPattern variant"))
    }
}

impl SyncPattern {
    /// A tightly coupled MPI-style pattern (high propagation).
    pub fn high_propagation(phases: usize) -> Self {
        SyncPattern::Collective {
            phases,
            coupling: 0.92,
        }
    }

    /// A loosely coupled pattern (proportional propagation, like `M.Gems`).
    pub fn proportional(phases: usize) -> Self {
        SyncPattern::Collective {
            phases,
            coupling: 0.05,
        }
    }

    /// A dynamically load-balanced pattern (Hadoop/Spark style).
    pub fn task_queue(tasks: usize, stages: usize) -> Self {
        SyncPattern::TaskQueue { tasks, stages }
    }

    /// Validates structural invariants (non-zero phases/tasks, coupling in
    /// range). Returns a description of the violation if any.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            SyncPattern::Collective { phases, coupling } => {
                if phases == 0 {
                    return Err("Collective.phases must be > 0".into());
                }
                if !(0.0..=1.0).contains(&coupling) || !coupling.is_finite() {
                    return Err(format!(
                        "Collective.coupling must be in [0,1], got {coupling}"
                    ));
                }
                Ok(())
            }
            SyncPattern::TaskQueue { tasks, stages } => {
                if tasks == 0 {
                    return Err("TaskQueue.tasks must be > 0".into());
                }
                if stages == 0 {
                    return Err("TaskQueue.stages must be > 0".into());
                }
                Ok(())
            }
        }
    }
}

/// Time-varying interference *sensitivity* of an application's phases —
/// the §4.4 "static profiling" limitation made concrete.
///
/// Real applications alternate between memory-heavy and compute-heavy
/// phases; the same external interference hurts a heavy phase more. The
/// modulation scales the *excess* slowdown `(σ − 1)` by `1 ± amplitude`
/// in a square wave of the given `period` (phases per half-wave). Nodes
/// drift out of alignment run-to-run (data-dependent imbalance), which
/// is what a single statically profiled model cannot capture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseModulation {
    /// Fraction by which the excess slowdown swings (0 ≤ amplitude < 1).
    pub amplitude: f64,
    /// Phases per half-wave.
    pub period: usize,
}

icm_json::impl_json!(struct PhaseModulation { amplitude, period });

impl PhaseModulation {
    /// Validates the modulation parameters.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..1.0).contains(&self.amplitude) || !self.amplitude.is_finite() {
            return Err(format!(
                "PhaseModulation.amplitude must be in [0,1), got {}",
                self.amplitude
            ));
        }
        if self.period == 0 {
            return Err("PhaseModulation.period must be > 0".into());
        }
        Ok(())
    }

    /// Modulation factor at `phase` for a node with phase `drift`.
    fn factor(&self, phase: usize, drift: usize) -> f64 {
        let half = (phase + drift) / self.period;
        if half.is_multiple_of(2) {
            1.0 + self.amplitude
        } else {
            1.0 - self.amplitude
        }
    }

    /// Applies the modulation to a slowdown's excess.
    fn modulate(&self, slowdown: f64, phase: usize, drift: usize) -> f64 {
        1.0 + (slowdown - 1.0) * self.factor(phase, drift)
    }
}

/// Executes a distributed run and returns the wall-clock time in units of
/// the solo, interference-free runtime (i.e. ≈ 1.0 when `slowdowns` are
/// all 1 and noise is off).
///
/// * `slowdowns` — one contention slowdown factor per participating
///   worker node (the caller has already excluded a non-working master).
/// * `noise` / `sigma` / `run` — deterministic per-phase jitter.
///
/// # Panics
///
/// Panics if `slowdowns` is empty or the pattern is invalid.
pub fn execute(
    pattern: SyncPattern,
    slowdowns: &[f64],
    noise: &Noise,
    sigma: f64,
    run: u64,
) -> f64 {
    execute_phased(pattern, slowdowns, None, &[], noise, sigma, run)
}

/// [`execute`] with optional phase-sensitivity modulation.
///
/// `drifts` gives each node's modulation offset (in phases); an empty
/// slice means zero drift everywhere.
///
/// # Panics
///
/// Panics if `slowdowns` is empty, the pattern or modulation is invalid,
/// or `drifts` is non-empty with a length different from `slowdowns`.
pub fn execute_phased(
    pattern: SyncPattern,
    slowdowns: &[f64],
    modulation: Option<PhaseModulation>,
    drifts: &[usize],
    noise: &Noise,
    sigma: f64,
    run: u64,
) -> f64 {
    assert!(
        !slowdowns.is_empty(),
        "an application needs at least one worker node"
    );
    pattern
        .validate()
        .unwrap_or_else(|msg| panic!("invalid sync pattern: {msg}"));
    if let Some(m) = modulation {
        m.validate()
            .unwrap_or_else(|msg| panic!("invalid phase modulation: {msg}"));
    }
    assert!(
        drifts.is_empty() || drifts.len() == slowdowns.len(),
        "drifts must be empty or match the worker count"
    );
    let drift_of = |node: usize| -> usize { drifts.get(node).copied().unwrap_or(0) };
    match pattern {
        SyncPattern::Collective { phases, coupling } => execute_collective(
            phases, coupling, slowdowns, modulation, &drift_of, noise, sigma, run,
        ),
        SyncPattern::TaskQueue { tasks, stages } => execute_task_queue(
            tasks, stages, slowdowns, modulation, &drift_of, noise, sigma, run,
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn execute_collective(
    phases: usize,
    coupling: f64,
    slowdowns: &[f64],
    modulation: Option<PhaseModulation>,
    drift_of: &dyn Fn(usize) -> usize,
    noise: &Noise,
    sigma: f64,
    run: u64,
) -> f64 {
    let n = slowdowns.len() as f64;
    let phase_work = 1.0 / phases as f64;
    let mut total = 0.0;
    for phase in 0..phases {
        let mut max_t = f64::MIN;
        let mut sum_t = 0.0;
        for (node, &sd) in slowdowns.iter().enumerate() {
            let effective = match modulation {
                Some(m) => m.modulate(sd, phase, drift_of(node)),
                None => sd,
            };
            let jitter = noise.lognormal(sigma, stream::PHASE, run, unit_id(node, phase));
            let t = phase_work * effective * jitter;
            max_t = max_t.max(t);
            sum_t += t;
        }
        total += coupling * max_t + (1.0 - coupling) * (sum_t / n);
    }
    total
}

#[allow(clippy::too_many_arguments)]
fn execute_task_queue(
    tasks: usize,
    stages: usize,
    slowdowns: &[f64],
    modulation: Option<PhaseModulation>,
    drift_of: &dyn Fn(usize) -> usize,
    noise: &Noise,
    sigma: f64,
    run: u64,
) -> f64 {
    let workers = slowdowns.len();
    let stage_node_seconds = slowdowns.len() as f64 / stages as f64;
    let task_work = stage_node_seconds / tasks as f64;
    let mut total = 0.0;
    // A node's "phase" is how many tasks it has completed so far.
    let mut completed = vec![0usize; workers];
    for stage in 0..stages {
        // Earliest-available greedy dispatch. Worker count is small
        // (≤ 32), so a linear scan beats a heap.
        let mut available = vec![0.0f64; workers];
        for task in 0..tasks {
            let (node, _) = available
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("times are finite"))
                .expect("at least one worker");
            let effective = match modulation {
                Some(m) => m.modulate(slowdowns[node], completed[node], drift_of(node)),
                None => slowdowns[node],
            };
            let jitter = noise.lognormal(
                sigma,
                stream::PHASE,
                run,
                unit_id(node, stage * tasks + task),
            );
            available[node] += task_work * effective * jitter;
            completed[node] += 1;
        }
        let makespan = available.iter().fold(0.0f64, |acc, &t| acc.max(t));
        total += makespan;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    const QUIET: f64 = 0.0;

    fn noise() -> Noise {
        Noise::new(1)
    }

    #[test]
    fn solo_collective_runs_in_unit_time() {
        let t = execute(
            SyncPattern::high_propagation(50),
            &[1.0; 8],
            &noise(),
            QUIET,
            0,
        );
        assert!((t - 1.0).abs() < 1e-9, "got {t}");
    }

    #[test]
    fn solo_task_queue_runs_in_unit_time_when_divisible() {
        // 64 tasks over 8 workers divide evenly: makespan = 1.
        let t = execute(
            SyncPattern::task_queue(64, 4),
            &[1.0; 8],
            &noise(),
            QUIET,
            0,
        );
        assert!((t - 1.0).abs() < 1e-9, "got {t}");
    }

    #[test]
    fn full_barrier_propagates_single_slow_node() {
        let mut sd = [1.0; 8];
        sd[3] = 2.0;
        let t = execute(
            SyncPattern::Collective {
                phases: 10,
                coupling: 1.0,
            },
            &sd,
            &noise(),
            QUIET,
            0,
        );
        assert!(
            (t - 2.0).abs() < 1e-9,
            "one slow node stalls everything, got {t}"
        );
    }

    #[test]
    fn decoupled_pattern_degrades_proportionally() {
        let mut sd = [1.0; 8];
        sd[0] = 2.0;
        let t = execute(
            SyncPattern::Collective {
                phases: 10,
                coupling: 0.0,
            },
            &sd,
            &noise(),
            QUIET,
            0,
        );
        let expected = (7.0 + 2.0) / 8.0;
        assert!((t - expected).abs() < 1e-9, "got {t}, expected {expected}");
    }

    #[test]
    fn high_propagation_beats_proportional_for_one_slow_node() {
        let mut sd = [1.0; 8];
        sd[0] = 2.0;
        let high = execute(SyncPattern::high_propagation(10), &sd, &noise(), QUIET, 0);
        let prop = execute(SyncPattern::proportional(10), &sd, &noise(), QUIET, 0);
        assert!(
            high > prop + 0.3,
            "barrier coupling must amplify a single slow node: high={high}, prop={prop}"
        );
    }

    #[test]
    fn task_queue_routes_work_away_from_slow_node() {
        let mut sd = [1.0; 8];
        sd[0] = 3.0;
        // Many small tasks: the slow node simply takes fewer of them.
        let t = execute(SyncPattern::task_queue(256, 1), &sd, &noise(), QUIET, 0);
        // Aggregate speed = 7 + 1/3; perfect balancing gives 8/(7+1/3) ≈ 1.09.
        assert!(
            t < 1.2,
            "dynamic balancing should absorb the slow node, got {t}"
        );
        assert!(t > 1.0, "but cannot fully hide it");
    }

    #[test]
    fn task_queue_with_coarse_tasks_suffers_stragglers() {
        let mut sd = [1.0; 8];
        sd[0] = 3.0;
        let coarse = execute(SyncPattern::task_queue(8, 1), &sd, &noise(), QUIET, 0);
        let fine = execute(SyncPattern::task_queue(256, 1), &sd, &noise(), QUIET, 0);
        assert!(
            coarse > fine,
            "coarse tasks cannot re-balance: coarse={coarse}, fine={fine}"
        );
    }

    #[test]
    fn more_interfering_nodes_never_reduce_runtime() {
        for pattern in [
            SyncPattern::high_propagation(20),
            SyncPattern::proportional(20),
            SyncPattern::task_queue(128, 4),
        ] {
            let mut last = 0.0;
            for k in 0..=8usize {
                let mut sd = vec![1.0; 8];
                for s in sd.iter_mut().take(k) {
                    *s = 1.8;
                }
                let t = execute(pattern, &sd, &noise(), QUIET, 0);
                assert!(
                    t >= last - 1e-9,
                    "{pattern:?}: runtime decreased at k={k}: {t} < {last}"
                );
                last = t;
            }
        }
    }

    #[test]
    fn noise_perturbs_but_stays_reasonable() {
        let t = execute(
            SyncPattern::high_propagation(100),
            &[1.0; 8],
            &noise(),
            0.02,
            3,
        );
        // Max over 8 lognormal(0.02) per phase biases slightly above 1.
        assert!(t > 1.0 && t < 1.1, "got {t}");
    }

    #[test]
    fn runs_are_deterministic_per_run_id() {
        let sd = [1.3, 1.0, 1.0, 2.0, 1.0, 1.0, 1.1, 1.0];
        let a = execute(SyncPattern::high_propagation(30), &sd, &noise(), 0.02, 5);
        let b = execute(SyncPattern::high_propagation(30), &sd, &noise(), 0.02, 5);
        let c = execute(SyncPattern::high_propagation(30), &sd, &noise(), 0.02, 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn empty_slowdowns_panic() {
        let _ = execute(SyncPattern::high_propagation(5), &[], &noise(), QUIET, 0);
    }

    #[test]
    #[should_panic(expected = "invalid sync pattern")]
    fn zero_phases_panic() {
        let _ = execute(
            SyncPattern::Collective {
                phases: 0,
                coupling: 0.5,
            },
            &[1.0],
            &noise(),
            QUIET,
            0,
        );
    }

    #[test]
    fn validate_rejects_bad_coupling() {
        let p = SyncPattern::Collective {
            phases: 5,
            coupling: 1.5,
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_zero_tasks() {
        assert!(SyncPattern::TaskQueue {
            tasks: 0,
            stages: 1
        }
        .validate()
        .is_err());
        assert!(SyncPattern::TaskQueue {
            tasks: 1,
            stages: 0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn modulation_validation() {
        assert!(PhaseModulation {
            amplitude: 0.5,
            period: 4
        }
        .validate()
        .is_ok());
        assert!(PhaseModulation {
            amplitude: 1.0,
            period: 4
        }
        .validate()
        .is_err());
        assert!(PhaseModulation {
            amplitude: -0.1,
            period: 4
        }
        .validate()
        .is_err());
        assert!(PhaseModulation {
            amplitude: 0.5,
            period: 0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn modulation_is_neutral_without_interference() {
        // Modulation scales the *excess* slowdown, so an uninterfered run
        // is unchanged: the solo baseline stays calibrated.
        let m = PhaseModulation {
            amplitude: 0.8,
            period: 3,
        };
        let plain = execute(
            SyncPattern::high_propagation(24),
            &[1.0; 8],
            &noise(),
            QUIET,
            0,
        );
        let phased = execute_phased(
            SyncPattern::high_propagation(24),
            &[1.0; 8],
            Some(m),
            &[],
            &noise(),
            QUIET,
            0,
        );
        assert!((plain - phased).abs() < 1e-12);
    }

    #[test]
    fn aligned_modulation_averages_out_for_decoupled_apps() {
        // With zero drift and an even number of half-waves, the heavy and
        // light phases cancel exactly under mean aggregation.
        let m = PhaseModulation {
            amplitude: 0.5,
            period: 4,
        };
        let sd = [1.4; 8];
        let plain = execute(SyncPattern::proportional(16), &sd, &noise(), QUIET, 0);
        let phased = execute_phased(
            SyncPattern::proportional(16),
            &sd,
            Some(m),
            &[],
            &noise(),
            QUIET,
            0,
        );
        assert!(
            (plain - phased).abs() < 0.03,
            "aligned square wave should roughly cancel: {plain} vs {phased}"
        );
    }

    #[test]
    fn drifted_modulation_raises_coupled_runtimes() {
        // When nodes drift out of phase, a barrier-coupled app always has
        // *some* node in its heavy phase, so the max rises.
        let m = PhaseModulation {
            amplitude: 0.6,
            period: 4,
        };
        let sd = [1.5; 8];
        let pattern = SyncPattern::Collective {
            phases: 32,
            coupling: 1.0,
        };
        let aligned = execute_phased(pattern, &sd, Some(m), &[], &noise(), QUIET, 0);
        let drifts: Vec<usize> = (0..8).collect();
        let drifted = execute_phased(pattern, &sd, Some(m), &drifts, &noise(), QUIET, 0);
        assert!(
            drifted > aligned + 0.05,
            "drift must amplify the barrier penalty: {drifted} vs {aligned}"
        );
    }

    #[test]
    #[should_panic(expected = "drifts must be empty or match")]
    fn mismatched_drifts_panic() {
        let m = PhaseModulation {
            amplitude: 0.5,
            period: 4,
        };
        let _ = execute_phased(
            SyncPattern::high_propagation(8),
            &[1.0; 8],
            Some(m),
            &[0; 3],
            &noise(),
            QUIET,
            0,
        );
    }

    #[test]
    #[should_panic(expected = "invalid phase modulation")]
    fn invalid_modulation_panics() {
        let m = PhaseModulation {
            amplitude: 2.0,
            period: 4,
        };
        let _ = execute_phased(
            SyncPattern::high_propagation(8),
            &[1.0; 8],
            Some(m),
            &[],
            &noise(),
            QUIET,
            0,
        );
    }
}
