use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use icm_obs::{Tracer, Value};
use icm_simnode::{solve_contention, Bubble, MemoryProfile};

use crate::app::AppSpec;
use crate::cluster::ClusterSpec;
use crate::fault::FaultPlan;
use crate::noise::{stream, Noise};
use crate::sync::execute_phased;

/// CPU-load volatility attributed to unobserved background tenants, as
/// felt by I/O-sensitive applications.
const BACKGROUND_VOLATILITY: f64 = 0.5;

/// Deterministic Dom0-CPU contention an I/O-sensitive application suffers
/// whenever any co-tenant (application, bubble or background tenant)
/// shares the host, scaled by the app's `io_sensitivity`.
const IO_COTENANT_BASE: f64 = 0.5;

/// Scale of the *unpredictable* volatility-driven part of the I/O effect,
/// relative to the deterministic base.
const IO_VOLATILITY_SCALE: f64 = 0.5;

/// Error returned by [`SimTestbed`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestbedError {
    /// The named application was never registered.
    UnknownApp(String),
    /// A placement referenced a host outside the cluster.
    HostOutOfRange {
        /// The offending host index.
        host: usize,
        /// Number of hosts in the cluster.
        hosts: usize,
    },
    /// A per-host vector had the wrong length.
    BadVectorLength {
        /// Expected length (cluster hosts).
        expected: usize,
        /// Actual length.
        got: usize,
    },
    /// A placement listed the same host twice.
    DuplicateHost {
        /// Application whose placement is malformed.
        app: String,
        /// The repeated host index.
        host: usize,
    },
    /// A placement had no hosts at all.
    EmptyPlacement {
        /// Application whose placement is empty.
        app: String,
    },
    /// A bubble pressure was NaN, infinite or negative.
    BadPressure(String),
    /// Fault injection: the run failed transiently before any cluster
    /// time was spent (the probe measurement is simply lost).
    ProbeFailed {
        /// Run counter value of the failed attempt.
        run: u64,
    },
    /// Fault injection: the run straggled past its kill deadline and was
    /// terminated without producing a measurement.
    ProbeTimeout {
        /// Run counter value of the killed attempt.
        run: u64,
    },
    /// Fault injection: a host the deployment needs is inside a crash
    /// window.
    HostDown {
        /// The unreachable host.
        host: usize,
        /// Run counter value of the rejected attempt.
        run: u64,
    },
    /// A checkpoint/resume was given a NaN, infinite or negative restart
    /// cost. The payload describes the rejected value.
    InvalidCost(String),
}

impl fmt::Display for TestbedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestbedError::UnknownApp(name) => write!(f, "unknown application `{name}`"),
            TestbedError::HostOutOfRange { host, hosts } => {
                write!(f, "host {host} out of range for a {hosts}-host cluster")
            }
            TestbedError::BadVectorLength { expected, got } => {
                write!(f, "per-host vector must have length {expected}, got {got}")
            }
            TestbedError::DuplicateHost { app, host } => {
                write!(f, "placement of `{app}` lists host {host} twice")
            }
            TestbedError::EmptyPlacement { app } => {
                write!(f, "placement of `{app}` has no hosts")
            }
            TestbedError::BadPressure(msg) => write!(f, "invalid bubble pressure: {msg}"),
            TestbedError::ProbeFailed { run } => {
                write!(f, "injected transient probe failure on run {run}")
            }
            TestbedError::ProbeTimeout { run } => {
                write!(
                    f,
                    "run {run} straggled past its kill deadline and was terminated"
                )
            }
            TestbedError::HostDown { host, run } => {
                write!(f, "host {host} is down (crash window) on run {run}")
            }
            TestbedError::InvalidCost(msg) => write!(f, "invalid restart cost: {msg}"),
        }
    }
}

impl Error for TestbedError {}

/// One application's assignment to a set of hosts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// Application (catalog) name.
    pub app: String,
    /// Cluster host indices the application's VMs occupy. The first host
    /// is the master for applications with a coordinator master.
    pub hosts: Vec<usize>,
}

icm_json::impl_json!(struct Placement { app, hosts });

impl Placement {
    /// Convenience constructor.
    pub fn new(app: impl Into<String>, hosts: Vec<usize>) -> Self {
        Self {
            app: app.into(),
            hosts,
        }
    }
}

/// A full experiment configuration: which applications run where, plus an
/// optional bubble pressure per host.
#[derive(Debug, Clone, PartialEq)]
pub struct Deployment {
    /// Application placements (may co-locate multiple apps on a host).
    pub placements: Vec<Placement>,
    /// Bubble pressure per host (`0` = no bubble). Empty means no bubbles
    /// anywhere.
    pub bubbles: Vec<f64>,
}

icm_json::impl_json!(struct Deployment { placements, bubbles });

impl Deployment {
    /// A deployment with the given placements and no bubbles.
    pub fn of_placements(placements: Vec<Placement>) -> Self {
        Self {
            placements,
            bubbles: Vec::new(),
        }
    }
}

/// Result of one application's run within a deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct AppRun {
    /// Application name.
    pub app: String,
    /// Measured wall-clock seconds.
    pub seconds: f64,
    /// Id of the `app_run` trace event this result was reported by
    /// (0 when the run was untraced) — the anchor provenance chains
    /// hang detections off.
    pub trace_event: u64,
}

icm_json::impl_json!(struct AppRun { app, seconds, trace_event = 0 });

/// What a testbed run was *for* — the unit the paper's Table 3 counts
/// profiling cost in.
///
/// The kind is classified from the deployment's shape (see
/// [`RunKind::classify`]), so every entry point — profiler probes going
/// through an adapter, validation pair runs, placement-search
/// deployments — is attributed without the caller having to say.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunKind {
    /// One application, no synthetic pressure anywhere.
    Solo,
    /// One application against per-host bubbles (the Fig. 3 probe).
    Bubble,
    /// Two applications fully co-located (§4.3 validation).
    Pair,
    /// Any other placement mix (e.g. placement-search candidates).
    Deployment,
    /// Reporter-bubble measurement (bubble score / sensitivity curve).
    Reporter,
}

impl RunKind {
    /// Stable lowercase label used in trace events and summaries.
    pub fn as_str(self) -> &'static str {
        match self {
            RunKind::Solo => "solo",
            RunKind::Bubble => "bubble",
            RunKind::Pair => "pair",
            RunKind::Deployment => "deployment",
            RunKind::Reporter => "reporter",
        }
    }

    /// Classifies a deployment: one app without/with bubbles is a
    /// solo/bubble probe, two fully co-located apps are a pair, and
    /// everything else is a general deployment.
    pub fn classify(deployment: &Deployment) -> Self {
        let bubbled = deployment.bubbles.iter().any(|&p| p > 0.0);
        match (deployment.placements.len(), bubbled) {
            (1, false) => RunKind::Solo,
            (1, true) => RunKind::Bubble,
            (2, false) if deployment.placements[0].hosts == deployment.placements[1].hosts => {
                RunKind::Pair
            }
            _ => RunKind::Deployment,
        }
    }
}

impl fmt::Display for RunKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Cumulative accounting of simulated work, used to report profiling cost.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TestbedStats {
    /// Number of deployment executions (each is "one experiment run").
    pub runs: u64,
    /// Total simulated application-seconds across all runs.
    pub simulated_seconds: f64,
    /// Completed solo runs (one app, no synthetic pressure).
    pub solo_runs: u64,
    /// Completed bubble-probe runs (one app vs. per-host bubbles).
    pub bubble_runs: u64,
    /// Completed pair runs (two apps fully co-located).
    pub pair_runs: u64,
    /// Completed general deployments (placement-search candidates etc.).
    pub deployment_runs: u64,
    /// Completed reporter-bubble measurements.
    pub reporter_runs: u64,
    /// Injected transient probe failures (runs lost before execution).
    pub injected_probe_failures: u64,
    /// Injected straggler runs killed at the deadline.
    pub injected_timeouts: u64,
    /// Injected straggler runs that still completed (inflated runtime).
    pub injected_stragglers: u64,
    /// Injected corrupted measurements (one per affected placement).
    pub injected_corruptions: u64,
    /// Deployments rejected because a host was in a crash window.
    pub injected_host_down: u64,
    /// Simulated seconds burned by runs that produced no measurement
    /// (timeouts killed at the deadline). Tracked separately from
    /// `simulated_seconds`, which covers completed runs only.
    pub wasted_seconds: f64,
    /// Application checkpoints taken (state snapshots before migration).
    pub checkpoints: u64,
    /// Application resumes from a checkpoint (migration restarts).
    pub restarts: u64,
    /// Simulated seconds charged as restart cost across all resumes.
    /// Like `wasted_seconds`, this is overhead: it is *not* folded into
    /// `simulated_seconds` (which covers productive runs only).
    pub restart_seconds: f64,
}

icm_json::impl_json!(struct TestbedStats {
    runs,
    simulated_seconds,
    solo_runs = 0,
    bubble_runs = 0,
    pair_runs = 0,
    deployment_runs = 0,
    reporter_runs = 0,
    injected_probe_failures = 0,
    injected_timeouts = 0,
    injected_stragglers = 0,
    injected_corruptions = 0,
    injected_host_down = 0,
    wasted_seconds = 0.0,
    checkpoints = 0,
    restarts = 0,
    restart_seconds = 0.0
});

impl TestbedStats {
    /// Completed runs of one kind.
    pub fn kind_count(&self, kind: RunKind) -> u64 {
        match kind {
            RunKind::Solo => self.solo_runs,
            RunKind::Bubble => self.bubble_runs,
            RunKind::Pair => self.pair_runs,
            RunKind::Deployment => self.deployment_runs,
            RunKind::Reporter => self.reporter_runs,
        }
    }

    /// Total injected failures that cost a run attempt (transient probe
    /// failures, deadline timeouts, host-down rejections). Corruptions
    /// and completed stragglers are not counted: those runs produced a
    /// (contaminated or late) measurement.
    pub fn injected_failures(&self) -> u64 {
        self.injected_probe_failures + self.injected_timeouts + self.injected_host_down
    }

    fn record(&mut self, kind: RunKind, simulated_seconds: f64) {
        self.runs += 1;
        self.simulated_seconds += simulated_seconds;
        match kind {
            RunKind::Solo => self.solo_runs += 1,
            RunKind::Bubble => self.bubble_runs += 1,
            RunKind::Pair => self.pair_runs += 1,
            RunKind::Deployment => self.deployment_runs += 1,
            RunKind::Reporter => self.reporter_runs += 1,
        }
    }
}

/// The simulated consolidated cluster the paper's methodology is exercised
/// against.
///
/// `SimTestbed` plays the role of the physical testbed: the profiler and
/// the placement algorithms interact with it only by *running things and
/// timing them*. Repeated measurements of the same configuration differ by
/// deterministic pseudo-random noise (each call advances a run counter),
/// exactly like re-running a job on real hardware.
///
/// # Example
///
/// ```
/// use icm_simcluster::{AppSpec, ClusterSpec, SimTestbed, SyncPattern};
/// use icm_simnode::MemoryProfile;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut testbed = SimTestbed::new(ClusterSpec::private8(), 42);
/// testbed.register_app(
///     AppSpec::builder("toy")
///         .base_runtime_s(100.0)
///         .worker_profile(MemoryProfile::builder().working_set_mb(24.0).build()?)
///         .pattern(SyncPattern::high_propagation(32))
///         .build()?,
/// );
/// let solo = testbed.run_solo("toy")?;
/// let loaded = testbed.run_with_bubbles("toy", &[8.0; 8])?;
/// assert!(loaded > solo);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SimTestbed {
    cluster: ClusterSpec,
    apps: BTreeMap<String, AppSpec>,
    bubble: Bubble,
    noise: Noise,
    run_counter: u64,
    stats: TestbedStats,
    tracer: Tracer,
    fault_plan: Option<FaultPlan>,
}

/// Serializable image of a [`SimTestbed`], captured with
/// [`SimTestbed::snapshot`] and rebuilt with [`SimTestbed::restore`].
///
/// Restoring and re-running yields byte-identical behaviour to never
/// having stopped: noise draws are addressed by `(stream, run, lane)`,
/// so carrying the seed and the run counter is sufficient to resume the
/// exact noise history mid-stream.
///
/// Fault plans snapshot verbatim, with one JSON caveat: window bounds
/// above 2⁵³ (e.g. `until_run: u64::MAX` as an "open" window) do not
/// survive the integer-exactness check in `icm-json` — persistent plans
/// should use bounded windows.
#[derive(Debug, Clone, PartialEq)]
pub struct TestbedSnapshot {
    /// Cluster geometry and background-tenant model.
    pub cluster: ClusterSpec,
    /// Registered applications, by name.
    pub apps: BTreeMap<String, AppSpec>,
    /// The addressed noise source (seed only; draws are stateless).
    pub noise: Noise,
    /// Run counter — the position in the noise history.
    pub run_counter: u64,
    /// Cumulative run accounting.
    pub stats: TestbedStats,
    /// Installed fault-injection plan, if any.
    pub fault_plan: Option<FaultPlan>,
}

icm_json::impl_json!(struct TestbedSnapshot {
    cluster,
    apps,
    noise,
    run_counter,
    stats,
    fault_plan,
});

impl SimTestbed {
    /// Creates a testbed over `cluster`, with all stochastic behaviour
    /// derived from `seed`.
    pub fn new(cluster: ClusterSpec, seed: u64) -> Self {
        let bubble = Bubble::new(cluster.node(0));
        Self {
            cluster,
            apps: BTreeMap::new(),
            bubble,
            noise: Noise::new(seed),
            run_counter: 0,
            stats: TestbedStats::default(),
            tracer: Tracer::disabled(),
            fault_plan: None,
        }
    }

    /// Installs (or, with `None`, removes) a fault-injection plan.
    ///
    /// Faults are addressed noise draws keyed by the run counter, so a
    /// plan changes *which* runs fail but never perturbs the noise seen
    /// by runs that complete, and `None` restores byte-identical
    /// fault-free behaviour.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault_plan = plan;
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Attaches a tracer; every subsequent run emits structured events
    /// and advances the tracer's simulated clock by the run's simulated
    /// seconds. Pass [`Tracer::disabled`] to detach.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The attached tracer (disabled by default).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Registers (or replaces) an application so it can be deployed by
    /// name.
    pub fn register_app(&mut self, spec: AppSpec) {
        self.apps.insert(spec.name().to_owned(), spec);
    }

    /// Looks up a registered application.
    pub fn app(&self, name: &str) -> Option<&AppSpec> {
        self.apps.get(name)
    }

    /// Names of all registered applications, sorted.
    pub fn app_names(&self) -> Vec<String> {
        self.apps.keys().cloned().collect()
    }

    /// The simulated cluster description.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// The bubble generator calibrated for this cluster's hosts.
    pub fn bubble(&self) -> &Bubble {
        &self.bubble
    }

    /// Cumulative run accounting.
    pub fn stats(&self) -> TestbedStats {
        self.stats
    }

    /// Resets run accounting (the run counter keeps advancing so noise
    /// never repeats).
    pub fn reset_stats(&mut self) {
        self.stats = TestbedStats::default();
    }

    /// Runs `app` alone on the whole cluster and returns seconds.
    ///
    /// # Errors
    ///
    /// Returns [`TestbedError::UnknownApp`] if `app` is not registered.
    pub fn run_solo(&mut self, app: &str) -> Result<f64, TestbedError> {
        let hosts = self.cluster.hosts();
        self.run_with_bubbles(app, &vec![0.0; hosts])
    }

    /// Runs `app` spanning every host, with a bubble of pressure
    /// `pressures[h]` co-located on host `h`; returns seconds.
    ///
    /// This is the paper's profiling-run primitive (Fig. 3).
    ///
    /// # Errors
    ///
    /// Returns an error if `app` is unknown, the vector length differs
    /// from the host count, or a pressure is negative/non-finite.
    pub fn run_with_bubbles(&mut self, app: &str, pressures: &[f64]) -> Result<f64, TestbedError> {
        let deployment = Deployment {
            placements: vec![Placement::new(app, (0..self.cluster.hosts()).collect())],
            bubbles: pressures.to_vec(),
        };
        let runs = self.run_deployment(&deployment)?;
        Ok(runs[0].seconds)
    }

    /// Runs two applications fully co-located across the whole cluster
    /// (the §4.3 validation configuration) and returns their times.
    ///
    /// # Errors
    ///
    /// Returns [`TestbedError::UnknownApp`] if either name is unknown.
    pub fn run_pair(&mut self, a: &str, b: &str) -> Result<(f64, f64), TestbedError> {
        let all: Vec<usize> = (0..self.cluster.hosts()).collect();
        let deployment =
            Deployment::of_placements(vec![Placement::new(a, all.clone()), Placement::new(b, all)]);
        let runs = self.run_deployment(&deployment)?;
        Ok((runs[0].seconds, runs[1].seconds))
    }

    /// Runs an arbitrary deployment; returns one [`AppRun`] per placement,
    /// in order.
    ///
    /// Interference is *persistent*: every co-runner is assumed to remain
    /// active for the full duration of each measured application
    /// (co-runners restart until the measured app finishes), matching how
    /// profiling studies keep pressure constant.
    ///
    /// # Errors
    ///
    /// Returns a [`TestbedError`] describing the first malformed part of
    /// the deployment.
    pub fn run_deployment(&mut self, deployment: &Deployment) -> Result<Vec<AppRun>, TestbedError> {
        // Validation comes first so a malformed deployment leaves *no*
        // trace: the run counter, the stats (including the per-kind
        // counters) and the event stream all describe completed runs
        // only — an error path can never desynchronize accounting.
        self.validate(deployment)?;
        let kind = RunKind::classify(deployment);
        let hosts = self.cluster.hosts();
        let run = self.next_run();

        // Fault injection. Failed injections advance the run counter (a
        // retry sees fresh noise, as on real hardware) but never touch
        // `stats.runs` or the per-kind counters, which keep describing
        // completed measurements only. With no plan installed this block
        // is dead and the fault-free path is byte-identical.
        let mut straggle = 1.0;
        let mut timed_out = false;
        if let Some(plan) = &self.fault_plan {
            for placement in &deployment.placements {
                for &h in &placement.hosts {
                    if plan.host_down(h, run) {
                        self.stats.injected_host_down += 1;
                        if self.tracer.enabled() {
                            self.tracer.event(
                                "fault",
                                &[
                                    ("kind", Value::from("host_down")),
                                    ("run", Value::from(run)),
                                    ("host", Value::from(h)),
                                ],
                            );
                        }
                        return Err(TestbedError::HostDown { host: h, run });
                    }
                }
            }
            if plan.probe_failure_prob > 0.0
                && self.noise.uniform(stream::FAULT_PROBE, run, 0) < plan.probe_failure_prob
            {
                self.stats.injected_probe_failures += 1;
                if self.tracer.enabled() {
                    self.tracer.event(
                        "fault",
                        &[
                            ("kind", Value::from("probe_failed")),
                            ("run", Value::from(run)),
                        ],
                    );
                }
                return Err(TestbedError::ProbeFailed { run });
            }
            if plan.straggler_prob > 0.0
                && self.noise.uniform(stream::FAULT_STRAGGLER, run, 0) < plan.straggler_prob
            {
                straggle = 1.0
                    + plan.straggler_severity * self.noise.uniform(stream::FAULT_STRAGGLER, run, 1);
                timed_out = straggle >= plan.deadline_factor;
            }
        }
        let corruption = self
            .fault_plan
            .as_ref()
            .filter(|p| p.corruption_prob > 0.0)
            .map(|p| (p.corruption_prob, p.corruption_scale));
        let deadline_factor = self.fault_plan.as_ref().map_or(1.0, |p| p.deadline_factor);

        // A timed-out run is killed at the deadline: it emits no run
        // span and no measurements, only a `fault` event after the
        // wasted cluster time has been charged below.
        let span = if self.tracer.enabled() && !timed_out {
            let apps = deployment
                .placements
                .iter()
                .map(|p| p.app.as_str())
                .collect::<Vec<_>>()
                .join("+");
            let span = self.tracer.span(
                "run",
                &[
                    ("kind", Value::from(kind.as_str())),
                    ("run", Value::from(run)),
                    ("apps", Value::from(apps)),
                    ("placements", Value::from(deployment.placements.len())),
                ],
            );
            for (h, &p) in deployment.bubbles.iter().enumerate() {
                if p > 0.0 {
                    self.tracer.event(
                        "host_bubble",
                        &[("host", Value::from(h)), ("pressure", Value::from(p))],
                    );
                }
            }
            Some(span)
        } else {
            None
        };
        if straggle > 1.0 && !timed_out {
            // A straggler that stays under the deadline completes with
            // an inflated (but real) measurement.
            self.stats.injected_stragglers += 1;
            if self.tracer.enabled() {
                self.tracer.event(
                    "fault",
                    &[
                        ("kind", Value::from("straggler")),
                        ("run", Value::from(run)),
                        ("factor", Value::from(straggle)),
                    ],
                );
            }
        }

        // Per-host co-located memory profiles, and for each placement the
        // index of its profile within each host's list.
        let mut host_profiles: Vec<Vec<MemoryProfile>> = vec![Vec::new(); hosts];
        let mut host_members: Vec<Vec<usize>> = vec![Vec::new(); hosts]; // placement idx
        for (pi, placement) in deployment.placements.iter().enumerate() {
            let spec = &self.apps[&placement.app];
            for (local, &h) in placement.hosts.iter().enumerate() {
                host_profiles[h].push(spec.profile_on_host(local, placement.hosts.len()));
                host_members[h].push(pi);
            }
        }
        for (h, &pressure) in deployment.bubbles.iter().enumerate() {
            if pressure > 0.0 {
                host_profiles[h].push(self.bubble.profile_at(pressure));
                host_members[h].push(usize::MAX); // bubble marker
            }
        }
        // Unobserved background tenants (EC2-style).
        if let Some(bg) = self.cluster.background() {
            for h in 0..hosts {
                let present = self
                    .noise
                    .uniform(stream::BACKGROUND_PRESENCE, run, h as u64)
                    < bg.probability;
                if present {
                    let pressure = bg.max_pressure
                        * self
                            .noise
                            .uniform(stream::BACKGROUND_PRESSURE, run, h as u64);
                    if pressure > 0.0 {
                        host_profiles[h].push(self.bubble.profile_at(pressure));
                        host_members[h].push(usize::MAX - 1); // background marker
                    }
                }
            }
        }

        // Solve per-host contention once. The wall scope feeds the
        // self-profiling side channel only — no event is emitted, so the
        // deterministic trace is unaffected.
        let contention_scope = self.tracer.wall_scope("sim.contention");
        let host_slowdowns: Vec<Vec<f64>> = (0..hosts)
            .map(|h| solve_contention(&self.cluster.node(h), &host_profiles[h]))
            .collect();
        drop(contention_scope);

        // Execute each placement (wall side channel only; no events).
        let _execute_scope = self.tracer.wall_scope("sim.execute");
        let mut results = Vec::with_capacity(deployment.placements.len());
        let mut simulated = 0.0;
        for (pi, placement) in deployment.placements.iter().enumerate() {
            let spec = &self.apps[&placement.app];
            let total = placement.hosts.len();
            let workers = spec.worker_hosts(total);
            let mut slowdowns = Vec::with_capacity(workers.len());
            for &local in &workers {
                let h = placement.hosts[local];
                let slot = host_members[h]
                    .iter()
                    .position(|&m| m == pi)
                    .expect("placement registered on its own host");
                let mut sd = host_slowdowns[h][slot];
                // The M.Gems effect (§4.3): latency-sensitive blocked I/O
                // contends for Dom0 CPU with *any* co-tenant — a steady
                // component the profiling bubble also triggers (so the
                // model can learn it) — plus an unpredictable component
                // driven by the co-runner's CPU-load fluctuation, which a
                // static memory-pressure model cannot see.
                if spec.io_sensitivity() > 0.0 {
                    let has_cotenant = host_members[h].iter().any(|&m| m != pi);
                    if has_cotenant {
                        let vol = self.ambient_volatility(&deployment.placements, pi, h, run);
                        let z = self
                            .noise
                            .normal(stream::IO_VOLATILITY, run, (pi as u64) << 32 | h as u64)
                            .abs();
                        sd *= 1.0
                            + spec.io_sensitivity()
                                * (IO_COTENANT_BASE + IO_VOLATILITY_SCALE * vol * (0.3 + 0.7 * z));
                    }
                }
                slowdowns.push(sd);
            }
            // Decorrelate phase noise between placements in the same run.
            let app_run = run.wrapping_mul(251).wrapping_add(pi as u64);
            // Phase-modulated apps drift out of alignment differently
            // every run (data-dependent load imbalance) — the dynamic
            // behaviour a single static profile cannot capture (§4.4).
            let drifts: Vec<usize> = match spec.phase_modulation() {
                Some(m) => (0..slowdowns.len())
                    .map(|node| {
                        let u = self
                            .noise
                            .uniform(stream::PHASE_DRIFT, app_run, node as u64);
                        (u * (2 * m.period) as f64) as usize
                    })
                    .collect(),
                None => Vec::new(),
            };
            let normalized = execute_phased(
                spec.pattern(),
                &slowdowns,
                spec.phase_modulation(),
                &drifts,
                &self.noise,
                self.cluster.phase_sigma(),
                app_run,
            );
            let measurement = self.noise.lognormal(
                self.cluster.measurement_sigma(),
                stream::MEASUREMENT,
                run,
                pi as u64,
            );
            let mut seconds = spec.base_runtime_s() * normalized * measurement * straggle;
            if let Some((prob, scale)) = corruption {
                if !timed_out
                    && self
                        .noise
                        .uniform(stream::FAULT_CORRUPT, run, (pi as u64) * 2)
                        < prob
                {
                    let factor = 1.0
                        + scale
                            * self
                                .noise
                                .uniform(stream::FAULT_CORRUPT, run, (pi as u64) * 2 + 1);
                    seconds *= factor;
                    self.stats.injected_corruptions += 1;
                    if self.tracer.enabled() {
                        self.tracer.event(
                            "fault",
                            &[
                                ("kind", Value::from("corruption")),
                                ("run", Value::from(run)),
                                ("app", Value::from(placement.app.as_str())),
                                ("factor", Value::from(factor)),
                            ],
                        );
                    }
                }
            }
            simulated += seconds;
            let trace_event = if self.tracer.enabled() && !timed_out {
                // Phase/sync breakdown: `mean_slowdown` is the average
                // node-local contention, `normalized` what the sync
                // pattern amplified it into, so `sync_factor` isolates
                // the propagation cost (§4.1).
                let mean_slowdown = slowdowns.iter().sum::<f64>() / slowdowns.len().max(1) as f64;
                self.tracer.event(
                    "app_run",
                    &[
                        ("app", Value::from(placement.app.as_str())),
                        ("nodes", Value::from(slowdowns.len())),
                        ("mean_slowdown", Value::from(mean_slowdown)),
                        ("normalized", Value::from(normalized)),
                        ("sync_factor", Value::from(normalized / mean_slowdown)),
                        ("seconds", Value::from(seconds)),
                    ],
                )
            } else {
                0
            };
            results.push(AppRun {
                app: placement.app.clone(),
                seconds,
                trace_event,
            });
        }
        if timed_out {
            // Killed at the deadline: the cluster burned
            // `nominal × deadline_factor` seconds and produced nothing.
            // (`simulated` carries the full straggle inflation, so the
            // nominal runtime is `simulated / straggle`.)
            let wasted = simulated / straggle * deadline_factor;
            self.stats.injected_timeouts += 1;
            self.stats.wasted_seconds += wasted;
            self.tracer.advance_sim(wasted);
            if self.tracer.enabled() {
                self.tracer.event(
                    "fault",
                    &[
                        ("kind", Value::from("timeout")),
                        ("run", Value::from(run)),
                        ("factor", Value::from(straggle)),
                        ("wasted_s", Value::from(wasted)),
                    ],
                );
            }
            return Err(TestbedError::ProbeTimeout { run });
        }
        self.stats.record(kind, simulated);
        self.tracer.advance_sim(simulated);
        // Non-event path: run durations flow into the rollup windows even
        // when raw tracing is off, without adding any event to the stream.
        self.tracer.telemetry_observe("testbed.run_s", simulated);
        if let Some(span) = span {
            span.end_with(&[("simulated_s", Value::from(simulated))]);
        }
        Ok(results)
    }

    /// Slowdown of the low-pressure reporter bubble co-located with `app`,
    /// averaged over the hosts the application occupies — the measurement
    /// that yields the application's *bubble score* (§3.4).
    ///
    /// # Errors
    ///
    /// Returns [`TestbedError::UnknownApp`] if `app` is not registered.
    pub fn reporter_slowdown_with_app(&mut self, app: &str) -> Result<f64, TestbedError> {
        self.reporter_slowdown_with_apps(&[app])
    }

    /// Slowdown of the reporter bubble co-located with *several*
    /// applications simultaneously, averaged over the cluster's hosts —
    /// the measurement behind the §4.4 multi-app score-combination
    /// extension.
    ///
    /// # Errors
    ///
    /// Returns [`TestbedError::UnknownApp`] if any name is unknown.
    pub fn reporter_slowdown_with_apps(&mut self, apps: &[&str]) -> Result<f64, TestbedError> {
        let mut specs = Vec::with_capacity(apps.len());
        for &app in apps {
            specs.push(
                self.apps
                    .get(app)
                    .ok_or_else(|| TestbedError::UnknownApp(app.to_owned()))?
                    .clone(),
            );
        }
        let hosts = self.cluster.hosts();
        let reporter = self.bubble.reporter();
        let run = self.next_run();
        let mut total = 0.0;
        for h in 0..hosts {
            let mut profiles = vec![reporter];
            for spec in &specs {
                profiles.push(spec.profile_on_host(h, hosts));
            }
            let sd = solve_contention(&self.cluster.node(h), &profiles)[0];
            total += sd
                * self.noise.lognormal(
                    self.cluster.measurement_sigma(),
                    stream::MEASUREMENT,
                    run,
                    h as u64,
                );
        }
        self.stats.record(RunKind::Reporter, 0.0);
        let slowdown = total / hosts as f64;
        if self.tracer.enabled() {
            self.tracer.event(
                "reporter",
                &[
                    ("with", Value::from(apps.join("+"))),
                    ("slowdown", Value::from(slowdown)),
                ],
            );
        }
        Ok(slowdown)
    }

    /// Slowdown of the reporter bubble co-located with a bubble of
    /// `pressure`; sweeping this over pressures yields the reporter
    /// sensitivity curve that bubble scores are inverted against.
    ///
    /// # Errors
    ///
    /// Returns [`TestbedError::BadPressure`] for negative or non-finite
    /// pressure.
    pub fn reporter_slowdown_with_bubble(&mut self, pressure: f64) -> Result<f64, TestbedError> {
        if !pressure.is_finite() || pressure < 0.0 {
            return Err(TestbedError::BadPressure(format!(
                "pressure must be non-negative and finite, got {pressure}"
            )));
        }
        let run = self.next_run();
        let reporter = self.bubble.reporter();
        let profiles = [reporter, self.bubble.profile_at(pressure)];
        let sd = solve_contention(&self.cluster.node(0), &profiles)[0];
        self.stats.record(RunKind::Reporter, 0.0);
        let slowdown = sd
            * self.noise.lognormal(
                self.cluster.measurement_sigma(),
                stream::MEASUREMENT,
                run,
                0,
            );
        if self.tracer.enabled() {
            self.tracer.event(
                "reporter",
                &[
                    ("pressure", Value::from(pressure)),
                    ("slowdown", Value::from(slowdown)),
                ],
            );
        }
        Ok(slowdown)
    }

    /// Run-counter value the *next* execution will be stamped with.
    ///
    /// Read-only: peeking never advances the counter, so a supervisor can
    /// poll upcoming fault windows without perturbing the deterministic
    /// noise history.
    pub fn peek_run(&self) -> u64 {
        self.run_counter + 1
    }

    /// Whether `host` is inside a crash window at run-counter value `run`.
    ///
    /// This is the *notification* form of the host-down fault: instead of
    /// learning about an outage only by deploying onto the dead host and
    /// receiving [`TestbedError::HostDown`], a control loop can ask ahead
    /// of time. Returns `false` when no fault plan is installed.
    pub fn host_down_at(&self, host: usize, run: u64) -> bool {
        self.fault_plan
            .as_ref()
            .is_some_and(|plan| plan.host_down(host, run))
    }

    /// All hosts that would be down if a run executed at counter value
    /// `run`, in ascending order. Empty when no fault plan is installed.
    pub fn downed_hosts_at(&self, run: u64) -> Vec<usize> {
        (0..self.cluster.hosts())
            .filter(|&h| self.host_down_at(h, run))
            .collect()
    }

    /// Takes a checkpoint of `app`'s state (instantaneous in the model:
    /// copy-on-write snapshots are cheap next to the restart itself).
    ///
    /// Returns the run-counter value the checkpoint is associated with
    /// (the next run that would execute). Fails with
    /// [`TestbedError::UnknownApp`] for unregistered applications,
    /// leaving stats untouched.
    pub fn checkpoint_app(&mut self, app: &str) -> Result<u64, TestbedError> {
        if !self.apps.contains_key(app) {
            return Err(TestbedError::UnknownApp(app.to_owned()));
        }
        let run = self.peek_run();
        self.stats.checkpoints += 1;
        if self.tracer.enabled() {
            self.tracer.event(
                "checkpoint",
                &[("app", Value::from(app)), ("run", Value::from(run))],
            );
        }
        Ok(run)
    }

    /// Resumes `app` from its checkpoint on a (presumably new) placement,
    /// charging `restart_cost_s` simulated seconds of restart overhead.
    ///
    /// The cost advances the tracer's simulated clock and accumulates in
    /// [`TestbedStats::restart_seconds`] — it is pure overhead, never
    /// counted as productive `simulated_seconds`. Validation failures
    /// ([`TestbedError::UnknownApp`], [`TestbedError::InvalidCost`])
    /// leave zero trace: no stats change, no clock advance, no event.
    pub fn resume_app(&mut self, app: &str, restart_cost_s: f64) -> Result<(), TestbedError> {
        if !self.apps.contains_key(app) {
            return Err(TestbedError::UnknownApp(app.to_owned()));
        }
        if !restart_cost_s.is_finite() || restart_cost_s < 0.0 {
            return Err(TestbedError::InvalidCost(format!(
                "cost must be finite and >= 0, got {restart_cost_s} for `{app}`"
            )));
        }
        self.stats.restarts += 1;
        self.stats.restart_seconds += restart_cost_s;
        self.tracer.advance_sim(restart_cost_s);
        self.tracer
            .telemetry_observe("testbed.restart_s", restart_cost_s);
        if self.tracer.enabled() {
            self.tracer.event(
                "resume",
                &[
                    ("app", Value::from(app)),
                    ("cost_s", Value::from(restart_cost_s)),
                ],
            );
        }
        Ok(())
    }

    /// Like [`SimTestbed::resume_app`], but validates an explicit target
    /// placement first: every target host must be inside the cluster
    /// *and alive* at the next run-counter value.
    ///
    /// This closes the decide/execute race a supervisor is exposed to —
    /// a host can enter a crash window between the moment a migration is
    /// planned and the moment it executes. Plain `resume_app` would
    /// happily charge the restart cost and let the next deployment
    /// explode; this form fails up front with
    /// [`TestbedError::HostDown`] (or [`TestbedError::HostOutOfRange`] /
    /// [`TestbedError::EmptyPlacement`]) and, like all validation
    /// failures, leaves zero trace: no stats change, no clock advance,
    /// no event.
    pub fn resume_app_on(
        &mut self,
        app: &str,
        hosts: &[usize],
        restart_cost_s: f64,
    ) -> Result<(), TestbedError> {
        if !self.apps.contains_key(app) {
            return Err(TestbedError::UnknownApp(app.to_owned()));
        }
        if hosts.is_empty() {
            return Err(TestbedError::EmptyPlacement {
                app: app.to_owned(),
            });
        }
        let total = self.cluster.hosts();
        let run = self.peek_run();
        for &host in hosts {
            if host >= total {
                return Err(TestbedError::HostOutOfRange { host, hosts: total });
            }
            if self.host_down_at(host, run) {
                return Err(TestbedError::HostDown { host, run });
            }
        }
        self.resume_app(app, restart_cost_s)
    }

    /// Captures the complete persistent state of this testbed for a
    /// whole-world savestate.
    ///
    /// Everything that determines future behaviour is included: cluster
    /// geometry, registered applications, the run counter (which keys
    /// every noise draw), accounting stats and the fault plan. The
    /// attached [`Tracer`] is *not* part of the snapshot — it is
    /// process-local plumbing the resuming caller reattaches (its clock
    /// position travels separately as `icm_obs::TracerState`). The
    /// bubble generator is derived from the cluster and rebuilt on
    /// restore.
    pub fn snapshot(&self) -> TestbedSnapshot {
        TestbedSnapshot {
            cluster: self.cluster.clone(),
            apps: self.apps.clone(),
            noise: self.noise,
            run_counter: self.run_counter,
            stats: self.stats,
            fault_plan: self.fault_plan.clone(),
        }
    }

    /// Rebuilds a testbed from a snapshot. The tracer starts disabled;
    /// reattach one with [`SimTestbed::set_tracer`].
    pub fn restore(snapshot: TestbedSnapshot) -> Self {
        let bubble = Bubble::new(snapshot.cluster.node(0));
        Self {
            cluster: snapshot.cluster,
            apps: snapshot.apps,
            bubble,
            noise: snapshot.noise,
            run_counter: snapshot.run_counter,
            stats: snapshot.stats,
            tracer: Tracer::disabled(),
            fault_plan: snapshot.fault_plan,
        }
    }

    fn next_run(&mut self) -> u64 {
        self.run_counter += 1;
        self.run_counter
    }

    /// Maximum CPU volatility among the *other* tenants sharing host `h`
    /// with placement `pi` (background tenants count at a fixed level).
    fn ambient_volatility(&self, placements: &[Placement], pi: usize, h: usize, run: u64) -> f64 {
        let mut vol: f64 = 0.0;
        for (qi, other) in placements.iter().enumerate() {
            if qi != pi && other.hosts.contains(&h) {
                vol = vol.max(self.apps[&other.app].cpu_volatility());
            }
        }
        if let Some(bg) = self.cluster.background() {
            let present = self
                .noise
                .uniform(stream::BACKGROUND_PRESENCE, run, h as u64)
                < bg.probability;
            if present {
                vol = vol.max(BACKGROUND_VOLATILITY);
            }
        }
        vol
    }

    fn validate(&self, deployment: &Deployment) -> Result<(), TestbedError> {
        let hosts = self.cluster.hosts();
        if !deployment.bubbles.is_empty() && deployment.bubbles.len() != hosts {
            return Err(TestbedError::BadVectorLength {
                expected: hosts,
                got: deployment.bubbles.len(),
            });
        }
        for &p in &deployment.bubbles {
            if !p.is_finite() || p < 0.0 {
                return Err(TestbedError::BadPressure(format!(
                    "pressure must be non-negative and finite, got {p}"
                )));
            }
        }
        for placement in &deployment.placements {
            if !self.apps.contains_key(&placement.app) {
                return Err(TestbedError::UnknownApp(placement.app.clone()));
            }
            if placement.hosts.is_empty() {
                return Err(TestbedError::EmptyPlacement {
                    app: placement.app.clone(),
                });
            }
            let mut seen = vec![false; hosts];
            for &h in &placement.hosts {
                if h >= hosts {
                    return Err(TestbedError::HostOutOfRange { host: h, hosts });
                }
                if seen[h] {
                    return Err(TestbedError::DuplicateHost {
                        app: placement.app.clone(),
                        host: h,
                    });
                }
                seen[h] = true;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::CrashWindow;
    use crate::sync::SyncPattern;
    use crate::MasterBehavior;

    fn heavy_profile() -> MemoryProfile {
        MemoryProfile::builder()
            .working_set_mb(25.0)
            .bandwidth_gbps(10.0)
            .miss_bandwidth_gbps(25.0)
            .cache_sensitivity(1.0)
            .bandwidth_sensitivity(0.8)
            .build()
            .expect("valid")
    }

    fn testbed() -> SimTestbed {
        let mut tb = SimTestbed::new(ClusterSpec::private8(), 7);
        tb.register_app(
            AppSpec::builder("coupled")
                .base_runtime_s(100.0)
                .worker_profile(heavy_profile())
                .pattern(SyncPattern::high_propagation(32))
                .build()
                .expect("valid"),
        );
        tb.register_app(
            AppSpec::builder("loose")
                .base_runtime_s(100.0)
                .worker_profile(heavy_profile())
                .pattern(SyncPattern::proportional(32))
                .build()
                .expect("valid"),
        );
        tb.register_app(
            AppSpec::builder("framework")
                .base_runtime_s(100.0)
                .worker_profile(heavy_profile())
                .pattern(SyncPattern::task_queue(96, 4))
                .master(MasterBehavior::Coordinator { demand_frac: 0.2 })
                .cpu_volatility(0.6)
                .build()
                .expect("valid"),
        );
        tb
    }

    #[test]
    fn solo_run_near_base_runtime() {
        let mut tb = testbed();
        let t = tb.run_solo("coupled").expect("runs");
        assert!((t - 100.0).abs() / 100.0 < 0.1, "got {t}");
    }

    #[test]
    fn unknown_app_is_an_error() {
        let mut tb = testbed();
        assert_eq!(
            tb.run_solo("nope").unwrap_err(),
            TestbedError::UnknownApp("nope".into())
        );
    }

    #[test]
    fn bubbles_slow_execution_monotonically() {
        let mut tb = testbed();
        let mut last = 0.0;
        for level in 0..=8 {
            let t = tb
                .run_with_bubbles("coupled", &[f64::from(level); 8])
                .expect("runs");
            assert!(t > last * 0.97, "level {level}: {t} vs {last}");
            last = t;
        }
        let solo = tb.run_solo("coupled").expect("runs");
        assert!(
            last / solo > 1.3,
            "full pressure must hurt: {}",
            last / solo
        );
    }

    #[test]
    fn coupled_app_propagates_single_node_interference() {
        let mut tb = testbed();
        let solo = tb.run_solo("coupled").expect("runs");
        let mut one = vec![0.0; 8];
        one[0] = 8.0;
        let t1 = tb.run_with_bubbles("coupled", &one).expect("runs");
        let t8 = tb.run_with_bubbles("coupled", &[8.0; 8]).expect("runs");
        let frac = (t1 - solo) / (t8 - solo);
        assert!(
            frac > 0.6,
            "one interfering node must cause most of the full-pressure delay, got {frac}"
        );
    }

    #[test]
    fn loose_app_degrades_proportionally() {
        let mut tb = testbed();
        let solo = tb.run_solo("loose").expect("runs");
        let mut one = vec![0.0; 8];
        one[0] = 8.0;
        let t1 = tb.run_with_bubbles("loose", &one).expect("runs");
        let t8 = tb.run_with_bubbles("loose", &[8.0; 8]).expect("runs");
        let frac = (t1 - solo) / (t8 - solo);
        assert!(
            (frac - 1.0 / 8.0).abs() < 0.1,
            "one of eight nodes ≈ 1/8 of the delay, got {frac}"
        );
    }

    #[test]
    fn framework_resists_single_node_interference() {
        let mut tb = testbed();
        let solo = tb.run_solo("framework").expect("runs");
        let mut one = vec![0.0; 8];
        one[3] = 8.0;
        let t1 = tb.run_with_bubbles("framework", &one).expect("runs");
        let t8 = tb.run_with_bubbles("framework", &[8.0; 8]).expect("runs");
        let frac = (t1 - solo) / (t8 - solo);
        assert!(
            frac < 0.30,
            "dynamic task routing should absorb one slow node, got {frac}"
        );
    }

    #[test]
    fn repeated_measurements_differ_by_noise_only() {
        let mut tb = testbed();
        let a = tb.run_solo("coupled").expect("runs");
        let b = tb.run_solo("coupled").expect("runs");
        assert_ne!(a, b, "distinct runs see distinct noise");
        assert!((a - b).abs() / a < 0.1, "but only noise-sized differences");
    }

    #[test]
    fn same_seed_reproduces_the_full_history() {
        let mut t1 = testbed();
        let mut t2 = testbed();
        for _ in 0..3 {
            assert_eq!(
                t1.run_solo("coupled").expect("runs"),
                t2.run_solo("coupled").expect("runs")
            );
        }
    }

    #[test]
    fn pair_run_slows_both_apps() {
        let mut tb = testbed();
        let solo_a = tb.run_solo("coupled").expect("runs");
        let solo_b = tb.run_solo("loose").expect("runs");
        let (a, b) = tb.run_pair("coupled", "loose").expect("runs");
        assert!(a > solo_a, "co-location must slow `coupled`");
        assert!(b > solo_b, "co-location must slow `loose`");
    }

    #[test]
    fn deployment_validation_catches_errors() {
        let mut tb = testbed();
        let bad_host = Deployment::of_placements(vec![Placement::new("coupled", vec![9])]);
        assert!(matches!(
            tb.run_deployment(&bad_host).unwrap_err(),
            TestbedError::HostOutOfRange { host: 9, hosts: 8 }
        ));
        let dup = Deployment::of_placements(vec![Placement::new("coupled", vec![1, 1])]);
        assert!(matches!(
            tb.run_deployment(&dup).unwrap_err(),
            TestbedError::DuplicateHost { host: 1, .. }
        ));
        let empty = Deployment::of_placements(vec![Placement::new("coupled", vec![])]);
        assert!(matches!(
            tb.run_deployment(&empty).unwrap_err(),
            TestbedError::EmptyPlacement { .. }
        ));
        let short_bubbles = Deployment {
            placements: vec![Placement::new("coupled", vec![0])],
            bubbles: vec![1.0; 3],
        };
        assert!(matches!(
            tb.run_deployment(&short_bubbles).unwrap_err(),
            TestbedError::BadVectorLength {
                expected: 8,
                got: 3
            }
        ));
        let nan_bubble = Deployment {
            placements: vec![Placement::new("coupled", vec![0])],
            bubbles: vec![f64::NAN; 8],
        };
        assert!(matches!(
            tb.run_deployment(&nan_bubble).unwrap_err(),
            TestbedError::BadPressure(_)
        ));
    }

    #[test]
    fn reporter_registers_app_interference() {
        let mut tb = testbed();
        let with_heavy = tb.reporter_slowdown_with_app("coupled").expect("runs");
        assert!(with_heavy > 1.0, "a heavy app must slow the reporter");
    }

    #[test]
    fn reporter_curve_monotone_in_bubble_pressure() {
        let mut tb = testbed();
        let mut last = 0.0;
        for level in 0..=8 {
            let sd = tb
                .reporter_slowdown_with_bubble(f64::from(level))
                .expect("valid pressure");
            assert!(sd > last * 0.98, "level {level}");
            last = sd;
        }
    }

    #[test]
    fn reporter_rejects_bad_pressure() {
        let mut tb = testbed();
        assert!(tb.reporter_slowdown_with_bubble(-1.0).is_err());
        assert!(tb.reporter_slowdown_with_bubble(f64::NAN).is_err());
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut tb = testbed();
        assert_eq!(tb.stats().runs, 0);
        let _ = tb.run_solo("coupled");
        let _ = tb.run_solo("loose");
        assert_eq!(tb.stats().runs, 2);
        assert!(tb.stats().simulated_seconds > 0.0);
        tb.reset_stats();
        assert_eq!(tb.stats(), TestbedStats::default());
    }

    #[test]
    fn stats_classify_runs_by_kind() {
        let mut tb = testbed();
        let _ = tb.run_solo("coupled").expect("runs");
        let _ = tb.run_with_bubbles("coupled", &[4.0; 8]).expect("runs");
        let _ = tb.run_pair("coupled", "loose").expect("runs");
        let _ = tb.reporter_slowdown_with_bubble(2.0).expect("runs");
        let _ = tb.reporter_slowdown_with_app("coupled").expect("runs");
        let mixed = Deployment::of_placements(vec![
            Placement::new("coupled", vec![0, 1, 2, 3]),
            Placement::new("loose", vec![4, 5, 6, 7]),
        ]);
        let _ = tb.run_deployment(&mixed).expect("runs");
        let stats = tb.stats();
        assert_eq!(stats.solo_runs, 1);
        assert_eq!(stats.bubble_runs, 1);
        assert_eq!(stats.pair_runs, 1);
        assert_eq!(stats.reporter_runs, 2);
        assert_eq!(stats.deployment_runs, 1);
        assert_eq!(
            stats.runs,
            stats.solo_runs
                + stats.bubble_runs
                + stats.pair_runs
                + stats.reporter_runs
                + stats.deployment_runs,
            "per-kind counters must partition the total"
        );
        assert_eq!(stats.kind_count(RunKind::Pair), 1);
    }

    #[test]
    fn stats_json_round_trips_and_accepts_legacy_shape() {
        let mut tb = testbed();
        let _ = tb.run_solo("coupled");
        let stats = tb.stats();
        let back: TestbedStats =
            icm_json::from_str(&icm_json::to_string(&stats)).expect("round-trips");
        assert_eq!(back, stats);
        // Pre-observability snapshots lack the per-kind counters.
        let legacy: TestbedStats =
            icm_json::from_str(r#"{"runs":3,"simulated_seconds":120.5}"#).expect("parses");
        assert_eq!(legacy.runs, 3);
        assert_eq!(legacy.solo_runs, 0);
    }

    #[test]
    fn failed_deployment_leaves_no_trace_in_accounting_or_noise() {
        // Regression test: a deployment that errors mid-way must count
        // nothing — stats, per-kind counters, the trace, and the noise
        // history of *subsequent* runs must all be as if the failed
        // attempt never happened.
        let mut with_failure = testbed();
        let (tracer, recorder) = Tracer::recording(64);
        with_failure.set_tracer(tracer);
        let before = with_failure.stats();
        let bad = Deployment {
            placements: vec![Placement::new("coupled", vec![0])],
            bubbles: vec![f64::NAN; 8],
        };
        assert!(with_failure.run_deployment(&bad).is_err());
        assert!(with_failure.run_solo("ghost").is_err());
        assert_eq!(with_failure.stats(), before, "failed runs count nothing");
        assert!(recorder.is_empty(), "failed runs emit no events");

        let mut clean = testbed();
        for _ in 0..3 {
            assert_eq!(
                with_failure.run_solo("coupled").expect("runs"),
                clean.run_solo("coupled").expect("runs"),
                "failed attempts must not perturb later noise"
            );
        }
        assert_eq!(with_failure.stats(), clean.stats());
    }

    #[test]
    fn traced_run_emits_span_and_app_events() {
        let mut tb = testbed();
        let (tracer, recorder) = Tracer::recording(256);
        tb.set_tracer(tracer);
        let seconds = tb.run_with_bubbles("coupled", &[2.0; 8]).expect("runs");
        let events = recorder.events();
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names[0], "run.begin");
        assert_eq!(names.iter().filter(|n| **n == "host_bubble").count(), 8);
        assert_eq!(*names.last().expect("events"), "run.end");
        let begin = &events[0];
        assert_eq!(begin.str("kind"), Some("bubble"));
        assert_eq!(begin.str("apps"), Some("coupled"));
        let app_run = events
            .iter()
            .find(|e| e.name == "app_run")
            .expect("app_run event");
        assert_eq!(app_run.num("seconds"), Some(seconds));
        assert!(app_run.num("sync_factor").expect("field") >= 1.0);
        let end = events.last().expect("events");
        assert_eq!(end.num("simulated_s"), Some(seconds));
        assert_eq!(
            tb.tracer().now().sim_s,
            seconds,
            "tracer clock advances by simulated seconds"
        );
    }

    #[test]
    fn tracing_does_not_change_measurements() {
        let mut plain = testbed();
        let mut traced = testbed();
        let (tracer, _recorder) = Tracer::recording(1024);
        traced.set_tracer(tracer);
        for _ in 0..3 {
            assert_eq!(
                plain.run_solo("coupled").expect("runs"),
                traced.run_solo("coupled").expect("runs")
            );
        }
        assert_eq!(plain.stats(), traced.stats());
    }

    #[test]
    fn background_tenants_add_unexplained_variance() {
        let quiet = ClusterSpec::private8();
        let noisy = quiet
            .clone()
            .with_background(Some(crate::BackgroundTenants::new(0.8, 6.0)));
        let spread = |cluster: ClusterSpec| {
            let mut tb = SimTestbed::new(cluster, 11);
            tb.register_app(
                AppSpec::builder("app")
                    .base_runtime_s(100.0)
                    .worker_profile(heavy_profile())
                    .pattern(SyncPattern::high_propagation(32))
                    .build()
                    .expect("valid"),
            );
            let times: Vec<f64> = (0..12).map(|_| tb.run_solo("app").expect("runs")).collect();
            let mean = times.iter().sum::<f64>() / times.len() as f64;
            let var = times.iter().map(|t| (t - mean).powi(2)).sum::<f64>() / times.len() as f64;
            (mean, var.sqrt() / mean)
        };
        let (quiet_mean, quiet_cv) = spread(quiet);
        let (noisy_mean, noisy_cv) = spread(noisy);
        assert!(
            noisy_mean > quiet_mean,
            "tenants must slow things on average"
        );
        assert!(noisy_cv > quiet_cv, "and make timings less predictable");
    }

    #[test]
    fn io_sensitive_app_suffers_extra_from_volatile_corunner() {
        let mut tb = testbed();
        tb.register_app(
            AppSpec::builder("gems-like")
                .base_runtime_s(100.0)
                .worker_profile(heavy_profile())
                .pattern(SyncPattern::proportional(32))
                .io_sensitivity(0.5)
                .build()
                .expect("valid"),
        );
        // Same memory pressure, but one co-runner has volatile CPU load.
        let avg = |tb: &mut SimTestbed, corunner: &str| {
            let mut total = 0.0;
            for _ in 0..8 {
                let (t, _) = tb.run_pair("gems-like", corunner).expect("runs");
                total += t;
            }
            total / 8.0
        };
        let with_steady = avg(&mut tb, "loose");
        let with_volatile = avg(&mut tb, "framework");
        assert!(
            with_volatile > with_steady * 1.02,
            "volatile co-runner must hurt the I/O-sensitive app more: {with_volatile} vs {with_steady}"
        );
    }

    #[test]
    fn inactive_fault_plan_changes_nothing() {
        // Installing a plan whose channels are all off must leave
        // measurements, stats and traces bit-for-bit identical to a
        // testbed with no plan at all.
        let mut plain = testbed();
        let mut planned = testbed();
        planned.set_fault_plan(Some(FaultPlan::default()));
        let (plain_tracer, plain_rec) = Tracer::recording(256);
        let (planned_tracer, planned_rec) = Tracer::recording(256);
        plain.set_tracer(plain_tracer);
        planned.set_tracer(planned_tracer);
        for _ in 0..3 {
            assert_eq!(
                plain.run_with_bubbles("coupled", &[2.0; 8]).expect("runs"),
                planned
                    .run_with_bubbles("coupled", &[2.0; 8])
                    .expect("runs"),
            );
        }
        assert_eq!(plain.stats(), planned.stats());
        assert_eq!(plain_rec.events(), planned_rec.events());
    }

    #[test]
    fn probe_failures_are_deterministic_and_counted() {
        let run_history = |prob: f64| {
            let mut tb = testbed();
            tb.set_fault_plan(Some(FaultPlan::probe_failures(prob)));
            let outcomes: Vec<Result<f64, TestbedError>> =
                (0..40).map(|_| tb.run_solo("coupled")).collect();
            (outcomes, tb.stats())
        };
        let (a, stats_a) = run_history(0.3);
        let (b, stats_b) = run_history(0.3);
        assert_eq!(a, b, "same seed, same injected failures");
        assert_eq!(stats_a, stats_b);
        let failures = a.iter().filter(|r| r.is_err()).count() as u64;
        assert!(failures > 0, "30% over 40 runs must fail at least once");
        assert_eq!(stats_a.injected_probe_failures, failures);
        assert_eq!(
            stats_a.runs,
            40 - failures,
            "failed probes never count as completed runs"
        );
        for outcome in a.iter().filter(|r| r.is_err()) {
            assert!(matches!(outcome, Err(TestbedError::ProbeFailed { .. })));
        }
    }

    #[test]
    fn failed_injections_do_not_perturb_surviving_runs() {
        // The runs that complete under a fault plan must measure exactly
        // what the same run-counter values measure fault-free: faults
        // remove measurements, they never alter them.
        let mut faulty = testbed();
        faulty.set_fault_plan(Some(FaultPlan::probe_failures(0.3)));
        let mut clean = testbed();
        for _ in 0..20 {
            let expected = clean.run_solo("coupled").expect("runs");
            if let Ok(measured) = faulty.run_solo("coupled") {
                assert_eq!(measured, expected);
            }
        }
    }

    #[test]
    fn crash_window_rejects_only_covered_runs() {
        let mut tb = testbed();
        tb.set_fault_plan(Some(FaultPlan {
            crash_windows: vec![CrashWindow {
                host: 0,
                from_run: 2,
                until_run: 3,
            }],
            ..FaultPlan::default()
        }));
        assert!(tb.run_solo("coupled").is_ok()); // run 1
        let err = tb.run_solo("coupled").unwrap_err(); // run 2
        assert_eq!(err, TestbedError::HostDown { host: 0, run: 2 });
        assert!(tb.run_solo("coupled").is_err()); // run 3
        assert!(tb.run_solo("coupled").is_ok()); // run 4
        assert_eq!(tb.stats().injected_host_down, 2);
        assert_eq!(tb.stats().runs, 2);
    }

    #[test]
    fn stragglers_inflate_and_timeouts_waste() {
        let always_straggle = |severity: f64, deadline: f64| {
            let mut tb = testbed();
            tb.set_fault_plan(Some(FaultPlan {
                straggler_prob: 1.0,
                straggler_severity: severity,
                deadline_factor: deadline,
                ..FaultPlan::default()
            }));
            (tb.run_solo("coupled"), tb.stats())
        };
        // Mild straggling under a generous deadline completes, inflated.
        let (ok, stats) = always_straggle(0.5, 10.0);
        let inflated = ok.expect("completes");
        let mut clean = testbed();
        let baseline = clean.run_solo("coupled").expect("runs");
        assert!(inflated > baseline, "straggler must inflate the runtime");
        assert_eq!(stats.injected_stragglers, 1);
        assert_eq!(stats.injected_timeouts, 0);
        assert_eq!(stats.wasted_seconds, 0.0);
        // A deadline below the inflation kills the run.
        let (killed, stats) = always_straggle(0.5, 1.0);
        assert!(matches!(killed, Err(TestbedError::ProbeTimeout { .. })));
        assert_eq!(stats.injected_timeouts, 1);
        assert_eq!(stats.runs, 0);
        assert!(
            (stats.wasted_seconds - baseline).abs() / baseline < 1e-9,
            "killed at deadline 1.0 wastes exactly the nominal runtime: {} vs {baseline}",
            stats.wasted_seconds
        );
        assert_eq!(stats.simulated_seconds, 0.0);
    }

    #[test]
    fn corruption_contaminates_measurements_visibly() {
        let mut clean = testbed();
        let mut dirty = testbed();
        dirty.set_fault_plan(Some(FaultPlan {
            corruption_prob: 1.0,
            corruption_scale: 1.0,
            ..FaultPlan::default()
        }));
        for _ in 0..5 {
            let truth = clean.run_solo("coupled").expect("runs");
            let corrupted = dirty.run_solo("coupled").expect("runs");
            assert!(
                corrupted > truth,
                "every measurement is inflated: {corrupted} vs {truth}"
            );
        }
        assert_eq!(dirty.stats().injected_corruptions, 5);
        assert_eq!(dirty.stats().runs, 5, "corrupted runs still complete");
    }

    #[test]
    fn fault_events_are_traced_per_injection() {
        let mut tb = testbed();
        tb.set_fault_plan(Some(FaultPlan::probe_failures(1.0)));
        let (tracer, recorder) = Tracer::recording(64);
        tb.set_tracer(tracer);
        assert!(tb.run_solo("coupled").is_err());
        let events = recorder.events();
        assert_eq!(events.len(), 1, "a failed probe emits only its fault event");
        assert_eq!(events[0].name, "fault");
        assert_eq!(events[0].str("kind"), Some("probe_failed"));
        assert_eq!(events[0].num("run"), Some(1.0));
    }

    #[test]
    fn fault_error_messages_are_informative() {
        let failed = TestbedError::ProbeFailed { run: 17 };
        assert!(failed.to_string().contains("17"));
        let timeout = TestbedError::ProbeTimeout { run: 4 };
        assert!(timeout.to_string().contains("deadline"));
        let down = TestbedError::HostDown { host: 3, run: 9 };
        assert!(down.to_string().contains("host 3"));
        assert!(down.to_string().contains('9'));
    }

    #[test]
    fn error_messages_are_informative() {
        let err = TestbedError::UnknownApp("ghost".into());
        assert!(err.to_string().contains("ghost"));
        let err = TestbedError::BadVectorLength {
            expected: 8,
            got: 2,
        };
        assert!(err.to_string().contains('8'));
    }

    #[test]
    fn every_error_variant_has_a_distinct_display() {
        // Exhaustive: one instance of every variant, so a new variant
        // without a sensible message fails here, not in a user's log.
        let variants = [
            TestbedError::UnknownApp("ghost".into()),
            TestbedError::HostOutOfRange { host: 9, hosts: 8 },
            TestbedError::BadVectorLength {
                expected: 8,
                got: 2,
            },
            TestbedError::DuplicateHost {
                app: "M.milc".into(),
                host: 3,
            },
            TestbedError::EmptyPlacement { app: "H.KM".into() },
            TestbedError::BadPressure("NaN".into()),
            TestbedError::ProbeFailed { run: 17 },
            TestbedError::ProbeTimeout { run: 4 },
            TestbedError::HostDown { host: 3, run: 9 },
            TestbedError::InvalidCost("NaN".into()),
        ];
        let expected = [
            "unknown application `ghost`",
            "host 9 out of range for a 8-host cluster",
            "per-host vector must have length 8, got 2",
            "placement of `M.milc` lists host 3 twice",
            "placement of `H.KM` has no hosts",
            "invalid bubble pressure: NaN",
            "injected transient probe failure on run 17",
            "run 4 straggled past its kill deadline and was terminated",
            "host 3 is down (crash window) on run 9",
            "invalid restart cost: NaN",
        ];
        let rendered: Vec<String> = variants.iter().map(TestbedError::to_string).collect();
        assert_eq!(rendered, expected);
        // Every message is unique, and every variant survives a
        // clone/compare round trip (errors cross thread and retry-loop
        // boundaries by value).
        let unique: std::collections::BTreeSet<&str> =
            rendered.iter().map(String::as_str).collect();
        assert_eq!(unique.len(), variants.len());
        for v in &variants {
            assert_eq!(v, &v.clone());
        }
    }

    #[test]
    fn host_down_peek_matches_deployment_rejections_without_consuming_runs() {
        let mut tb = testbed();
        tb.set_fault_plan(Some(FaultPlan {
            crash_windows: vec![CrashWindow {
                host: 2,
                from_run: 2,
                until_run: 3,
            }],
            ..FaultPlan::default()
        }));
        // Peeking is pure: ask as often as you like, nothing moves.
        assert_eq!(tb.peek_run(), 1);
        assert!(!tb.host_down_at(2, 1));
        assert!(tb.host_down_at(2, 2));
        assert!(tb.downed_hosts_at(1).is_empty());
        assert_eq!(tb.downed_hosts_at(2), vec![2]);
        assert_eq!(tb.downed_hosts_at(3), vec![2]);
        assert_eq!(tb.peek_run(), 1);
        // The peek predicts exactly what a deployment would hit: run 1 is
        // fine, run 2 lands in the window and is rejected.
        assert!(tb.run_solo("coupled").is_ok());
        assert_eq!(tb.peek_run(), 2);
        let deployment = Deployment::of_placements(vec![Placement::new("coupled", vec![2, 3])]);
        let err = tb.run_deployment(&deployment).unwrap_err();
        assert_eq!(err, TestbedError::HostDown { host: 2, run: 2 });
    }

    #[test]
    fn host_down_peek_is_false_without_a_fault_plan() {
        let tb = testbed();
        assert!(!tb.host_down_at(0, 1));
        assert!(tb.downed_hosts_at(999).is_empty());
    }

    #[test]
    fn checkpoint_resume_charges_restart_cost_and_traces() {
        let (tracer, recorder) = Tracer::recording(64);
        let mut tb = testbed();
        tb.set_tracer(tracer);
        let run = tb.checkpoint_app("coupled").expect("registered app");
        assert_eq!(run, 1);
        tb.resume_app("coupled", 12.5).expect("valid cost");
        tb.resume_app("coupled", 0.0).expect("zero cost is legal");
        let stats = tb.stats();
        assert_eq!(stats.checkpoints, 1);
        assert_eq!(stats.restarts, 2);
        assert!((stats.restart_seconds - 12.5).abs() < 1e-12);
        // Restart cost is overhead, not productive time, and consumes no
        // run-counter values.
        assert_eq!(stats.runs, 0);
        assert_eq!(stats.simulated_seconds, 0.0);
        assert_eq!(tb.peek_run(), 1);
        let events = recorder.events();
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["checkpoint", "resume", "resume"]);
        assert_eq!(events[0].str("app"), Some("coupled"));
        assert_eq!(events[0].num("run"), Some(1.0));
        assert_eq!(events[1].num("cost_s"), Some(12.5));
        // The simulated clock advanced by exactly the restart cost.
        assert!((events[2].sim_s - 12.5).abs() < 1e-12);
    }

    #[test]
    fn checkpoint_resume_validation_failures_leave_zero_trace() {
        let mut tb = testbed();
        let before = tb.stats();
        assert_eq!(
            tb.checkpoint_app("ghost").unwrap_err(),
            TestbedError::UnknownApp("ghost".into())
        );
        assert_eq!(
            tb.resume_app("ghost", 1.0).unwrap_err(),
            TestbedError::UnknownApp("ghost".into())
        );
        for bad in [f64::NAN, f64::INFINITY, -0.5] {
            let err = tb.resume_app("coupled", bad).unwrap_err();
            assert!(matches!(err, TestbedError::InvalidCost { .. }), "{bad}");
        }
        assert_eq!(tb.stats(), before);
        assert_eq!(tb.peek_run(), 1);
    }

    #[test]
    fn resume_app_on_rejects_a_downed_target_without_side_effects() {
        let mut tb = testbed();
        tb.set_fault_plan(Some(FaultPlan {
            crash_windows: vec![CrashWindow {
                host: 3,
                from_run: 1,
                until_run: 10,
            }],
            ..FaultPlan::default()
        }));
        let before = tb.stats();
        // The planned target includes host 3, which is inside a crash
        // window at the next run: typed error, zero side effects.
        let err = tb.resume_app_on("coupled", &[2, 3], 5.0).unwrap_err();
        assert_eq!(err, TestbedError::HostDown { host: 3, run: 1 });
        assert_eq!(tb.stats(), before);
        // A live target behaves exactly like resume_app.
        tb.resume_app_on("coupled", &[0, 1], 5.0)
            .expect("live hosts");
        assert_eq!(tb.stats().restarts, 1);
        // And the other validation failures are typed too.
        assert_eq!(
            tb.resume_app_on("ghost", &[0], 1.0).unwrap_err(),
            TestbedError::UnknownApp("ghost".into())
        );
        assert_eq!(
            tb.resume_app_on("coupled", &[], 1.0).unwrap_err(),
            TestbedError::EmptyPlacement {
                app: "coupled".into()
            }
        );
        assert_eq!(
            tb.resume_app_on("coupled", &[99], 1.0).unwrap_err(),
            TestbedError::HostOutOfRange { host: 99, hosts: 8 }
        );
    }

    #[test]
    fn snapshot_restore_resumes_the_exact_noise_history() {
        // Reference: one uninterrupted testbed.
        let mut full = testbed();
        for _ in 0..3 {
            full.run_solo("coupled").expect("runs");
        }
        let reference: Vec<f64> = (0..4)
            .map(|_| full.run_solo("coupled").expect("runs"))
            .collect();

        // Same prefix, then snapshot → JSON → restore, then the suffix.
        let mut prefix = testbed();
        for _ in 0..3 {
            prefix.run_solo("coupled").expect("runs");
        }
        let text = icm_json::to_string(&prefix.snapshot());
        let snap: TestbedSnapshot = icm_json::from_str(&text).expect("snapshot round-trips");
        assert_eq!(snap, prefix.snapshot());
        let mut resumed = SimTestbed::restore(snap);
        let suffix: Vec<f64> = (0..4)
            .map(|_| resumed.run_solo("coupled").expect("runs"))
            .collect();
        assert_eq!(
            reference, suffix,
            "restored run must continue the noise stream"
        );
        assert_eq!(resumed.stats(), full.stats());
        assert_eq!(resumed.peek_run(), full.peek_run());
    }

    #[test]
    fn snapshot_carries_the_fault_plan() {
        let mut tb = testbed();
        tb.set_fault_plan(Some(FaultPlan {
            crash_windows: vec![CrashWindow {
                host: 1,
                from_run: 4,
                until_run: 6,
            }],
            ..FaultPlan::default()
        }));
        let restored = SimTestbed::restore(tb.snapshot());
        assert!(restored.host_down_at(1, 5));
        assert!(!restored.host_down_at(1, 7));
    }
}
