/// Deterministic, addressable noise source.
///
/// Every stochastic effect in the simulator — per-phase execution jitter,
/// measurement noise, background-tenant arrival — is drawn from this
/// generator, addressed by `(seed, stream, run, unit)`. The same address
/// always yields the same value, so a whole experiment is reproducible
/// from a single `u64` seed, while distinct runs/phases/nodes decorrelate.
///
/// Values are produced by hashing the address with a SplitMix64-style
/// finalizer and converting to normal deviates via Box–Muller.
///
/// # Example
///
/// ```
/// use icm_simcluster::Noise;
///
/// let noise = Noise::new(42);
/// let a = noise.lognormal(0.02, 1, 7, 3);
/// let b = noise.lognormal(0.02, 1, 7, 3);
/// assert_eq!(a, b, "same address, same draw");
/// assert!(a > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Noise {
    seed: u64,
}

icm_json::impl_json!(struct Noise { seed });

/// Noise stream identifiers, used to decorrelate different uses of the
/// same `(run, unit)` address.
pub(crate) mod stream {
    pub const PHASE: u64 = 1;
    pub const MEASUREMENT: u64 = 2;
    pub const BACKGROUND_PRESENCE: u64 = 3;
    pub const BACKGROUND_PRESSURE: u64 = 4;
    pub const IO_VOLATILITY: u64 = 5;
    pub const PHASE_DRIFT: u64 = 6;
    pub const FAULT_PROBE: u64 = 7;
    pub const FAULT_STRAGGLER: u64 = 8;
    pub const FAULT_CORRUPT: u64 = 9;
}

impl Noise {
    /// Creates a noise source from a master seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// The master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Uniform deviate in `[0, 1)` for the given address.
    pub fn uniform(&self, stream: u64, run: u64, unit: u64) -> f64 {
        let h = mix64(
            self.seed ^ mix64(stream) ^ mix64(run).rotate_left(17) ^ mix64(unit).rotate_left(41),
        );
        // 53 bits of mantissa.
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Standard normal deviate for the given address (Box–Muller).
    pub fn normal(&self, stream: u64, run: u64, unit: u64) -> f64 {
        let u1 = self.uniform(stream, run, unit.wrapping_mul(2)).max(1e-12);
        let u2 = self.uniform(stream, run, unit.wrapping_mul(2).wrapping_add(1));
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Multiplicative lognormal factor `exp(sigma · z)`, mean ≈ 1 for
    /// small `sigma`. Returns exactly 1 when `sigma` is zero.
    pub fn lognormal(&self, sigma: f64, stream: u64, run: u64, unit: u64) -> f64 {
        if sigma == 0.0 {
            return 1.0;
        }
        (sigma * self.normal(stream, run, unit)).exp()
    }
}

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Packs a `(node, phase)` pair into a single unit id for addressing.
pub(crate) fn unit_id(node: usize, phase: usize) -> u64 {
    ((node as u64) << 32) ^ (phase as u64 & 0xFFFF_FFFF)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_address() {
        let n = Noise::new(9);
        assert_eq!(n.uniform(1, 2, 3), n.uniform(1, 2, 3));
        assert_eq!(n.normal(1, 2, 3), n.normal(1, 2, 3));
    }

    #[test]
    fn different_addresses_decorrelate() {
        let n = Noise::new(9);
        let base = n.uniform(1, 2, 3);
        assert_ne!(base, n.uniform(1, 2, 4));
        assert_ne!(base, n.uniform(1, 3, 3));
        assert_ne!(base, n.uniform(2, 2, 3));
        assert_ne!(base, Noise::new(10).uniform(1, 2, 3));
    }

    #[test]
    fn uniform_in_unit_interval() {
        let n = Noise::new(1234);
        for i in 0..10_000u64 {
            let u = n.uniform(1, i, i * 31);
            assert!((0.0..1.0).contains(&u), "out of range: {u}");
        }
    }

    #[test]
    fn uniform_mean_near_half() {
        let n = Noise::new(77);
        let mean: f64 = (0..20_000u64).map(|i| n.uniform(5, i, 0)).sum::<f64>() / 20_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn normal_moments_are_standard() {
        let n = Noise::new(4242);
        let count = 20_000u64;
        let samples: Vec<f64> = (0..count).map(|i| n.normal(7, i, 1)).collect();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / count as f64;
        assert!(mean.abs() < 0.03, "mean was {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance was {var}");
    }

    #[test]
    fn lognormal_positive_and_centered() {
        let n = Noise::new(5);
        let count = 10_000u64;
        let mean = (0..count)
            .map(|i| {
                let f = n.lognormal(0.05, 1, i, 2);
                assert!(f > 0.0);
                f
            })
            .sum::<f64>()
            / count as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn zero_sigma_is_exactly_one() {
        let n = Noise::new(5);
        assert_eq!(n.lognormal(0.0, 1, 2, 3), 1.0);
    }

    #[test]
    fn unit_id_distinguishes_node_and_phase() {
        assert_ne!(unit_id(1, 2), unit_id(2, 1));
        assert_ne!(unit_id(0, 5), unit_id(5, 0));
    }
}
