//! Deterministic fault injection.
//!
//! A [`FaultPlan`] describes the failure behaviour of the simulated
//! cluster: transient probe failures, straggler runs that blow past a
//! kill deadline, multiplicative measurement corruption, and per-host
//! crash windows. The plan carries *no* random state of its own — every
//! probabilistic decision is an addressed draw from the testbed's
//! [`Noise`](crate::Noise) source (streams `FAULT_*`), keyed by the run
//! counter, so two same-seed histories inject byte-identical faults and
//! a disabled plan leaves the testbed bit-for-bit unchanged.

use std::error::Error;
use std::fmt;

/// A window of runs during which one host is unreachable.
///
/// Windows are explicit (not drawn) so experiments can script correlated
/// outages; both bounds are inclusive run-counter values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashWindow {
    /// The host that is down.
    pub host: usize,
    /// First run (inclusive) of the outage.
    pub from_run: u64,
    /// Last run (inclusive) of the outage.
    pub until_run: u64,
}

icm_json::impl_json!(struct CrashWindow { host, from_run, until_run });

impl CrashWindow {
    /// Whether this window covers `host` at `run`.
    ///
    /// # Contract
    ///
    /// * Both bounds are **inclusive**: the window covers exactly the
    ///   runs `from_run..=until_run`, so a single-run outage is written
    ///   `from_run == until_run`.
    /// * An inverted window (`from_run > until_run`) covers nothing.
    /// * Windows on *different* hosts never interact; overlapping
    ///   windows on the *same* host behave as their union — a host is
    ///   down iff any window covers it (see
    ///   [`FaultPlan::host_down`]).
    pub fn covers(&self, host: usize, run: u64) -> bool {
        self.host == host && (self.from_run..=self.until_run).contains(&run)
    }
}

/// Typed rejection of an invalid [`FaultPlan`] parameter.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultPlanError {
    /// A probability field is not a finite value in `[0, 1]`.
    BadProbability {
        /// Name of the offending field.
        field: &'static str,
        /// The rejected value.
        got: f64,
    },
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::BadProbability { field, got } => write!(
                f,
                "invalid fault probability `{field}`: {got} (must be a finite value in [0, 1])"
            ),
        }
    }
}

impl Error for FaultPlanError {}

fn check_prob(field: &'static str, prob: f64) -> Result<f64, FaultPlanError> {
    if prob.is_finite() && (0.0..=1.0).contains(&prob) {
        Ok(prob)
    } else {
        Err(FaultPlanError::BadProbability { field, got: prob })
    }
}

/// The failure behaviour injected into a [`SimTestbed`](crate::SimTestbed).
///
/// All probabilities are per-deployment-run and compared against uniform
/// draws in `[0, 1)`, so `0.0` disables a channel and values `>= 1.0`
/// fire on every run. The default plan injects nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Probability that a deployment run fails outright (transient probe
    /// failure: the measurement is lost before any cluster time is spent).
    pub probe_failure_prob: f64,
    /// Probability that a run straggles (its runtime is inflated).
    pub straggler_prob: f64,
    /// Maximum relative inflation of a straggling run: the straggle
    /// factor is drawn uniformly from `[1, 1 + severity]`.
    pub straggler_severity: f64,
    /// Kill deadline as a multiple of the nominal runtime: a straggler
    /// whose factor reaches this bound is killed at the deadline and the
    /// run reports [`TestbedError::ProbeTimeout`](crate::TestbedError),
    /// charging `nominal × deadline_factor` as wasted cluster time.
    pub deadline_factor: f64,
    /// Probability that one placement's measurement is corrupted.
    pub corruption_prob: f64,
    /// Maximum relative size of a corruption: the measured seconds are
    /// multiplied by a factor drawn uniformly from `[1, 1 + scale]`.
    pub corruption_scale: f64,
    /// Scripted per-host outage windows.
    pub crash_windows: Vec<CrashWindow>,
}

icm_json::impl_json!(struct FaultPlan {
    probe_failure_prob = 0.0,
    straggler_prob = 0.0,
    straggler_severity = 0.0,
    deadline_factor = 2.0,
    corruption_prob = 0.0,
    corruption_scale = 0.0,
    crash_windows = Vec::new()
});

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            probe_failure_prob: 0.0,
            straggler_prob: 0.0,
            straggler_severity: 0.0,
            deadline_factor: 2.0,
            corruption_prob: 0.0,
            corruption_scale: 0.0,
            crash_windows: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// A plan that only injects transient probe failures with the given
    /// per-run probability.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is not a finite value in `[0, 1]` (see
    /// [`try_probe_failures`](Self::try_probe_failures) for the
    /// non-panicking form).
    pub fn probe_failures(prob: f64) -> Self {
        match Self::try_probe_failures(prob) {
            Ok(plan) => plan,
            Err(err) => panic!("{err}"),
        }
    }

    /// Fallible form of [`probe_failures`](Self::probe_failures).
    ///
    /// # Errors
    ///
    /// Returns [`FaultPlanError::BadProbability`] if `prob` is NaN,
    /// infinite, or outside `[0, 1]`.
    pub fn try_probe_failures(prob: f64) -> Result<Self, FaultPlanError> {
        Ok(Self {
            probe_failure_prob: check_prob("probe_failure_prob", prob)?,
            ..Self::default()
        })
    }

    /// A plan exercising every channel at a common rate: probe failures
    /// and stragglers at `prob`, corruption at `prob / 2`, stragglers
    /// inflated up to +80% against a 1.5× kill deadline.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is not a finite value in `[0, 1]` (see
    /// [`try_uniform`](Self::try_uniform) for the non-panicking form).
    pub fn uniform(prob: f64) -> Self {
        match Self::try_uniform(prob) {
            Ok(plan) => plan,
            Err(err) => panic!("{err}"),
        }
    }

    /// Fallible form of [`uniform`](Self::uniform).
    ///
    /// # Errors
    ///
    /// Returns [`FaultPlanError::BadProbability`] if `prob` is NaN,
    /// infinite, or outside `[0, 1]`.
    pub fn try_uniform(prob: f64) -> Result<Self, FaultPlanError> {
        Ok(Self {
            probe_failure_prob: check_prob("probe_failure_prob", prob)?,
            straggler_prob: check_prob("straggler_prob", prob)?,
            straggler_severity: 0.8,
            deadline_factor: 1.5,
            corruption_prob: check_prob("corruption_prob", prob / 2.0)?,
            corruption_scale: 0.6,
            crash_windows: Vec::new(),
        })
    }

    /// Whether any injection channel can fire.
    pub fn is_active(&self) -> bool {
        self.probe_failure_prob > 0.0
            || self.straggler_prob > 0.0
            || self.corruption_prob > 0.0
            || !self.crash_windows.is_empty()
    }

    /// Whether `host` is inside a crash window at `run`.
    pub fn host_down(&self, host: usize, run: u64) -> bool {
        self.crash_windows.iter().any(|w| w.covers(host, run))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let plan = FaultPlan::default();
        assert!(!plan.is_active());
        assert!(!plan.host_down(0, 1));
    }

    #[test]
    fn crash_windows_are_inclusive_and_per_host() {
        let plan = FaultPlan {
            crash_windows: vec![CrashWindow {
                host: 3,
                from_run: 10,
                until_run: 12,
            }],
            ..FaultPlan::default()
        };
        assert!(plan.is_active());
        assert!(!plan.host_down(3, 9));
        assert!(plan.host_down(3, 10));
        assert!(plan.host_down(3, 12));
        assert!(!plan.host_down(3, 13));
        assert!(!plan.host_down(2, 11));
    }

    #[test]
    fn constructors_activate_expected_channels() {
        let probes = FaultPlan::probe_failures(0.1);
        assert_eq!(probes.probe_failure_prob, 0.1);
        assert_eq!(probes.straggler_prob, 0.0);
        assert!(probes.is_active());
        let all = FaultPlan::uniform(0.2);
        assert_eq!(all.probe_failure_prob, 0.2);
        assert_eq!(all.corruption_prob, 0.1);
        assert!(all.straggler_severity > 0.0);
        assert!(all.deadline_factor > 1.0);
    }

    #[test]
    fn constructors_reject_nan_and_out_of_range_probabilities() {
        for bad in [f64::NAN, -0.1, 1.5, f64::INFINITY, f64::NEG_INFINITY] {
            let err = FaultPlan::try_probe_failures(bad).expect_err("rejected");
            match err {
                FaultPlanError::BadProbability { field, got } => {
                    assert_eq!(field, "probe_failure_prob");
                    assert!(got.is_nan() && bad.is_nan() || got == bad);
                }
            }
            assert!(FaultPlan::try_uniform(bad).is_err(), "{bad} accepted");
        }
        // The error renders with the offending field and value.
        let err = FaultPlan::try_uniform(1.5).expect_err("rejected");
        let text = err.to_string();
        assert!(text.contains("probe_failure_prob"), "{text}");
        assert!(text.contains("1.5"), "{text}");
        // Boundary values are fine: 0 disables, 1 always fires.
        assert!(FaultPlan::try_probe_failures(0.0).is_ok());
        assert!(FaultPlan::try_probe_failures(1.0).is_ok());
        assert!(FaultPlan::try_uniform(1.0).is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid fault probability `probe_failure_prob`")]
    fn probe_failures_panics_on_nan() {
        let _ = FaultPlan::probe_failures(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "invalid fault probability")]
    fn uniform_panics_on_out_of_range() {
        let _ = FaultPlan::uniform(-0.1);
    }

    #[test]
    fn fault_plan_error_is_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<FaultPlanError>();
    }

    #[test]
    fn crash_window_bounds_are_inclusive_on_both_ends() {
        let w = CrashWindow {
            host: 2,
            from_run: 5,
            until_run: 7,
        };
        assert!(!w.covers(2, 4));
        assert!(w.covers(2, 5), "from_run is inclusive");
        assert!(w.covers(2, 6));
        assert!(w.covers(2, 7), "until_run is inclusive");
        assert!(!w.covers(2, 8));
        // Single-run outage: from_run == until_run covers exactly one run.
        let single = CrashWindow {
            host: 0,
            from_run: 3,
            until_run: 3,
        };
        assert!(!single.covers(0, 2));
        assert!(single.covers(0, 3));
        assert!(!single.covers(0, 4));
        // Inverted bounds cover nothing.
        let inverted = CrashWindow {
            host: 1,
            from_run: 9,
            until_run: 4,
        };
        for run in 0..12 {
            assert!(!inverted.covers(1, run), "inverted window fired at {run}");
        }
    }

    #[test]
    fn overlapping_windows_on_one_host_union() {
        let plan = FaultPlan {
            crash_windows: vec![
                CrashWindow {
                    host: 4,
                    from_run: 2,
                    until_run: 5,
                },
                CrashWindow {
                    host: 4,
                    from_run: 4,
                    until_run: 8,
                },
                // A different host's window never leaks onto host 4.
                CrashWindow {
                    host: 5,
                    from_run: 0,
                    until_run: 100,
                },
            ],
            ..FaultPlan::default()
        };
        // Overlap behaves as the union [2, 8]: no double-counting, no gap.
        for run in 0..=10 {
            assert_eq!(plan.host_down(4, run), (2..=8).contains(&run), "run {run}");
        }
        assert!(plan.host_down(5, 50));
        assert!(!plan.host_down(3, 50));
    }

    #[test]
    fn plan_round_trips_and_accepts_sparse_json() {
        let plan = FaultPlan {
            probe_failure_prob: 0.25,
            crash_windows: vec![CrashWindow {
                host: 1,
                from_run: 2,
                until_run: 3,
            }],
            ..FaultPlan::default()
        };
        let back: FaultPlan = icm_json::from_str(&icm_json::to_string(&plan)).expect("round-trips");
        assert_eq!(back, plan);
        // Every field is defaulted, so a sparse plan parses.
        let sparse: FaultPlan =
            icm_json::from_str(r#"{"probe_failure_prob":0.5}"#).expect("parses");
        assert_eq!(sparse.probe_failure_prob, 0.5);
        assert_eq!(sparse.deadline_factor, 2.0);
        assert!(sparse.crash_windows.is_empty());
    }
}
