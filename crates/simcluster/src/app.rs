use icm_simnode::MemoryProfile;

use crate::sync::{PhaseModulation, SyncPattern};

/// Role of the first node an application occupies.
///
/// MPI applications compute on every rank including rank 0; Hadoop and
/// Spark have a master/driver that coordinates but processes little data
/// (§3.4 of the paper), which both lowers the interference the application
/// generates on that node and removes the node from the worker pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MasterBehavior {
    /// Rank 0 is an ordinary worker (MPI style).
    Participates,
    /// The first node only coordinates; its memory demand is the worker
    /// demand scaled by `demand_frac`, and it executes no tasks.
    Coordinator {
        /// Fraction of a worker's memory demand the master exerts.
        demand_frac: f64,
    },
}

impl icm_json::ToJson for MasterBehavior {
    fn to_json(&self) -> icm_json::Json {
        match self {
            MasterBehavior::Participates => icm_json::Json::String("Participates".to_owned()),
            MasterBehavior::Coordinator { demand_frac } => icm_json::Json::object([(
                "Coordinator",
                icm_json::Json::object([("demand_frac", demand_frac.to_json())]),
            )]),
        }
    }
}

impl icm_json::FromJson for MasterBehavior {
    fn from_json(value: &icm_json::Json) -> Result<Self, icm_json::JsonError> {
        if value.as_str() == Some("Participates") {
            return Ok(MasterBehavior::Participates);
        }
        if let Some(body) = value.get("Coordinator") {
            let fields = icm_json::expect_object(body, "MasterBehavior::Coordinator")?;
            return Ok(MasterBehavior::Coordinator {
                demand_frac: icm_json::parse_field(fields, "Coordinator", "demand_frac")?,
            });
        }
        Err(icm_json::JsonError::msg("unknown MasterBehavior variant"))
    }
}

/// Full description of one distributed application instance as the
/// simulator executes it.
///
/// An `AppSpec` combines the per-node memory behaviour (what one host's
/// worth of the application's VMs demands from the LLC and memory bus)
/// with the distributed structure (how node slowdowns combine into a final
/// runtime). Construct with [`AppSpec::builder`].
///
/// # Example
///
/// ```
/// use icm_simcluster::{AppSpec, SyncPattern};
/// use icm_simnode::MemoryProfile;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let profile = MemoryProfile::builder().working_set_mb(16.0).build()?;
/// let app = AppSpec::builder("toy")
///     .base_runtime_s(120.0)
///     .worker_profile(profile)
///     .pattern(SyncPattern::high_propagation(40))
///     .build()?;
/// assert_eq!(app.name(), "toy");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AppSpec {
    name: String,
    base_runtime_s: f64,
    worker_profile: MemoryProfile,
    pattern: SyncPattern,
    master: MasterBehavior,
    io_sensitivity: f64,
    cpu_volatility: f64,
    phase_modulation: Option<PhaseModulation>,
}

icm_json::impl_json!(struct AppSpec {
    name,
    base_runtime_s,
    worker_profile,
    pattern,
    master,
    io_sensitivity,
    cpu_volatility,
    phase_modulation,
});

impl AppSpec {
    /// Starts building an application description.
    pub fn builder(name: impl Into<String>) -> AppSpecBuilder {
        AppSpecBuilder::new(name.into())
    }

    /// Application name (catalog key).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Solo, interference-free runtime in seconds.
    pub fn base_runtime_s(&self) -> f64 {
        self.base_runtime_s
    }

    /// Memory profile of one host's worth of worker VMs.
    pub fn worker_profile(&self) -> MemoryProfile {
        self.worker_profile
    }

    /// Distributed synchronization structure.
    pub fn pattern(&self) -> SyncPattern {
        self.pattern
    }

    /// Master-node behaviour.
    pub fn master(&self) -> MasterBehavior {
        self.master
    }

    /// Sensitivity to co-runner CPU-load fluctuation (the `M.Gems`
    /// blocked-I/O/Dom0 effect, §4.3). Zero for almost every application.
    pub fn io_sensitivity(&self) -> f64 {
        self.io_sensitivity
    }

    /// How much this application's own CPU load fluctuates, as felt by
    /// I/O-sensitive co-runners. High for Hadoop/Spark, low for MPI,
    /// zero for the steady bubble.
    pub fn cpu_volatility(&self) -> f64 {
        self.cpu_volatility
    }

    /// Time-varying interference sensitivity of the application's
    /// phases, if any (the §4.4 static-profiling limitation demo).
    pub fn phase_modulation(&self) -> Option<PhaseModulation> {
        self.phase_modulation
    }

    /// Memory profile this application exerts on host `host_index` of the
    /// `total_hosts` it occupies (the master may demand less).
    pub fn profile_on_host(&self, host_index: usize, total_hosts: usize) -> MemoryProfile {
        debug_assert!(host_index < total_hosts);
        match self.master {
            MasterBehavior::Participates => self.worker_profile,
            MasterBehavior::Coordinator { demand_frac } => {
                if host_index == 0 && total_hosts > 1 {
                    self.worker_profile.scaled_demand(demand_frac)
                } else {
                    self.worker_profile
                }
            }
        }
    }

    /// Indices (within the app's host list) of the nodes that execute
    /// work, i.e. all hosts except a non-participating master.
    pub fn worker_hosts(&self, total_hosts: usize) -> Vec<usize> {
        match self.master {
            MasterBehavior::Participates => (0..total_hosts).collect(),
            MasterBehavior::Coordinator { .. } => {
                if total_hosts > 1 {
                    (1..total_hosts).collect()
                } else {
                    vec![0]
                }
            }
        }
    }
}

/// Builder for [`AppSpec`].
#[derive(Debug, Clone)]
pub struct AppSpecBuilder {
    name: String,
    base_runtime_s: f64,
    worker_profile: MemoryProfile,
    pattern: SyncPattern,
    master: MasterBehavior,
    io_sensitivity: f64,
    cpu_volatility: f64,
    phase_modulation: Option<PhaseModulation>,
}

impl AppSpecBuilder {
    fn new(name: String) -> Self {
        Self {
            name,
            base_runtime_s: 100.0,
            worker_profile: MemoryProfile::idle(),
            pattern: SyncPattern::high_propagation(32),
            master: MasterBehavior::Participates,
            io_sensitivity: 0.0,
            cpu_volatility: 0.1,
            phase_modulation: None,
        }
    }

    /// Sets the solo runtime in seconds (> 0).
    pub fn base_runtime_s(&mut self, v: f64) -> &mut Self {
        self.base_runtime_s = v;
        self
    }

    /// Sets the per-host worker memory profile.
    pub fn worker_profile(&mut self, v: MemoryProfile) -> &mut Self {
        self.worker_profile = v;
        self
    }

    /// Sets the synchronization pattern.
    pub fn pattern(&mut self, v: SyncPattern) -> &mut Self {
        self.pattern = v;
        self
    }

    /// Sets the master behaviour.
    pub fn master(&mut self, v: MasterBehavior) -> &mut Self {
        self.master = v;
        self
    }

    /// Sets sensitivity to co-runner CPU volatility (≥ 0).
    pub fn io_sensitivity(&mut self, v: f64) -> &mut Self {
        self.io_sensitivity = v;
        self
    }

    /// Sets this app's own CPU volatility (≥ 0).
    pub fn cpu_volatility(&mut self, v: f64) -> &mut Self {
        self.cpu_volatility = v;
        self
    }

    /// Sets the phase-sensitivity modulation (None = static behaviour).
    pub fn phase_modulation(&mut self, v: Option<PhaseModulation>) -> &mut Self {
        self.phase_modulation = v;
        self
    }

    /// Validates and builds the spec.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated invariant: non-positive
    /// runtime, invalid pattern, out-of-range master demand fraction, or
    /// negative sensitivities.
    pub fn build(&self) -> Result<AppSpec, String> {
        if !(self.base_runtime_s.is_finite() && self.base_runtime_s > 0.0) {
            return Err(format!(
                "base_runtime_s must be positive, got {}",
                self.base_runtime_s
            ));
        }
        self.pattern.validate()?;
        if let MasterBehavior::Coordinator { demand_frac } = self.master {
            if !(0.0..=1.0).contains(&demand_frac) || !demand_frac.is_finite() {
                return Err(format!(
                    "master demand_frac must be in [0,1], got {demand_frac}"
                ));
            }
        }
        if !(self.io_sensitivity.is_finite() && self.io_sensitivity >= 0.0) {
            return Err(format!(
                "io_sensitivity must be non-negative, got {}",
                self.io_sensitivity
            ));
        }
        if !(self.cpu_volatility.is_finite() && self.cpu_volatility >= 0.0) {
            return Err(format!(
                "cpu_volatility must be non-negative, got {}",
                self.cpu_volatility
            ));
        }
        if let Some(m) = self.phase_modulation {
            m.validate()?;
        }
        Ok(AppSpec {
            name: self.name.clone(),
            base_runtime_s: self.base_runtime_s,
            worker_profile: self.worker_profile,
            pattern: self.pattern,
            master: self.master,
            io_sensitivity: self.io_sensitivity,
            cpu_volatility: self.cpu_volatility,
            phase_modulation: self.phase_modulation,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn worker_profile() -> MemoryProfile {
        MemoryProfile::builder()
            .working_set_mb(10.0)
            .build()
            .expect("valid")
    }

    fn mpi_app() -> AppSpec {
        AppSpec::builder("mpi")
            .worker_profile(worker_profile())
            .build()
            .expect("valid")
    }

    fn framework_app() -> AppSpec {
        AppSpec::builder("spark")
            .worker_profile(worker_profile())
            .master(MasterBehavior::Coordinator { demand_frac: 0.25 })
            .pattern(SyncPattern::task_queue(128, 4))
            .build()
            .expect("valid")
    }

    #[test]
    fn mpi_master_participates_everywhere() {
        let app = mpi_app();
        assert_eq!(app.worker_hosts(8), (0..8).collect::<Vec<_>>());
        assert_eq!(app.profile_on_host(0, 8), app.worker_profile());
    }

    #[test]
    fn coordinator_master_demands_less_and_does_no_work() {
        let app = framework_app();
        assert_eq!(app.worker_hosts(8), (1..8).collect::<Vec<_>>());
        let master = app.profile_on_host(0, 8);
        let worker = app.profile_on_host(3, 8);
        assert!(master.working_set_mb() < worker.working_set_mb());
        assert_eq!(worker, app.worker_profile());
    }

    #[test]
    fn single_host_coordinator_still_works() {
        // Degenerate deployment: everything on one host; the master must
        // then also be the worker or nothing would run.
        let app = framework_app();
        assert_eq!(app.worker_hosts(1), vec![0]);
        assert_eq!(app.profile_on_host(0, 1), app.worker_profile());
    }

    #[test]
    fn build_rejects_zero_runtime() {
        let err = AppSpec::builder("x")
            .base_runtime_s(0.0)
            .build()
            .unwrap_err();
        assert!(err.contains("base_runtime_s"));
    }

    #[test]
    fn build_rejects_bad_pattern() {
        let err = AppSpec::builder("x")
            .pattern(SyncPattern::Collective {
                phases: 0,
                coupling: 0.5,
            })
            .build()
            .unwrap_err();
        assert!(err.contains("phases"));
    }

    #[test]
    fn build_rejects_bad_master_fraction() {
        let err = AppSpec::builder("x")
            .master(MasterBehavior::Coordinator { demand_frac: 1.5 })
            .build()
            .unwrap_err();
        assert!(err.contains("demand_frac"));
    }

    #[test]
    fn build_rejects_negative_io_sensitivity() {
        let err = AppSpec::builder("x")
            .io_sensitivity(-0.1)
            .build()
            .unwrap_err();
        assert!(err.contains("io_sensitivity"));
    }

    #[test]
    fn phase_modulation_validated_and_exposed() {
        let good = AppSpec::builder("x")
            .phase_modulation(Some(PhaseModulation {
                amplitude: 0.4,
                period: 6,
            }))
            .build()
            .expect("valid");
        assert_eq!(
            good.phase_modulation(),
            Some(PhaseModulation {
                amplitude: 0.4,
                period: 6
            })
        );
        let bad = AppSpec::builder("x")
            .phase_modulation(Some(PhaseModulation {
                amplitude: 1.5,
                period: 6,
            }))
            .build();
        assert!(bad.is_err());
        assert_eq!(mpi_app().phase_modulation(), None);
    }

    #[test]
    fn serde_round_trip() {
        let app = framework_app();
        let json = icm_json::to_string(&app);
        let back: AppSpec = icm_json::from_str(&json).expect("deserialize");
        assert_eq!(app, back);
    }
}
