use icm_simnode::NodeSpec;

/// Uncontrolled interference from other tenants sharing the physical
/// hosts, as on Amazon EC2 (§6 of the paper).
///
/// Per run and per host, a background bubble is present with probability
/// `probability`, at a pressure drawn uniformly from
/// `[0, max_pressure]`. The profiler cannot observe this interference,
/// which is exactly why the paper's EC2 models have higher error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackgroundTenants {
    /// Per-host probability that a background tenant is active in a run.
    pub probability: f64,
    /// Maximum background bubble pressure.
    pub max_pressure: f64,
}

icm_json::impl_json!(struct BackgroundTenants { probability, max_pressure });

impl BackgroundTenants {
    /// Creates a background-tenant description.
    ///
    /// # Panics
    ///
    /// Panics if `probability` is outside `[0, 1]` or `max_pressure` is
    /// negative or non-finite.
    pub fn new(probability: f64, max_pressure: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "probability must be in [0,1], got {probability}"
        );
        assert!(
            max_pressure.is_finite() && max_pressure >= 0.0,
            "max_pressure must be non-negative and finite, got {max_pressure}"
        );
        Self {
            probability,
            max_pressure,
        }
    }
}

/// Description of a consolidated cluster: its hosts plus the environment's
/// noise characteristics.
///
/// # Example
///
/// ```
/// use icm_simcluster::ClusterSpec;
///
/// let private = ClusterSpec::private8();
/// assert_eq!(private.hosts(), 8);
/// let ec2 = ClusterSpec::ec2_32();
/// assert_eq!(ec2.hosts(), 32);
/// assert!(ec2.background().is_some(), "EC2 has unobserved co-tenants");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    nodes: Vec<NodeSpec>,
    phase_sigma: f64,
    measurement_sigma: f64,
    background: Option<BackgroundTenants>,
}

icm_json::impl_json!(struct ClusterSpec { nodes, phase_sigma, measurement_sigma, background });

impl ClusterSpec {
    /// Creates a homogeneous cluster of `hosts` copies of `node`.
    ///
    /// `phase_sigma` is the per-phase execution jitter (lognormal sigma);
    /// `measurement_sigma` the end-to-end measurement noise.
    ///
    /// # Panics
    ///
    /// Panics if `hosts` is zero or a sigma is negative/non-finite.
    pub fn homogeneous(
        hosts: usize,
        node: NodeSpec,
        phase_sigma: f64,
        measurement_sigma: f64,
    ) -> Self {
        assert!(hosts > 0, "a cluster needs at least one host");
        for (name, sigma) in [
            ("phase_sigma", phase_sigma),
            ("measurement_sigma", measurement_sigma),
        ] {
            assert!(
                sigma.is_finite() && sigma >= 0.0,
                "{name} must be non-negative and finite, got {sigma}"
            );
        }
        Self {
            nodes: vec![node; hosts],
            phase_sigma,
            measurement_sigma,
            background: None,
        }
    }

    /// The paper's private testbed: 8 hosts, dual Xeon E5-2650 each,
    /// low noise, no foreign tenants.
    pub fn private8() -> Self {
        Self::homogeneous(8, NodeSpec::xeon_e5_2650(), 0.015, 0.005)
    }

    /// The paper's EC2 validation environment: 32 `c4.2xlarge` slices,
    /// noisier execution, and unobservable background tenants.
    pub fn ec2_32() -> Self {
        let mut spec = Self::homogeneous(32, NodeSpec::ec2_c4_2xlarge(), 0.03, 0.015);
        spec.background = Some(BackgroundTenants::new(0.30, 2.5));
        spec
    }

    /// Replaces the background-tenant model (builder-style).
    #[must_use]
    pub fn with_background(mut self, background: Option<BackgroundTenants>) -> Self {
        self.background = background;
        self
    }

    /// Number of hosts.
    pub fn hosts(&self) -> usize {
        self.nodes.len()
    }

    /// Host hardware description.
    ///
    /// # Panics
    ///
    /// Panics if `host` is out of range.
    pub fn node(&self, host: usize) -> NodeSpec {
        self.nodes[host]
    }

    /// All host descriptions.
    pub fn nodes(&self) -> &[NodeSpec] {
        &self.nodes
    }

    /// Per-phase execution jitter sigma.
    pub fn phase_sigma(&self) -> f64 {
        self.phase_sigma
    }

    /// End-to-end measurement noise sigma.
    pub fn measurement_sigma(&self) -> f64 {
        self.measurement_sigma
    }

    /// Background-tenant model, if any.
    pub fn background(&self) -> Option<BackgroundTenants> {
        self.background
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn private8_matches_paper_testbed() {
        let c = ClusterSpec::private8();
        assert_eq!(c.hosts(), 8);
        assert_eq!(c.node(0), NodeSpec::xeon_e5_2650());
        assert!(c.background().is_none());
    }

    #[test]
    fn ec2_is_noisier_than_private() {
        let private = ClusterSpec::private8();
        let ec2 = ClusterSpec::ec2_32();
        assert!(ec2.phase_sigma() > private.phase_sigma());
        assert!(ec2.measurement_sigma() > private.measurement_sigma());
        assert!(ec2.background().is_some());
    }

    #[test]
    fn with_background_overrides() {
        let c = ClusterSpec::private8().with_background(Some(BackgroundTenants::new(0.5, 4.0)));
        assert_eq!(c.background(), Some(BackgroundTenants::new(0.5, 4.0)));
        let cleared = c.with_background(None);
        assert!(cleared.background().is_none());
    }

    #[test]
    #[should_panic(expected = "at least one host")]
    fn zero_hosts_rejected() {
        let _ = ClusterSpec::homogeneous(0, NodeSpec::xeon_e5_2650(), 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "phase_sigma")]
    fn negative_sigma_rejected() {
        let _ = ClusterSpec::homogeneous(2, NodeSpec::xeon_e5_2650(), -0.1, 0.0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_background_probability_rejected() {
        let _ = BackgroundTenants::new(1.5, 1.0);
    }

    #[test]
    fn serde_round_trip() {
        let c = ClusterSpec::ec2_32();
        let json = icm_json::to_string(&c);
        let back: ClusterSpec = icm_json::from_str(&json).expect("deserialize");
        assert_eq!(c, back);
    }
}
