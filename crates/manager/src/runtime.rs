//! The supervisory control loop.
//!
//! [`run_managed`] executes a fleet on an [`SimTestbed`] over a horizon
//! of supervisory epochs ("ticks"), reacting to failures;
//! [`run_unmanaged`] drives the *same* tick loop with reactions
//! disabled, which is the baseline every recovery comparison is made
//! against. Both paths consume identical testbed randomness, so with
//! faults disabled their simulated histories are byte-identical — the
//! manager is invisible until something goes wrong.
//!
//! Each tick the manager:
//!
//! 1. peeks the fault plan for hosts entering a crash window at the
//!    next run and migrates affected applications *before* the outage
//!    rejects the deployment (checkpoint + resume, explicit restart
//!    cost in simulated seconds);
//! 2. runs every live application on its current placement and feeds
//!    the observed slowdowns back through
//!    [`OnlineModel::observe_for`](icm_core::OnlineModel::observe_for)
//!    and a per-app [`DriftDetector`](icm_core::DriftDetector);
//! 3. reacts to drift trips, sustained SLO violations and straggler
//!    kills with a bounded incremental re-anneal seeded from the
//!    current placement (never a full restart), sheds the
//!    lowest-priority application when no feasible placement exists,
//!    and opens a circuit breaker instead of re-placing when the
//!    triggering prediction rests on defaulted model cells.
//!
//! Every decision is recorded as a typed [`ActionRecord`] /
//! [`DetectionRecord`]; the serialized action log is byte-identical
//! across same-seed, same-fault-plan replays.

use std::collections::BTreeSet;

use icm_core::{DriftConfig, DriftDetector, DriftSignal, ModelQuality};
use icm_obs::manager as events;
use icm_obs::provenance::{CAUSE_FAULT, CAUSE_LATENCY, CAUSE_MISPREDICT, QOS_VIOLATION};
use icm_obs::{
    DetectionInput, ObservationRef, OutcomeRef, PlacementRef, ProvenanceRecord, Tracer, Value,
};
use icm_placement::{
    anneal_with, re_anneal_with, AnnealConfig, Eval, Objective, PlacementConstraints,
    PlacementError, PlacementState, QosConfig,
};
use icm_simcluster::{Deployment, Placement, SimTestbed, TestbedError, TestbedStats};

use crate::action::{
    ActionKind, ActionRecord, AppFinal, DetectionKind, DetectionRecord, ManagerOutcome,
};
use crate::error::ManagerError;
use crate::fleet::Fleet;

/// Objective penalty (simulated seconds) per occupied host currently
/// under drift suspicion: steers re-annealing away from hosts whose
/// residents mispredicted, without pretending to know the cause.
const SUSPICION_COST_S: f64 = 50.0;

/// Ambient pressure applied to the cluster from a given tick onward —
/// the environment drift the recovery experiment sweeps. The manager
/// never sees this directly; it only sees its consequences in observed
/// slowdowns.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvironmentDrift {
    /// First tick (1-based) the pressure applies to.
    pub from_tick: u64,
    /// Per-host bubble pressure, length = cluster hosts.
    pub pressures: Vec<f64>,
}

icm_json::impl_json!(struct EnvironmentDrift { from_tick, pressures });

/// Supervisory-loop configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ManagerConfig {
    /// Supervisory epochs to run.
    pub ticks: u64,
    /// Seed for every search the manager launches (initial placement
    /// and re-anneals); reaction seeds are derived from it and the tick.
    pub seed: u64,
    /// Restart cost charged per migrated application, simulated seconds.
    pub migration_cost_s: f64,
    /// Iterations of the initial (cold) placement search.
    pub initial_iterations: usize,
    /// Iterations of each bounded incremental re-anneal.
    pub reanneal_iterations: usize,
    /// Drift-detector settings applied per application.
    pub drift: DriftConfig,
    /// Ticks of consecutive QoS violation before the manager reacts.
    pub slo_trip_after: u32,
    /// The QoS contract every application is held to.
    pub qos: QosConfig,
    /// Parallel annealing lanes for every search the manager launches
    /// (initial placement and warm re-anneals); see
    /// [`AnnealConfig::lanes`]. Deterministic for any value ≥ 1.
    pub search_lanes: usize,
    /// Optional ambient drift injected by the environment.
    pub environment: Option<EnvironmentDrift>,
}

impl Default for ManagerConfig {
    fn default() -> Self {
        Self {
            ticks: 12,
            seed: 2016,
            migration_cost_s: 30.0,
            initial_iterations: 1500,
            reanneal_iterations: 300,
            drift: DriftConfig::default(),
            slo_trip_after: 3,
            qos: QosConfig::default(),
            search_lanes: 2,
            environment: None,
        }
    }
}

icm_json::impl_json!(struct ManagerConfig {
    ticks,
    seed,
    migration_cost_s,
    initial_iterations,
    reanneal_iterations,
    drift,
    slo_trip_after,
    qos,
    search_lanes,
    environment,
});

impl ManagerConfig {
    fn validate(&self, hosts: usize) -> Result<(), ManagerError> {
        if self.ticks == 0 {
            return Err(ManagerError::Config("ticks must be >= 1".into()));
        }
        if !self.migration_cost_s.is_finite() || self.migration_cost_s < 0.0 {
            return Err(ManagerError::Config(format!(
                "migration cost must be finite and >= 0, got {}",
                self.migration_cost_s
            )));
        }
        if !(self.drift.threshold.is_finite() && self.drift.threshold > 0.0) {
            return Err(ManagerError::Config(format!(
                "drift threshold must be positive, got {}",
                self.drift.threshold
            )));
        }
        if self.drift.trip_after == 0 || self.slo_trip_after == 0 {
            return Err(ManagerError::Config(
                "trip_after windows must be >= 1".into(),
            ));
        }
        if !(self.qos.qos_fraction.is_finite()
            && self.qos.qos_fraction > 0.0
            && self.qos.qos_fraction <= 1.0)
        {
            return Err(ManagerError::Config(format!(
                "qos fraction must be in (0, 1], got {}",
                self.qos.qos_fraction
            )));
        }
        if self.search_lanes == 0 {
            return Err(ManagerError::Config("search_lanes must be >= 1".into()));
        }
        if let Some(env) = &self.environment {
            if env.pressures.len() != hosts {
                return Err(ManagerError::Config(format!(
                    "environment drift has {} pressures for a {hosts}-host cluster",
                    env.pressures.len()
                )));
            }
            if env.pressures.iter().any(|p| !p.is_finite() || *p < 0.0) {
                return Err(ManagerError::Config(
                    "environment drift pressures must be finite and >= 0".into(),
                ));
            }
        }
        Ok(())
    }
}

/// Runs the fleet with the manager's reactions enabled.
///
/// # Errors
///
/// [`ManagerError::Config`] on inconsistent configuration, or a
/// propagated placement/model/testbed failure. Injected faults are
/// *not* errors: the loop absorbs and reacts to them.
pub fn run_managed(
    testbed: &mut SimTestbed,
    fleet: &mut Fleet,
    config: &ManagerConfig,
    tracer: &Tracer,
) -> Result<ManagerOutcome, ManagerError> {
    run(testbed, fleet, config, tracer, true)
}

/// Runs the same tick loop with reactions disabled — the baseline.
///
/// # Errors
///
/// See [`run_managed`].
pub fn run_unmanaged(
    testbed: &mut SimTestbed,
    fleet: &mut Fleet,
    config: &ManagerConfig,
    tracer: &Tracer,
) -> Result<ManagerOutcome, ManagerError> {
    run(testbed, fleet, config, tracer, false)
}

/// Per-application supervisory state. Serializable as part of
/// [`ManagedRun`] so a savestate carries every streak and breaker flag.
#[derive(Debug, Clone, PartialEq)]
struct AppState {
    detector: DriftDetector,
    slo_streak: u32,
    breaker_open: bool,
    last_normalized: f64,
    last_ok: bool,
    /// Prediction behind the most recent completed observation.
    last_predicted: f64,
    /// Violation-seconds this app accrued on its most recent tick.
    last_violation_s: f64,
    /// Recent completed observations (bounded window) — the causal
    /// ancestry handed to detections that trip on them.
    recent_obs: Vec<ObservationRef>,
}

icm_json::impl_json!(struct AppState {
    detector,
    slo_streak,
    breaker_open,
    last_normalized,
    last_ok,
    last_predicted,
    last_violation_s,
    recent_obs,
});

fn sim_elapsed(stats: &TestbedStats, start: &TestbedStats) -> f64 {
    (stats.simulated_seconds - start.simulated_seconds)
        + (stats.wasted_seconds - start.wasted_seconds)
        + (stats.restart_seconds - start.restart_seconds)
}

/// Deterministic per-reaction seed: distinct per tick and purpose.
fn reaction_seed(base: u64, tick: u64, salt: u64) -> u64 {
    base ^ tick.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt
}

/// Sorted hosts and co-runner context of live workload `i` in `state`:
/// per-host co-runner pressure (bubble scores of other live residents)
/// and the co-runner signature key for the online model.
fn context_of(
    fleet: &Fleet,
    state: &PlacementState,
    live: &[bool],
    i: usize,
) -> (Vec<f64>, String) {
    let problem = fleet.problem();
    let hosts = fleet.hosts_of(state, i);
    let mut pressures = Vec::with_capacity(hosts.len());
    let mut corunners: BTreeSet<&str> = BTreeSet::new();
    for &h in &hosts {
        let mut pressure = 0.0;
        for (j, app) in fleet.apps().iter().enumerate() {
            if j == i || !live[j] {
                continue;
            }
            if state.hosts_of(problem, j).contains(&h) {
                pressure += app.online.base().bubble_score();
                corunners.insert(app.name.as_str());
            }
        }
        pressures.push(pressure);
    }
    let key = if corunners.is_empty() {
        "none".to_owned()
    } else {
        corunners.into_iter().collect::<Vec<_>>().join("+")
    };
    (pressures, key)
}

/// Fleet-wide predicted cost of a candidate state: predicted seconds of
/// every live application under its co-runner pressures, plus the
/// suspicion penalty for occupying recently drifted hosts.
///
/// The reference formulation [`FleetObjective`] is asserted against in
/// tests — the searches themselves run the pooled objective.
#[cfg(test)]
fn fleet_cost(
    fleet: &Fleet,
    live: &[bool],
    suspicion: &[f64],
    state: &PlacementState,
) -> Result<f64, PlacementError> {
    let mut total = 0.0;
    for (i, app) in fleet.apps().iter().enumerate() {
        if !live[i] {
            continue;
        }
        let (pressures, key) = context_of(fleet, state, live, i);
        let predicted = app
            .online
            .predict_for(&key, &pressures)
            .map_err(|e| PlacementError::Predictor(e.to_string()))?;
        total += predicted * app.online.base().solo_seconds();
        for &h in &fleet.hosts_of(state, i) {
            total += suspicion[h] * SUSPICION_COST_S;
        }
    }
    Ok(total)
}

/// The fleet-cost evaluation the manager's searches actually run: the
/// exact arithmetic of [`fleet_cost`] (same terms, same order — asserted
/// bit-for-bit in tests), but with pooled per-host/per-app scratch and a
/// co-runner-signature cache instead of fresh `Vec`/`BTreeSet`/`String`
/// allocations per candidate. One independent instance per annealing
/// lane (see [`AnnealConfig::lanes`]).
struct FleetObjective<'a> {
    fleet: &'a Fleet,
    live: &'a [bool],
    suspicion: &'a [f64],
    /// Live residents of each host, ascending app index.
    residents: Vec<Vec<usize>>,
    /// Hosts of each app, ascending (slot order implies host order).
    app_hosts: Vec<Vec<usize>>,
    /// Pressure vector scratch for the app under evaluation.
    pressures: Vec<f64>,
    /// Co-runner signature strings keyed by the co-runner app-index
    /// bitmask; only usable for fleets of ≤ 128 applications.
    key_cache: std::collections::BTreeMap<u128, String>,
}

impl<'a> FleetObjective<'a> {
    fn new(fleet: &'a Fleet, live: &'a [bool], suspicion: &'a [f64]) -> Self {
        let hosts = fleet.problem().hosts();
        let apps = fleet.apps().len();
        Self {
            fleet,
            live,
            suspicion,
            residents: vec![Vec::new(); hosts],
            app_hosts: vec![Vec::new(); apps],
            pressures: Vec::new(),
            key_cache: std::collections::BTreeMap::new(),
        }
    }

    /// The co-runner signature for a co-runner set given as an app-index
    /// bitmask: distinct names, lexicographically sorted, joined with
    /// `+` — exactly the key [`context_of`] builds.
    fn key_for(&mut self, mask: u128) -> &str {
        let fleet = self.fleet;
        self.key_cache.entry(mask).or_insert_with(|| {
            let mut names: BTreeSet<&str> = BTreeSet::new();
            let mut bits = mask;
            while bits != 0 {
                let j = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                names.insert(fleet.apps()[j].name.as_str());
            }
            if names.is_empty() {
                "none".to_owned()
            } else {
                names.into_iter().collect::<Vec<_>>().join("+")
            }
        })
    }

    fn eval(&mut self, state: &PlacementState) -> Result<f64, PlacementError> {
        let problem = self.fleet.problem();
        let per_host = problem.slots_per_host();
        for list in &mut self.residents {
            list.clear();
        }
        for list in &mut self.app_hosts {
            list.clear();
        }
        // Idle filler workloads (indices past the real applications)
        // carry no model and no pressure — exactly as in [`context_of`],
        // which only ever iterates the real fleet.
        let real = self.fleet.apps().len();
        for (slot, &w) in state.assignment().iter().enumerate() {
            let host = slot / per_host;
            if w < real && self.live[w] {
                self.residents[host].push(w);
            }
            if w < real {
                self.app_hosts[w].push(host);
            }
        }
        // Slot order puts each host's residents in slot order, not app
        // order; the pressure sum below must add scores in ascending app
        // index to stay bit-identical to the reference formulation.
        for list in &mut self.residents {
            list.sort_unstable();
        }

        let cacheable = self.fleet.apps().len() <= 128;
        let mut total = 0.0;
        for i in 0..self.fleet.apps().len() {
            if !self.live[i] {
                continue;
            }
            let mut mask: u128 = 0;
            self.pressures.clear();
            for k in 0..self.app_hosts[i].len() {
                let host = self.app_hosts[i][k];
                let mut pressure = 0.0;
                for &j in &self.residents[host] {
                    if j == i {
                        continue;
                    }
                    pressure += self.fleet.apps()[j].online.base().bubble_score();
                    if cacheable {
                        mask |= 1u128 << j;
                    }
                }
                self.pressures.push(pressure);
            }
            let app = &self.fleet.apps()[i];
            let predicted = if cacheable {
                let mut pressures = std::mem::take(&mut self.pressures);
                let key = self.key_for(mask);
                let predicted = app.online.predict_for(key, &pressures);
                pressures.clear();
                self.pressures = pressures;
                predicted
            } else {
                let (pressures, key) = context_of(self.fleet, state, self.live, i);
                app.online.predict_for(&key, &pressures)
            }
            .map_err(|e| PlacementError::Predictor(e.to_string()))?;
            total += predicted * app.online.base().solo_seconds();
            for &host in &self.app_hosts[i] {
                total += self.suspicion[host] * SUSPICION_COST_S;
            }
        }
        Ok(total)
    }
}

impl Objective for FleetObjective<'_> {
    fn reset(&mut self, state: &PlacementState) -> Result<Eval, PlacementError> {
        Ok(Eval {
            cost: self.eval(state)?,
            violation: 0.0,
        })
    }

    fn probe(
        &mut self,
        state: &PlacementState,
        _a: usize,
        _b: usize,
    ) -> Result<Eval, PlacementError> {
        self.reset(state)
    }
}

/// Exclusion constraints keeping every live application off `downed`.
fn outage_constraints(live: &[bool], downed: &[usize]) -> PlacementConstraints {
    let mut constraints = PlacementConstraints::new();
    for (i, &alive) in live.iter().enumerate() {
        if !alive {
            continue;
        }
        for &h in downed {
            constraints.exclude(i, h);
        }
    }
    constraints
}

/// Inputs behind one detection: the causal ancestry (observation or
/// fault event ids) plus the detector's trip-time state.
#[derive(Default)]
struct DetectCtx {
    causes: Vec<u64>,
    score: f64,
    threshold: f64,
    streak: u64,
    observations: Vec<ObservationRef>,
}

/// Justification behind one action: the prediction quality grade, the
/// predicted slowdown, the candidate placements committed to, and the
/// violation-seconds accrued on the triggering tick.
struct ActCtx {
    quality: &'static str,
    predicted: f64,
    placement: Vec<PlacementRef>,
    trigger_violation_s: f64,
}

struct Supervisor<'a> {
    tracer: &'a Tracer,
    managed: bool,
    tick: u64,
    tick_announced: bool,
    detections: Vec<DetectionRecord>,
    actions: Vec<ActionRecord>,
    /// Detection inputs collected this tick — the justification pool
    /// actions draw their provenance from.
    tick_inputs: Vec<DetectionInput>,
}

impl Supervisor<'_> {
    fn announce(&mut self) {
        if self.tick_announced || !self.managed {
            return;
        }
        self.tick_announced = true;
        if self.tracer.enabled() {
            self.tracer
                .event(events::MANAGER_TICK, &[("tick", Value::from(self.tick))]);
        }
    }

    fn detect(
        &mut self,
        sim_s: f64,
        kind: DetectionKind,
        app: Option<&str>,
        host: Option<u64>,
        ctx: DetectCtx,
    ) {
        if !self.managed {
            return;
        }
        self.announce();
        self.detections.push(DetectionRecord {
            tick: self.tick,
            sim_s,
            kind,
            app: app.map(str::to_owned),
            host,
        });
        let event = if self.tracer.enabled() {
            let mut fields = vec![
                ("tick", Value::from(self.tick)),
                ("kind", Value::from(kind.as_str())),
                ("score", Value::from(ctx.score)),
                ("threshold", Value::from(ctx.threshold)),
                ("streak", Value::from(ctx.streak)),
            ];
            if let Some(app) = app {
                fields.push(("app", Value::from(app)));
            }
            if let Some(host) = host {
                fields.push(("host", Value::from(host)));
            }
            self.tracer
                .event_caused(events::MANAGER_DETECTION, &ctx.causes, &fields)
        } else {
            0
        };
        self.tick_inputs.push(DetectionInput {
            event,
            kind: kind.as_str().to_owned(),
            app: app.map(str::to_owned),
            host,
            score: ctx.score,
            threshold: ctx.threshold,
            streak: ctx.streak,
            observations: ctx.observations,
        });
    }

    fn act(
        &mut self,
        sim_s: f64,
        kind: ActionKind,
        app: Option<&str>,
        cost_s: f64,
        ctx: ActCtx,
        prov: &mut Vec<ProvenanceRecord>,
    ) {
        if !self.managed {
            return;
        }
        self.announce();
        self.actions.push(ActionRecord {
            tick: self.tick,
            sim_s,
            kind,
            app: app.map(str::to_owned),
            cost_s,
        });
        // App-scoped actions are justified by their app's detections
        // (plus app-less ones like host-down peeks); a collateral action
        // with no scoped detection — e.g. a migration rippling out of
        // another app's drift trip — inherits the whole tick's pool.
        let mut detections: Vec<DetectionInput> = self
            .tick_inputs
            .iter()
            .filter(|d| match (app, &d.app) {
                (Some(a), Some(da)) => da == a,
                _ => true,
            })
            .cloned()
            .collect();
        if detections.is_empty() {
            detections = self.tick_inputs.clone();
        }
        let causes: Vec<u64> = detections.iter().map(|d| d.event).collect();
        let event = if self.tracer.enabled() {
            let mut fields = vec![
                ("tick", Value::from(self.tick)),
                ("kind", Value::from(kind.as_str())),
                ("cost_s", Value::from(cost_s)),
                ("quality", Value::from(ctx.quality)),
                ("predicted", Value::from(ctx.predicted)),
            ];
            if let Some(app) = app {
                fields.push(("app", Value::from(app)));
            }
            self.tracer
                .event_caused(events::MANAGER_ACTION, &causes, &fields)
        } else {
            0
        };
        self.tracer
            .telemetry_count(&format!("manager.actions.{}", kind.as_str()), 1);
        prov.push(ProvenanceRecord {
            action_index: prov.len() as u64,
            event,
            tick: self.tick,
            sim_s,
            kind: kind.as_str().to_owned(),
            app: app.map(str::to_owned),
            cost_s,
            quality: ctx.quality.to_owned(),
            predicted_slowdown: ctx.predicted,
            realized_slowdown: 0.0,
            resolved: false,
            trigger_violation_s: ctx.trigger_violation_s,
            violation_incurred_s: 0.0,
            placement: ctx.placement,
            detections,
            outcome: None,
        });
    }

    fn recovered(&mut self, latency_s: f64, prov: &mut [ProvenanceRecord]) {
        self.announce();
        let causes: Vec<u64> = prov
            .iter()
            .filter(|r| r.outcome.is_none())
            .map(|r| r.event)
            .collect();
        let event = if self.tracer.enabled() {
            self.tracer.event_caused(
                events::MANAGER_RECOVERY,
                &causes,
                &[
                    ("tick", Value::from(self.tick)),
                    ("latency_s", Value::from(latency_s)),
                ],
            )
        } else {
            0
        };
        for record in prov.iter_mut().filter(|r| r.outcome.is_none()) {
            record.outcome = Some(OutcomeRef {
                event,
                tick: self.tick,
                latency_s,
            });
        }
    }
}

fn run(
    testbed: &mut SimTestbed,
    fleet: &mut Fleet,
    config: &ManagerConfig,
    tracer: &Tracer,
    managed: bool,
) -> Result<ManagerOutcome, ManagerError> {
    let mut run = ManagedRun::start(testbed, fleet, config, managed)?;
    while !run.is_done(config) {
        run.step(testbed, fleet, config, tracer)?;
    }
    Ok(run.into_outcome(testbed, fleet, config))
}

/// Resumable supervisory-loop state: everything the tick loop carries
/// between epochs, extracted into a serializable struct so a run can be
/// checkpointed mid-horizon and continued — byte-identically — in a
/// different process (see `crate::snapshot::WorldSnapshot`).
///
/// [`run_managed`]/[`run_unmanaged`] are exactly this loop:
///
/// ```text
/// let mut run = ManagedRun::start(&testbed, &fleet, &config, true)?;
/// while !run.is_done(&config) {
///     run.step(&mut testbed, &mut fleet, &config, &tracer)?;
/// }
/// let outcome = run.into_outcome(&testbed, &fleet, &config);
/// ```
///
/// Serialization keeps private fields private: the JSON form exists for
/// savestates, whose integrity the snapshot store checksums — it is not
/// a mutation API.
#[derive(Debug, Clone)]
pub struct ManagedRun {
    managed: bool,
    /// Next tick (1-based) [`ManagedRun::step`] will execute.
    next_tick: u64,
    state: PlacementState,
    live: Vec<bool>,
    suspicion: Vec<f64>,
    states: Vec<AppState>,
    shed_order: Vec<String>,
    recovery_latencies: Vec<f64>,
    pending_recovery: Option<f64>,
    violation_seconds: f64,
    detections: Vec<DetectionRecord>,
    actions: Vec<ActionRecord>,
    provenance: Vec<ProvenanceRecord>,
    start_stats: TestbedStats,
}

icm_json::impl_json!(struct ManagedRun {
    managed,
    next_tick,
    state,
    live,
    suspicion,
    states,
    shed_order,
    recovery_latencies,
    pending_recovery,
    violation_seconds,
    detections,
    actions,
    provenance,
    start_stats,
});

impl ManagedRun {
    /// Validates the configuration and runs the initial (cold)
    /// placement search, returning a runner positioned before tick 1.
    ///
    /// # Errors
    ///
    /// [`ManagerError::Config`] on inconsistent configuration, or a
    /// propagated placement failure from the cold search.
    pub fn start(
        testbed: &SimTestbed,
        fleet: &Fleet,
        config: &ManagerConfig,
        managed: bool,
    ) -> Result<Self, ManagerError> {
        let hosts = testbed.cluster().hosts();
        config.validate(hosts)?;
        if fleet.problem().hosts() != hosts {
            return Err(ManagerError::Config(format!(
                "fleet is shaped for {} hosts, testbed has {hosts}",
                fleet.problem().hosts()
            )));
        }
        for app in fleet.apps() {
            if testbed.app(&app.name).is_none() {
                return Err(ManagerError::Config(format!(
                    "application `{}` is not registered on the testbed",
                    app.name
                )));
            }
        }

        // Initial placement: a cold annealing search, deliberately
        // untraced and identical in both modes, so the managed and
        // unmanaged histories only diverge when a reaction fires.
        let n = fleet.apps().len();
        let live_all = vec![true; n];
        let no_suspicion = vec![0.0; hosts];
        let initial_config = AnnealConfig {
            iterations: config.initial_iterations,
            seed: reaction_seed(config.seed, 0, 0x1CF7),
            lanes: config.search_lanes,
            ..AnnealConfig::default()
        };
        let state = anneal_with(
            fleet.problem(),
            |_| FleetObjective::new(fleet, &live_all, &no_suspicion),
            &initial_config,
            &icm_obs::Tracer::disabled(),
        )?
        .state;

        Ok(Self {
            managed,
            next_tick: 1,
            state,
            live: vec![true; n],
            suspicion: vec![0.0f64; hosts],
            states: (0..n)
                .map(|_| AppState {
                    detector: DriftDetector::new(config.drift),
                    slo_streak: 0,
                    breaker_open: false,
                    last_normalized: 0.0,
                    last_ok: false,
                    last_predicted: 0.0,
                    last_violation_s: 0.0,
                    recent_obs: Vec::new(),
                })
                .collect(),
            shed_order: Vec::new(),
            recovery_latencies: Vec::new(),
            pending_recovery: None,
            violation_seconds: 0.0,
            detections: Vec::new(),
            actions: Vec::new(),
            provenance: Vec::new(),
            start_stats: testbed.stats(),
        })
    }

    /// Whether the supervisory horizon is complete.
    pub fn is_done(&self, config: &ManagerConfig) -> bool {
        self.next_tick > config.ticks
    }

    /// The next tick (1-based) [`ManagedRun::step`] would execute.
    pub fn next_tick(&self) -> u64 {
        self.next_tick
    }

    /// Violation-seconds accumulated so far.
    pub fn violation_seconds(&self) -> f64 {
        self.violation_seconds
    }

    /// Executes one supervisory tick.
    ///
    /// # Errors
    ///
    /// [`ManagerError::Config`] when the horizon is already complete,
    /// or a propagated placement/model/testbed failure. Injected faults
    /// are *not* errors: the loop absorbs and reacts to them.
    #[allow(clippy::too_many_lines)]
    pub fn step(
        &mut self,
        testbed: &mut SimTestbed,
        fleet: &mut Fleet,
        config: &ManagerConfig,
        tracer: &Tracer,
    ) -> Result<(), ManagerError> {
        if self.is_done(config) {
            return Err(ManagerError::Config(format!(
                "supervisory horizon of {} ticks already complete",
                config.ticks
            )));
        }
        let tick = self.next_tick;
        let managed = self.managed;
        let n = fleet.apps().len();
        let bound = config.qos.max_normalized_time();
        // Observation window per app: large enough that any detection
        // can cite every observation in its trip streak.
        let obs_window = config.drift.trip_after.max(config.slo_trip_after) as usize;

        // Telemetry-only bookkeeping: quiet ticks are contractually
        // silent in the event stream, so tick counts and per-tick
        // violation time flow through the non-event telemetry path.
        tracer.telemetry_count(
            if managed {
                "manager.ticks.managed"
            } else {
                "manager.ticks.baseline"
            },
            1,
        );
        let violation_before_tick = self.violation_seconds;
        let mut sup = Supervisor {
            tracer,
            managed,
            tick,
            tick_announced: false,
            detections: Vec::new(),
            actions: Vec::new(),
            tick_inputs: Vec::new(),
        };
        for s in self.suspicion.iter_mut() {
            *s *= 0.5;
            if *s < 1e-3 {
                *s = 0.0;
            }
        }

        // Phase 1 (managed only): proactive outage handling. The peek is
        // read-only, so looking costs nothing when nothing is wrong.
        if managed {
            let next_run = testbed.peek_run();
            let downed = testbed.downed_hosts_at(next_run);
            let threatened: Vec<usize> = downed
                .iter()
                .copied()
                .filter(|&h| {
                    (0..n).any(|i| self.live[i] && fleet.hosts_of(&self.state, i).contains(&h))
                })
                .collect();
            if !threatened.is_empty() {
                let sim = sim_elapsed(&testbed.stats(), &self.start_stats);
                for &h in &threatened {
                    // A crash-window peek is a causal root: no prior
                    // event made the fault plan schedule the outage.
                    sup.detect(
                        sim,
                        DetectionKind::HostDown,
                        None,
                        Some(h as u64),
                        DetectCtx::default(),
                    );
                }
                self.pending_recovery.get_or_insert(sim);
                self.state = replan(
                    testbed,
                    fleet,
                    config,
                    &mut sup,
                    &mut self.live,
                    &mut self.shed_order,
                    &self.suspicion,
                    &self.state,
                    &downed,
                    &self.start_stats,
                    &mut self.provenance,
                    self.violation_seconds - violation_before_tick,
                )?;
            }
        }

        // Phase 2: run the tick.
        let live_idx: Vec<usize> = (0..n).filter(|&i| self.live[i]).collect();
        if live_idx.is_empty() {
            self.detections.append(&mut sup.detections);
            self.actions.append(&mut sup.actions);
            self.next_tick += 1;
            return Ok(());
        }
        let placements: Vec<Placement> = live_idx
            .iter()
            .map(|&i| Placement::new(fleet.apps()[i].name.clone(), fleet.hosts_of(&self.state, i)))
            .collect();
        let bubbles = match &config.environment {
            Some(env) if tick >= env.from_tick => env.pressures.clone(),
            _ => Vec::new(),
        };
        let deployment = Deployment {
            placements,
            bubbles,
        };

        match testbed.run_deployment(&deployment) {
            Ok(runs) => {
                let mut wants_replan: Vec<usize> = Vec::new();
                let mut all_in_bound = true;
                for (k, &i) in live_idx.iter().enumerate() {
                    let seconds = runs[k].seconds;
                    let (pressures, key) = context_of(fleet, &self.state, &self.live, i);
                    let app = &mut fleet.apps_mut()[i];
                    let app_name = app.name.clone();
                    let solo = app.online.base().solo_seconds();
                    let normalized = seconds / solo;
                    let predicted = app.online.predict_for(&key, &pressures)?;
                    app.online.observe_for(&key, &pressures, normalized)?;
                    let signal = self.states[i].detector.observe(predicted, normalized)?;
                    self.states[i].last_normalized = normalized;
                    self.states[i].last_ok = true;
                    self.states[i].last_predicted = predicted;
                    self.states[i].recent_obs.push(ObservationRef {
                        event: runs[k].trace_event,
                        tick,
                        app: app_name.clone(),
                        predicted,
                        observed: normalized,
                    });
                    if self.states[i].recent_obs.len() > obs_window {
                        self.states[i].recent_obs.remove(0);
                    }
                    let violation = (seconds - solo * bound).max(0.0);
                    self.violation_seconds += violation;
                    self.states[i].last_violation_s = violation;
                    if violation > 0.0 && tracer.enabled() {
                        // Violation attribution, emitted from this shared
                        // managed/unmanaged path (NOT `manager_`-prefixed):
                        // a recovery already in flight makes the time
                        // manager latency; otherwise an in-bound
                        // prediction that ran over is a mispredict, and a
                        // prediction that already knew the bound was lost
                        // is a fault/environment problem.
                        let cause = if self.pending_recovery.is_some() {
                            CAUSE_LATENCY
                        } else if predicted <= bound {
                            CAUSE_MISPREDICT
                        } else {
                            CAUSE_FAULT
                        };
                        tracer.event_caused(
                            QOS_VIOLATION,
                            &[runs[k].trace_event],
                            &[
                                ("tick", Value::from(tick)),
                                ("app", Value::from(app_name.as_str())),
                                ("violation_s", Value::from(violation)),
                                ("cause", Value::from(cause)),
                            ],
                        );
                    }
                    if normalized > bound {
                        all_in_bound = false;
                        self.states[i].slo_streak += 1;
                    } else {
                        self.states[i].slo_streak = 0;
                    }
                    if !managed {
                        continue;
                    }
                    let sim = sim_elapsed(&testbed.stats(), &self.start_stats);
                    if signal == DriftSignal::Tripped {
                        let observations =
                            obs_tail(&self.states[i].recent_obs, config.drift.trip_after as usize);
                        sup.detect(
                            sim,
                            DetectionKind::Drift,
                            Some(&app_name),
                            None,
                            DetectCtx {
                                causes: observations.iter().map(|o| o.event).collect(),
                                score: self.states[i].detector.last_residual(),
                                threshold: config.drift.threshold,
                                streak: u64::from(config.drift.trip_after),
                                observations,
                            },
                        );
                        for &h in &fleet.hosts_of(&self.state, i) {
                            self.suspicion[h] = 1.0;
                        }
                        wants_replan.push(i);
                    }
                    if self.states[i].slo_streak >= config.slo_trip_after {
                        let observations =
                            obs_tail(&self.states[i].recent_obs, config.slo_trip_after as usize);
                        sup.detect(
                            sim,
                            DetectionKind::SloViolation,
                            Some(&app_name),
                            None,
                            DetectCtx {
                                causes: observations.iter().map(|o| o.event).collect(),
                                score: normalized,
                                threshold: bound,
                                streak: u64::from(config.slo_trip_after),
                                observations,
                            },
                        );
                        self.states[i].slo_streak = 0;
                        for &h in &fleet.hosts_of(&self.state, i) {
                            self.suspicion[h] = self.suspicion[h].max(0.5);
                        }
                        wants_replan.push(i);
                    }
                }

                // Predicted-vs-realized resolution: the first completed
                // tick after an action is its report card. App-scoped
                // actions grade against their app's fresh observation;
                // fleet-wide ones against the fleet mean.
                if managed && self.provenance.iter().any(|r| !r.resolved && r.tick < tick) {
                    let tick_violation = self.violation_seconds - violation_before_tick;
                    let mean_normalized = live_idx
                        .iter()
                        .map(|&i| self.states[i].last_normalized)
                        .sum::<f64>()
                        / live_idx.len() as f64;
                    for record in self
                        .provenance
                        .iter_mut()
                        .filter(|r| !r.resolved && r.tick < tick)
                    {
                        let scoped = record
                            .app
                            .as_ref()
                            .and_then(|name| fleet.apps().iter().position(|a| &a.name == name))
                            .filter(|&i| self.live[i] && self.states[i].last_ok);
                        let (realized, incurred) = match scoped {
                            Some(i) => (
                                self.states[i].last_normalized,
                                self.states[i].last_violation_s,
                            ),
                            None => (mean_normalized, tick_violation),
                        };
                        record.realized_slowdown = realized;
                        record.violation_incurred_s = incurred;
                        record.resolved = true;
                        tracer.telemetry_observe(
                            &format!("manager.action.benefit.{}", record.kind),
                            record.avoided_violation_s(),
                        );
                    }
                }

                if managed && !wants_replan.is_empty() {
                    let sim = sim_elapsed(&testbed.stats(), &self.start_stats);
                    let trigger_violation_s = self.violation_seconds - violation_before_tick;
                    self.pending_recovery.get_or_insert(sim);
                    let mut reacting: Vec<usize> = Vec::new();
                    for &i in &wants_replan {
                        if self.states[i].breaker_open {
                            continue;
                        }
                        if prediction_is_defaulted(fleet, &self.state, &self.live, i) {
                            // Admission control on the model itself: the
                            // cells behind this prediction were never
                            // measured, so re-placing on them would be
                            // guesswork. Open the breaker instead.
                            self.states[i].breaker_open = true;
                            sup.act(
                                sim,
                                ActionKind::CircuitBreak,
                                Some(&fleet.apps()[i].name),
                                0.0,
                                ActCtx {
                                    quality: ModelQuality::Defaulted.as_str(),
                                    predicted: self.states[i].last_predicted,
                                    placement: Vec::new(),
                                    trigger_violation_s,
                                },
                                &mut self.provenance,
                            );
                        } else {
                            reacting.push(i);
                        }
                    }
                    if !reacting.is_empty() {
                        // The re-anneal is justified by the tripped
                        // predictions: record their mean and the worst
                        // quality grade among the reacting apps. The
                        // post-search placements carry their own grades
                        // on the Migrate records.
                        let predicted = reacting
                            .iter()
                            .map(|&i| self.states[i].last_predicted)
                            .sum::<f64>()
                            / reacting.len() as f64;
                        let quality = reacting
                            .iter()
                            .map(|&i| prediction_quality(fleet, &self.state, &self.live, i))
                            .max_by_key(|q| quality_rank(q))
                            .unwrap_or(ModelQuality::Measured.as_str());
                        sup.act(
                            sim,
                            ActionKind::ReAnneal,
                            None,
                            0.0,
                            ActCtx {
                                quality,
                                predicted,
                                placement: Vec::new(),
                                trigger_violation_s,
                            },
                            &mut self.provenance,
                        );
                        let next_run = testbed.peek_run();
                        let downed = testbed.downed_hosts_at(next_run);
                        self.state = replan(
                            testbed,
                            fleet,
                            config,
                            &mut sup,
                            &mut self.live,
                            &mut self.shed_order,
                            &self.suspicion,
                            &self.state,
                            &downed,
                            &self.start_stats,
                            &mut self.provenance,
                            trigger_violation_s,
                        )?;
                    }
                }

                if managed && all_in_bound {
                    if let Some(opened) = self.pending_recovery.take() {
                        let latency = sim_elapsed(&testbed.stats(), &self.start_stats) - opened;
                        self.recovery_latencies.push(latency);
                        sup.recovered(latency, &mut self.provenance);
                    }
                }
            }
            Err(
                err @ (TestbedError::HostDown { .. }
                | TestbedError::ProbeFailed { .. }
                | TestbedError::ProbeTimeout { .. }),
            ) => {
                // The tick produced nothing: every live application lost
                // a full epoch of progress. Charge it as violation time,
                // attributed to the fault event the testbed just emitted
                // (the last event on every failed-run path) — or to
                // manager latency when a recovery was already in flight.
                let fault_event = tracer.now().step;
                let in_flight = self.pending_recovery.is_some();
                for &i in &live_idx {
                    self.states[i].last_ok = false;
                    let charge = fleet.apps()[i].online.base().solo_seconds();
                    self.violation_seconds += charge;
                    self.states[i].last_violation_s = charge;
                    if tracer.enabled() {
                        tracer.event_caused(
                            QOS_VIOLATION,
                            &[fault_event],
                            &[
                                ("tick", Value::from(tick)),
                                ("app", Value::from(fleet.apps()[i].name.as_str())),
                                ("violation_s", Value::from(charge)),
                                (
                                    "cause",
                                    Value::from(if in_flight {
                                        CAUSE_LATENCY
                                    } else {
                                        CAUSE_FAULT
                                    }),
                                ),
                            ],
                        );
                    }
                }
                if managed && matches!(err, TestbedError::ProbeTimeout { .. }) {
                    // A straggler blew its kill deadline. Reshuffle: the
                    // co-location may be what is starving it.
                    let sim = sim_elapsed(&testbed.stats(), &self.start_stats);
                    let trigger_violation_s = self.violation_seconds - violation_before_tick;
                    sup.detect(
                        sim,
                        DetectionKind::Straggler,
                        None,
                        None,
                        DetectCtx {
                            causes: vec![fault_event],
                            ..DetectCtx::default()
                        },
                    );
                    self.pending_recovery.get_or_insert(sim);
                    let predicted = live_idx
                        .iter()
                        .map(|&i| self.states[i].last_predicted)
                        .sum::<f64>()
                        / live_idx.len() as f64;
                    sup.act(
                        sim,
                        ActionKind::ReAnneal,
                        None,
                        0.0,
                        ActCtx {
                            // Justified by a directly observed fault, not
                            // by a model prediction.
                            quality: "observed",
                            predicted,
                            placement: Vec::new(),
                            trigger_violation_s,
                        },
                        &mut self.provenance,
                    );
                    let next_run = testbed.peek_run();
                    let downed = testbed.downed_hosts_at(next_run);
                    self.state = replan(
                        testbed,
                        fleet,
                        config,
                        &mut sup,
                        &mut self.live,
                        &mut self.shed_order,
                        &self.suspicion,
                        &self.state,
                        &downed,
                        &self.start_stats,
                        &mut self.provenance,
                        trigger_violation_s,
                    )?;
                }
            }
            Err(err) => return Err(err.into()),
        }

        tracer.telemetry_observe(
            "manager.tick.violation_s",
            self.violation_seconds - violation_before_tick,
        );
        self.detections.append(&mut sup.detections);
        self.actions.append(&mut sup.actions);
        self.next_tick += 1;
        Ok(())
    }

    /// Consumes the runner and assembles the final [`ManagerOutcome`].
    pub fn into_outcome(
        self,
        testbed: &SimTestbed,
        fleet: &Fleet,
        config: &ManagerConfig,
    ) -> ManagerOutcome {
        let bound = config.qos.max_normalized_time();
        let finals: Vec<AppFinal> = fleet
            .apps()
            .iter()
            .enumerate()
            .map(|(i, app)| AppFinal {
                app: app.name.clone(),
                shed: !self.live[i],
                last_normalized: self.states[i].last_normalized,
                meets_bound: self.live[i]
                    && self.states[i].last_ok
                    && self.states[i].last_normalized > 0.0
                    && self.states[i].last_normalized <= bound,
                hosts: if self.live[i] {
                    fleet
                        .hosts_of(&self.state, i)
                        .iter()
                        .map(|&h| h as u64)
                        .collect()
                } else {
                    Vec::new()
                },
            })
            .collect();

        ManagerOutcome {
            managed: self.managed,
            ticks: config.ticks,
            sim_seconds: sim_elapsed(&testbed.stats(), &self.start_stats),
            violation_seconds: self.violation_seconds,
            detections: self.detections,
            actions: self.actions,
            shed: self.shed_order,
            recovery_latencies: self.recovery_latencies,
            finals,
            provenance: self.provenance,
        }
    }
}

/// Last `n` observations of a bounded per-app window — the streak a
/// detection cites as its causal ancestry.
fn obs_tail(obs: &[ObservationRef], n: usize) -> Vec<ObservationRef> {
    obs[obs.len().saturating_sub(n)..].to_vec()
}

/// Whether the prediction that would justify re-placing app `i` rests
/// on defaulted (never measured) model cells.
fn prediction_is_defaulted(fleet: &Fleet, state: &PlacementState, live: &[bool], i: usize) -> bool {
    prediction_quality(fleet, state, live, i) == ModelQuality::Defaulted.as_str()
}

/// Quality grade of the model cells behind app `i`'s prediction in
/// `state` — `"measured"` when no quality grid is attached (the model
/// was built entirely from direct measurements).
fn prediction_quality(
    fleet: &Fleet,
    state: &PlacementState,
    live: &[bool],
    i: usize,
) -> &'static str {
    let Some(grid) = fleet.apps()[i].quality.as_ref() else {
        return ModelQuality::Measured.as_str();
    };
    let (pressures, _) = context_of(fleet, state, live, i);
    let hom = fleet.apps()[i].online.base().convert(&pressures);
    grid.at_hom(hom.pressure, hom.nodes).as_str()
}

/// Ordering for picking the *worst* quality grade backing a fleet-wide
/// reaction: defaulted > interpolated > measured/observed.
fn quality_rank(quality: &str) -> u8 {
    match quality {
        "defaulted" => 2,
        "interpolated" => 1,
        _ => 0,
    }
}

/// Bounded incremental re-anneal from the current placement, with the
/// shed loop: when the constraints admit no feasible packing, the
/// lowest-priority application is taken out of service and the search
/// retried — never more times than there are applications, so the loop
/// provably terminates.
///
/// Surviving applications whose host sets changed are checkpointed and
/// resumed at the configured migration cost — placement changes are
/// never free.
///
/// The diff execution validates every migration target against the
/// fault plan *before* committing it ([`SimTestbed::resume_app_on`]): a
/// host that went down between the decision and the move surfaces as a
/// typed [`TestbedError::HostDown`], which records a fresh detection and
/// re-plans around the newly-known outage instead of aborting the tick.
/// Each retry adds a host to the exclusion set, so the loop terminates.
#[allow(clippy::too_many_arguments)]
fn replan(
    testbed: &mut SimTestbed,
    fleet: &Fleet,
    config: &ManagerConfig,
    sup: &mut Supervisor<'_>,
    live: &mut [bool],
    shed_order: &mut Vec<String>,
    suspicion: &[f64],
    state: &PlacementState,
    downed: &[usize],
    start_stats: &TestbedStats,
    provenance: &mut Vec<ProvenanceRecord>,
    trigger_violation_s: f64,
) -> Result<PlacementState, ManagerError> {
    let mut before: Vec<Vec<usize>> = (0..fleet.apps().len())
        .map(|i| fleet.hosts_of(state, i))
        .collect();
    let mut downed: Vec<usize> = downed.to_vec();
    let mut current = state.clone();
    let mut attempt: u64 = 0;
    'replan: loop {
        loop {
            let constraints = outage_constraints(live, &downed);
            let anneal_config = AnnealConfig {
                iterations: config.reanneal_iterations,
                seed: reaction_seed(config.seed, sup.tick, 0xD00D ^ attempt),
                lanes: config.search_lanes,
                ..AnnealConfig::default()
            };
            let live_ref: &[bool] = live;
            let result = re_anneal_with(
                fleet.problem(),
                |_| FleetObjective::new(fleet, live_ref, suspicion),
                &current,
                &constraints,
                &anneal_config,
                sup.tracer,
            )?;
            current = result.state;
            if constraints.breaches(fleet.problem(), &current) == 0 {
                break;
            }
            // No feasible placement: degrade gracefully.
            let Some(victim) = fleet.shed_candidate(live) else {
                break; // nothing left to shed; nothing left to place either
            };
            live[victim] = false;
            shed_order.push(fleet.apps()[victim].name.clone());
            let sim = sim_elapsed(&testbed.stats(), start_stats);
            sup.act(
                sim,
                ActionKind::Shed,
                Some(&fleet.apps()[victim].name),
                0.0,
                ActCtx {
                    // Sheds are justified by constraint infeasibility, not
                    // by any model prediction.
                    quality: "infeasible",
                    predicted: 0.0,
                    placement: Vec::new(),
                    trigger_violation_s,
                },
                provenance,
            );
            attempt += 1;
        }

        // Execute the placement diff: surviving applications that moved
        // are checkpointed and resumed on their new hosts.
        for (i, app) in fleet.apps().iter().enumerate() {
            if !live[i] {
                continue;
            }
            let target = fleet.hosts_of(&current, i);
            if target == before[i] {
                continue;
            }
            let sim = sim_elapsed(&testbed.stats(), start_stats);
            testbed.checkpoint_app(&app.name)?;
            match testbed.resume_app_on(&app.name, &target, config.migration_cost_s) {
                Ok(()) => {}
                Err(TestbedError::HostDown { host, .. }) if !downed.contains(&host) => {
                    // The target host crashed between the placement
                    // decision and its execution. The failed resume had
                    // no side effects; record what we just learned and
                    // re-plan with the outage excluded.
                    sup.detect(
                        sim,
                        DetectionKind::HostDown,
                        Some(&app.name),
                        Some(host as u64),
                        DetectCtx::default(),
                    );
                    downed.push(host);
                    downed.sort_unstable();
                    attempt += 1;
                    continue 'replan;
                }
                Err(TestbedError::HostDown { .. }) => {
                    // The host was already in the exclusion set, yet the
                    // search could not avoid it (shed loop gave up with
                    // breaches left). Commit the move anyway — the next
                    // deployment surfaces the outage through the tick
                    // loop's fault path, as it always has.
                    testbed.resume_app(&app.name, config.migration_cost_s)?;
                }
                Err(err) => return Err(err.into()),
            }
            before[i] = target.clone();
            // The candidate placement this migration commits to, with
            // the model's post-move prediction and its quality grade.
            let (pressures, key) = context_of(fleet, &current, live, i);
            let predicted = app.online.predict_for(&key, &pressures)?;
            let hosts: Vec<u64> = target.iter().map(|&h| h as u64).collect();
            sup.act(
                sim,
                ActionKind::Migrate,
                Some(&app.name),
                config.migration_cost_s,
                ActCtx {
                    quality: prediction_quality(fleet, &current, live, i),
                    predicted,
                    placement: vec![PlacementRef {
                        app: app.name.clone(),
                        hosts,
                    }],
                    trigger_violation_s,
                },
                provenance,
            );
        }
        return Ok(current);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icm_core::model::ModelBuilder;
    use icm_core::OnlineModel;
    use icm_placement::anneal;
    use icm_rng::Rng;
    use icm_workloads::{Catalog, TestbedBuilder};

    use crate::fleet::ManagedApp;

    const SPAN: usize = 4;

    /// Two profiled paper applications on the 8×2 cluster: four
    /// workload slots, so two of them are idle fillers — the case the
    /// pooled objective must skip exactly as [`context_of`] does.
    fn fleet_fixture() -> Fleet {
        let mut tb = TestbedBuilder::new(&Catalog::paper()).seed(2016).build();
        let apps = ["M.milc", "H.KM"]
            .iter()
            .map(|&name| {
                let model = ModelBuilder::new(name)
                    .hosts(SPAN)
                    .policy_samples(6)
                    .solo_repeats(1)
                    .score_repeats(1)
                    .seed(0xFEED)
                    .build(&mut tb)
                    .expect("model builds");
                ManagedApp::new(name, 1, OnlineModel::new(model))
            })
            .collect();
        Fleet::new(8, 2, SPAN, apps).expect("fleet packs")
    }

    #[test]
    fn pooled_objective_matches_the_reference_cost_bit_for_bit() {
        let fleet = fleet_fixture();
        let n = fleet.apps().len();
        let hosts = fleet.problem().hosts();
        let live_patterns = [vec![true; n], {
            let mut dead_first = vec![true; n];
            dead_first[0] = false;
            dead_first
        }];
        let suspicion_patterns = [vec![0.0; hosts], {
            (0..hosts).map(|h| h as f64 * 0.125).collect()
        }];
        let mut rng = Rng::from_seed(0xF1EE7);
        for live in &live_patterns {
            for suspicion in &suspicion_patterns {
                let mut objective = FleetObjective::new(&fleet, live, suspicion);
                for _ in 0..40 {
                    let state = PlacementState::random(fleet.problem(), &mut rng);
                    let reference =
                        fleet_cost(&fleet, live, suspicion, &state).expect("reference cost");
                    let eval = objective.reset(&state).expect("pooled cost");
                    assert_eq!(
                        eval.cost.to_bits(),
                        reference.to_bits(),
                        "pooled {} != reference {reference}",
                        eval.cost
                    );
                    assert_eq!(eval.violation, 0.0);
                    let probe = objective.probe(&state, 0, 1).expect("probe");
                    assert_eq!(probe.cost.to_bits(), reference.to_bits());
                }
            }
        }
    }

    #[test]
    fn pooled_search_matches_the_closure_search() {
        let fleet = fleet_fixture();
        let n = fleet.apps().len();
        let live = vec![true; n];
        let suspicion = vec![0.0; fleet.problem().hosts()];
        let config = AnnealConfig {
            iterations: 400,
            seed: 77,
            ..AnnealConfig::default()
        };
        let pooled = anneal_with(
            fleet.problem(),
            |_| FleetObjective::new(&fleet, &live, &suspicion),
            &config,
            &Tracer::disabled(),
        )
        .expect("pooled search");
        let closure = anneal(
            fleet.problem(),
            |s| fleet_cost(&fleet, &live, &suspicion, s),
            |_| Ok(0.0),
            &config,
        )
        .expect("closure search");
        assert_eq!(pooled, closure);
    }

    #[test]
    fn zero_search_lanes_is_a_config_error() {
        let config = ManagerConfig {
            search_lanes: 0,
            ..ManagerConfig::default()
        };
        let err = config.validate(8).expect_err("must reject");
        assert!(matches!(err, ManagerError::Config(msg) if msg.contains("search_lanes")));
    }

    /// Like [`fleet_fixture`], but keeps the testbed the models were
    /// profiled against, so tests can run the supervisory loop on it.
    fn fleet_and_testbed() -> (SimTestbed, Fleet) {
        let mut tb = TestbedBuilder::new(&Catalog::paper()).seed(2016).build();
        let apps = ["M.milc", "H.KM"]
            .iter()
            .map(|&name| {
                let model = ModelBuilder::new(name)
                    .hosts(SPAN)
                    .policy_samples(6)
                    .solo_repeats(1)
                    .score_repeats(1)
                    .seed(0xFEED)
                    .build(&mut tb)
                    .expect("model builds");
                ManagedApp::new(name, 1, OnlineModel::new(model))
            })
            .collect();
        let fleet = Fleet::new(8, 2, SPAN, apps).expect("fleet packs");
        (tb.into_sim(), fleet)
    }

    fn test_supervisor(tracer: &Tracer) -> Supervisor<'_> {
        Supervisor {
            tracer,
            managed: true,
            tick: 1,
            tick_announced: false,
            detections: Vec::new(),
            actions: Vec::new(),
            tick_inputs: Vec::new(),
        }
    }

    #[test]
    fn replan_reroutes_when_a_migration_target_crashes_before_the_move() {
        use icm_simcluster::{CrashWindow, FaultPlan};

        let (tb, fleet) = fleet_and_testbed();
        let config = ManagerConfig::default();
        let n = fleet.apps().len();
        let hosts = fleet.problem().hosts();
        let suspicion = vec![0.0; hosts];
        // A deliberately scrambled starting placement forces migrations.
        let mut rng = Rng::from_seed(0xBAD_5EED);
        let state = PlacementState::random(fleet.problem(), &mut rng);
        let tracer = Tracer::disabled();

        // Dry run against a fault-free clone to learn, deterministically,
        // which host an application is about to be moved onto.
        let crashed = {
            let mut dry = tb.clone();
            let mut live = vec![true; n];
            let mut shed = Vec::new();
            let mut prov = Vec::new();
            let mut sup = test_supervisor(&tracer);
            let start = dry.stats();
            let planned = replan(
                &mut dry,
                &fleet,
                &config,
                &mut sup,
                &mut live,
                &mut shed,
                &suspicion,
                &state,
                &[],
                &start,
                &mut prov,
                0.0,
            )
            .expect("fault-free replan");
            (0..n)
                .find_map(|i| {
                    let before = fleet.hosts_of(&state, i);
                    fleet
                        .hosts_of(&planned, i)
                        .into_iter()
                        .find(|h| !before.contains(h))
                })
                .expect("fixture must force a migration onto a new host")
        };

        // Same replan, but the chosen target crashed between the
        // decision and the move, and the caller's outage list is stale.
        let mut tb = tb;
        tb.set_fault_plan(Some(FaultPlan {
            crash_windows: vec![CrashWindow {
                host: crashed,
                from_run: 0,
                until_run: 1_000_000,
            }],
            ..FaultPlan::default()
        }));
        let mut live = vec![true; n];
        let mut shed = Vec::new();
        let mut prov = Vec::new();
        let mut sup = test_supervisor(&tracer);
        let start = tb.stats();
        let planned = replan(
            &mut tb,
            &fleet,
            &config,
            &mut sup,
            &mut live,
            &mut shed,
            &suspicion,
            &state,
            &[],
            &start,
            &mut prov,
            0.0,
        )
        .expect("a crashed target must trigger a re-plan, not abort the tick");

        assert!(
            sup.detections
                .iter()
                .any(|d| d.kind == DetectionKind::HostDown && d.host == Some(crashed as u64)),
            "the surprise outage must be recorded as a typed detection"
        );
        for i in 0..n {
            if live[i] {
                assert!(
                    !fleet.hosts_of(&planned, i).contains(&crashed),
                    "no surviving application may be routed through the dead host"
                );
            }
        }
        assert!(
            sup.actions.iter().any(|a| a.kind == ActionKind::Migrate),
            "the re-plan must still commit migrations"
        );
    }

    #[test]
    fn a_managed_run_resumes_from_its_serialized_state() {
        let (tb, fleet) = fleet_and_testbed();
        let config = ManagerConfig {
            ticks: 6,
            initial_iterations: 200,
            reanneal_iterations: 120,
            search_lanes: 2,
            ..ManagerConfig::default()
        };
        let tracer = Tracer::disabled();

        // Reference: one uninterrupted supervised run.
        let mut full_tb = tb.clone();
        let mut full_fleet = fleet.clone();
        let mut full = ManagedRun::start(&full_tb, &full_fleet, &config, true).expect("starts");
        while !full.is_done(&config) {
            full.step(&mut full_tb, &mut full_fleet, &config, &tracer)
                .expect("steps");
        }
        let reference = full.into_outcome(&full_tb, &full_fleet, &config);

        // Same prefix, then every live object through JSON, then the
        // suffix on the restored copies.
        let mut prefix_tb = tb;
        let mut prefix_fleet = fleet;
        let mut prefix =
            ManagedRun::start(&prefix_tb, &prefix_fleet, &config, true).expect("starts");
        for _ in 0..3 {
            prefix
                .step(&mut prefix_tb, &mut prefix_fleet, &config, &tracer)
                .expect("steps");
        }
        let mut resumed_tb = SimTestbed::restore(
            icm_json::from_str(&icm_json::to_string(&prefix_tb.snapshot()))
                .expect("testbed round-trips"),
        );
        let mut resumed_fleet: Fleet =
            icm_json::from_str(&icm_json::to_string(&prefix_fleet)).expect("fleet round-trips");
        let mut resumed: ManagedRun =
            icm_json::from_str(&icm_json::to_string(&prefix)).expect("run round-trips");
        assert_eq!(resumed.next_tick(), 4);
        while !resumed.is_done(&config) {
            resumed
                .step(&mut resumed_tb, &mut resumed_fleet, &config, &tracer)
                .expect("steps");
        }
        let outcome = resumed.into_outcome(&resumed_tb, &resumed_fleet, &config);
        assert_eq!(
            reference, outcome,
            "a run resumed from its savestate must finish identically"
        );
    }
}
