//! The manager's typed decision vocabulary: what it detected, what it
//! did about it, and how the run ended.
//!
//! Every record is JSON round-trippable so that a whole action log can
//! be serialized and compared byte-for-byte across same-seed replays —
//! the determinism contract the recovery tests assert.

use icm_json::{FromJson, Json, JsonError, ToJson};
use icm_obs::ProvenanceRecord;

/// A condition the manager detected and may react to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectionKind {
    /// A host the fleet occupies is entering a crash window.
    HostDown,
    /// A run straggled past its kill deadline and was terminated.
    Straggler,
    /// An application exceeded its QoS bound for a sustained streak.
    SloViolation,
    /// The drift detector tripped on an application's residuals.
    Drift,
}

impl DetectionKind {
    /// Stable lowercase label, used in events and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            DetectionKind::HostDown => "host_down",
            DetectionKind::Straggler => "straggler",
            DetectionKind::SloViolation => "slo_violation",
            DetectionKind::Drift => "drift",
        }
    }
}

impl ToJson for DetectionKind {
    fn to_json(&self) -> Json {
        Json::String(self.as_str().to_owned())
    }
}

impl FromJson for DetectionKind {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value.as_str() {
            Some("host_down") => Ok(DetectionKind::HostDown),
            Some("straggler") => Ok(DetectionKind::Straggler),
            Some("slo_violation") => Ok(DetectionKind::SloViolation),
            Some("drift") => Ok(DetectionKind::Drift),
            _ => Err(JsonError::msg("unknown DetectionKind")),
        }
    }
}

/// A reaction the manager executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActionKind {
    /// An application was moved off a failing host (checkpoint + resume
    /// on the new placement, charging an explicit restart cost).
    Migrate,
    /// A bounded incremental re-anneal from the current placement.
    ReAnneal,
    /// Graceful degradation: the lowest-priority application was taken
    /// out of service because no feasible placement exists.
    Shed,
    /// A circuit breaker opened: the application's predictions rest on
    /// defaulted model cells, so model-driven reactions are suspended.
    CircuitBreak,
}

impl ActionKind {
    /// Stable lowercase label, used in events and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            ActionKind::Migrate => "migrate",
            ActionKind::ReAnneal => "re_anneal",
            ActionKind::Shed => "shed",
            ActionKind::CircuitBreak => "circuit_break",
        }
    }
}

impl ToJson for ActionKind {
    fn to_json(&self) -> Json {
        Json::String(self.as_str().to_owned())
    }
}

impl FromJson for ActionKind {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value.as_str() {
            Some("migrate") => Ok(ActionKind::Migrate),
            Some("re_anneal") => Ok(ActionKind::ReAnneal),
            Some("shed") => Ok(ActionKind::Shed),
            Some("circuit_break") => Ok(ActionKind::CircuitBreak),
            _ => Err(JsonError::msg("unknown ActionKind")),
        }
    }
}

/// One detection, as replayed in the log.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionRecord {
    /// Supervisory epoch (1-based).
    pub tick: u64,
    /// Manager's simulated clock at detection time.
    pub sim_s: f64,
    /// What was detected.
    pub kind: DetectionKind,
    /// Affected application, when the condition is app-specific.
    pub app: Option<String>,
    /// Affected host, when the condition is host-specific.
    pub host: Option<u64>,
}

icm_json::impl_json!(struct DetectionRecord { tick, sim_s, kind, app, host });

/// One executed action, as replayed in the log.
#[derive(Debug, Clone, PartialEq)]
pub struct ActionRecord {
    /// Supervisory epoch (1-based).
    pub tick: u64,
    /// Manager's simulated clock when the action was taken.
    pub sim_s: f64,
    /// What was done.
    pub kind: ActionKind,
    /// Application the action targeted, when app-specific.
    pub app: Option<String>,
    /// Simulated seconds the action cost (migration restart cost; 0 for
    /// free actions).
    pub cost_s: f64,
}

icm_json::impl_json!(struct ActionRecord { tick, sim_s, kind, app, cost_s });

/// Final state of one application when the managed horizon ended.
#[derive(Debug, Clone, PartialEq)]
pub struct AppFinal {
    /// Application name.
    pub app: String,
    /// Whether the manager shed it (admission control).
    pub shed: bool,
    /// Normalized runtime of its last completed run (0 if it never
    /// completed one).
    pub last_normalized: f64,
    /// Whether its last tick attempt completed *and* met the QoS bound.
    /// Shed applications are never `meets_bound`.
    pub meets_bound: bool,
    /// Hosts it occupied when the horizon ended (empty when shed).
    pub hosts: Vec<u64>,
}

icm_json::impl_json!(struct AppFinal { app, shed, last_normalized, meets_bound, hosts });

/// Everything one supervised horizon produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ManagerOutcome {
    /// `true` when reactions were enabled (managed mode).
    pub managed: bool,
    /// Supervisory epochs executed.
    pub ticks: u64,
    /// Manager's simulated clock at the end (productive run seconds plus
    /// restart costs).
    pub sim_seconds: f64,
    /// Total QoS-violation-seconds: simulated seconds applications spent
    /// beyond their bound, plus full lost progress for failed ticks.
    pub violation_seconds: f64,
    /// Every detection, in order.
    pub detections: Vec<DetectionRecord>,
    /// Every action, in order.
    pub actions: Vec<ActionRecord>,
    /// Applications shed, in shedding order.
    pub shed: Vec<String>,
    /// Detection-to-recovery latencies, simulated seconds, one per
    /// completed recovery.
    pub recovery_latencies: Vec<f64>,
    /// Per-application end state.
    pub finals: Vec<AppFinal>,
    /// Full decision provenance, one record per action in order —
    /// empty on quiet runs and always empty for unmanaged baselines.
    /// Defaults to empty when parsing pre-provenance outcome JSON.
    pub provenance: Vec<ProvenanceRecord>,
}

icm_json::impl_json!(struct ManagerOutcome {
    managed,
    ticks,
    sim_seconds,
    violation_seconds,
    detections,
    actions,
    shed,
    recovery_latencies,
    finals,
    provenance = Vec::new()
});

impl ManagerOutcome {
    /// Number of actions of one kind.
    pub fn action_count(&self, kind: ActionKind) -> u64 {
        self.actions.iter().filter(|a| a.kind == kind).count() as u64
    }

    /// Mean recovery latency in simulated seconds (0 when no recovery
    /// completed).
    pub fn mean_recovery_latency(&self) -> f64 {
        if self.recovery_latencies.is_empty() {
            return 0.0;
        }
        self.recovery_latencies.iter().sum::<f64>() / self.recovery_latencies.len() as f64
    }

    /// The serialized action log — the byte sequence the determinism
    /// tests compare across same-seed replays.
    pub fn action_log(&self) -> String {
        icm_json::to_string(&self.actions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ManagerOutcome {
        ManagerOutcome {
            managed: true,
            ticks: 4,
            sim_seconds: 812.5,
            violation_seconds: 37.0,
            detections: vec![DetectionRecord {
                tick: 2,
                sim_s: 400.0,
                kind: DetectionKind::HostDown,
                app: None,
                host: Some(3),
            }],
            actions: vec![
                ActionRecord {
                    tick: 2,
                    sim_s: 400.0,
                    kind: ActionKind::Migrate,
                    app: Some("H.KM".into()),
                    cost_s: 12.5,
                },
                ActionRecord {
                    tick: 3,
                    sim_s: 610.0,
                    kind: ActionKind::ReAnneal,
                    app: Some("M.Gems".into()),
                    cost_s: 0.0,
                },
            ],
            shed: vec![],
            recovery_latencies: vec![210.0],
            finals: vec![AppFinal {
                app: "H.KM".into(),
                shed: false,
                last_normalized: 1.1,
                meets_bound: true,
                hosts: vec![0, 2, 5, 6],
            }],
            provenance: vec![ProvenanceRecord {
                action_index: 0,
                event: 12,
                tick: 2,
                sim_s: 400.0,
                kind: "migrate".into(),
                app: Some("H.KM".into()),
                cost_s: 12.5,
                quality: "measured".into(),
                predicted_slowdown: 1.15,
                realized_slowdown: 1.1,
                resolved: true,
                trigger_violation_s: 0.0,
                violation_incurred_s: 0.0,
                placement: vec![],
                detections: vec![],
                outcome: None,
            }],
        }
    }

    #[test]
    fn kinds_round_trip_through_json() {
        for kind in [
            ActionKind::Migrate,
            ActionKind::ReAnneal,
            ActionKind::Shed,
            ActionKind::CircuitBreak,
        ] {
            let back: ActionKind = icm_json::from_str(&icm_json::to_string(&kind)).expect("parses");
            assert_eq!(back, kind);
        }
        for kind in [
            DetectionKind::HostDown,
            DetectionKind::Straggler,
            DetectionKind::SloViolation,
            DetectionKind::Drift,
        ] {
            let back: DetectionKind =
                icm_json::from_str(&icm_json::to_string(&kind)).expect("parses");
            assert_eq!(back, kind);
        }
        assert!(icm_json::from_str::<ActionKind>("\"reboot\"").is_err());
        assert!(icm_json::from_str::<DetectionKind>("\"gremlins\"").is_err());
    }

    #[test]
    fn outcome_round_trips_and_counts() {
        let outcome = sample();
        let back: ManagerOutcome =
            icm_json::from_str(&icm_json::to_string(&outcome)).expect("parses");
        assert_eq!(back, outcome);
        assert_eq!(outcome.action_count(ActionKind::Migrate), 1);
        assert_eq!(outcome.action_count(ActionKind::Shed), 0);
        assert_eq!(outcome.mean_recovery_latency(), 210.0);
    }

    #[test]
    fn pre_provenance_outcome_json_still_parses() {
        let text = icm_json::to_string(&sample());
        let idx = text
            .rfind(",\"provenance\":")
            .expect("field serialized last");
        let old = format!("{}{}", &text[..idx], "}");
        let back: ManagerOutcome = icm_json::from_str(&old).expect("parses without the field");
        assert!(back.provenance.is_empty());
        assert_eq!(back.actions, sample().actions);
    }

    #[test]
    fn action_log_is_stable_bytes() {
        let a = sample().action_log();
        let b = sample().action_log();
        assert_eq!(a, b);
        assert!(a.contains("\"migrate\""));
        let empty = ManagerOutcome {
            actions: vec![],
            recovery_latencies: vec![],
            ..sample()
        };
        assert_eq!(empty.action_log(), "[]");
        assert_eq!(empty.mean_recovery_latency(), 0.0);
    }
}
