//! Typed failures of the supervisory loop.

use std::error::Error;
use std::fmt;

/// Why the manager could not be constructed or could not continue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManagerError {
    /// A fleet or configuration parameter is inconsistent (bad span,
    /// model profiled at the wrong width, non-finite cost, …).
    Config(String),
    /// The placement layer failed (shape mismatch, predictor error).
    Placement(String),
    /// The interference model rejected an observation or prediction.
    Model(String),
    /// The testbed rejected an operation the manager believed valid —
    /// anything other than an injected fault, which the loop absorbs.
    Testbed(String),
}

impl fmt::Display for ManagerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManagerError::Config(msg) => write!(f, "invalid manager configuration: {msg}"),
            ManagerError::Placement(msg) => write!(f, "placement failure: {msg}"),
            ManagerError::Model(msg) => write!(f, "model failure: {msg}"),
            ManagerError::Testbed(msg) => write!(f, "testbed failure: {msg}"),
        }
    }
}

impl Error for ManagerError {}

impl From<icm_placement::PlacementError> for ManagerError {
    fn from(err: icm_placement::PlacementError) -> Self {
        ManagerError::Placement(err.to_string())
    }
}

impl From<icm_core::ModelError> for ManagerError {
    fn from(err: icm_core::ModelError) -> Self {
        ManagerError::Model(err.to_string())
    }
}

impl From<icm_simcluster::TestbedError> for ManagerError {
    fn from(err: icm_simcluster::TestbedError) -> Self {
        ManagerError::Testbed(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_has_a_distinct_display_prefix() {
        let variants = [
            ManagerError::Config("x".into()),
            ManagerError::Placement("x".into()),
            ManagerError::Model("x".into()),
            ManagerError::Testbed("x".into()),
        ];
        let rendered: Vec<String> = variants.iter().map(ManagerError::to_string).collect();
        let unique: std::collections::BTreeSet<&str> =
            rendered.iter().map(String::as_str).collect();
        assert_eq!(unique.len(), variants.len());
        for text in &rendered {
            assert!(text.contains('x'));
        }
    }

    #[test]
    fn conversions_preserve_the_cause() {
        let err: ManagerError = icm_placement::PlacementError::Shape("bad".into()).into();
        assert!(err.to_string().contains("bad"));
        let err: ManagerError = icm_core::ModelError::InvalidData("nan".into()).into();
        assert!(err.to_string().contains("nan"));
        let err: ManagerError = icm_simcluster::TestbedError::UnknownApp("ghost".into()).into();
        assert!(err.to_string().contains("ghost"));
    }
}
