//! Whole-world savestates: everything a supervised run needs to stop in
//! one process and continue — byte-identically — in another.
//!
//! A [`WorldSnapshot`] bundles the testbed (hosts, apps, fault plan,
//! noise position), the manager runtime ([`ManagedRun`]: placement,
//! drift/hysteresis streaks, provenance, breaker flags), the fleet with
//! its online models, the tracer clock, and every live RNG. The payload
//! is plain `icm-json`; crash-safe persistence (checksums, atomic
//! writes, generation fallback) lives one layer down in
//! [`icm_json::fs::SnapshotStore`], which treats the snapshot as opaque
//! bytes.
//!
//! What is deliberately *not* snapshotted: telemetry accumulators.
//! They are derived data — a resumed run restarts them empty, and the
//! byte-identity contract covers the event trace, results, and final
//! state, not mid-run telemetry rollups.

use std::fmt;

use icm_json::{FromJson, Json, JsonError, ToJson};
use icm_obs::TracerState;
use icm_rng::Rng;
use icm_simcluster::TestbedSnapshot;

use crate::fleet::Fleet;
use crate::runtime::{ManagedRun, ManagerConfig};

/// Current snapshot payload format version. Bump on any change to the
/// field layout of [`WorldSnapshot`] or its components.
pub const WORLD_SNAPSHOT_VERSION: u64 = 1;

/// Serializable xoshiro256++ generator state.
///
/// The four state words are full-range `u64`s, which do not survive the
/// workspace's 2^53 JSON-number exactness check — so they are encoded
/// as an array of four decimal strings instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngState(pub [u64; 4]);

impl RngState {
    /// Captures a generator's current state.
    pub fn capture(rng: &Rng) -> Self {
        Self(rng.state())
    }

    /// Rebuilds a generator that continues the captured stream.
    pub fn restore(&self) -> Rng {
        Rng::from_state(self.0)
    }
}

impl ToJson for RngState {
    fn to_json(&self) -> Json {
        Json::Array(self.0.iter().map(|w| Json::String(w.to_string())).collect())
    }
}

impl FromJson for RngState {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let items = value.as_array().ok_or_else(|| {
            JsonError::msg(format!("RngState: expected array, got {}", value.kind()))
        })?;
        if items.len() != 4 {
            return Err(JsonError::msg(format!(
                "RngState: expected 4 state words, got {}",
                items.len()
            )));
        }
        let mut words = [0u64; 4];
        for (i, item) in items.iter().enumerate() {
            let text = item.as_str().ok_or_else(|| {
                JsonError::msg(format!(
                    "RngState[{i}]: expected string, got {}",
                    item.kind()
                ))
            })?;
            words[i] = text
                .parse::<u64>()
                .map_err(|e| JsonError::msg(format!("RngState[{i}]: {e}")))?;
        }
        Ok(Self(words))
    }
}

/// The complete state of a checkpointed supervised run.
///
/// `version` is always serialized first so [`WorldSnapshot::parse`] can
/// reject payloads from a different format generation with a typed
/// error before attempting a full decode.
#[derive(Debug, Clone)]
pub struct WorldSnapshot {
    /// Payload format version ([`WORLD_SNAPSHOT_VERSION`]).
    pub version: u64,
    /// The simulated testbed: cluster, apps, noise position, fault plan.
    pub testbed: TestbedSnapshot,
    /// The manager configuration the run was started with.
    pub config: ManagerConfig,
    /// The fleet, including every online model's learned corrections.
    pub fleet: Fleet,
    /// The supervisory loop state, positioned before its next tick.
    pub run: ManagedRun,
    /// The tracer clock and span counter, so resumed stamps continue
    /// the sequence.
    pub tracer: TracerState,
    /// Every live driver-level generator, in a caller-defined order.
    pub rngs: Vec<RngState>,
    /// Path of the event trace the run was appending to, if any.
    pub trace_path: Option<String>,
    /// Size of the trace at checkpoint time: a resumed run truncates to
    /// this offset so its output is the exact byte suffix.
    pub trace_bytes: u64,
}

icm_json::impl_json!(struct WorldSnapshot {
    version,
    testbed,
    config,
    fleet,
    run,
    tracer,
    rngs,
    trace_path = None,
    trace_bytes,
});

/// Why a snapshot payload was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotFormatError {
    /// The payload declares a format version this build does not read.
    UnknownVersion(u64),
    /// The payload is not valid JSON, or a field is missing or
    /// mis-typed.
    Payload(JsonError),
}

impl fmt::Display for SnapshotFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownVersion(v) => write!(
                f,
                "snapshot format version {v} (this build reads {WORLD_SNAPSHOT_VERSION})"
            ),
            Self::Payload(e) => write!(f, "snapshot payload: {e}"),
        }
    }
}

impl std::error::Error for SnapshotFormatError {}

impl WorldSnapshot {
    /// Serializes the snapshot to its canonical compact JSON text.
    pub fn to_text(&self) -> String {
        icm_json::to_string(self)
    }

    /// Parses snapshot text, rejecting unknown format versions with a
    /// typed error before decoding the rest of the payload.
    ///
    /// # Errors
    ///
    /// [`SnapshotFormatError::UnknownVersion`] when the payload's
    /// `version` differs from [`WORLD_SNAPSHOT_VERSION`];
    /// [`SnapshotFormatError::Payload`] for malformed JSON or a missing
    /// or mis-typed field.
    pub fn parse(text: &str) -> Result<Self, SnapshotFormatError> {
        let value = icm_json::parse(text).map_err(SnapshotFormatError::Payload)?;
        let version = value
            .get("version")
            .ok_or_else(|| {
                SnapshotFormatError::Payload(JsonError::msg("WorldSnapshot: missing `version`"))
            })?
            .as_f64()
            .ok_or_else(|| {
                SnapshotFormatError::Payload(JsonError::msg(
                    "WorldSnapshot: `version` not a number",
                ))
            })?;
        if version != WORLD_SNAPSHOT_VERSION as f64 {
            // Truncation is safe: the exactness check in the number
            // parser guarantees an integral value up to 2^53.
            return Err(SnapshotFormatError::UnknownVersion(version as u64));
        }
        Self::from_json(&value).map_err(SnapshotFormatError::Payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_state_round_trips_full_range_words() {
        let mut rng = Rng::from_seed(0xDEAD_BEEF_CAFE_F00D);
        for _ in 0..13 {
            rng.next_u64();
        }
        let state = RngState::capture(&rng);
        let text = icm_json::to_string(&state);
        let back: RngState = icm_json::from_str(&text).expect("round-trips");
        assert_eq!(state, back);
        let mut resumed = back.restore();
        let mut original = rng;
        for _ in 0..32 {
            assert_eq!(original.next_u64(), resumed.next_u64());
        }
    }

    #[test]
    fn rng_state_rejects_malformed_payloads() {
        let bad: Result<RngState, _> = icm_json::from_str("[\"1\",\"2\",\"3\"]");
        assert!(bad.is_err(), "three words must be rejected");
        let bad: Result<RngState, _> = icm_json::from_str("[1,2,3,4]");
        assert!(bad.is_err(), "bare numbers must be rejected");
        let bad: Result<RngState, _> = icm_json::from_str("[\"1\",\"2\",\"3\",\"x\"]");
        assert!(bad.is_err(), "non-numeric words must be rejected");
    }

    #[test]
    fn unknown_versions_are_rejected_before_decoding() {
        let err = WorldSnapshot::parse("{\"version\":9}").expect_err("must reject");
        assert_eq!(err, SnapshotFormatError::UnknownVersion(9));
        let err = WorldSnapshot::parse("{}").expect_err("must reject");
        assert!(matches!(err, SnapshotFormatError::Payload(_)));
        let err = WorldSnapshot::parse("not json").expect_err("must reject");
        assert!(matches!(err, SnapshotFormatError::Payload(_)));
    }
}
