//! Self-healing runtime management for consolidated clusters — the
//! supervisory layer the ASPLOS'16 paper leaves as future work ("our
//! system currently assumes a static environment", §4.4).
//!
//! The paper's pipeline profiles applications once, picks a placement,
//! and stops. This crate closes the loop: an event-driven, fully
//! deterministic manager executes the chosen placement on the simulated
//! testbed and supervises it over simulated time. Each epoch it
//! collects per-application slowdown observations, folds them into the
//! online interference model, and reacts to failures with typed,
//! replayable actions:
//!
//! * **migrate** — a host enters a crash window; affected applications
//!   are checkpointed and resumed elsewhere at an explicit restart cost
//!   in simulated seconds, *before* the outage hits;
//! * **re-anneal** — drift trips, sustained SLO violations or straggler
//!   kills trigger a bounded incremental placement search warm-started
//!   from the current assignment (never a cold restart);
//! * **shed** — when no feasible placement exists, the lowest-priority
//!   application is taken out of service (graceful degradation);
//! * **circuit-break** — reactions justified only by predictions
//!   resting on `Defaulted` model cells are suspended instead of acted
//!   on.
//!
//! Determinism is the contract throughout: same seed + same fault plan
//! ⇒ byte-identical action logs, and with faults disabled the managed
//! run's simulated history is byte-identical to the unmanaged baseline
//! — supervision is free until something breaks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod action;
mod error;
mod fleet;
mod runtime;
pub mod snapshot;

pub use action::{
    ActionKind, ActionRecord, AppFinal, DetectionKind, DetectionRecord, ManagerOutcome,
};
pub use error::ManagerError;
pub use fleet::{Fleet, ManagedApp, IDLE_PREFIX};
pub use runtime::{run_managed, run_unmanaged, EnvironmentDrift, ManagedRun, ManagerConfig};
