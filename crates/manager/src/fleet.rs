//! The supervised fleet: applications, their online models, and the
//! placement problem they are packed into.
//!
//! The placement layer works with fully packed problems (every slot
//! always occupied), so the fleet pads the real applications with
//! *idle* filler workloads — zero-pressure placeholders that are never
//! deployed. A crashed host's slots are absorbed by idle workloads
//! during re-annealing, and shedding an application simply stops
//! deploying it; the problem shape never changes mid-run.

use icm_core::{OnlineModel, QualityGrid};
use icm_placement::{PlacementProblem, PlacementState};

use crate::error::ManagerError;

/// Prefix of idle filler workload names. Real applications may not use
/// it.
pub const IDLE_PREFIX: &str = "idle.";

/// One supervised application.
#[derive(Debug, Clone)]
pub struct ManagedApp {
    /// Testbed application name.
    pub name: String,
    /// Shedding priority: higher survives longer; on ties the
    /// lexicographically smaller name survives.
    pub priority: u32,
    /// Its interference model with online corrections; the manager feeds
    /// every observation back through [`OnlineModel::observe_for`].
    pub online: OnlineModel,
    /// Per-cell provenance of the underlying profile, when available.
    /// Predictions resting on `Defaulted` cells open a circuit breaker
    /// instead of driving re-placement.
    pub quality: Option<QualityGrid>,
}

icm_json::impl_json!(struct ManagedApp { name, priority, online, quality });

impl ManagedApp {
    /// Convenience constructor without a quality grid.
    pub fn new(name: impl Into<String>, priority: u32, online: OnlineModel) -> Self {
        Self {
            name: name.into(),
            priority,
            online,
            quality: None,
        }
    }
}

/// The fleet: real applications plus the padded placement problem.
#[derive(Debug, Clone)]
pub struct Fleet {
    problem: PlacementProblem,
    apps: Vec<ManagedApp>,
}

// Serialization support for whole-world savestates. Deserializing
// bypasses [`Fleet::new`]'s validation deliberately: a snapshot records
// a fleet that already validated when it was first built, and the
// snapshot store's checksum guards the bytes in between.
icm_json::impl_json!(struct Fleet { problem, apps });

impl Fleet {
    /// Builds a fleet over a `hosts × slots_per_host` cluster where every
    /// workload (real or idle) spans `span` hosts.
    ///
    /// # Errors
    ///
    /// [`ManagerError::Config`] when the geometry cannot pack (span must
    /// divide the slot count, fit the host count, and leave room for
    /// every application), when a name collides or uses the idle prefix,
    /// or when an application's model was profiled at a width other than
    /// `span`.
    pub fn new(
        hosts: usize,
        slots_per_host: usize,
        span: usize,
        apps: Vec<ManagedApp>,
    ) -> Result<Self, ManagerError> {
        if apps.is_empty() {
            return Err(ManagerError::Config("fleet has no applications".into()));
        }
        if span == 0 || span > hosts {
            return Err(ManagerError::Config(format!(
                "span {span} does not fit a {hosts}-host cluster"
            )));
        }
        let slots = hosts * slots_per_host;
        if slots == 0 || !slots.is_multiple_of(span) {
            return Err(ManagerError::Config(format!(
                "span {span} does not divide {slots} slots"
            )));
        }
        let workload_count = slots / span;
        if workload_count < apps.len() {
            return Err(ManagerError::Config(format!(
                "{} applications need {} slots of span {span}, but only {workload_count} \
                 workloads fit",
                apps.len(),
                apps.len() * span
            )));
        }
        let mut names = Vec::with_capacity(workload_count);
        for app in &apps {
            if app.name.starts_with(IDLE_PREFIX) {
                return Err(ManagerError::Config(format!(
                    "application name `{}` uses the reserved idle prefix",
                    app.name
                )));
            }
            if names.contains(&app.name) {
                return Err(ManagerError::Config(format!(
                    "duplicate application `{}`",
                    app.name
                )));
            }
            if app.online.base().hosts() != span {
                return Err(ManagerError::Config(format!(
                    "model for `{}` was profiled at {} hosts, fleet span is {span}",
                    app.name,
                    app.online.base().hosts()
                )));
            }
            names.push(app.name.clone());
        }
        for k in apps.len()..workload_count {
            names.push(format!("{IDLE_PREFIX}{k}"));
        }
        let problem = PlacementProblem::new(hosts, slots_per_host, names)
            .map_err(|e| ManagerError::Config(e.to_string()))?;
        Ok(Self { problem, apps })
    }

    /// The padded placement problem (real apps first, then idle fillers).
    pub fn problem(&self) -> &PlacementProblem {
        &self.problem
    }

    /// The real applications, workload-index order.
    pub fn apps(&self) -> &[ManagedApp] {
        &self.apps
    }

    /// Mutable access for feeding observations back.
    pub fn apps_mut(&mut self) -> &mut [ManagedApp] {
        &mut self.apps
    }

    /// Hosts every workload spans.
    pub fn span(&self) -> usize {
        self.problem.slots_per_workload()
    }

    /// Whether workload index `w` is an idle filler.
    pub fn is_idle(&self, w: usize) -> bool {
        w >= self.apps.len()
    }

    /// Index of the live application the manager would shed next: lowest
    /// priority, ties broken toward the lexicographically larger name.
    /// `live` flags are indexed like [`Self::apps`].
    pub fn shed_candidate(&self, live: &[bool]) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, app) in self.apps.iter().enumerate() {
            if !live[i] {
                continue;
            }
            best = match best {
                None => Some(i),
                Some(b) => {
                    let current = &self.apps[b];
                    if app.priority < current.priority
                        || (app.priority == current.priority && app.name > current.name)
                    {
                        Some(i)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        best
    }

    /// Sorted hosts workload `w` occupies in `state`.
    pub fn hosts_of(&self, state: &PlacementState, w: usize) -> Vec<usize> {
        let mut hosts = state.hosts_of(&self.problem, w);
        hosts.sort_unstable();
        hosts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn an_empty_fleet_is_rejected() {
        // Geometry and model-width validation need real models and are
        // covered by the runtime tests; the no-app check fires first.
        let err = Fleet::new(8, 2, 4, vec![]).unwrap_err();
        assert!(err.to_string().contains("no applications"));
    }
}
