//! Integration tests for the supervisory loop: real profiled models on
//! the simulated paper cluster, scripted crash windows, environment
//! drift, and the graceful-degradation (shedding) path.

use icm_core::model::ModelBuilder;
use icm_core::{DriftConfig, OnlineModel};
use icm_manager::{
    run_managed, run_unmanaged, ActionKind, DetectionKind, Fleet, ManagedApp, ManagerConfig,
    ManagerError,
};
use icm_obs::Tracer;
use icm_placement::QosConfig;
use icm_simcluster::{CrashWindow, FaultPlan};
use icm_workloads::{Catalog, SimTestbedAdapter, TestbedBuilder};

const SPAN: usize = 4;

fn testbed(seed: u64) -> SimTestbedAdapter {
    TestbedBuilder::new(&Catalog::paper()).seed(seed).build()
}

/// Profiles `names` on the adapter (cheap settings) and wraps them into
/// managed applications.
fn managed_apps(tb: &mut SimTestbedAdapter, names: &[(&str, u32)]) -> Vec<ManagedApp> {
    names
        .iter()
        .map(|&(name, priority)| {
            let model = ModelBuilder::new(name)
                .hosts(SPAN)
                .policy_samples(6)
                .solo_repeats(1)
                .score_repeats(1)
                .seed(0xFEED)
                .build(tb)
                .expect("model builds");
            ManagedApp::new(name, priority, OnlineModel::new(model))
        })
        .collect()
}

/// A configuration lenient enough that a fault-free run never reacts:
/// generous QoS bound (2× solo) and a drift detector that only trips on
/// gross mispredictions.
fn lenient(ticks: u64) -> ManagerConfig {
    ManagerConfig {
        ticks,
        initial_iterations: 600,
        reanneal_iterations: 250,
        qos: QosConfig {
            qos_fraction: 0.5,
            ..QosConfig::default()
        },
        drift: DriftConfig {
            threshold: 0.5,
            ..DriftConfig::default()
        },
        ..ManagerConfig::default()
    }
}

#[test]
fn a_quiet_run_records_nothing_and_matches_the_baseline() {
    let mut tb = testbed(2016);
    let mut fleet = Fleet::new(
        8,
        2,
        SPAN,
        managed_apps(&mut tb, &[("M.milc", 2), ("H.KM", 1)]),
    )
    .expect("fleet packs");
    let (mut tb2, mut fleet2) = (tb.clone(), fleet.clone());
    let config = lenient(4);

    let managed =
        run_managed(tb.sim_mut(), &mut fleet, &config, &Tracer::disabled()).expect("managed run");
    let unmanaged = run_unmanaged(tb2.sim_mut(), &mut fleet2, &config, &Tracer::disabled())
        .expect("unmanaged run");

    assert!(managed.managed);
    assert!(!unmanaged.managed);
    assert!(managed.detections.is_empty(), "{:?}", managed.detections);
    assert!(managed.actions.is_empty(), "{:?}", managed.actions);
    assert!(managed.recovery_latencies.is_empty());
    assert!(unmanaged.actions.is_empty() && unmanaged.detections.is_empty());
    // Identical randomness, no reactions: the two histories agree to the
    // last bit.
    assert_eq!(managed.sim_seconds, unmanaged.sim_seconds);
    assert_eq!(managed.violation_seconds, unmanaged.violation_seconds);
    assert!(
        managed.finals.iter().all(|f| f.meets_bound),
        "{:?}",
        managed.finals
    );
}

/// Runs the crash scenario on fresh state; returns (managed, unmanaged).
fn crash_scenario() -> (icm_manager::ManagerOutcome, icm_manager::ManagerOutcome) {
    let mut tb = testbed(2016);
    let mut fleet = Fleet::new(
        8,
        2,
        SPAN,
        managed_apps(&mut tb, &[("M.milc", 2), ("H.KM", 1)]),
    )
    .expect("fleet packs");
    let config = lenient(6);

    // Discover the initial placement on clones (same seeds ⇒ identical),
    // then script an outage on a host the first application occupies.
    let target = {
        let (mut dtb, mut dfleet) = (tb.clone(), fleet.clone());
        let probe = run_managed(dtb.sim_mut(), &mut dfleet, &lenient(1), &Tracer::disabled())
            .expect("discovery run");
        probe.finals[0].hosts[0] as usize
    };
    let from_run = tb.sim().peek_run() + 2; // first two ticks are healthy
    let plan = FaultPlan {
        crash_windows: vec![CrashWindow {
            host: target,
            from_run,
            until_run: u64::MAX,
        }],
        ..FaultPlan::default()
    };

    let (mut utb, mut ufleet) = (tb.clone(), fleet.clone());
    tb.sim_mut().set_fault_plan(Some(plan.clone()));
    utb.sim_mut().set_fault_plan(Some(plan));

    let managed =
        run_managed(tb.sim_mut(), &mut fleet, &config, &Tracer::disabled()).expect("managed");
    let unmanaged =
        run_unmanaged(utb.sim_mut(), &mut ufleet, &config, &Tracer::disabled()).expect("unmanaged");
    (managed, unmanaged)
}

#[test]
fn a_crash_window_is_dodged_by_migration() {
    let (managed, unmanaged) = crash_scenario();

    // The manager saw the outage coming and moved the tenants off.
    assert!(managed
        .detections
        .iter()
        .any(|d| d.kind == DetectionKind::HostDown));
    assert!(
        managed.action_count(ActionKind::Migrate) >= 1,
        "{:?}",
        managed.actions
    );
    for action in &managed.actions {
        if action.kind == ActionKind::Migrate {
            assert!(action.cost_s > 0.0, "migration is never free");
        }
    }
    assert!(
        managed.shed.is_empty(),
        "capacity sufficed: {:?}",
        managed.shed
    );
    assert!(!managed.recovery_latencies.is_empty());
    assert!(managed.mean_recovery_latency() > 0.0);
    assert!(
        managed.finals.iter().all(|f| f.meets_bound),
        "{:?}",
        managed.finals
    );

    // The baseline sailed into the outage and lost every epoch after it.
    assert!(unmanaged.actions.is_empty() && unmanaged.detections.is_empty());
    assert!(unmanaged.finals.iter().any(|f| !f.meets_bound));
    assert!(
        managed.violation_seconds < unmanaged.violation_seconds,
        "managed {} vs unmanaged {}",
        managed.violation_seconds,
        unmanaged.violation_seconds
    );
}

#[test]
fn same_seed_crash_runs_replay_byte_identical_action_logs() {
    let (a, _) = crash_scenario();
    let (b, _) = crash_scenario();
    assert!(!a.actions.is_empty());
    assert_eq!(a.action_log(), b.action_log());
    assert_eq!(
        icm_json::to_string(&a.detections),
        icm_json::to_string(&b.detections)
    );
    assert_eq!(a.sim_seconds, b.sim_seconds);
    assert_eq!(a.violation_seconds, b.violation_seconds);
}

#[test]
fn an_infeasible_outage_sheds_the_lowest_priority_app() {
    // One slot per host: 8 slots, two span-4 applications fill the whole
    // cluster. Any permanent outage makes the packing infeasible, so the
    // manager must degrade gracefully instead of looping or panicking.
    let mut tb = testbed(2016);
    let mut fleet = Fleet::new(
        8,
        1,
        SPAN,
        managed_apps(&mut tb, &[("M.milc", 2), ("H.KM", 1)]),
    )
    .expect("fleet packs");
    let plan = FaultPlan {
        crash_windows: vec![CrashWindow {
            host: 0,
            from_run: tb.sim().peek_run(),
            until_run: u64::MAX,
        }],
        ..FaultPlan::default()
    };
    tb.sim_mut().set_fault_plan(Some(plan));

    let outcome = run_managed(tb.sim_mut(), &mut fleet, &lenient(4), &Tracer::disabled())
        .expect("managed run");

    assert_eq!(
        outcome.shed,
        vec!["H.KM".to_owned()],
        "lowest priority sheds"
    );
    assert_eq!(outcome.action_count(ActionKind::Shed), 1);
    let km = outcome.finals.iter().find(|f| f.app == "H.KM").unwrap();
    assert!(km.shed && !km.meets_bound && km.hosts.is_empty());
    let milc = outcome.finals.iter().find(|f| f.app == "M.milc").unwrap();
    assert!(!milc.shed);
    assert!(milc.meets_bound, "{milc:?}");
    assert!(!milc.hosts.contains(&0), "survivor avoids the dead host");
}

#[test]
fn environment_drift_trips_the_detector_and_triggers_reanneal() {
    let mut tb = testbed(2016);
    let mut fleet = Fleet::new(
        8,
        2,
        SPAN,
        managed_apps(&mut tb, &[("M.milc", 2), ("H.KM", 1)]),
    )
    .expect("fleet packs");
    let config = ManagerConfig {
        ticks: 8,
        initial_iterations: 600,
        reanneal_iterations: 250,
        drift: DriftConfig {
            threshold: 0.15,
            trip_after: 2,
        },
        environment: Some(icm_manager::EnvironmentDrift {
            from_tick: 3,
            pressures: vec![6.0; 8],
        }),
        ..ManagerConfig::default()
    };

    let outcome =
        run_managed(tb.sim_mut(), &mut fleet, &config, &Tracer::disabled()).expect("managed run");

    assert!(
        outcome
            .detections
            .iter()
            .any(|d| d.kind == DetectionKind::Drift),
        "{:?}",
        outcome.detections
    );
    assert!(
        outcome.action_count(ActionKind::ReAnneal) >= 1,
        "{:?}",
        outcome.actions
    );
    assert!(outcome.violation_seconds > 0.0, "ambient pressure hurts");
}

#[test]
fn defaulted_model_cells_open_the_circuit_breaker_instead_of_replacing() {
    // Four real applications fill all 16 slots, so every application is
    // co-located (pressure > 0) and its predictions hit the quality
    // grid. With every cell Defaulted, drift reactions must be
    // suspended, not acted on.
    let mut tb = testbed(2016);
    let mut apps = managed_apps(
        &mut tb,
        &[("M.milc", 4), ("M.Gems", 3), ("H.KM", 2), ("M.lmps", 1)],
    );
    let row = r#"["Defaulted","Defaulted","Defaulted","Defaulted","Defaulted"]"#;
    let grid_text = format!(r#"{{"n":8,"m":4,"cells":[{}]}}"#, vec![row; 8].join(","));
    let grid: icm_core::QualityGrid = icm_json::from_str(&grid_text).expect("grid parses");
    for app in &mut apps {
        app.quality = Some(grid.clone());
    }
    let mut fleet = Fleet::new(8, 2, SPAN, apps).expect("fleet packs");
    let config = ManagerConfig {
        ticks: 8,
        initial_iterations: 600,
        reanneal_iterations: 250,
        drift: DriftConfig {
            threshold: 0.15,
            trip_after: 2,
        },
        environment: Some(icm_manager::EnvironmentDrift {
            from_tick: 3,
            pressures: vec![6.0; 8],
        }),
        ..ManagerConfig::default()
    };

    let outcome =
        run_managed(tb.sim_mut(), &mut fleet, &config, &Tracer::disabled()).expect("managed run");

    assert!(
        outcome.action_count(ActionKind::CircuitBreak) >= 1,
        "{:?}",
        outcome.actions
    );
    assert!(
        outcome.action_count(ActionKind::CircuitBreak) <= 4,
        "at most once per application: {:?}",
        outcome.actions
    );
    assert_eq!(
        outcome.action_count(ActionKind::ReAnneal),
        0,
        "defaulted predictions must not drive re-placement: {:?}",
        outcome.actions
    );
    assert_eq!(outcome.action_count(ActionKind::Migrate), 0);
}

#[test]
fn inconsistent_fleets_and_configs_are_rejected_with_typed_errors() {
    let mut tb = testbed(2016);
    let apps = managed_apps(&mut tb, &[("M.milc", 2), ("H.KM", 1)]);

    // Model width must match the fleet span.
    let err = Fleet::new(8, 2, 2, apps.clone()).unwrap_err();
    assert!(matches!(err, ManagerError::Config(_)), "{err}");
    assert!(err.to_string().contains("profiled at"), "{err}");

    // Span must divide the slot count.
    let err = Fleet::new(8, 2, 3, apps.clone()).unwrap_err();
    assert!(err.to_string().contains("does not divide"), "{err}");

    // Duplicate applications are rejected.
    let mut dup = apps.clone();
    dup.push(apps[0].clone());
    let err = Fleet::new(8, 2, 4, dup).unwrap_err();
    assert!(err.to_string().contains("duplicate"), "{err}");

    // The reserved idle prefix is off limits.
    let mut renamed = apps.clone();
    renamed[0].name = "idle.sneaky".into();
    let err = Fleet::new(8, 2, 4, renamed).unwrap_err();
    assert!(err.to_string().contains("reserved idle prefix"), "{err}");

    // Runtime configuration is validated before anything runs.
    let mut fleet = Fleet::new(8, 2, 4, apps).expect("fleet packs");
    let err = run_managed(
        tb.sim_mut(),
        &mut fleet,
        &ManagerConfig {
            ticks: 0,
            ..ManagerConfig::default()
        },
        &Tracer::disabled(),
    )
    .unwrap_err();
    assert!(err.to_string().contains("ticks"), "{err}");

    let err = run_managed(
        tb.sim_mut(),
        &mut fleet,
        &ManagerConfig {
            environment: Some(icm_manager::EnvironmentDrift {
                from_tick: 1,
                pressures: vec![1.0; 3],
            }),
            ..ManagerConfig::default()
        },
        &Tracer::disabled(),
    )
    .unwrap_err();
    assert!(err.to_string().contains("3 pressures"), "{err}");
}
