//! The profiling algorithms of §4.1–4.2: *binary-brute* (Algorithm 1),
//! *binary-optimized* (Algorithm 2) and the *random-k%* baselines.
//!
//! All of them build a [`PropagationMatrix`] from selectively measured
//! interference settings. A *setting* is a pair `(pressure i, interfering
//! nodes j)` with `j ≥ 1`; the profiling **cost** is the fraction of the
//! `n × m` settings actually measured (settings with `j = 0` are free —
//! they are the solo run).

use icm_obs::{Tracer, Value};
use icm_rng::{Rng, Shuffle};

use crate::error::ModelError;
use crate::propagation::PropagationMatrix;

/// Source of normalized runtime measurements for profiling: "run the
/// application with `nodes` hosts under a bubble of integer `pressure`
/// and report runtime / solo-runtime".
///
/// Implemented over the simulated testbed by `icm-workloads`; any struct
/// (or a closure via [`FnSource`]) can stand in for tests.
pub trait ProfileSource {
    /// Number of hosts `m` the application spans.
    fn hosts(&self) -> usize;
    /// Number of bubble pressure levels `n`.
    fn max_pressure(&self) -> usize;
    /// Measures the normalized runtime at `(pressure, nodes)`;
    /// `pressure ∈ 1..=n`, `nodes ∈ 1..=m`.
    ///
    /// # Errors
    ///
    /// Propagates testbed failures.
    fn measure(&mut self, pressure: usize, nodes: usize) -> Result<f64, ModelError>;
}

/// Adapts a closure into a [`ProfileSource`] (handy in tests and benches).
#[derive(Debug)]
pub struct FnSource<F> {
    hosts: usize,
    max_pressure: usize,
    f: F,
}

impl<F> FnSource<F>
where
    F: FnMut(usize, usize) -> f64,
{
    /// Wraps `f(pressure, nodes) -> normalized runtime`.
    pub fn new(max_pressure: usize, hosts: usize, f: F) -> Self {
        Self {
            hosts,
            max_pressure,
            f,
        }
    }
}

impl<F> ProfileSource for FnSource<F>
where
    F: FnMut(usize, usize) -> f64,
{
    fn hosts(&self) -> usize {
        self.hosts
    }

    fn max_pressure(&self) -> usize {
        self.max_pressure
    }

    fn measure(&mut self, pressure: usize, nodes: usize) -> Result<f64, ModelError> {
        Ok((self.f)(pressure, nodes))
    }
}

/// Which profiling algorithm to use to construct the propagation matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProfilingAlgorithm {
    /// Algorithm 1: binary search along the node axis of *every* pressure
    /// row. Most accurate, most expensive.
    BinaryBrute,
    /// Algorithm 2: binary-profile only the top-pressure row and the
    /// max-nodes column, then infer every other cell by the proportional
    /// product formula. Cheapest.
    BinaryOptimized,
    /// Measure a random fraction of all settings (plus the per-row
    /// max-node anchors) and interpolate the rest. The paper evaluates
    /// 30% and 50%.
    RandomFraction(f64),
    /// Measure every setting (ground truth; cost 100%).
    Full,
}

impl icm_json::ToJson for ProfilingAlgorithm {
    fn to_json(&self) -> icm_json::Json {
        match *self {
            ProfilingAlgorithm::BinaryBrute => icm_json::Json::String("BinaryBrute".to_owned()),
            ProfilingAlgorithm::BinaryOptimized => {
                icm_json::Json::String("BinaryOptimized".to_owned())
            }
            ProfilingAlgorithm::Full => icm_json::Json::String("Full".to_owned()),
            ProfilingAlgorithm::RandomFraction(f) => {
                icm_json::Json::object([("RandomFraction", f.to_json())])
            }
        }
    }
}

impl icm_json::FromJson for ProfilingAlgorithm {
    fn from_json(value: &icm_json::Json) -> Result<Self, icm_json::JsonError> {
        match value.as_str() {
            Some("BinaryBrute") => return Ok(ProfilingAlgorithm::BinaryBrute),
            Some("BinaryOptimized") => return Ok(ProfilingAlgorithm::BinaryOptimized),
            Some("Full") => return Ok(ProfilingAlgorithm::Full),
            _ => {}
        }
        if let Some(f) = value.get("RandomFraction") {
            return Ok(ProfilingAlgorithm::RandomFraction(
                icm_json::FromJson::from_json(f)?,
            ));
        }
        Err(icm_json::JsonError::msg(
            "unknown ProfilingAlgorithm variant",
        ))
    }
}

impl ProfilingAlgorithm {
    /// The paper's random-30% baseline.
    pub fn random30() -> Self {
        ProfilingAlgorithm::RandomFraction(0.30)
    }

    /// The paper's random-50% baseline.
    pub fn random50() -> Self {
        ProfilingAlgorithm::RandomFraction(0.50)
    }

    /// Display name used in tables.
    pub fn name(&self) -> String {
        match self {
            ProfilingAlgorithm::BinaryBrute => "binary-brute".into(),
            ProfilingAlgorithm::BinaryOptimized => "binary-optimized".into(),
            ProfilingAlgorithm::RandomFraction(f) => format!("random-{:.0}%", f * 100.0),
            ProfilingAlgorithm::Full => "full".into(),
        }
    }
}

/// Tuning knobs for the profiling algorithms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfilerConfig {
    /// Binary-search refinement threshold: if two measured endpoints of a
    /// span differ by less than this (normalized time), the interior is
    /// interpolated instead of measured.
    pub epsilon: f64,
    /// Seed for the random-fraction cell selection.
    pub seed: u64,
}

icm_json::impl_json!(struct ProfilerConfig { epsilon, seed });

impl Default for ProfilerConfig {
    fn default() -> Self {
        Self {
            epsilon: 0.04,
            seed: 0x1C4E,
        }
    }
}

/// Output of a profiling run: the constructed matrix plus cost
/// accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileResult {
    /// The constructed propagation matrix.
    pub matrix: PropagationMatrix,
    /// The `(pressure, nodes)` settings actually measured.
    pub measured: Vec<(usize, usize)>,
    /// `measured.len() / (n × m)` — the paper's profiling-cost metric.
    pub cost: f64,
}

icm_json::impl_json!(struct ProfileResult { matrix, measured, cost });

/// Runs `algorithm` against `source` and constructs the propagation
/// matrix.
///
/// # Errors
///
/// Propagates measurement failures, and returns
/// [`ModelError::InvalidData`] if the measured values cannot form a valid
/// matrix.
pub fn profile(
    source: &mut dyn ProfileSource,
    algorithm: ProfilingAlgorithm,
    config: &ProfilerConfig,
) -> Result<ProfileResult, ModelError> {
    profile_traced(source, algorithm, config, &Tracer::disabled())
}

/// [`profile`] with structured tracing: the whole run is wrapped in a
/// `profile` span and, once the matrix is fitted, one `probe` event is
/// emitted per measured setting carrying the measured slowdown and the
/// fitted-curve residual (fitted − measured; non-zero where the matrix
/// floored a noisy sub-unity measurement).
///
/// # Errors
///
/// Same as [`profile`].
pub fn profile_traced(
    source: &mut dyn ProfileSource,
    algorithm: ProfilingAlgorithm,
    config: &ProfilerConfig,
    tracer: &Tracer,
) -> Result<ProfileResult, ModelError> {
    let n = source.max_pressure();
    let m = source.hosts();
    if n == 0 || m == 0 {
        return Err(ModelError::Profiling(format!(
            "degenerate profiling space: {n} pressures × {m} hosts"
        )));
    }
    let span = if tracer.enabled() {
        Some(tracer.span(
            "profile",
            &[
                ("algorithm", Value::from(algorithm.name())),
                ("pressures", Value::from(n)),
                ("hosts", Value::from(m)),
            ],
        ))
    } else {
        None
    };
    let mut grid = Grid::new(n, m);
    match algorithm {
        ProfilingAlgorithm::BinaryBrute => {
            for i in 1..=n {
                grid.measure(source, i, m)?;
                grid.binary_fill_row(source, i, 0, m, config.epsilon)?;
                grid.interpolate_row(i);
            }
        }
        ProfilingAlgorithm::BinaryOptimized => {
            grid.measure(source, 1, m)?;
            grid.measure(source, n, m)?;
            // Top-pressure row, binary refined then interpolated.
            grid.binary_fill_row(source, n, 0, m, config.epsilon)?;
            grid.interpolate_row(n);
            // Max-nodes column, binary refined then interpolated.
            grid.binary_fill_col(source, m, 1, n, config.epsilon)?;
            grid.interpolate_col(m);
            // Everything else by the proportional product formula.
            grid.interpolate_all_proportional();
        }
        ProfilingAlgorithm::RandomFraction(fraction) => {
            if !(0.0..=1.0).contains(&fraction) {
                return Err(ModelError::Profiling(format!(
                    "random fraction must be in [0,1], got {fraction}"
                )));
            }
            // Anchors: every row's max-nodes cell is always measured so
            // each sensitivity curve is pinned at both ends (§4.2).
            for i in 1..=n {
                grid.measure(source, i, m)?;
            }
            let target = ((fraction * (n * m) as f64).round() as usize).max(n);
            let mut remaining: Vec<(usize, usize)> =
                (1..=n).flat_map(|i| (1..m).map(move |j| (i, j))).collect();
            let mut rng = Rng::from_seed(config.seed);
            remaining.shuffle(&mut rng);
            for (i, j) in remaining {
                if grid.measured_count() >= target {
                    break;
                }
                grid.measure(source, i, j)?;
            }
            for i in 1..=n {
                grid.interpolate_row(i);
            }
        }
        ProfilingAlgorithm::Full => {
            for i in 1..=n {
                for j in 1..=m {
                    grid.measure(source, i, j)?;
                }
            }
        }
    }
    let result = grid.finish(tracer)?;
    if let Some(span) = span {
        span.end_with(&[
            ("probes", Value::from(result.measured.len())),
            ("cost", Value::from(result.cost)),
        ]);
    }
    Ok(result)
}

/// Measures every setting — the ground-truth matrix used to score the
/// cheaper algorithms (Table 3).
///
/// # Errors
///
/// Propagates measurement failures.
pub fn profile_full(source: &mut dyn ProfileSource) -> Result<ProfileResult, ModelError> {
    profile(source, ProfilingAlgorithm::Full, &ProfilerConfig::default())
}

/// Partially-filled matrix under construction.
struct Grid {
    n: usize,
    m: usize,
    /// cells[i-1][j] for pressures i in 1..=n, nodes j in 0..=m.
    cells: Vec<Vec<Option<f64>>>,
    measured: Vec<(usize, usize)>,
    /// Raw (pre-floor) measurement per `measured` entry, kept so the
    /// trace can report fitted-curve residuals.
    raw: Vec<f64>,
}

impl Grid {
    fn new(n: usize, m: usize) -> Self {
        let mut cells = vec![vec![None; m + 1]; n];
        for row in &mut cells {
            row[0] = Some(1.0); // no interfering nodes → normalized 1
        }
        Self {
            n,
            m,
            cells,
            measured: Vec::new(),
            raw: Vec::new(),
        }
    }

    fn get(&self, i: usize, j: usize) -> Option<f64> {
        self.cells[i - 1][j]
    }

    fn set(&mut self, i: usize, j: usize, v: f64) {
        self.cells[i - 1][j] = Some(v);
    }

    fn measured_count(&self) -> usize {
        self.measured.len()
    }

    fn measure(
        &mut self,
        source: &mut dyn ProfileSource,
        i: usize,
        j: usize,
    ) -> Result<f64, ModelError> {
        if let Some(v) = self.get(i, j) {
            return Ok(v);
        }
        let v = source.measure(i, j)?;
        if !v.is_finite() || v <= 0.0 {
            return Err(ModelError::Profiling(format!(
                "measurement at pressure {i}, nodes {j} returned {v}"
            )));
        }
        // Normalized times can dip slightly below 1 from noise; floor them
        // so matrix validation holds.
        self.set(i, j, v.max(0.95));
        self.measured.push((i, j));
        self.raw.push(v);
        Ok(v)
    }

    /// Binary subdivision along the node axis of row `i` between measured
    /// endpoints `lo` and `hi`.
    fn binary_fill_row(
        &mut self,
        source: &mut dyn ProfileSource,
        i: usize,
        lo: usize,
        hi: usize,
        epsilon: f64,
    ) -> Result<(), ModelError> {
        if hi - lo <= 1 {
            return Ok(());
        }
        let lo_v = self.get(i, lo).expect("endpoint measured");
        let hi_v = self.get(i, hi).expect("endpoint measured");
        if (hi_v - lo_v).abs() <= epsilon {
            return Ok(());
        }
        let mid = (lo + hi) / 2;
        self.measure(source, i, mid)?;
        self.binary_fill_row(source, i, lo, mid, epsilon)?;
        self.binary_fill_row(source, i, mid, hi, epsilon)
    }

    /// Binary subdivision along the pressure axis of column `j` between
    /// measured endpoints `lo` and `hi` (pressure indices).
    fn binary_fill_col(
        &mut self,
        source: &mut dyn ProfileSource,
        j: usize,
        lo: usize,
        hi: usize,
        epsilon: f64,
    ) -> Result<(), ModelError> {
        if hi - lo <= 1 {
            return Ok(());
        }
        let lo_v = self.get(lo, j).expect("endpoint measured");
        let hi_v = self.get(hi, j).expect("endpoint measured");
        if (hi_v - lo_v).abs() <= epsilon {
            return Ok(());
        }
        let mid = (lo + hi) / 2;
        self.measure(source, mid, j)?;
        self.binary_fill_col(source, j, lo, mid, epsilon)?;
        self.binary_fill_col(source, j, mid, hi, epsilon)
    }

    /// Fills unmeasured cells of row `i` by linear interpolation between
    /// the nearest measured neighbours (function `interpolate_row` of
    /// Algorithm 1).
    fn interpolate_row(&mut self, i: usize) {
        let known: Vec<(usize, f64)> = (0..=self.m)
            .filter_map(|j| self.get(i, j).map(|v| (j, v)))
            .collect();
        debug_assert!(!known.is_empty());
        for j in 0..=self.m {
            if self.get(i, j).is_some() {
                continue;
            }
            self.set(i, j, interpolate_from_known(&known, j, self.m));
        }
    }

    /// Fills unmeasured cells of column `j` likewise (`interpolate_col`
    /// of Algorithm 2).
    fn interpolate_col(&mut self, j: usize) {
        let known: Vec<(usize, f64)> = (1..=self.n)
            .filter_map(|i| self.get(i, j).map(|v| (i, v)))
            .collect();
        debug_assert!(!known.is_empty());
        for i in 1..=self.n {
            if self.get(i, j).is_some() {
                continue;
            }
            self.set(i, j, interpolate_from_known(&known, i, self.n));
        }
    }

    /// `interpolate_all` of Algorithm 2:
    /// `T[i][j] = 1 + (T[i][m]−1)·(T[n][j]−1)/(T[n][m]−1)`,
    /// exploiting that curve *shapes* are similar across pressures.
    ///
    /// If the application is interference-insensitive (`T[n][m] ≈ 1`) the
    /// formula degenerates; cells then fall back to proportional scaling
    /// by node count.
    fn interpolate_all_proportional(&mut self) {
        let t_nm = self.get(self.n, self.m).expect("corner measured");
        for i in 1..=self.n {
            let t_im = self.get(i, self.m).expect("column m filled");
            for j in 1..self.m {
                if self.get(i, j).is_some() {
                    continue;
                }
                let v = if (t_nm - 1.0).abs() > 1e-6 {
                    let t_nj = self.get(self.n, j).expect("row n filled");
                    1.0 + (t_im - 1.0) * (t_nj - 1.0) / (t_nm - 1.0)
                } else {
                    1.0 + (t_im - 1.0) * j as f64 / self.m as f64
                };
                self.set(i, j, v.max(0.95));
            }
        }
    }

    fn finish(self, tracer: &Tracer) -> Result<ProfileResult, ModelError> {
        // Wall side channel only (fit cost never enters the trace).
        let _fit_scope = tracer.wall_scope("profile.fit");
        let n = self.n;
        let m = self.m;
        let raw = self.raw;
        let rows: Vec<Vec<f64>> = self
            .cells
            .into_iter()
            .enumerate()
            .map(|(idx, row)| {
                row.into_iter()
                    .enumerate()
                    .map(|(j, v)| {
                        v.ok_or_else(|| {
                            ModelError::Profiling(format!(
                                "cell at pressure {}, nodes {j} left unfilled",
                                idx + 1
                            ))
                        })
                    })
                    .collect::<Result<Vec<f64>, ModelError>>()
            })
            .collect::<Result<_, _>>()?;
        let matrix = PropagationMatrix::new(rows)?;
        let cost = self.measured.len() as f64 / (n * m) as f64;
        if tracer.enabled() {
            // One event per probe, in measurement order: residuals are
            // computed against the *fitted* matrix, so they expose both
            // the 0.95 noise floor and any later smoothing.
            for (&(i, j), &measured) in self.measured.iter().zip(&raw) {
                let fitted = matrix.at(i, j);
                tracer.event(
                    "probe",
                    &[
                        ("pressure", Value::from(i)),
                        ("nodes", Value::from(j)),
                        ("slowdown", Value::from(measured)),
                        ("fitted", Value::from(fitted)),
                        ("residual", Value::from(fitted - measured)),
                    ],
                );
            }
        }
        Ok(ProfileResult {
            matrix,
            measured: self.measured,
            cost,
        })
    }
}

/// Linear interpolation / extrapolation-by-clamping from known `(index,
/// value)` pairs (sorted by index) at `target`.
fn interpolate_from_known(known: &[(usize, f64)], target: usize, _max: usize) -> f64 {
    debug_assert!(!known.is_empty());
    match known.binary_search_by_key(&target, |&(idx, _)| idx) {
        Ok(pos) => known[pos].1,
        Err(pos) => {
            if pos == 0 {
                known[0].1
            } else if pos == known.len() {
                known[known.len() - 1].1
            } else {
                let (lo_i, lo_v) = known[pos - 1];
                let (hi_i, hi_v) = known[pos];
                let frac = (target - lo_i) as f64 / (hi_i - lo_i) as f64;
                lo_v * (1.0 - frac) + hi_v * frac
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic "application": high-propagation saturating curves,
    /// deterministic (noise-free), so algorithm behaviour is exactly
    /// checkable.
    fn saturating_truth(pressure: usize, nodes: usize) -> f64 {
        let severity = 0.15 * pressure as f64;
        let frac = (nodes as f64 / 8.0).powf(0.25);
        1.0 + severity * frac
    }

    /// Linear (proportional-propagation) curves.
    fn linear_truth(pressure: usize, nodes: usize) -> f64 {
        1.0 + 0.05 * pressure as f64 * nodes as f64 / 8.0
    }

    fn source_of(f: fn(usize, usize) -> f64) -> FnSource<impl FnMut(usize, usize) -> f64> {
        FnSource::new(8, 8, f)
    }

    fn truth_matrix(f: fn(usize, usize) -> f64) -> PropagationMatrix {
        let mut src = source_of(f);
        profile_full(&mut src).expect("full profile").matrix
    }

    #[test]
    fn full_profile_has_unit_cost_and_zero_error() {
        let mut src = source_of(saturating_truth);
        let result = profile_full(&mut src).expect("profiles");
        assert_eq!(result.cost, 1.0);
        assert_eq!(result.measured.len(), 64);
        let truth = truth_matrix(saturating_truth);
        assert_eq!(
            result.matrix.mean_abs_error_pct(&truth).expect("shape"),
            0.0
        );
    }

    #[test]
    fn binary_brute_is_accurate_and_cheaper_than_full() {
        let mut src = source_of(saturating_truth);
        let result = profile(
            &mut src,
            ProfilingAlgorithm::BinaryBrute,
            &ProfilerConfig::default(),
        )
        .expect("profiles");
        let truth = truth_matrix(saturating_truth);
        let err = result.matrix.mean_abs_error_pct(&truth).expect("shape");
        assert!(err < 1.0, "binary-brute error should be tiny, got {err}%");
        assert!(
            result.cost < 1.0,
            "must skip some settings, cost {}",
            result.cost
        );
        assert!(result.cost > 0.2);
    }

    #[test]
    fn binary_optimized_is_cheapest() {
        let mut brute_src = source_of(saturating_truth);
        let brute = profile(
            &mut brute_src,
            ProfilingAlgorithm::BinaryBrute,
            &ProfilerConfig::default(),
        )
        .expect("profiles");
        let mut opt_src = source_of(saturating_truth);
        let opt = profile(
            &mut opt_src,
            ProfilingAlgorithm::BinaryOptimized,
            &ProfilerConfig::default(),
        )
        .expect("profiles");
        assert!(
            opt.cost < brute.cost,
            "optimized ({}) must cost less than brute ({})",
            opt.cost,
            brute.cost
        );
        let truth = truth_matrix(saturating_truth);
        let err = opt.matrix.mean_abs_error_pct(&truth).expect("shape");
        assert!(err < 5.0, "optimized error stays moderate, got {err}%");
    }

    #[test]
    fn binary_optimized_exact_on_separable_curves() {
        // The product formula is exact when (T[i][j]-1) separates into a
        // pressure factor times a node factor — as in linear_truth.
        let mut src = source_of(linear_truth);
        let result = profile(
            &mut src,
            ProfilingAlgorithm::BinaryOptimized,
            &ProfilerConfig {
                epsilon: 0.0001,
                seed: 0,
            },
        )
        .expect("profiles");
        let truth = truth_matrix(linear_truth);
        let err = result.matrix.mean_abs_error_pct(&truth).expect("shape");
        assert!(err < 0.01, "got {err}%");
    }

    #[test]
    fn random_fraction_hits_cost_target() {
        for fraction in [0.30, 0.50] {
            let mut src = source_of(saturating_truth);
            let result = profile(
                &mut src,
                ProfilingAlgorithm::RandomFraction(fraction),
                &ProfilerConfig::default(),
            )
            .expect("profiles");
            assert!(
                (result.cost - fraction).abs() < 0.14,
                "cost {} should be near {fraction}",
                result.cost
            );
        }
    }

    #[test]
    fn random_profiles_always_pin_row_anchors() {
        let mut src = source_of(saturating_truth);
        let result = profile(
            &mut src,
            ProfilingAlgorithm::RandomFraction(0.30),
            &ProfilerConfig::default(),
        )
        .expect("profiles");
        for i in 1..=8 {
            assert!(
                result.measured.contains(&(i, 8)),
                "row {i} must anchor its max-nodes cell"
            );
        }
    }

    #[test]
    fn random_selection_is_seed_deterministic() {
        let run = |seed: u64| {
            let mut src = source_of(saturating_truth);
            profile(
                &mut src,
                ProfilingAlgorithm::RandomFraction(0.30),
                &ProfilerConfig {
                    epsilon: 0.04,
                    seed,
                },
            )
            .expect("profiles")
            .measured
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn accuracy_ordering_matches_paper() {
        // Table 3: all smart algorithms are accurate; more random samples
        // beat fewer. (Binary-optimized can even be exact when the truth
        // separates into pressure × node factors, so no brute-vs-optimized
        // ordering is asserted — only that both stay tight.)
        let truth = truth_matrix(saturating_truth);
        let err_of = |alg: ProfilingAlgorithm| {
            let mut src = source_of(saturating_truth);
            let result = profile(&mut src, alg, &ProfilerConfig::default()).expect("profiles");
            result.matrix.mean_abs_error_pct(&truth).expect("shape")
        };
        let brute = err_of(ProfilingAlgorithm::BinaryBrute);
        let opt = err_of(ProfilingAlgorithm::BinaryOptimized);
        let r50 = err_of(ProfilingAlgorithm::random50());
        let r30 = err_of(ProfilingAlgorithm::random30());
        assert!(brute < 1.0, "brute error {brute}%");
        assert!(opt < 3.0, "optimized error {opt}%");
        assert!(r50 <= r30 + 1e-9, "random50 {r50} ≤ random30 {r30}");
    }

    #[test]
    fn cost_ordering_matches_paper() {
        let cost_of = |alg: ProfilingAlgorithm| {
            let mut src = source_of(saturating_truth);
            profile(&mut src, alg, &ProfilerConfig::default())
                .expect("profiles")
                .cost
        };
        let brute = cost_of(ProfilingAlgorithm::BinaryBrute);
        let opt = cost_of(ProfilingAlgorithm::BinaryOptimized);
        let r50 = cost_of(ProfilingAlgorithm::random50());
        let r30 = cost_of(ProfilingAlgorithm::random30());
        assert!(opt < r30, "optimized {opt} is the cheapest (r30 {r30})");
        assert!(r30 < r50);
        assert!(
            r50 < brute || brute < 0.7,
            "brute is the most expensive of the smart ones"
        );
    }

    #[test]
    fn flat_application_profiles_cheaply() {
        // An interference-insensitive app: binary search terminates
        // immediately everywhere.
        let mut src = FnSource::new(8, 8, |_i, _j| 1.0);
        let result = profile(
            &mut src,
            ProfilingAlgorithm::BinaryBrute,
            &ProfilerConfig::default(),
        )
        .expect("profiles");
        assert!(
            result.cost <= (8.0 * 1.0) / 64.0 + 1e-9,
            "one measurement per row suffices, cost {}",
            result.cost
        );
        let truth = truth_matrix(|_, _| 1.0);
        assert_eq!(
            result.matrix.mean_abs_error_pct(&truth).expect("shape"),
            0.0
        );
    }

    #[test]
    fn insensitive_app_survives_optimized_degenerate_formula() {
        let mut src = FnSource::new(8, 8, |_i, _j| 1.0);
        let result = profile(
            &mut src,
            ProfilingAlgorithm::BinaryOptimized,
            &ProfilerConfig::default(),
        )
        .expect("profiles");
        for i in 1..=8 {
            for j in 0..=8 {
                assert!((result.matrix.at(i, j) - 1.0).abs() < 0.06);
            }
        }
    }

    #[test]
    fn measurement_errors_propagate() {
        let mut src = FnSource::new(8, 8, |_i, _j| f64::NAN);
        let err = profile(
            &mut src,
            ProfilingAlgorithm::BinaryBrute,
            &ProfilerConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::Profiling(_)));
    }

    #[test]
    fn bad_random_fraction_rejected() {
        let mut src = source_of(saturating_truth);
        assert!(profile(
            &mut src,
            ProfilingAlgorithm::RandomFraction(1.5),
            &ProfilerConfig::default()
        )
        .is_err());
    }

    #[test]
    fn degenerate_space_rejected() {
        let mut src = FnSource::new(0, 8, |_i, _j| 1.0);
        assert!(profile(
            &mut src,
            ProfilingAlgorithm::Full,
            &ProfilerConfig::default()
        )
        .is_err());
    }

    #[test]
    fn algorithm_names() {
        assert_eq!(ProfilingAlgorithm::BinaryBrute.name(), "binary-brute");
        assert_eq!(
            ProfilingAlgorithm::BinaryOptimized.name(),
            "binary-optimized"
        );
        assert_eq!(ProfilingAlgorithm::random30().name(), "random-30%");
        assert_eq!(ProfilingAlgorithm::Full.name(), "full");
    }

    #[test]
    fn traced_profile_emits_one_probe_event_per_measurement() {
        let (tracer, recorder) = icm_obs::Tracer::recording(4096);
        let mut src = source_of(saturating_truth);
        let result = profile_traced(
            &mut src,
            ProfilingAlgorithm::BinaryBrute,
            &ProfilerConfig::default(),
            &tracer,
        )
        .expect("profiles");
        let events = recorder.events();
        assert_eq!(events[0].name, "profile.begin");
        assert_eq!(events[0].str("algorithm"), Some("binary-brute"));
        let probes: Vec<_> = events.iter().filter(|e| e.name == "probe").collect();
        assert_eq!(probes.len(), result.measured.len());
        for (probe, &(i, j)) in probes.iter().zip(&result.measured) {
            assert_eq!(probe.num("pressure"), Some(i as f64));
            assert_eq!(probe.num("nodes"), Some(j as f64));
            let slowdown = probe.num("slowdown").expect("field");
            let fitted = probe.num("fitted").expect("field");
            let residual = probe.num("residual").expect("field");
            assert!((residual - (fitted - slowdown)).abs() < 1e-12);
            assert_eq!(fitted, result.matrix.at(i, j));
        }
        let end = events.last().expect("events");
        assert_eq!(end.name, "profile.end");
        assert_eq!(end.num("probes"), Some(result.measured.len() as f64));
        assert_eq!(end.num("cost"), Some(result.cost));
    }

    #[test]
    fn traced_profile_reports_floor_residuals() {
        // A sub-unity measurement is floored at 0.95 by the grid, so the
        // fitted value differs from the raw one — exactly what the
        // residual field must expose.
        let (tracer, recorder) = icm_obs::Tracer::recording(4096);
        let mut src = FnSource::new(2, 2, |_i, _j| 0.90);
        let _ = profile_traced(
            &mut src,
            ProfilingAlgorithm::Full,
            &ProfilerConfig::default(),
            &tracer,
        )
        .expect("profiles");
        let probe = recorder
            .events()
            .into_iter()
            .find(|e| e.name == "probe")
            .expect("probe event");
        assert_eq!(probe.num("slowdown"), Some(0.90));
        assert_eq!(probe.num("fitted"), Some(0.95));
        assert!((probe.num("residual").expect("field") - 0.05).abs() < 1e-12);
    }

    #[test]
    fn tracing_does_not_change_profiling_results() {
        let run = |tracer: &icm_obs::Tracer| {
            let mut src = source_of(saturating_truth);
            profile_traced(
                &mut src,
                ProfilingAlgorithm::BinaryOptimized,
                &ProfilerConfig::default(),
                tracer,
            )
            .expect("profiles")
        };
        let (tracer, _recorder) = icm_obs::Tracer::recording(4096);
        assert_eq!(run(&icm_obs::Tracer::disabled()), run(&tracer));
    }

    #[test]
    fn never_measures_a_setting_twice() {
        let mut calls = std::collections::HashSet::new();
        let mut duplicate = false;
        {
            let mut src = FnSource::new(8, 8, |i, j| {
                if !calls.insert((i, j)) {
                    duplicate = true;
                }
                saturating_truth(i, j)
            });
            let _ = profile(
                &mut src,
                ProfilingAlgorithm::BinaryBrute,
                &ProfilerConfig::default(),
            )
            .expect("profiles");
        }
        assert!(!duplicate, "a setting was measured more than once");
    }
}
