//! Interference propagation + heterogeneity modeling for distributed
//! parallel applications — the primary contribution of *"Interference
//! Management for Distributed Parallel Applications in Consolidated
//! Clusters"* (ASPLOS 2016).
//!
//! A distributed application spans many nodes; interference on *one* node
//! can stall all of them (barrier-coupled MPI), hurt proportionally
//! (loosely coupled codes) or barely matter (dynamically scheduled
//! frameworks). This crate builds a per-application model that predicts
//! the normalized runtime under *any* per-node interference vector from a
//! small number of profiling runs:
//!
//! * [`SensitivityCurve`] / [`ReporterCurve`] — single-node Bubble-Up
//!   machinery: sensitivity profiles and bubble-score inversion.
//! * [`PropagationMatrix`] — normalized runtime as a function of bubble
//!   pressure × number of interfering nodes (the Fig. 3 curves).
//! * [`MappingPolicy`] — the four heterogeneity→homogeneity conversion
//!   policies (*N max*, *N+1 max*, *all max*, *interpolate*) plus
//!   sample-based selection of the best one per application.
//! * [`profiling`] — the *binary-brute* / *binary-optimized* profiling
//!   algorithms (Algorithms 1 & 2) and random baselines that keep the
//!   profiling cost low.
//! * [`resilient`] — retry / backoff / outlier-rejection wrapper around
//!   any profile source, with per-cell [`ModelQuality`] provenance for
//!   downstream confidence-aware consumers.
//! * [`model`] — [`ModelBuilder`] drives a
//!   [`Testbed`] through the whole procedure and assembles an
//!   [`InterferenceModel`]; the
//!   [`NaiveModel`] is the paper's proportional
//!   baseline.
//! * [`validate`] — prediction-vs-measurement reporting.
//!
//! This crate is testbed-agnostic: it talks to a cluster only through the
//! [`Testbed`] trait. The workspace provides a simulated implementation in
//! `icm-workloads`.
//!
//! # Example
//!
//! ```
//! use icm_core::{MappingPolicy, PropagationMatrix};
//!
//! # fn main() -> Result<(), icm_core::ModelError> {
//! // A hand-made propagation matrix: 2 pressure levels × 4 hosts.
//! let t = PropagationMatrix::new(vec![
//!     vec![1.0, 1.2, 1.25, 1.3, 1.3],
//!     vec![1.0, 1.5, 1.55, 1.6, 1.6],
//! ])?;
//! // Heterogeneous interference [2,1,0,0] under the N+1-max policy:
//! let hom = MappingPolicy::NPlus1Max.convert(&[2.0, 1.0, 0.0, 0.0]);
//! let predicted = t.predict(hom.pressure, hom.nodes);
//! assert!(predicted > 1.5 && predicted <= 1.6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod curve;
mod error;
pub mod heterogeneity;
pub mod model;
pub mod online;
pub mod profiling;
mod propagation;
pub mod resilient;
mod score;
pub mod stats;
pub mod store;
mod testbed;
pub mod validate;

pub use curve::SensitivityCurve;
pub use error::ModelError;
pub use heterogeneity::{
    evaluate_policies, select_policy, HomogeneousInterference, MappingPolicy, PolicyEvaluation,
    DEFAULT_TIE_TOLERANCE,
};
pub use model::{measure_bubble_score, InterferenceModel, ModelBuilder, NaiveModel};
pub use online::{DriftConfig, DriftDetector, DriftSignal, OnlineModel};
pub use profiling::{
    profile, profile_full, profile_traced, FnSource, ProfileResult, ProfileSource, ProfilerConfig,
    ProfilingAlgorithm,
};
pub use propagation::PropagationMatrix;
pub use resilient::{
    profile_resilient, ModelQuality, QualityGrid, ResilienceStats, ResilientOutcome,
    ResilientSource, RetryPolicy,
};
pub use score::combine_scores;
pub use score::ReporterCurve;
pub use stats::Summary;
pub use store::ModelStore;
pub use testbed::Testbed;
pub use validate::{ValidationPoint, ValidationReport};
