//! Model validation helpers (§4.3): compare predictions against measured
//! runtimes and summarize the errors.

use crate::stats::{percent_error, Summary};

/// One prediction-vs-measurement pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidationPoint {
    /// Model-predicted value (normalized time or seconds — any unit, as
    /// long as both sides agree).
    pub predicted: f64,
    /// Measured value.
    pub actual: f64,
}

icm_json::impl_json!(struct ValidationPoint { predicted, actual });

impl ValidationPoint {
    /// Absolute percentage error of this point.
    pub fn error_pct(&self) -> f64 {
        percent_error(self.predicted, self.actual)
    }
}

/// Validation outcome over a set of points (one bar of Fig. 8).
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationReport {
    /// The raw points, in input order.
    pub points: Vec<ValidationPoint>,
    /// Summary of the absolute percentage errors.
    pub errors: Summary,
}

icm_json::impl_json!(struct ValidationReport { points, errors });

impl ValidationReport {
    /// Builds a report from prediction/measurement pairs.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or a measured value is zero/non-finite.
    pub fn new(points: Vec<ValidationPoint>) -> Self {
        assert!(!points.is_empty(), "a validation report needs points");
        let errors: Vec<f64> = points.iter().map(ValidationPoint::error_pct).collect();
        Self {
            points,
            errors: Summary::of(&errors),
        }
    }

    /// Builds a report from parallel slices.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or are empty.
    pub fn from_slices(predicted: &[f64], actual: &[f64]) -> Self {
        assert_eq!(
            predicted.len(),
            actual.len(),
            "prediction and measurement counts differ"
        );
        Self::new(
            predicted
                .iter()
                .zip(actual)
                .map(|(&p, &a)| ValidationPoint {
                    predicted: p,
                    actual: a,
                })
                .collect(),
        )
    }

    /// Mean absolute percentage error.
    pub fn mean_error_pct(&self) -> f64 {
        self.errors.mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions_have_zero_error() {
        let report = ValidationReport::from_slices(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]);
        assert_eq!(report.mean_error_pct(), 0.0);
        assert_eq!(report.errors.max, 0.0);
    }

    #[test]
    fn known_errors_summarized() {
        let report = ValidationReport::from_slices(&[1.1, 0.9], &[1.0, 1.0]);
        assert!((report.mean_error_pct() - 10.0).abs() < 1e-9);
        assert_eq!(report.points.len(), 2);
        assert!((report.points[0].error_pct() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn quartiles_available_for_error_bars() {
        let predicted: Vec<f64> = (0..20).map(|i| 1.0 + i as f64 * 0.01).collect();
        let actual = vec![1.0; 20];
        let report = ValidationReport::from_slices(&predicted, &actual);
        assert!(report.errors.p25 < report.errors.p75);
        assert!(report.errors.p75 <= report.errors.max);
    }

    #[test]
    #[should_panic(expected = "counts differ")]
    fn mismatched_slices_rejected() {
        let _ = ValidationReport::from_slices(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "needs points")]
    fn empty_report_rejected() {
        let _ = ValidationReport::new(vec![]);
    }

    #[test]
    fn serde_round_trip() {
        let report = ValidationReport::from_slices(&[1.1], &[1.0]);
        let json = icm_json::to_string(&report);
        let back: ValidationReport = icm_json::from_str(&json).expect("deserialize");
        assert_eq!(report, back);
    }
}
