//! Persistence for profiled model fleets.
//!
//! Profiling is the expensive part of the methodology (that is the whole
//! point of §4); a production deployment profiles each application once
//! and reuses the models until the binary or the hardware changes
//! (§4.4). [`ModelStore`] is that registry: a named collection of
//! [`InterferenceModel`]s with JSON (de)serialization to any
//! reader/writer, plus convenience file helpers.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::path::Path;

use crate::error::ModelError;
use crate::model::InterferenceModel;

/// Current on-disk format version; bumped on breaking schema changes.
pub const STORE_VERSION: u32 = 1;

/// A persistent, named collection of interference models.
///
/// # Example
///
/// ```
/// use icm_core::store::ModelStore;
///
/// let mut store = ModelStore::new();
/// assert!(store.is_empty());
/// // store.insert(model); store.save_to(&mut file)?;
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ModelStore {
    version: u32,
    models: BTreeMap<String, InterferenceModel>,
}

icm_json::impl_json!(struct ModelStore { version, models });

impl ModelStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self {
            version: STORE_VERSION,
            models: BTreeMap::new(),
        }
    }

    /// Builds a store from models (keyed by their application names).
    pub fn from_models(models: impl IntoIterator<Item = InterferenceModel>) -> Self {
        let mut store = Self::new();
        for model in models {
            store.insert(model);
        }
        store
    }

    /// Inserts (or replaces) a model, returning the previous one for the
    /// same application, if any.
    pub fn insert(&mut self, model: InterferenceModel) -> Option<InterferenceModel> {
        self.models.insert(model.app().to_owned(), model)
    }

    /// Looks up a model by application name.
    pub fn get(&self, app: &str) -> Option<&InterferenceModel> {
        self.models.get(app)
    }

    /// Removes a model.
    pub fn remove(&mut self, app: &str) -> Option<InterferenceModel> {
        self.models.remove(app)
    }

    /// Application names, sorted.
    pub fn apps(&self) -> Vec<&str> {
        self.models.keys().map(String::as_str).collect()
    }

    /// Number of stored models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Borrows the underlying map (e.g. for
    /// [`Estimator::from_map`](https://docs.rs/icm-placement)).
    pub fn models(&self) -> &BTreeMap<String, InterferenceModel> {
        &self.models
    }

    /// Serializes the store as pretty JSON to a writer.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidData`] on serialization or I/O
    /// failure.
    pub fn save_to<W: Write>(&self, mut writer: W) -> Result<(), ModelError> {
        writer
            .write_all(icm_json::to_string_pretty(self).as_bytes())
            .map_err(|e| ModelError::InvalidData(format!("cannot serialize model store: {e}")))
    }

    /// Deserializes a store from a reader, checking the format version.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidData`] on parse failure or version
    /// mismatch.
    pub fn load_from<R: Read>(mut reader: R) -> Result<Self, ModelError> {
        let mut text = String::new();
        reader
            .read_to_string(&mut text)
            .map_err(|e| ModelError::InvalidData(format!("cannot read model store: {e}")))?;
        let store: Self = icm_json::from_str(&text)
            .map_err(|e| ModelError::InvalidData(format!("cannot parse model store: {e}")))?;
        if store.version != STORE_VERSION {
            return Err(ModelError::InvalidData(format!(
                "model store version {} unsupported (expected {STORE_VERSION})",
                store.version
            )));
        }
        Ok(store)
    }

    /// Saves to a file path (creating parent directories). The write is
    /// atomic — tmp-file, fsync, rename — so a crash mid-save leaves
    /// either the previous store or the new one, never a torn file.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidData`] on I/O failure.
    pub fn save_to_path<P: AsRef<Path>>(&self, path: P) -> Result<(), ModelError> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).map_err(|e| {
                ModelError::InvalidData(format!("cannot create {}: {e}", parent.display()))
            })?;
        }
        icm_json::fs::atomic_write(path, icm_json::to_string_pretty(self).as_bytes())
            .map_err(|e| ModelError::InvalidData(format!("cannot write {}: {e}", path.display())))
    }

    /// Loads from a file path.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidData`] on I/O or parse failure.
    pub fn load_from_path<P: AsRef<Path>>(path: P) -> Result<Self, ModelError> {
        let path = path.as_ref();
        let file = std::fs::File::open(path)
            .map_err(|e| ModelError::InvalidData(format!("cannot open {}: {e}", path.display())))?;
        Self::load_from(std::io::BufReader::new(file))
    }
}

impl Default for ModelStore {
    fn default() -> Self {
        Self::new()
    }
}

impl Extend<InterferenceModel> for ModelStore {
    fn extend<T: IntoIterator<Item = InterferenceModel>>(&mut self, iter: T) {
        for model in iter {
            self.insert(model);
        }
    }
}

impl FromIterator<InterferenceModel> for ModelStore {
    fn from_iter<T: IntoIterator<Item = InterferenceModel>>(iter: T) -> Self {
        Self::from_models(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelBuilder;
    use crate::testbed::mock::MockTestbed;

    fn model(name: &str) -> InterferenceModel {
        let mut tb = MockTestbed::default();
        ModelBuilder::new(name)
            .policy_samples(6)
            .build(&mut tb)
            .expect("builds")
    }

    #[test]
    fn insert_get_remove() {
        let mut store = ModelStore::new();
        assert!(store.insert(model("a")).is_none());
        assert!(
            store.insert(model("a")).is_some(),
            "replacement returns old"
        );
        store.insert(model("b"));
        assert_eq!(store.len(), 2);
        assert_eq!(store.apps(), vec!["a", "b"]);
        assert!(store.get("a").is_some());
        assert!(store.remove("a").is_some());
        assert!(store.get("a").is_none());
    }

    #[test]
    fn round_trips_through_a_buffer() {
        let store = ModelStore::from_models([model("x"), model("y")]);
        let mut buffer = Vec::new();
        store.save_to(&mut buffer).expect("saves");
        let restored = ModelStore::load_from(buffer.as_slice()).expect("loads");
        assert_eq!(restored.len(), 2);
        let probe = vec![3.0; 8];
        assert!(
            (restored.get("x").expect("present").predict(&probe)
                - store.get("x").expect("present").predict(&probe))
            .abs()
                < 1e-9
        );
    }

    #[test]
    fn round_trips_through_a_file() {
        let dir = std::env::temp_dir().join("icm-store-test");
        let path = dir.join("models.json");
        let store = ModelStore::from_models([model("fleet")]);
        store.save_to_path(&path).expect("saves");
        let restored = ModelStore::load_from_path(&path).expect("loads");
        assert_eq!(restored.apps(), vec!["fleet"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_wrong_version() {
        let json = r#"{"version": 99, "models": {}}"#;
        let err = ModelStore::load_from(json.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(ModelStore::load_from(&b"not json"[..]).is_err());
        assert!(ModelStore::load_from_path("/definitely/not/a/path.json").is_err());
    }

    #[test]
    fn collect_and_extend() {
        let mut store: ModelStore = [model("p")].into_iter().collect();
        store.extend([model("q")]);
        assert_eq!(store.len(), 2);
        assert!(!store.is_empty());
        assert!(store.models().contains_key("q"));
    }
}
