use crate::error::ModelError;

/// A single-node interference sensitivity curve: normalized runtime (or
/// slowdown) as a function of integer bubble pressure, with the value at
/// pressure 0 fixed to 1.
///
/// This is the Bubble-Up *sensitivity profile* (§2.1): index `p` holds the
/// application's normalized runtime when co-located with a bubble of
/// pressure `p`. Fractional pressures are linearly interpolated, and the
/// curve can be *inverted* to map an observed slowdown back to a
/// pressure-equivalent — which is exactly how a co-runner's bubble score
/// is derived from the reporter bubble's degradation.
///
/// # Example
///
/// ```
/// use icm_core::SensitivityCurve;
///
/// # fn main() -> Result<(), icm_core::ModelError> {
/// let curve = SensitivityCurve::new(vec![1.0, 1.05, 1.1, 1.3, 1.6])?;
/// assert!((curve.value_at(2.5) - 1.2).abs() < 1e-12);
/// assert!((curve.invert(1.2) - 2.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityCurve {
    values: Vec<f64>,
}

icm_json::impl_json!(struct SensitivityCurve { values });

impl SensitivityCurve {
    /// Creates a curve from values at integer pressures `0..values.len()`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidData`] if fewer than two points are
    /// given, any value is non-finite or below 1 − ε (a normalized runtime
    /// cannot beat the solo run by more than measurement noise), or the
    /// first value is not ≈ 1.
    pub fn new(values: Vec<f64>) -> Result<Self, ModelError> {
        if values.len() < 2 {
            return Err(ModelError::InvalidData(format!(
                "a sensitivity curve needs at least 2 points, got {}",
                values.len()
            )));
        }
        for (i, &v) in values.iter().enumerate() {
            if !v.is_finite() || v < 0.9 {
                return Err(ModelError::InvalidData(format!(
                    "curve value at pressure {i} must be a finite normalized runtime ≥ 0.9, got {v}"
                )));
            }
        }
        if (values[0] - 1.0).abs() > 0.1 {
            return Err(ModelError::InvalidData(format!(
                "curve value at pressure 0 must be ≈ 1 (no interference), got {}",
                values[0]
            )));
        }
        Ok(Self { values })
    }

    /// Highest integer pressure the curve covers.
    pub fn max_pressure(&self) -> usize {
        self.values.len() - 1
    }

    /// Raw curve points.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Curve value at a (possibly fractional) pressure, linearly
    /// interpolated; clamped to the covered pressure range.
    pub fn value_at(&self, pressure: f64) -> f64 {
        if !pressure.is_finite() {
            return *self.values.last().expect("non-empty");
        }
        let p = pressure.clamp(0.0, self.max_pressure() as f64);
        let lo = p.floor() as usize;
        let hi = p.ceil() as usize;
        if lo == hi {
            return self.values[lo];
        }
        let frac = p - lo as f64;
        self.values[lo] * (1.0 - frac) + self.values[hi] * frac
    }

    /// Inverts the curve: the smallest pressure at which the (monotone
    /// envelope of the) curve reaches `slowdown`.
    ///
    /// Values at or below the pressure-0 level return 0; values above the
    /// curve's maximum return the maximum pressure. Because measured
    /// curves can be slightly non-monotone from noise, inversion walks the
    /// running maximum of the curve.
    pub fn invert(&self, slowdown: f64) -> f64 {
        if !slowdown.is_finite() || slowdown <= self.values[0] {
            return 0.0;
        }
        let mut prev_env = self.values[0];
        let mut prev_p = 0.0;
        let mut env = self.values[0];
        for (i, &v) in self.values.iter().enumerate().skip(1) {
            let new_env = env.max(v);
            if new_env >= slowdown {
                // Crosses between prev_p and i (using envelope values).
                if (new_env - prev_env).abs() < 1e-12 {
                    return i as f64;
                }
                let frac = (slowdown - prev_env) / (new_env - prev_env);
                return prev_p + frac * (i as f64 - prev_p);
            }
            prev_env = new_env;
            prev_p = i as f64;
            env = new_env;
        }
        self.max_pressure() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> SensitivityCurve {
        SensitivityCurve::new(vec![1.0, 1.1, 1.25, 1.5, 2.0]).expect("valid")
    }

    #[test]
    fn value_at_integer_points() {
        let c = curve();
        assert_eq!(c.value_at(0.0), 1.0);
        assert_eq!(c.value_at(3.0), 1.5);
        assert_eq!(c.value_at(4.0), 2.0);
    }

    #[test]
    fn value_interpolates_between_points() {
        let c = curve();
        assert!((c.value_at(3.5) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn value_clamps_out_of_range() {
        let c = curve();
        assert_eq!(c.value_at(-2.0), 1.0);
        assert_eq!(c.value_at(99.0), 2.0);
        assert_eq!(c.value_at(f64::INFINITY), 2.0);
    }

    #[test]
    fn invert_round_trips_within_range() {
        let c = curve();
        for p in [0.5, 1.0, 2.3, 3.9] {
            let sd = c.value_at(p);
            let back = c.invert(sd);
            assert!((back - p).abs() < 1e-9, "p={p}, back={back}");
        }
    }

    #[test]
    fn invert_clamps_extremes() {
        let c = curve();
        assert_eq!(c.invert(0.5), 0.0);
        assert_eq!(c.invert(1.0), 0.0);
        assert_eq!(c.invert(5.0), 4.0);
    }

    #[test]
    fn invert_handles_noisy_non_monotone_curve() {
        // A small dip from measurement noise must not break inversion.
        let c = SensitivityCurve::new(vec![1.0, 1.2, 1.15, 1.4, 1.8]).expect("valid");
        let p = c.invert(1.3);
        assert!(p > 1.0 && p < 3.0, "got {p}");
        // Monotone output in slowdown:
        let mut last = 0.0;
        for s in [1.05, 1.1, 1.19, 1.21, 1.3, 1.5, 1.79] {
            let inv = c.invert(s);
            assert!(inv >= last, "inversion regressed at {s}");
            last = inv;
        }
    }

    #[test]
    fn invert_flat_curve_is_zero_or_max() {
        let c = SensitivityCurve::new(vec![1.0, 1.0, 1.0]).expect("valid");
        assert_eq!(c.invert(1.0), 0.0);
        assert_eq!(c.invert(1.5), 2.0);
    }

    #[test]
    fn rejects_too_short() {
        assert!(matches!(
            SensitivityCurve::new(vec![1.0]),
            Err(ModelError::InvalidData(_))
        ));
    }

    #[test]
    fn rejects_non_finite_and_sub_unit_values() {
        assert!(SensitivityCurve::new(vec![1.0, f64::NAN]).is_err());
        assert!(SensitivityCurve::new(vec![1.0, 0.4]).is_err());
    }

    #[test]
    fn rejects_bad_baseline() {
        assert!(SensitivityCurve::new(vec![1.5, 1.6]).is_err());
    }

    #[test]
    fn tolerates_slightly_noisy_baseline() {
        assert!(SensitivityCurve::new(vec![1.02, 1.3]).is_ok());
        assert!(SensitivityCurve::new(vec![0.98, 1.3]).is_ok());
    }

    #[test]
    fn serde_round_trip() {
        let c = curve();
        let json = icm_json::to_string(&c);
        let back: SensitivityCurve = icm_json::from_str(&json).expect("deserialize");
        assert_eq!(c, back);
    }
}
