use crate::error::ModelError;

/// Abstract interface to a cluster that can execute profiling runs.
///
/// The interference model is built *only* through this interface — run an
/// application under controlled bubble interference and time it — which is
/// exactly the contract the paper's profiler has against physical
/// hardware. `icm-workloads` implements it over the simulated testbed;
/// a real deployment could implement it over `ssh` and a job scheduler.
///
/// All methods take `&mut self` because measurement advances the
/// testbed's run counter (every run observes fresh noise).
pub trait Testbed {
    /// Total hosts in the cluster.
    fn cluster_hosts(&self) -> usize;

    /// Number of calibrated bubble pressure levels (8 in the paper).
    fn max_pressure(&self) -> usize;

    /// Runs `app` on exactly `pressures.len()` hosts, with a bubble of
    /// pressure `pressures[k]` co-located on the app's `k`-th host
    /// (`0` = no bubble). Returns wall-clock seconds.
    ///
    /// # Errors
    ///
    /// Implementations report unknown applications, malformed vectors, or
    /// execution failures as [`ModelError::Testbed`].
    fn run_app(&mut self, app: &str, pressures: &[f64]) -> Result<f64, ModelError>;

    /// Measures the reporter bubble's slowdown when co-located with
    /// `app` (averaged over the app's hosts); the input to bubble scoring.
    ///
    /// # Errors
    ///
    /// See [`run_app`](Self::run_app).
    fn reporter_slowdown_with_app(&mut self, app: &str) -> Result<f64, ModelError>;

    /// Measures the reporter bubble's slowdown when co-located with a
    /// bubble of `pressure`; sweeping pressures yields the
    /// [`ReporterCurve`](crate::ReporterCurve).
    ///
    /// # Errors
    ///
    /// See [`run_app`](Self::run_app).
    fn reporter_slowdown_with_bubble(&mut self, pressure: f64) -> Result<f64, ModelError>;
}

#[cfg(test)]
pub(crate) mod mock {
    use super::*;

    /// A deterministic analytic testbed for unit-testing model
    /// construction without the simulator crates.
    ///
    /// The synthetic application has base runtime 100 s, a saturating
    /// high-propagation response, and a generated intensity equivalent to
    /// bubble pressure ≈ `generated_score`.
    #[derive(Debug, Clone)]
    pub struct MockTestbed {
        pub hosts: usize,
        pub max_pressure: usize,
        pub generated_score: f64,
        pub coupling: f64,
        pub severity: f64,
        pub calls: usize,
    }

    impl Default for MockTestbed {
        fn default() -> Self {
            Self {
                hosts: 8,
                max_pressure: 8,
                generated_score: 3.5,
                coupling: 0.9,
                severity: 0.08,
                calls: 0,
            }
        }
    }

    impl MockTestbed {
        /// Per-node slowdown under bubble pressure `p`.
        fn node_slowdown(&self, p: f64) -> f64 {
            1.0 + self.severity * p
        }

        /// Ground-truth normalized runtime for a pressure vector —
        /// coupling × max + (1 − coupling) × mean of node slowdowns.
        pub fn truth(&self, pressures: &[f64]) -> f64 {
            let slows: Vec<f64> = pressures.iter().map(|&p| self.node_slowdown(p)).collect();
            let max = slows.iter().cloned().fold(1.0f64, f64::max);
            let mean = slows.iter().sum::<f64>() / slows.len() as f64;
            self.coupling * max + (1.0 - self.coupling) * mean
        }

        fn reporter_slowdown(&self, pressure: f64) -> f64 {
            1.0 + 0.06 * pressure
        }
    }

    impl Testbed for MockTestbed {
        fn cluster_hosts(&self) -> usize {
            self.hosts
        }

        fn max_pressure(&self) -> usize {
            self.max_pressure
        }

        fn run_app(&mut self, _app: &str, pressures: &[f64]) -> Result<f64, ModelError> {
            self.calls += 1;
            if pressures.is_empty() {
                return Err(ModelError::Testbed("empty pressure vector".into()));
            }
            Ok(100.0 * self.truth(pressures))
        }

        fn reporter_slowdown_with_app(&mut self, _app: &str) -> Result<f64, ModelError> {
            self.calls += 1;
            Ok(self.reporter_slowdown(self.generated_score))
        }

        fn reporter_slowdown_with_bubble(&mut self, pressure: f64) -> Result<f64, ModelError> {
            self.calls += 1;
            Ok(self.reporter_slowdown(pressure))
        }
    }
}
