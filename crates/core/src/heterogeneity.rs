//! The four heterogeneity→homogeneity mapping policies of §3.3 and
//! their sample-based selection.

use crate::propagation::PropagationMatrix;
use crate::stats::Summary;

/// Default pressure tolerance within which two nodes count as suffering
/// "the same top pressure" when bubble scores are fractional.
pub const DEFAULT_TIE_TOLERANCE: f64 = 0.25;

/// The four heterogeneity mapping policies of §3.3.
///
/// Real placements expose an application to a *different* interference
/// intensity on every node; profiling every heterogeneous combination is
/// intractable (12,870 settings for 8 hosts and 8 levels). Each policy
/// converts a heterogeneous pressure vector into a *homogeneous*
/// `(pressure, node-count)` pair that can be looked up in the
/// [`PropagationMatrix`]:
///
/// * [`NMax`](MappingPolicy::NMax) — only the nodes at the worst pressure
///   count; everything milder is ignored.
/// * [`NPlus1Max`](MappingPolicy::NPlus1Max) — like `NMax`, but all milder
///   interfering nodes are merged into **one** extra node at the top
///   pressure.
/// * [`AllMax`](MappingPolicy::AllMax) — the worst pressure anywhere is
///   assumed to reach every node.
/// * [`Interpolate`](MappingPolicy::Interpolate) — the average pressure
///   over all nodes is applied to all nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MappingPolicy {
    /// Count only the top-pressure nodes.
    NMax,
    /// Top-pressure nodes plus one merged node for the rest.
    NPlus1Max,
    /// The worst pressure propagates to every node.
    AllMax,
    /// Average pressure on every node.
    Interpolate,
}

icm_json::impl_json!(
    enum MappingPolicy {
        NMax,
        NPlus1Max,
        AllMax,
        Interpolate,
    }
);

impl MappingPolicy {
    /// All four policies, in the paper's order.
    pub const ALL: [MappingPolicy; 4] = [
        MappingPolicy::NMax,
        MappingPolicy::NPlus1Max,
        MappingPolicy::AllMax,
        MappingPolicy::Interpolate,
    ];

    /// Short display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            MappingPolicy::NMax => "N max",
            MappingPolicy::NPlus1Max => "N+1 max",
            MappingPolicy::AllMax => "all max",
            MappingPolicy::Interpolate => "interpolate",
        }
    }

    /// Converts a heterogeneous per-node pressure vector (zeros for
    /// uninterfered nodes) into the homogeneous equivalent under this
    /// policy, using the default tie tolerance.
    ///
    /// # Panics
    ///
    /// Panics if `pressures` is empty or contains negative/non-finite
    /// values.
    pub fn convert(&self, pressures: &[f64]) -> HomogeneousInterference {
        self.convert_with_tolerance(pressures, DEFAULT_TIE_TOLERANCE)
    }

    /// [`convert`](Self::convert) with an explicit tie tolerance: nodes
    /// within `tolerance` of the maximum count as "at the top pressure".
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`convert`](Self::convert), or
    /// if `tolerance` is negative.
    pub fn convert_with_tolerance(
        &self,
        pressures: &[f64],
        tolerance: f64,
    ) -> HomogeneousInterference {
        assert!(!pressures.is_empty(), "pressure vector must not be empty");
        assert!(tolerance >= 0.0, "tolerance must be non-negative");
        for &p in pressures {
            assert!(
                p.is_finite() && p >= 0.0,
                "pressures must be non-negative and finite, got {p}"
            );
        }
        let nodes_total = pressures.len();
        let max = pressures.iter().cloned().fold(0.0f64, f64::max);
        if max <= 0.0 {
            return HomogeneousInterference {
                pressure: 0.0,
                nodes: 0.0,
            };
        }
        let top = pressures.iter().filter(|&&p| p >= max - tolerance).count();
        let milder = pressures
            .iter()
            .filter(|&&p| p > 0.0 && p < max - tolerance)
            .count();
        match self {
            MappingPolicy::NMax => HomogeneousInterference {
                pressure: max,
                nodes: top as f64,
            },
            MappingPolicy::NPlus1Max => HomogeneousInterference {
                pressure: max,
                nodes: (top + usize::from(milder > 0)).min(nodes_total) as f64,
            },
            MappingPolicy::AllMax => HomogeneousInterference {
                pressure: max,
                nodes: nodes_total as f64,
            },
            MappingPolicy::Interpolate => HomogeneousInterference {
                pressure: pressures.iter().sum::<f64>() / nodes_total as f64,
                nodes: nodes_total as f64,
            },
        }
    }
}

impl std::fmt::Display for MappingPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A homogeneous interference setting: `nodes` nodes each under
/// `pressure`; the lookup coordinates for a [`PropagationMatrix`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HomogeneousInterference {
    /// Bubble-equivalent pressure on each interfering node.
    pub pressure: f64,
    /// Equivalent number of interfering nodes (fractional allowed).
    pub nodes: f64,
}

icm_json::impl_json!(struct HomogeneousInterference { pressure, nodes });

/// Accuracy of one mapping policy over a set of sampled heterogeneous
/// configurations (one bar group of Fig. 4 / one row candidate of
/// Table 2).
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyEvaluation {
    /// The evaluated policy.
    pub policy: MappingPolicy,
    /// Per-sample absolute percentage errors.
    pub errors: Summary,
}

icm_json::impl_json!(struct PolicyEvaluation { policy, errors });

impl PolicyEvaluation {
    /// 99% confidence margin of error of the mean error (the paper's
    /// sample-size soundness check).
    pub fn margin_of_error_99(&self) -> f64 {
        self.errors.margin_of_error_99()
    }
}

/// Evaluates all four policies against measured heterogeneous samples.
///
/// Each sample pairs a heterogeneous per-node pressure vector with the
/// *measured* normalized runtime under that interference; a policy's
/// error on the sample is the absolute percentage difference between the
/// matrix prediction at the converted coordinates and the measurement.
///
/// # Panics
///
/// Panics if `samples` is empty or a sample's measured time is not
/// positive.
pub fn evaluate_policies(
    matrix: &PropagationMatrix,
    samples: &[(Vec<f64>, f64)],
    tolerance: f64,
) -> Vec<PolicyEvaluation> {
    assert!(
        !samples.is_empty(),
        "need at least one heterogeneous sample"
    );
    MappingPolicy::ALL
        .iter()
        .map(|&policy| {
            let errors: Vec<f64> = samples
                .iter()
                .map(|(pressures, measured)| {
                    assert!(
                        measured.is_finite() && *measured > 0.0,
                        "measured normalized time must be positive, got {measured}"
                    );
                    let hom = policy.convert_with_tolerance(pressures, tolerance);
                    let predicted = matrix.predict(hom.pressure, hom.nodes);
                    ((predicted - measured) / measured).abs() * 100.0
                })
                .collect();
            PolicyEvaluation {
                policy,
                errors: Summary::of(&errors),
            }
        })
        .collect()
}

/// Picks the policy with the lowest mean error.
///
/// # Panics
///
/// Panics if `samples` is empty (see [`evaluate_policies`]).
pub fn select_policy(
    matrix: &PropagationMatrix,
    samples: &[(Vec<f64>, f64)],
    tolerance: f64,
) -> PolicyEvaluation {
    evaluate_policies(matrix, samples, tolerance)
        .into_iter()
        .min_by(|a, b| {
            a.errors
                .mean
                .partial_cmp(&b.errors.mean)
                .expect("errors are finite")
        })
        .expect("four policies evaluated")
}

#[cfg(test)]
mod tests {
    use super::*;

    // The worked example of Fig. 5: four workloads on 8 nodes, pressure
    // lists over the 4 nodes each workload occupies.

    #[test]
    fn fig5_workload_a_n_plus_1_max() {
        let hom = MappingPolicy::NPlus1Max.convert(&[3.0, 2.0, 1.0, 1.0]);
        assert_eq!(hom.pressure, 3.0);
        assert_eq!(hom.nodes, 2.0, "top node + one merged extra → [3,3,0,0]");
    }

    #[test]
    fn fig5_workload_b_all_max() {
        let hom = MappingPolicy::AllMax.convert(&[5.0, 2.0, 2.0, 1.0]);
        assert_eq!(hom.pressure, 5.0);
        assert_eq!(hom.nodes, 4.0, "worst pressure on every node → [5,5,5,5]");
    }

    #[test]
    fn fig5_workload_c_interpolate() {
        let hom = MappingPolicy::Interpolate.convert(&[3.0, 5.0, 3.0, 1.0]);
        assert_eq!(hom.pressure, 3.0, "average of [3,5,3,1]");
        assert_eq!(hom.nodes, 4.0, "applied to all nodes → [3,3,3,3]");
    }

    #[test]
    fn fig5_workload_d_n_max() {
        let hom = MappingPolicy::NMax.convert(&[5.0, 5.0, 3.0, 2.0]);
        assert_eq!(hom.pressure, 5.0);
        assert_eq!(hom.nodes, 2.0, "two top nodes, rest ignored → [5,5,0,0]");
    }

    #[test]
    fn no_interference_converts_to_zero_for_every_policy() {
        for policy in MappingPolicy::ALL {
            let hom = policy.convert(&[0.0, 0.0, 0.0]);
            assert_eq!(hom.pressure, 0.0, "{policy}");
            assert_eq!(hom.nodes, 0.0, "{policy}");
        }
    }

    #[test]
    fn n_plus_1_max_without_milder_nodes_equals_n_max() {
        let pressures = [4.0, 4.0, 0.0, 0.0];
        let n = MappingPolicy::NMax.convert(&pressures);
        let n1 = MappingPolicy::NPlus1Max.convert(&pressures);
        assert_eq!(n, n1);
    }

    #[test]
    fn n_plus_1_max_caps_at_total_nodes() {
        let hom = MappingPolicy::NPlus1Max.convert(&[4.0, 4.0, 4.0, 1.0]);
        assert_eq!(hom.nodes, 4.0);
    }

    #[test]
    fn tie_tolerance_groups_close_scores() {
        // Fractional bubble scores 4.3 and 4.15 should count as one top
        // group with the default tolerance.
        let hom = MappingPolicy::NMax.convert(&[4.3, 4.15, 1.0, 0.0]);
        assert_eq!(hom.nodes, 2.0);
        let strict = MappingPolicy::NMax.convert_with_tolerance(&[4.3, 4.15, 1.0, 0.0], 0.0);
        assert_eq!(strict.nodes, 1.0);
    }

    #[test]
    fn severity_ordering_n_max_le_n_plus_1_le_all_max() {
        let pressures = [5.0, 3.0, 2.0, 0.0];
        let n = MappingPolicy::NMax.convert(&pressures);
        let n1 = MappingPolicy::NPlus1Max.convert(&pressures);
        let all = MappingPolicy::AllMax.convert(&pressures);
        assert!(n.nodes <= n1.nodes && n1.nodes <= all.nodes);
        assert_eq!(n.pressure, all.pressure);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn convert_rejects_empty() {
        let _ = MappingPolicy::NMax.convert(&[]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn convert_rejects_negative_pressure() {
        let _ = MappingPolicy::NMax.convert(&[-1.0]);
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(MappingPolicy::NMax.name(), "N max");
        assert_eq!(MappingPolicy::NPlus1Max.name(), "N+1 max");
        assert_eq!(MappingPolicy::AllMax.name(), "all max");
        assert_eq!(MappingPolicy::Interpolate.name(), "interpolate");
    }

    fn test_matrix() -> PropagationMatrix {
        // A strongly max-coupled application: interference in one node is
        // almost as bad as everywhere.
        PropagationMatrix::new(vec![
            vec![1.0, 1.18, 1.19, 1.20, 1.20],
            vec![1.0, 1.38, 1.39, 1.40, 1.40],
            vec![1.0, 1.58, 1.59, 1.60, 1.60],
            vec![1.0, 1.78, 1.79, 1.80, 1.80],
        ])
        .expect("valid")
    }

    #[test]
    fn evaluation_prefers_the_generating_policy() {
        let matrix = test_matrix();
        // Ground truth generated by the N-max rule: only top-pressure
        // nodes matter.
        let configs = [
            vec![4.0, 2.0, 0.0, 0.0],
            vec![3.0, 3.0, 1.0, 0.0],
            vec![2.0, 1.0, 1.0, 1.0],
            vec![4.0, 4.0, 4.0, 2.0],
        ];
        let samples: Vec<(Vec<f64>, f64)> = configs
            .iter()
            .map(|c| {
                let hom = MappingPolicy::NMax.convert(c);
                (c.clone(), matrix.predict(hom.pressure, hom.nodes))
            })
            .collect();
        let best = select_policy(&matrix, &samples, DEFAULT_TIE_TOLERANCE);
        assert_eq!(best.policy, MappingPolicy::NMax);
        assert!(best.errors.mean < 1e-9);
    }

    #[test]
    fn evaluation_reports_all_four_policies() {
        let matrix = test_matrix();
        let samples = vec![(vec![4.0, 2.0, 0.0, 0.0], 1.7)];
        let evals = evaluate_policies(&matrix, &samples, DEFAULT_TIE_TOLERANCE);
        assert_eq!(evals.len(), 4);
        let policies: Vec<_> = evals.iter().map(|e| e.policy).collect();
        assert_eq!(policies, MappingPolicy::ALL.to_vec());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn evaluation_rejects_non_positive_measurement() {
        let matrix = test_matrix();
        let samples = vec![(vec![4.0, 2.0], 0.0)];
        let _ = evaluate_policies(&matrix, &samples, DEFAULT_TIE_TOLERANCE);
    }

    #[test]
    fn serde_round_trip() {
        let policy = MappingPolicy::NPlus1Max;
        let json = icm_json::to_string(&policy);
        let back: MappingPolicy = icm_json::from_str(&json).expect("deserialize");
        assert_eq!(policy, back);
    }
}
