//! Small statistics helpers shared by validation, policy selection and the
//! experiment harness.

/// Z value of the two-sided 99% confidence interval of a normal
/// distribution; the paper's §3.3 sample-size argument uses this level.
pub const Z_99: f64 = 2.576;

/// Summary statistics over a set of (typically error) values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of values.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
    /// 25th percentile (linear interpolation).
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// 75th percentile (linear interpolation).
    pub p75: f64,
}

icm_json::impl_json!(struct Summary { count, mean, std_dev, min, max, p25, p50, p75 });

impl Summary {
    /// Summarizes `values`.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains NaN.
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot summarize an empty set");
        assert!(
            values.iter().all(|v| !v.is_nan()),
            "cannot summarize NaN values"
        );
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / count as f64;
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        Self {
            count,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
            p25: percentile_sorted(&sorted, 0.25),
            p50: percentile_sorted(&sorted, 0.50),
            p75: percentile_sorted(&sorted, 0.75),
        }
    }

    /// Margin of error of the mean at 99% confidence, assuming an
    /// approximately normal population (the paper's ±1.7 argument for 60
    /// samples out of 12,870 configurations).
    pub fn margin_of_error_99(&self) -> f64 {
        Z_99 * self.std_dev / (self.count as f64).sqrt()
    }
}

/// Percentile with linear interpolation over an already-sorted slice.
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` is outside `[0, 1]`.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Absolute relative error of `predicted` against `actual`, in percent.
///
/// # Panics
///
/// Panics if `actual` is zero or non-finite (a measured runtime is always
/// positive).
pub fn percent_error(predicted: f64, actual: f64) -> f64 {
    assert!(
        actual.is_finite() && actual != 0.0,
        "actual value must be finite and non-zero, got {actual}"
    );
    ((predicted - actual) / actual).abs() * 100.0
}

/// Arithmetic mean.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "mean of empty set");
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_values() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.p50 - 2.5).abs() < 1e-12);
        assert!((s.p25 - 1.75).abs() < 1e-12);
        assert!((s.p75 - 3.25).abs() < 1e-12);
        let expected_std = (1.25f64).sqrt();
        assert!((s.std_dev - expected_std).abs() < 1e-12);
    }

    #[test]
    fn summary_of_single_value() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.p25, 7.0);
        assert_eq!(s.p75, 7.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn summary_rejects_empty() {
        let _ = Summary::of(&[]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn summary_rejects_nan() {
        let _ = Summary::of(&[1.0, f64::NAN]);
    }

    #[test]
    fn margin_of_error_shrinks_with_samples() {
        let few = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        let many_values: Vec<f64> = (0..100).map(|i| 1.0 + (i % 4) as f64).collect();
        let many = Summary::of(&many_values);
        assert!(many.margin_of_error_99() < few.margin_of_error_99());
    }

    #[test]
    fn paper_sample_size_argument_holds() {
        // §3.3: 60 samples with std dev like Table 2's (≈ 2–8) give a 99%
        // margin of error around ±1.7 or less.
        let values: Vec<f64> = (0..60)
            .map(|i| 5.0 + 5.0 * ((i as f64 * 0.7).sin()))
            .collect();
        let s = Summary::of(&values);
        assert!(s.std_dev < 5.5);
        assert!(
            s.margin_of_error_99() < 1.9,
            "got {}",
            s.margin_of_error_99()
        );
    }

    #[test]
    fn percentile_interpolates() {
        let sorted = [0.0, 10.0];
        assert!((percentile_sorted(&sorted, 0.5) - 5.0).abs() < 1e-12);
        assert_eq!(percentile_sorted(&sorted, 0.0), 0.0);
        assert_eq!(percentile_sorted(&sorted, 1.0), 10.0);
    }

    #[test]
    fn percent_error_basics() {
        assert!((percent_error(1.1, 1.0) - 10.0).abs() < 1e-9);
        assert!((percent_error(0.9, 1.0) - 10.0).abs() < 1e-9);
        assert_eq!(percent_error(2.0, 2.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-zero")]
    fn percent_error_rejects_zero_actual() {
        let _ = percent_error(1.0, 0.0);
    }

    #[test]
    fn mean_works() {
        assert!((mean(&[1.0, 2.0, 6.0]) - 3.0).abs() < 1e-12);
    }
}
