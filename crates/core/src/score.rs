use crate::curve::SensitivityCurve;
use crate::error::ModelError;

/// The reporter-bubble calibration curve used to *score* how much
/// interference an application generates (§2.1, Table 4).
///
/// Bubble-Up normalizes interference generation like this: co-run a
/// low-pressure *reporter* bubble with the target application and observe
/// the reporter's slowdown; then find the bubble pressure that would slow
/// the reporter by the same amount. That pressure is the application's
/// **bubble score**. `ReporterCurve` holds the reporter-vs-bubble
/// sensitivity curve and performs the inversion.
///
/// # Example
///
/// ```
/// use icm_core::{ReporterCurve, SensitivityCurve};
///
/// # fn main() -> Result<(), icm_core::ModelError> {
/// // Reporter slowdown when co-located with bubbles of pressure 0..=4.
/// let curve = ReporterCurve::new(SensitivityCurve::new(vec![
///     1.0, 1.02, 1.08, 1.2, 1.45,
/// ])?);
/// // An app that slows the reporter by 1.14× scores between 2 and 3.
/// let score = curve.score_for_slowdown(1.14);
/// assert!(score > 2.0 && score < 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ReporterCurve {
    curve: SensitivityCurve,
}

icm_json::impl_json!(struct ReporterCurve { curve });

impl ReporterCurve {
    /// Wraps a measured reporter-vs-bubble sensitivity curve.
    pub fn new(curve: SensitivityCurve) -> Self {
        Self { curve }
    }

    /// Builds the curve from raw reporter slowdowns at integer bubble
    /// pressures `0..=n`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidData`] if the values do not form a
    /// valid sensitivity curve.
    pub fn from_slowdowns(slowdowns: Vec<f64>) -> Result<Self, ModelError> {
        Ok(Self {
            curve: SensitivityCurve::new(slowdowns)?,
        })
    }

    /// The underlying sensitivity curve.
    pub fn curve(&self) -> &SensitivityCurve {
        &self.curve
    }

    /// Converts an observed reporter slowdown into a bubble score
    /// (clamped to the calibrated pressure range).
    pub fn score_for_slowdown(&self, slowdown: f64) -> f64 {
        self.curve.invert(slowdown)
    }

    /// Expected reporter slowdown for a given bubble score (the forward
    /// direction; useful for tests and diagnostics).
    pub fn slowdown_for_score(&self, score: f64) -> f64 {
        self.curve.value_at(score)
    }
}

/// Combines the bubble scores of multiple co-located applications into a
/// single equivalent score — the §4.4 extension sketch for relaxing the
/// pairwise-interaction limitation.
///
/// The paper's scoring is logarithmic in LLC misses: each +1 score step
/// corresponds to a doubling of induced misses. Combining co-runners
/// therefore adds their miss rates in linear space:
/// `combined = log2(Σ 2^sᵢ)`, so two co-runners of equal score `S`
/// combine to `S + 1`, exactly the paper's worked example. `collision`
/// adds the extra pressure from the combined working sets colliding
/// (0 = none; the ablation `A4` experiment fits it empirically).
///
/// Scores of 0 (no interference) contribute nothing.
///
/// # Panics
///
/// Panics if any score is negative or non-finite, or `collision` is
/// negative.
///
/// # Example
///
/// ```
/// use icm_core::combine_scores;
///
/// let combined = combine_scores(&[3.0, 3.0], 0.0);
/// assert!((combined - 4.0).abs() < 1e-12, "S + S → S+1");
/// assert_eq!(combine_scores(&[5.0], 0.0), 5.0);
/// assert_eq!(combine_scores(&[], 0.0), 0.0);
/// ```
pub fn combine_scores(scores: &[f64], collision: f64) -> f64 {
    assert!(
        collision.is_finite() && collision >= 0.0,
        "collision pressure must be non-negative, got {collision}"
    );
    let mut linear = 0.0;
    let mut active = 0usize;
    for &s in scores {
        assert!(
            s.is_finite() && s >= 0.0,
            "scores must be non-negative and finite, got {s}"
        );
        if s > 0.0 {
            linear += 2f64.powf(s);
            active += 1;
        }
    }
    if active == 0 {
        return 0.0;
    }
    let combined = linear.log2();
    if active > 1 {
        combined + collision
    } else {
        combined
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> ReporterCurve {
        ReporterCurve::from_slowdowns(vec![1.0, 1.01, 1.04, 1.1, 1.2, 1.35, 1.55, 1.8, 2.1])
            .expect("valid")
    }

    #[test]
    fn unperturbed_reporter_scores_zero() {
        assert_eq!(curve().score_for_slowdown(1.0), 0.0);
        assert_eq!(curve().score_for_slowdown(0.97), 0.0);
    }

    #[test]
    fn extreme_slowdown_clamps_to_max_pressure() {
        assert_eq!(curve().score_for_slowdown(5.0), 8.0);
    }

    #[test]
    fn round_trip_through_forward_direction() {
        let c = curve();
        for score in [0.5, 1.0, 2.7, 4.0, 6.2, 7.9] {
            let slowdown = c.slowdown_for_score(score);
            let back = c.score_for_slowdown(slowdown);
            assert!((back - score).abs() < 1e-9, "score {score} → {back}");
        }
    }

    #[test]
    fn scores_are_monotone_in_slowdown() {
        let c = curve();
        let mut last = -1.0;
        for i in 0..50 {
            let slowdown = 1.0 + i as f64 * 0.025;
            let score = c.score_for_slowdown(slowdown);
            assert!(score >= last, "regressed at slowdown {slowdown}");
            last = score;
        }
    }

    #[test]
    fn fractional_scores_come_out_naturally() {
        // The paper's Table 4 scores are fractional (e.g. 4.3) because
        // real apps fall between calibrated pressure levels.
        let c = curve();
        let score = c.score_for_slowdown(1.28);
        assert!(score > 4.0 && score < 5.0, "got {score}");
    }

    #[test]
    fn invalid_slowdown_data_rejected() {
        assert!(ReporterCurve::from_slowdowns(vec![1.0]).is_err());
        assert!(ReporterCurve::from_slowdowns(vec![1.0, f64::NAN]).is_err());
    }

    #[test]
    fn serde_round_trip() {
        let c = curve();
        let json = icm_json::to_string(&c);
        let back: ReporterCurve = icm_json::from_str(&json).expect("deserialize");
        assert_eq!(c, back);
    }

    #[test]
    fn combine_equal_scores_adds_one() {
        assert!((combine_scores(&[4.0, 4.0], 0.0) - 5.0).abs() < 1e-12);
        assert!((combine_scores(&[2.0, 2.0, 2.0, 2.0], 0.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn combine_is_dominated_by_the_larger_score() {
        let combined = combine_scores(&[6.0, 1.0], 0.0);
        assert!(combined > 6.0 && combined < 6.1, "got {combined}");
    }

    #[test]
    fn combine_ignores_zeros_and_handles_singletons() {
        assert_eq!(combine_scores(&[0.0, 0.0], 0.0), 0.0);
        assert_eq!(combine_scores(&[3.5, 0.0], 0.0), 3.5);
        assert_eq!(combine_scores(&[3.5], 1.0), 3.5, "no collision for one app");
    }

    #[test]
    fn collision_pressure_only_applies_to_real_combinations() {
        assert!((combine_scores(&[3.0, 3.0], 0.5) - 4.5).abs() < 1e-12);
        assert_eq!(combine_scores(&[3.0], 0.5), 3.0);
    }

    #[test]
    fn combine_is_monotone_in_each_score() {
        let mut last = 0.0;
        for s in [0.5, 1.0, 2.0, 4.0] {
            let c = combine_scores(&[s, 2.0], 0.0);
            assert!(c > last);
            last = c;
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn combine_rejects_negative() {
        let _ = combine_scores(&[-1.0], 0.0);
    }
}
