//! Online model refinement — the paper's stated future work (§4.4,
//! "Static Profiling" limitation; cf. Bubble-Flux).
//!
//! A statically profiled [`InterferenceModel`] cannot see effects outside
//! its bubble-calibrated world: co-runner CPU volatility (the `M.Gems`
//! problem of Fig. 9), phase changes, or environment drift. An
//! [`OnlineModel`] wraps the static model and folds *observed* runs back
//! into its predictions as multiplicative corrections:
//!
//! * a **global** correction — an exponentially weighted mean of
//!   `actual / predicted` over all observations, and
//! * optional **keyed** corrections — the same statistic tracked per
//!   co-runner (or per any caller-chosen context key), which is what
//!   rescues applications whose mispredictions are co-runner-specific.
//!
//! Corrections start at 1 (no change) and are clamped to a configurable
//! band so one outlier measurement cannot poison the model.

use std::collections::BTreeMap;

use crate::error::ModelError;
use crate::model::InterferenceModel;

/// Default EWMA weight for new observations.
pub const DEFAULT_ALPHA: f64 = 0.3;

/// Default clamp band for correction factors.
pub const DEFAULT_CORRECTION_BAND: (f64, f64) = (0.5, 2.0);

/// A statically profiled model plus online corrections learned from
/// observed runs.
///
/// # Example
///
/// ```no_run
/// # fn demo(model: icm_core::InterferenceModel) -> Result<(), icm_core::ModelError> {
/// use icm_core::online::OnlineModel;
///
/// let mut online = OnlineModel::new(model);
/// let pressures = vec![0.2; 8];
/// // The static model under-predicts this co-runner; feed observations:
/// online.observe_for("H.KM", &pressures, 1.25)?;
/// online.observe_for("H.KM", &pressures, 1.24)?;
/// // Future predictions for that co-runner are corrected:
/// let corrected = online.predict_for("H.KM", &pressures)?;
/// assert!(corrected > online.base().predict(&pressures));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineModel {
    base: InterferenceModel,
    alpha: f64,
    min_correction: f64,
    max_correction: f64,
    global: Correction,
    keyed: BTreeMap<String, Correction>,
}

icm_json::impl_json!(struct OnlineModel {
    base,
    alpha,
    min_correction,
    max_correction,
    global,
    keyed,
});

/// One EWMA correction state.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Correction {
    factor: f64,
    observations: u64,
}

icm_json::impl_json!(struct Correction { factor, observations });

impl Default for Correction {
    fn default() -> Self {
        Self {
            factor: 1.0,
            observations: 0,
        }
    }
}

impl Correction {
    fn update(&mut self, ratio: f64, alpha: f64, lo: f64, hi: f64) {
        let clamped = ratio.clamp(lo, hi);
        if self.observations == 0 {
            self.factor = clamped;
        } else {
            self.factor = (1.0 - alpha) * self.factor + alpha * clamped;
        }
        self.observations += 1;
    }
}

impl OnlineModel {
    /// Wraps a static model with default learning parameters.
    pub fn new(base: InterferenceModel) -> Self {
        Self::with_alpha(base, DEFAULT_ALPHA)
    }

    /// Wraps a static model with an explicit EWMA weight `alpha ∈ (0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn with_alpha(base: InterferenceModel, alpha: f64) -> Self {
        assert!(
            alpha.is_finite() && 0.0 < alpha && alpha <= 1.0,
            "alpha must be in (0, 1], got {alpha}"
        );
        Self {
            base,
            alpha,
            min_correction: DEFAULT_CORRECTION_BAND.0,
            max_correction: DEFAULT_CORRECTION_BAND.1,
            global: Correction::default(),
            keyed: BTreeMap::new(),
        }
    }

    /// The wrapped static model.
    pub fn base(&self) -> &InterferenceModel {
        &self.base
    }

    /// Current global correction factor (1 = no correction yet).
    pub fn correction(&self) -> f64 {
        self.global.factor
    }

    /// Current correction for a key, if any observations were recorded.
    pub fn correction_for(&self, key: &str) -> Option<f64> {
        self.keyed.get(key).map(|c| c.factor)
    }

    /// Number of observations folded in (global).
    pub fn observations(&self) -> u64 {
        self.global.observations
    }

    /// Predicts the normalized runtime with the global correction
    /// applied.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError::BadPressureVector`] from the base model.
    pub fn predict(&self, pressures: &[f64]) -> Result<f64, ModelError> {
        Ok((self.base.try_predict(pressures)? * self.global.factor).max(1.0))
    }

    /// Predicts with the keyed correction for `key` (falling back to the
    /// global correction when the key has no history).
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError::BadPressureVector`] from the base model.
    pub fn predict_for(&self, key: &str, pressures: &[f64]) -> Result<f64, ModelError> {
        let factor = self.keyed.get(key).map_or(self.global.factor, |c| c.factor);
        Ok((self.base.try_predict(pressures)? * factor).max(1.0))
    }

    /// Folds one observed run into the global correction.
    ///
    /// `actual` is the observed normalized runtime under `pressures`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidData`] if `actual` is not positive,
    /// or propagates pressure-vector validation errors.
    pub fn observe(&mut self, pressures: &[f64], actual: f64) -> Result<(), ModelError> {
        let ratio = self.ratio(pressures, actual)?;
        self.global
            .update(ratio, self.alpha, self.min_correction, self.max_correction);
        Ok(())
    }

    /// Folds one observed run into both the `key`ed and the global
    /// corrections.
    ///
    /// # Errors
    ///
    /// See [`observe`](Self::observe).
    pub fn observe_for(
        &mut self,
        key: &str,
        pressures: &[f64],
        actual: f64,
    ) -> Result<(), ModelError> {
        let ratio = self.ratio(pressures, actual)?;
        self.keyed.entry(key.to_owned()).or_default().update(
            ratio,
            self.alpha,
            self.min_correction,
            self.max_correction,
        );
        self.global
            .update(ratio, self.alpha, self.min_correction, self.max_correction);
        Ok(())
    }

    fn ratio(&self, pressures: &[f64], actual: f64) -> Result<f64, ModelError> {
        if !actual.is_finite() || actual <= 0.0 {
            return Err(ModelError::InvalidData(format!(
                "observed normalized runtime must be positive, got {actual}"
            )));
        }
        let predicted = self.base.try_predict(pressures)?;
        Ok(actual / predicted)
    }
}

/// Configuration for a [`DriftDetector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// Relative residual `|actual − predicted| / predicted` at or above
    /// which one sample counts as drifted.
    pub threshold: f64,
    /// Number of *consecutive* drifted samples required before the
    /// detector trips. With the default of 3, a single noisy outlier can
    /// at most raise the signal to [`DriftSignal::Elevated`] — it never
    /// trips a migration on its own.
    pub trip_after: u32,
}

icm_json::impl_json!(struct DriftConfig { threshold = 0.25, trip_after = 3 });

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            threshold: 0.25,
            trip_after: 3,
        }
    }
}

/// What one observation did to the drift state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftSignal {
    /// Residual below threshold; any running streak was reset.
    Steady,
    /// Residual at or above threshold, but the streak is still shorter
    /// than [`DriftConfig::trip_after`].
    Elevated,
    /// The streak reached `trip_after` consecutive drifted samples: the
    /// model has genuinely drifted. The streak resets so re-tripping
    /// requires a fresh sustained streak (hysteresis).
    Tripped,
}

/// Hysteresis-guarded drift detector over model residuals.
///
/// Feed it each observed run alongside the prediction it was compared
/// against (typically from [`OnlineModel::predict_for`]): the detector
/// counts *consecutive* samples whose relative residual reaches
/// [`DriftConfig::threshold`] and reports [`DriftSignal::Tripped`] only
/// once the streak reaches [`DriftConfig::trip_after`]. One outlier in a
/// steady stream therefore never trips; a sustained bias at or above the
/// threshold always trips within exactly `trip_after` observations.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftDetector {
    config: DriftConfig,
    streak: u32,
    last_residual: f64,
    trips: u64,
}

icm_json::impl_json!(struct DriftDetector {
    config,
    streak = 0,
    last_residual = 0.0,
    trips = 0,
});

impl DriftDetector {
    /// Creates a detector.
    ///
    /// # Panics
    ///
    /// Panics if `config.threshold` is not finite and positive, or if
    /// `config.trip_after` is zero (a zero-length streak would trip on
    /// every sample, defeating the hysteresis this type exists for).
    pub fn new(config: DriftConfig) -> Self {
        assert!(
            config.threshold.is_finite() && config.threshold > 0.0,
            "drift threshold must be finite and positive, got {}",
            config.threshold
        );
        assert!(
            config.trip_after >= 1,
            "trip_after must be at least 1, got 0"
        );
        Self {
            config,
            streak: 0,
            last_residual: 0.0,
            trips: 0,
        }
    }

    /// The configuration this detector was built with.
    pub fn config(&self) -> &DriftConfig {
        &self.config
    }

    /// Current consecutive-drifted-sample streak.
    pub fn streak(&self) -> u32 {
        self.streak
    }

    /// Relative residual of the most recent observation.
    pub fn last_residual(&self) -> f64 {
        self.last_residual
    }

    /// Total number of trips since construction.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Folds one (predicted, actual) pair into the drift state.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidData`] — leaving the streak
    /// untouched — if either value is non-finite or non-positive.
    pub fn observe(&mut self, predicted: f64, actual: f64) -> Result<DriftSignal, ModelError> {
        if !predicted.is_finite() || predicted <= 0.0 {
            return Err(ModelError::InvalidData(format!(
                "drift prediction must be positive, got {predicted}"
            )));
        }
        if !actual.is_finite() || actual <= 0.0 {
            return Err(ModelError::InvalidData(format!(
                "drift observation must be positive, got {actual}"
            )));
        }
        let residual = (actual - predicted).abs() / predicted;
        self.last_residual = residual;
        if residual < self.config.threshold {
            self.streak = 0;
            return Ok(DriftSignal::Steady);
        }
        self.streak += 1;
        if self.streak >= self.config.trip_after {
            self.streak = 0;
            self.trips += 1;
            Ok(DriftSignal::Tripped)
        } else {
            Ok(DriftSignal::Elevated)
        }
    }

    /// Clears the streak (e.g. after the manager acted on a trip and the
    /// placement changed, so old residuals no longer apply).
    pub fn reset(&mut self) {
        self.streak = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelBuilder;
    use crate::testbed::mock::MockTestbed;

    fn static_model() -> InterferenceModel {
        let mut tb = MockTestbed::default();
        ModelBuilder::new("mock")
            .policy_samples(10)
            .build(&mut tb)
            .expect("builds")
    }

    #[test]
    fn fresh_model_applies_no_correction() {
        let online = OnlineModel::new(static_model());
        let pressures = vec![3.0; 8];
        assert_eq!(
            online.predict(&pressures).expect("valid"),
            online.base().predict(&pressures)
        );
        assert_eq!(online.correction(), 1.0);
        assert_eq!(online.observations(), 0);
    }

    #[test]
    fn corrections_converge_to_observed_bias() {
        let mut online = OnlineModel::with_alpha(static_model(), 0.5);
        let pressures = vec![2.0; 8];
        let base = online.base().predict(&pressures);
        // Reality consistently runs 20% slower than the static model.
        for _ in 0..20 {
            online.observe(&pressures, base * 1.2).expect("valid");
        }
        assert!((online.correction() - 1.2).abs() < 0.01);
        let corrected = online.predict(&pressures).expect("valid");
        assert!((corrected - base * 1.2).abs() / base < 0.02);
    }

    #[test]
    fn keyed_corrections_are_isolated() {
        let mut online = OnlineModel::new(static_model());
        let pressures = vec![1.0; 8];
        let base = online.base().predict(&pressures);
        for _ in 0..10 {
            online
                .observe_for("volatile", &pressures, base * 1.3)
                .expect("valid");
        }
        let volatile = online.predict_for("volatile", &pressures).expect("valid");
        assert!(volatile > base * 1.2);
        // An unseen key falls back to the global correction (which has
        // also absorbed the bias here).
        let unseen = online.predict_for("steady", &pressures).expect("valid");
        assert!((unseen - volatile).abs() < 1e-9, "fallback is global");
        assert_eq!(online.correction_for("steady"), None);
        assert!(online.correction_for("volatile").is_some());
    }

    #[test]
    fn outliers_are_clamped() {
        let mut online = OnlineModel::with_alpha(static_model(), 1.0);
        let pressures = vec![2.0; 8];
        let base = online.base().predict(&pressures);
        online.observe(&pressures, base * 50.0).expect("valid");
        assert!(online.correction() <= DEFAULT_CORRECTION_BAND.1 + 1e-12);
        online.observe(&pressures, base * 1e-6).expect("valid");
        assert!(online.correction() >= DEFAULT_CORRECTION_BAND.0 - 1e-12);
    }

    #[test]
    fn corrected_prediction_never_below_one() {
        let mut online = OnlineModel::with_alpha(static_model(), 1.0);
        let none = vec![0.0; 8];
        online.observe(&none, 0.6).expect("valid"); // absurd but clamped
        assert!(online.predict(&none).expect("valid") >= 1.0);
    }

    #[test]
    fn invalid_observations_rejected() {
        let mut online = OnlineModel::new(static_model());
        assert!(online.observe(&[1.0; 8], 0.0).is_err());
        assert!(online.observe(&[1.0; 8], f64::NAN).is_err());
        assert!(online.observe(&[1.0; 3], 1.2).is_err(), "bad vector length");
    }

    #[test]
    fn hostile_observations_rejected_without_state_change() {
        let mut online = OnlineModel::new(static_model());
        let pressures = vec![1.0; 8];
        for bad in [
            f64::INFINITY,
            f64::NEG_INFINITY,
            -1.0,
            -0.0,
            f64::MIN_POSITIVE / 2.0 * 0.0, // exactly 0.0 via arithmetic
        ] {
            let err = online.observe(&pressures, bad).expect_err("rejected");
            assert!(matches!(err, ModelError::InvalidData(_)), "{bad}");
            let err = online
                .observe_for("k", &pressures, bad)
                .expect_err("rejected");
            assert!(matches!(err, ModelError::InvalidData(_)), "{bad}");
        }
        // Rejected observations leave no trace: no global or keyed state.
        assert_eq!(online.observations(), 0);
        assert_eq!(online.correction(), 1.0);
        assert_eq!(online.correction_for("k"), None);
    }

    #[test]
    fn sustained_poisoning_is_capped_by_the_band() {
        // A stream of absurd observations (crashing co-runner reporting
        // 100× slowdowns) must never push the EWMA past the clamp band,
        // no matter how long it runs.
        let mut online = OnlineModel::with_alpha(static_model(), 0.9);
        let pressures = vec![2.0; 8];
        let base = online.base().predict(&pressures);
        for i in 0..200 {
            let poison = base * if i % 2 == 0 { 100.0 } else { 1e-9 };
            online.observe(&pressures, poison).expect("positive");
        }
        assert!(online.correction() >= DEFAULT_CORRECTION_BAND.0 - 1e-12);
        assert!(online.correction() <= DEFAULT_CORRECTION_BAND.1 + 1e-12);
        // And the corrected prediction stays inside the banded envelope.
        let predicted = online.predict(&pressures).expect("valid");
        assert!(predicted <= base * DEFAULT_CORRECTION_BAND.1 + 1e-9);
        assert!(predicted >= 1.0);
    }

    #[test]
    fn keyed_poisoning_does_not_leak_into_other_keys() {
        let mut online = OnlineModel::with_alpha(static_model(), 0.5);
        let pressures = vec![2.0; 8];
        let base = online.base().predict(&pressures);
        // An honest co-runner first, so the honest key has history.
        for _ in 0..10 {
            online
                .observe_for("honest", &pressures, base * 1.05)
                .expect("valid");
        }
        let honest_before = online.correction_for("honest").expect("tracked");
        // Then a poisoned co-runner floods the model.
        for _ in 0..50 {
            online
                .observe_for("poisoned", &pressures, base * 100.0)
                .expect("positive");
        }
        // The honest key's correction is untouched by the poison.
        let honest_after = online.correction_for("honest").expect("tracked");
        assert_eq!(honest_before, honest_after);
        // The poisoned key saturates at the band edge, not at 100×.
        let poisoned = online.correction_for("poisoned").expect("tracked");
        assert!((poisoned - DEFAULT_CORRECTION_BAND.1).abs() < 1e-9);
        // Keyed prediction for the honest co-runner stays calibrated.
        let honest_pred = online.predict_for("honest", &pressures).expect("valid");
        assert!((honest_pred - base * honest_after).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_panics() {
        let _ = OnlineModel::with_alpha(static_model(), 0.0);
    }

    #[test]
    fn single_outlier_never_trips_the_drift_detector() {
        let mut detector = DriftDetector::new(DriftConfig::default());
        // Steady stream, one wild outlier, steady again: the signal may
        // rise to Elevated for exactly that sample but must never trip.
        for _ in 0..10 {
            assert_eq!(
                detector.observe(1.0, 1.02).expect("valid"),
                DriftSignal::Steady
            );
        }
        assert_eq!(
            detector.observe(1.0, 3.0).expect("valid"),
            DriftSignal::Elevated
        );
        assert_eq!(detector.streak(), 1);
        for _ in 0..10 {
            assert_eq!(
                detector.observe(1.0, 1.01).expect("valid"),
                DriftSignal::Steady
            );
        }
        assert_eq!(detector.trips(), 0, "an isolated outlier tripped");
    }

    #[test]
    fn sustained_drift_trips_within_exactly_trip_after_samples() {
        let config = DriftConfig {
            threshold: 0.25,
            trip_after: 3,
        };
        let mut detector = DriftDetector::new(config);
        // A sustained 40% bias: two Elevated samples, trip on the third.
        assert_eq!(
            detector.observe(1.0, 1.4).expect("valid"),
            DriftSignal::Elevated
        );
        assert_eq!(
            detector.observe(1.0, 1.4).expect("valid"),
            DriftSignal::Elevated
        );
        assert_eq!(
            detector.observe(1.0, 1.4).expect("valid"),
            DriftSignal::Tripped
        );
        assert_eq!(detector.trips(), 1);
        // The streak reset on trip: re-tripping needs a fresh streak.
        assert_eq!(detector.streak(), 0);
        assert_eq!(
            detector.observe(1.0, 1.4).expect("valid"),
            DriftSignal::Elevated
        );
    }

    #[test]
    fn drift_detector_under_manager_cadence_is_deterministic_and_seeded() {
        // The manager's observation cadence: one (predicted, actual)
        // sample per tick, with realistic multiplicative measurement
        // noise. Seeded noise below the threshold must never trip;
        // seeded noise riding on a sustained bias >= threshold must trip
        // within trip_after ticks of the bias onset — and two same-seed
        // histories must agree signal-for-signal.
        let run = |seed: u64| -> (Vec<DriftSignal>, Option<usize>) {
            let mut rng = icm_rng::Rng::from_seed(seed);
            let config = DriftConfig {
                threshold: 0.25,
                trip_after: 3,
            };
            let mut detector = DriftDetector::new(config);
            let mut signals = Vec::new();
            let mut tripped_at = None;
            for tick in 0..40 {
                // ±5% noise, well under the 25% threshold...
                let noise = 1.0 + 0.1 * (rng.gen_f64() - 0.5);
                // ...plus a 40% sustained drift starting at tick 20.
                let bias = if tick >= 20 { 1.4 } else { 1.0 };
                let signal = detector.observe(1.0, bias * noise).expect("valid");
                if signal == DriftSignal::Tripped && tripped_at.is_none() {
                    tripped_at = Some(tick);
                }
                signals.push(signal);
            }
            (signals, tripped_at)
        };
        let (signals_a, tripped_a) = run(2016);
        let (signals_b, tripped_b) = run(2016);
        assert_eq!(signals_a, signals_b, "same-seed drift histories diverged");
        assert_eq!(tripped_a, tripped_b);
        // No trip before the bias onset; trip within trip_after of it.
        let tripped = tripped_a.expect("sustained drift never tripped");
        assert!(
            tripped >= 20,
            "tripped at {tripped}, before the drift began"
        );
        assert!(
            tripped <= 22,
            "tripped at {tripped}, later than trip_after ticks after onset"
        );
        // A different seed still trips in the same bounded window.
        let (_, tripped_c) = run(7);
        let tripped_c = tripped_c.expect("sustained drift never tripped");
        assert!((20..=22).contains(&tripped_c));
    }

    #[test]
    fn drift_detector_rejects_hostile_samples_without_state_change() {
        let mut detector = DriftDetector::new(DriftConfig::default());
        detector.observe(1.0, 1.4).expect("valid");
        assert_eq!(detector.streak(), 1);
        for (p, a) in [
            (f64::NAN, 1.0),
            (1.0, f64::NAN),
            (0.0, 1.0),
            (1.0, 0.0),
            (-1.0, 1.0),
            (1.0, f64::INFINITY),
        ] {
            let err = detector.observe(p, a).expect_err("rejected");
            assert!(matches!(err, ModelError::InvalidData(_)));
        }
        assert_eq!(detector.streak(), 1, "rejected samples touched the streak");
        assert_eq!(detector.trips(), 0);
    }

    #[test]
    #[should_panic(expected = "trip_after")]
    fn zero_trip_after_panics() {
        let _ = DriftDetector::new(DriftConfig {
            threshold: 0.25,
            trip_after: 0,
        });
    }

    #[test]
    fn drift_detector_round_trips_through_json() {
        let mut detector = DriftDetector::new(DriftConfig::default());
        detector.observe(1.0, 1.4).expect("valid");
        let back: DriftDetector =
            icm_json::from_str(&icm_json::to_string(&detector)).expect("round-trips");
        assert_eq!(back, detector);
    }

    #[test]
    fn serde_round_trip_preserves_learning() {
        let mut online = OnlineModel::new(static_model());
        let pressures = vec![2.0; 8];
        let base = online.base().predict(&pressures);
        online
            .observe_for("x", &pressures, base * 1.4)
            .expect("valid");
        let json = icm_json::to_string(&online);
        let back: OnlineModel = icm_json::from_str(&json).expect("deserializes");
        assert_eq!(back.correction_for("x"), online.correction_for("x"));
        assert_eq!(back.observations(), online.observations());
    }
}
