use crate::error::ModelError;

/// The interference *propagation* model of one distributed application:
/// the matrix `T` of Algorithms 1 and 2.
///
/// `T[i][j]` is the application's normalized execution time when `j` of
/// the cluster's `m` hosts each run a bubble at pressure `i + 1` (rows
/// cover pressures `1..=n`); `T[i][0] = 1` by construction. This is
/// exactly the family of curves in Fig. 3 of the paper, one row per
/// bubble pressure.
///
/// [`PropagationMatrix::predict`] evaluates the model at fractional
/// pressures and node counts with bilinear interpolation, treating
/// pressure 0 as the all-ones row.
///
/// # Example
///
/// ```
/// use icm_core::PropagationMatrix;
///
/// # fn main() -> Result<(), icm_core::ModelError> {
/// // Two pressure rows (1 and 2) over a 4-host cluster.
/// let t = PropagationMatrix::new(vec![
///     vec![1.0, 1.10, 1.15, 1.18, 1.20],
///     vec![1.0, 1.30, 1.40, 1.45, 1.50],
/// ])?;
/// assert_eq!(t.predict(2.0, 4.0), 1.50);
/// // Fractional pressure interpolates between rows:
/// assert!((t.predict(1.5, 4.0) - 1.35).abs() < 1e-12);
/// // Pressure below 1 interpolates toward the no-interference row:
/// assert!((t.predict(0.5, 4.0) - 1.10).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PropagationMatrix {
    /// rows[i][j]: pressure i+1, j interfering nodes; each row has m+1
    /// entries (j = 0..=m).
    rows: Vec<Vec<f64>>,
}

icm_json::impl_json!(struct PropagationMatrix { rows });

impl PropagationMatrix {
    /// Creates a matrix from rows indexed by pressure − 1; each row holds
    /// normalized times for 0..=m interfering nodes.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidData`] if there are no rows, rows have
    /// differing lengths or fewer than two columns, any value is
    /// non-finite or < 0.9, or a row does not start at ≈ 1.
    pub fn new(rows: Vec<Vec<f64>>) -> Result<Self, ModelError> {
        if rows.is_empty() {
            return Err(ModelError::InvalidData(
                "matrix has no pressure rows".into(),
            ));
        }
        let width = rows[0].len();
        if width < 2 {
            return Err(ModelError::InvalidData(
                "matrix rows need at least 2 columns (0 and 1 interfering nodes)".into(),
            ));
        }
        for (i, row) in rows.iter().enumerate() {
            if row.len() != width {
                return Err(ModelError::InvalidData(format!(
                    "row {i} has {} columns, expected {width}",
                    row.len()
                )));
            }
            for (j, &v) in row.iter().enumerate() {
                if !v.is_finite() || v < 0.9 {
                    return Err(ModelError::InvalidData(format!(
                        "T[{i}][{j}] must be a finite normalized time ≥ 0.9, got {v}"
                    )));
                }
            }
            if (row[0] - 1.0).abs() > 0.1 {
                return Err(ModelError::InvalidData(format!(
                    "T[{i}][0] must be ≈ 1 (no interfering nodes), got {}",
                    row[0]
                )));
            }
        }
        Ok(Self { rows })
    }

    /// Number of pressure levels `n` (rows cover pressures `1..=n`).
    pub fn max_pressure(&self) -> usize {
        self.rows.len()
    }

    /// Number of hosts `m` (columns cover `0..=m` interfering nodes).
    pub fn hosts(&self) -> usize {
        self.rows[0].len() - 1
    }

    /// Normalized time at integer pressure `pressure` (1-based) and `nodes`
    /// interfering nodes.
    ///
    /// # Panics
    ///
    /// Panics if `pressure` is 0 or out of range, or `nodes > hosts`.
    pub fn at(&self, pressure: usize, nodes: usize) -> f64 {
        assert!(
            (1..=self.max_pressure()).contains(&pressure),
            "pressure {pressure} out of range 1..={}",
            self.max_pressure()
        );
        assert!(
            nodes <= self.hosts(),
            "nodes {nodes} > hosts {}",
            self.hosts()
        );
        self.rows[pressure - 1][nodes]
    }

    /// The full row for an integer pressure (the Fig. 3 curve at that
    /// bubble pressure).
    ///
    /// # Panics
    ///
    /// Panics if `pressure` is 0 or out of range.
    pub fn row(&self, pressure: usize) -> &[f64] {
        assert!(
            (1..=self.max_pressure()).contains(&pressure),
            "pressure {pressure} out of range 1..={}",
            self.max_pressure()
        );
        &self.rows[pressure - 1]
    }

    /// Bilinear model evaluation at fractional pressure and node count.
    ///
    /// * `pressure` is clamped to `[0, n]`; between 0 and 1 the value
    ///   interpolates between "no interference" (1.0) and the pressure-1
    ///   row.
    /// * `nodes` is clamped to `[0, m]`.
    pub fn predict(&self, pressure: f64, nodes: f64) -> f64 {
        let p = if pressure.is_finite() {
            pressure.clamp(0.0, self.max_pressure() as f64)
        } else {
            self.max_pressure() as f64
        };
        let k = if nodes.is_finite() {
            nodes.clamp(0.0, self.hosts() as f64)
        } else {
            self.hosts() as f64
        };
        let j_lo = k.floor() as usize;
        let j_hi = k.ceil() as usize;
        let j_frac = k - j_lo as f64;
        let row_value = |p_idx: usize| -> f64 {
            // p_idx 0 means the implicit all-ones row.
            let value_at = |j: usize| -> f64 {
                if p_idx == 0 {
                    1.0
                } else {
                    self.rows[p_idx - 1][j]
                }
            };
            value_at(j_lo) * (1.0 - j_frac) + value_at(j_hi) * j_frac
        };
        let i_lo = p.floor() as usize;
        let i_hi = p.ceil() as usize;
        if i_lo == i_hi {
            return row_value(i_lo);
        }
        let i_frac = p - i_lo as f64;
        row_value(i_lo) * (1.0 - i_frac) + row_value(i_hi) * i_frac
    }

    /// Mean absolute percentage difference against another matrix of the
    /// same shape, over all cells with `j ≥ 1` (the paper's profiling
    /// accuracy metric, Table 3).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidData`] if shapes differ.
    pub fn mean_abs_error_pct(&self, ground_truth: &PropagationMatrix) -> Result<f64, ModelError> {
        if self.max_pressure() != ground_truth.max_pressure()
            || self.hosts() != ground_truth.hosts()
        {
            return Err(ModelError::InvalidData(format!(
                "shape mismatch: {}×{} vs {}×{}",
                self.max_pressure(),
                self.hosts(),
                ground_truth.max_pressure(),
                ground_truth.hosts()
            )));
        }
        let mut total = 0.0;
        let mut count = 0usize;
        for i in 1..=self.max_pressure() {
            for j in 1..=self.hosts() {
                let truth = ground_truth.at(i, j);
                total += ((self.at(i, j) - truth) / truth).abs() * 100.0;
                count += 1;
            }
        }
        Ok(total / count as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> PropagationMatrix {
        PropagationMatrix::new(vec![
            vec![1.0, 1.1, 1.15, 1.2],
            vec![1.0, 1.3, 1.4, 1.5],
            vec![1.0, 1.6, 1.8, 2.0],
        ])
        .expect("valid")
    }

    #[test]
    fn shape_accessors() {
        let t = matrix();
        assert_eq!(t.max_pressure(), 3);
        assert_eq!(t.hosts(), 3);
    }

    #[test]
    fn at_reads_cells() {
        let t = matrix();
        assert_eq!(t.at(1, 0), 1.0);
        assert_eq!(t.at(2, 3), 1.5);
        assert_eq!(t.at(3, 1), 1.6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn at_rejects_pressure_zero() {
        let _ = matrix().at(0, 1);
    }

    #[test]
    #[should_panic(expected = "nodes")]
    fn at_rejects_too_many_nodes() {
        let _ = matrix().at(1, 4);
    }

    #[test]
    fn predict_matches_cells_at_integer_coordinates() {
        let t = matrix();
        for i in 1..=3usize {
            for j in 0..=3usize {
                assert_eq!(t.predict(i as f64, j as f64), t.at(i, j));
            }
        }
    }

    #[test]
    fn predict_interpolates_nodes() {
        let t = matrix();
        assert!((t.predict(2.0, 1.5) - 1.35).abs() < 1e-12);
    }

    #[test]
    fn predict_interpolates_pressure() {
        let t = matrix();
        assert!((t.predict(2.5, 3.0) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn predict_blends_to_one_below_pressure_one() {
        let t = matrix();
        assert!((t.predict(0.5, 3.0) - 1.1).abs() < 1e-12);
        assert_eq!(t.predict(0.0, 3.0), 1.0);
    }

    #[test]
    fn predict_clamps_out_of_range() {
        let t = matrix();
        assert_eq!(t.predict(99.0, 99.0), 2.0);
        assert_eq!(t.predict(-1.0, 2.0), 1.0);
        assert_eq!(t.predict(f64::NAN, f64::NAN), 2.0);
    }

    #[test]
    fn zero_nodes_is_always_one() {
        let t = matrix();
        for p in [0.0, 0.7, 1.0, 2.5, 3.0] {
            assert_eq!(t.predict(p, 0.0), 1.0, "pressure {p}");
        }
    }

    #[test]
    fn rejects_empty_and_ragged() {
        assert!(PropagationMatrix::new(vec![]).is_err());
        assert!(PropagationMatrix::new(vec![vec![1.0, 1.1], vec![1.0]]).is_err());
        assert!(PropagationMatrix::new(vec![vec![1.0]]).is_err());
    }

    #[test]
    fn rejects_bad_values() {
        assert!(PropagationMatrix::new(vec![vec![1.0, f64::INFINITY]]).is_err());
        assert!(PropagationMatrix::new(vec![vec![1.0, 0.2]]).is_err());
        assert!(PropagationMatrix::new(vec![vec![1.4, 1.5]]).is_err());
    }

    #[test]
    fn error_metric_zero_against_itself() {
        let t = matrix();
        assert_eq!(t.mean_abs_error_pct(&t).expect("same shape"), 0.0);
    }

    #[test]
    fn error_metric_detects_differences() {
        let t = matrix();
        let mut rows = vec![
            vec![1.0, 1.1, 1.15, 1.2],
            vec![1.0, 1.3, 1.4, 1.5],
            vec![1.0, 1.6, 1.8, 2.0],
        ];
        rows[2][3] = 2.2; // +10% on one of 9 cells
        let other = PropagationMatrix::new(rows).expect("valid");
        let err = other.mean_abs_error_pct(&t).expect("same shape");
        assert!((err - 10.0 / 9.0).abs() < 1e-9, "got {err}");
    }

    #[test]
    fn error_metric_rejects_shape_mismatch() {
        let t = matrix();
        let other = PropagationMatrix::new(vec![vec![1.0, 1.5]]).expect("valid");
        assert!(t.mean_abs_error_pct(&other).is_err());
    }

    #[test]
    fn serde_round_trip() {
        let t = matrix();
        let json = icm_json::to_string(&t);
        let back: PropagationMatrix = icm_json::from_str(&json).expect("deserialize");
        assert_eq!(t, back);
    }
}
