//! Resilient profiling: retries, deterministic backoff, outlier
//! rejection, and per-cell model quality.
//!
//! The paper's Algorithms 1–2 assume every `(pressure, nodes)` setting is
//! measurable; on a consolidated cluster probe runs crash, straggle past
//! deadlines and return contaminated samples. [`ResilientSource`] wraps
//! any [`ProfileSource`] with a [`RetryPolicy`]: failed measurements are
//! retried with exponential backoff (accounted in *simulated* seconds, so
//! the determinism contract holds), repeated samples are cleaned by
//! median-absolute-deviation outlier rejection, and settings that stay
//! unmeasurable are filled with a conservative monotone fallback instead
//! of aborting the profile. Every cell of the resulting matrix carries a
//! [`ModelQuality`] so downstream consumers (placement, QoS policies) can
//! price low-confidence predictions conservatively.

use std::collections::{BTreeMap, BTreeSet};

use icm_obs::{Tracer, Value};

use crate::error::ModelError;
use crate::profiling::{
    profile_traced, ProfileResult, ProfileSource, ProfilerConfig, ProfilingAlgorithm,
};

/// Provenance of one propagation-matrix cell, ordered best-first so the
/// *maximum* over a set of cells is the worst quality involved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ModelQuality {
    /// The cell's value comes from a successful measurement.
    Measured,
    /// The cell was interpolated between measured neighbours by the
    /// profiling algorithm (the normal Algorithm 1–2 behaviour).
    Interpolated,
    /// All measurement attempts failed; the value is a conservative
    /// monotone fallback.
    Defaulted,
}

icm_json::impl_json!(
    enum ModelQuality {
        Measured,
        Interpolated,
        Defaulted,
    }
);

impl ModelQuality {
    /// Stable lowercase label for traces and tables.
    pub fn as_str(self) -> &'static str {
        match self {
            ModelQuality::Measured => "measured",
            ModelQuality::Interpolated => "interpolated",
            ModelQuality::Defaulted => "defaulted",
        }
    }
}

/// Retry/backoff/outlier-rejection policy for resilient profiling.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Extra attempts allowed per setting after failures.
    pub max_retries: u32,
    /// Samples to collect per setting (medians over repeats reject
    /// corrupted measurements; `1` reproduces plain profiling exactly).
    pub samples: u32,
    /// First backoff delay, in simulated seconds; retry `k` waits
    /// `backoff_base_s · 2^(k−1)`.
    pub backoff_base_s: f64,
    /// MAD outlier threshold: with ≥ 3 samples, samples farther than
    /// `mad_threshold × MAD` from the median are discarded.
    pub mad_threshold: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            samples: 1,
            backoff_base_s: 30.0,
            mad_threshold: 3.5,
        }
    }
}

icm_json::impl_json!(struct RetryPolicy {
    max_retries,
    samples,
    backoff_base_s,
    mad_threshold
});

impl RetryPolicy {
    /// A policy taking `samples` repeats per setting (outlier rejection
    /// needs at least 3 to act).
    pub fn with_samples(samples: u32) -> Self {
        Self {
            samples: samples.max(1),
            ..Self::default()
        }
    }
}

/// Accounting of the resilience machinery's work.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResilienceStats {
    /// Measurement attempts issued to the wrapped source.
    pub attempts: u64,
    /// Attempts that failed (source error or invalid value).
    pub failures: u64,
    /// Failures that were retried.
    pub retries: u64,
    /// Samples discarded by MAD outlier rejection.
    pub rejected_outliers: u64,
    /// Settings filled by the conservative fallback.
    pub defaulted_settings: u64,
    /// Simulated seconds spent backing off between retries.
    pub backoff_seconds: f64,
}

icm_json::impl_json!(struct ResilienceStats {
    attempts,
    failures,
    retries,
    rejected_outliers,
    defaulted_settings,
    backoff_seconds
});

/// Per-cell quality of a profiled propagation matrix.
///
/// Mirrors the matrix layout: pressures `1..=n`, interfering nodes
/// `0..=m` (the `j = 0` column is the solo anchor and always
/// [`Measured`](ModelQuality::Measured)).
#[derive(Debug, Clone, PartialEq)]
pub struct QualityGrid {
    n: usize,
    m: usize,
    cells: Vec<Vec<ModelQuality>>,
}

icm_json::impl_json!(struct QualityGrid { n, m, cells });

impl QualityGrid {
    /// Quality at integer coordinates (`pressure ∈ 1..=n` clamped,
    /// `nodes ∈ 0..=m` clamped).
    pub fn at(&self, pressure: usize, nodes: usize) -> ModelQuality {
        let i = pressure.clamp(1, self.n);
        let j = nodes.min(self.m);
        self.cells[i - 1][j]
    }

    /// Quality backing a fractional `(pressure, nodes)` lookup, as
    /// produced by the heterogeneity policies. Conservative: fractional
    /// coordinates take the worst quality of the cells the bilinear
    /// interpolation would touch.
    pub fn at_hom(&self, pressure: f64, nodes: f64) -> ModelQuality {
        if !(pressure.is_finite() && nodes.is_finite()) || pressure <= 0.0 || nodes <= 0.0 {
            return ModelQuality::Measured; // no interference → solo anchor
        }
        let lo_p = (pressure.floor() as usize).max(1);
        let hi_p = pressure.ceil() as usize;
        let lo_n = nodes.floor() as usize;
        let hi_n = nodes.ceil() as usize;
        let mut worst = ModelQuality::Measured;
        for p in [lo_p, hi_p] {
            for n in [lo_n, hi_n] {
                worst = worst.max(self.at(p, n));
            }
        }
        worst
    }

    /// `(measured, interpolated, defaulted)` cell counts over the whole
    /// grid (the `j = 0` anchors included).
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for row in &self.cells {
            for &q in row {
                match q {
                    ModelQuality::Measured => counts.0 += 1,
                    ModelQuality::Interpolated => counts.1 += 1,
                    ModelQuality::Defaulted => counts.2 += 1,
                }
            }
        }
        counts
    }

    /// Fraction of cells that had to be defaulted.
    pub fn defaulted_fraction(&self) -> f64 {
        let (a, b, c) = self.counts();
        c as f64 / (a + b + c).max(1) as f64
    }

    /// The worst quality anywhere in the grid.
    pub fn worst(&self) -> ModelQuality {
        self.cells
            .iter()
            .flatten()
            .copied()
            .max()
            .unwrap_or(ModelQuality::Measured)
    }
}

/// A [`ProfileSource`] wrapper adding retries, backoff, outlier rejection
/// and conservative fallbacks, so the profiling algorithms above it never
/// see a failed measurement.
pub struct ResilientSource<'a> {
    inner: &'a mut dyn ProfileSource,
    policy: RetryPolicy,
    tracer: Tracer,
    stats: ResilienceStats,
    /// Cleaned value per setting that produced at least one sample.
    measured_ok: BTreeMap<(usize, usize), f64>,
    /// Settings filled by the fallback.
    defaulted: BTreeSet<(usize, usize)>,
}

impl<'a> ResilientSource<'a> {
    /// Wraps `inner` with the given policy; retry/default events go to
    /// `tracer` (whose simulated clock also absorbs the backoff time).
    pub fn new(inner: &'a mut dyn ProfileSource, policy: RetryPolicy, tracer: Tracer) -> Self {
        Self {
            inner,
            policy,
            tracer,
            stats: ResilienceStats::default(),
            measured_ok: BTreeMap::new(),
            defaulted: BTreeSet::new(),
        }
    }

    /// Resilience accounting so far.
    pub fn stats(&self) -> &ResilienceStats {
        &self.stats
    }

    /// Builds the per-cell quality map for the settings requested so far:
    /// defaulted settings are [`Defaulted`](ModelQuality::Defaulted),
    /// successfully sampled ones [`Measured`](ModelQuality::Measured), and
    /// everything the algorithm never asked for
    /// [`Interpolated`](ModelQuality::Interpolated).
    pub fn quality_grid(&self) -> QualityGrid {
        let n = self.inner.max_pressure();
        let m = self.inner.hosts();
        let mut cells = vec![vec![ModelQuality::Interpolated; m + 1]; n];
        for row in &mut cells {
            row[0] = ModelQuality::Measured; // solo anchor
        }
        for &(i, j) in self.measured_ok.keys() {
            cells[i - 1][j] = ModelQuality::Measured;
        }
        for &(i, j) in &self.defaulted {
            cells[i - 1][j] = ModelQuality::Defaulted;
        }
        QualityGrid { n, m, cells }
    }

    /// Conservative fallback for a setting with no usable sample, built
    /// from monotonicity of the propagation matrix (runtime never
    /// decreases in pressure or interfering-node count): prefer the
    /// tightest *over*-estimate from a dominating measured setting, fall
    /// back to the tightest under-estimate from a dominated one, and to
    /// the solo value `1.0` when nothing is measured yet.
    fn fallback(&self, i: usize, j: usize) -> f64 {
        let upper = self
            .measured_ok
            .iter()
            .filter(|&(&(pi, pj), _)| pi >= i && pj >= j)
            .map(|(_, &v)| v)
            .fold(f64::INFINITY, f64::min);
        if upper.is_finite() {
            return upper;
        }
        let lower = self
            .measured_ok
            .iter()
            .filter(|&(&(pi, pj), _)| pi <= i && pj <= j)
            .map(|(_, &v)| v)
            .fold(1.0f64, f64::max);
        lower
    }

    /// Cleans the collected samples: with ≥ 3, discard MAD outliers, then
    /// take the median. Returns `(value, rejected)`.
    fn clean(&self, samples: &mut Vec<f64>) -> (f64, u64) {
        if samples.len() < 3 {
            return (median(samples), 0);
        }
        let med = median(samples);
        let mut deviations: Vec<f64> = samples.iter().map(|&x| (x - med).abs()).collect();
        let mad = median(&mut deviations).max(1e-3);
        let before = samples.len();
        samples.retain(|&x| (x - med).abs() <= self.policy.mad_threshold * mad);
        let rejected = (before - samples.len()) as u64;
        (median(samples), rejected)
    }
}

/// Median of a slice (sorts in place; mean of the middle pair for even
/// lengths). Empty slices yield NaN — callers guarantee non-emptiness.
fn median(values: &mut [f64]) -> f64 {
    values.sort_by(f64::total_cmp);
    let k = values.len();
    if k == 0 {
        return f64::NAN;
    }
    if k % 2 == 1 {
        values[k / 2]
    } else {
        0.5 * (values[k / 2 - 1] + values[k / 2])
    }
}

impl ProfileSource for ResilientSource<'_> {
    fn hosts(&self) -> usize {
        self.inner.hosts()
    }

    fn max_pressure(&self) -> usize {
        self.inner.max_pressure()
    }

    fn measure(&mut self, pressure: usize, nodes: usize) -> Result<f64, ModelError> {
        let budget = self.policy.samples.max(1) + self.policy.max_retries;
        let mut samples: Vec<f64> = Vec::with_capacity(self.policy.samples.max(1) as usize);
        let mut failures_here = 0u32;
        for attempt in 1..=budget {
            if samples.len() >= self.policy.samples.max(1) as usize {
                break;
            }
            self.stats.attempts += 1;
            let outcome = self.inner.measure(pressure, nodes);
            match outcome {
                Ok(v) if v.is_finite() && v > 0.0 => samples.push(v),
                other => {
                    let detail = match other {
                        Err(err) => err.to_string(),
                        Ok(v) => format!("invalid measurement {v}"),
                    };
                    self.stats.failures += 1;
                    failures_here += 1;
                    if attempt < budget {
                        // Deterministic exponential backoff, charged to
                        // the simulated clock (never wall time).
                        let backoff = self.policy.backoff_base_s
                            * f64::from(1u32 << (failures_here - 1).min(16));
                        self.stats.retries += 1;
                        self.stats.backoff_seconds += backoff;
                        self.tracer.advance_sim(backoff);
                        if self.tracer.enabled() {
                            self.tracer.event(
                                "probe_retry",
                                &[
                                    ("pressure", Value::from(pressure)),
                                    ("nodes", Value::from(nodes)),
                                    ("attempt", Value::from(attempt as usize)),
                                    ("backoff_s", Value::from(backoff)),
                                    ("error", Value::from(detail.as_str())),
                                ],
                            );
                        }
                    }
                }
            }
        }
        if samples.is_empty() {
            let value = self.fallback(pressure, nodes);
            self.stats.defaulted_settings += 1;
            self.defaulted.insert((pressure, nodes));
            if self.tracer.enabled() {
                self.tracer.event(
                    "probe_defaulted",
                    &[
                        ("pressure", Value::from(pressure)),
                        ("nodes", Value::from(nodes)),
                        ("value", Value::from(value)),
                    ],
                );
            }
            return Ok(value);
        }
        let (value, rejected) = self.clean(&mut samples);
        self.stats.rejected_outliers += rejected;
        self.measured_ok.insert((pressure, nodes), value);
        Ok(value)
    }
}

/// Everything a resilient profiling run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilientOutcome {
    /// The profiling result (matrix, measured settings, cost) — the
    /// measured list includes defaulted settings, so cost accounting
    /// covers the attempts faults wasted.
    pub result: ProfileResult,
    /// Per-cell provenance of the matrix.
    pub quality: QualityGrid,
    /// Retry/backoff/outlier accounting.
    pub stats: ResilienceStats,
}

/// Runs `algorithm` through a [`ResilientSource`] wrapper: measurement
/// failures are retried and, past the retry budget, conservatively
/// defaulted, so profiling completes on faulty testbeds and reports the
/// quality of what it built instead of erroring out.
///
/// # Errors
///
/// Returns [`ModelError::Profiling`] for degenerate spaces or invalid
/// algorithm parameters — measurement failures no longer propagate.
pub fn profile_resilient(
    source: &mut dyn ProfileSource,
    algorithm: ProfilingAlgorithm,
    config: &ProfilerConfig,
    policy: &RetryPolicy,
    tracer: &Tracer,
) -> Result<ResilientOutcome, ModelError> {
    let mut resilient = ResilientSource::new(source, policy.clone(), tracer.clone());
    let result = profile_traced(&mut resilient, algorithm, config, tracer)?;
    let quality = resilient.quality_grid();
    let stats = resilient.stats().clone();
    Ok(ResilientOutcome {
        result,
        quality,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiling::FnSource;

    fn truth(pressure: usize, nodes: usize) -> f64 {
        1.0 + 0.12 * pressure as f64 * (nodes as f64 / 8.0).powf(0.3)
    }

    /// A source that fails deterministically on a caller-chosen subset of
    /// calls.
    struct FlakySource<F> {
        calls: u64,
        fail: F,
    }

    impl<F: FnMut(u64, usize, usize) -> bool> FlakySource<F> {
        fn new(fail: F) -> Self {
            Self { calls: 0, fail }
        }
    }

    impl<F: FnMut(u64, usize, usize) -> bool> ProfileSource for FlakySource<F> {
        fn hosts(&self) -> usize {
            8
        }
        fn max_pressure(&self) -> usize {
            8
        }
        fn measure(&mut self, pressure: usize, nodes: usize) -> Result<f64, ModelError> {
            self.calls += 1;
            if (self.fail)(self.calls, pressure, nodes) {
                Err(ModelError::Testbed("injected".into()))
            } else {
                Ok(truth(pressure, nodes))
            }
        }
    }

    #[test]
    fn clean_source_behaves_like_plain_profiling() {
        let mut plain = FnSource::new(8, 8, truth);
        let expected = profile_traced(
            &mut plain,
            ProfilingAlgorithm::BinaryOptimized,
            &ProfilerConfig::default(),
            &Tracer::disabled(),
        )
        .expect("profiles");
        let mut source = FnSource::new(8, 8, truth);
        let outcome = profile_resilient(
            &mut source,
            ProfilingAlgorithm::BinaryOptimized,
            &ProfilerConfig::default(),
            &RetryPolicy::default(),
            &Tracer::disabled(),
        )
        .expect("profiles");
        assert_eq!(outcome.result, expected, "no faults → identical result");
        assert_eq!(outcome.stats.failures, 0);
        assert_eq!(outcome.stats.retries, 0);
        assert_eq!(outcome.stats.backoff_seconds, 0.0);
        assert_eq!(outcome.quality.worst(), ModelQuality::Interpolated);
        let (measured, _, defaulted) = outcome.quality.counts();
        assert_eq!(measured - 8, outcome.result.measured.len()); // 8 solo anchors
        assert_eq!(defaulted, 0);
    }

    #[test]
    fn transient_failures_are_retried_to_success() {
        // Every odd-numbered call fails; one retry always succeeds.
        let mut source = FlakySource::new(|call, _, _| call % 2 == 1);
        let outcome = profile_resilient(
            &mut source,
            ProfilingAlgorithm::BinaryOptimized,
            &ProfilerConfig::default(),
            &RetryPolicy::default(),
            &Tracer::disabled(),
        )
        .expect("profiles");
        assert!(outcome.stats.failures > 0);
        assert_eq!(outcome.stats.retries, outcome.stats.failures);
        assert!(outcome.stats.backoff_seconds > 0.0);
        assert_eq!(outcome.stats.defaulted_settings, 0);
        assert_eq!(outcome.quality.worst(), ModelQuality::Interpolated);
        // Retried values are the true ones, so the matrix is exact.
        let mut clean = FnSource::new(8, 8, truth);
        let expected = profile_traced(
            &mut clean,
            ProfilingAlgorithm::BinaryOptimized,
            &ProfilerConfig::default(),
            &Tracer::disabled(),
        )
        .expect("profiles");
        assert_eq!(outcome.result.matrix, expected.matrix);
    }

    #[test]
    fn exhausted_settings_default_conservatively() {
        // The (8, 8) corner never measures; everything else is clean.
        let mut source = FlakySource::new(|_, p, n| p == 8 && n == 8);
        let outcome = profile_resilient(
            &mut source,
            ProfilingAlgorithm::BinaryOptimized,
            &ProfilerConfig::default(),
            &RetryPolicy::default(),
            &Tracer::disabled(),
        )
        .expect("profiles despite the dead corner");
        assert_eq!(outcome.stats.defaulted_settings, 1);
        assert_eq!(outcome.quality.at(8, 8), ModelQuality::Defaulted);
        assert_eq!(outcome.quality.worst(), ModelQuality::Defaulted);
        assert!(outcome.quality.defaulted_fraction() > 0.0);
        // The fallback respects monotonicity bounds: it is at least the
        // largest dominated measurement.
        let corner = outcome.result.matrix.at(8, 8);
        assert!(corner >= outcome.result.matrix.at(1, 8) - 1e-9);
    }

    #[test]
    fn mad_rejection_cleans_corrupted_samples() {
        // One sample in five is corrupted by 3×; the median + MAD filter
        // must recover the true value.
        let mut call = 0u64;
        let mut source = FnSource::new(8, 8, move |p, n| {
            call += 1;
            let v = truth(p, n);
            if call % 5 == 0 {
                v * 3.0
            } else {
                v
            }
        });
        let outcome = profile_resilient(
            &mut source,
            ProfilingAlgorithm::BinaryOptimized,
            &ProfilerConfig::default(),
            &RetryPolicy::with_samples(5),
            &Tracer::disabled(),
        )
        .expect("profiles");
        assert!(outcome.stats.rejected_outliers > 0);
        let mut clean = FnSource::new(8, 8, truth);
        let expected = profile_traced(
            &mut clean,
            ProfilingAlgorithm::BinaryOptimized,
            &ProfilerConfig::default(),
            &Tracer::disabled(),
        )
        .expect("profiles");
        let err = outcome
            .result
            .matrix
            .mean_abs_error_pct(&expected.matrix)
            .expect("same shape");
        assert!(
            err < 1.0,
            "outlier rejection keeps the matrix clean: {err}%"
        );
    }

    #[test]
    fn quality_grid_lookup_is_conservative() {
        let grid = QualityGrid {
            n: 2,
            m: 2,
            cells: vec![
                vec![
                    ModelQuality::Measured,
                    ModelQuality::Measured,
                    ModelQuality::Interpolated,
                ],
                vec![
                    ModelQuality::Measured,
                    ModelQuality::Interpolated,
                    ModelQuality::Defaulted,
                ],
            ],
        };
        assert_eq!(grid.at(1, 1), ModelQuality::Measured);
        assert_eq!(grid.at(2, 2), ModelQuality::Defaulted);
        // Out-of-range lookups clamp.
        assert_eq!(grid.at(9, 9), ModelQuality::Defaulted);
        assert_eq!(grid.at(0, 0), ModelQuality::Measured);
        // Fractional lookups take the worst neighbouring cell.
        assert_eq!(grid.at_hom(1.5, 1.5), ModelQuality::Defaulted);
        assert_eq!(grid.at_hom(1.0, 1.0), ModelQuality::Measured);
        assert_eq!(grid.at_hom(0.0, 0.0), ModelQuality::Measured);
        assert_eq!(grid.counts(), (3, 2, 1));
        assert!((grid.defaulted_fraction() - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn quality_grid_round_trips_through_json() {
        let mut source = FlakySource::new(|_, p, n| p == 8 && n == 8);
        let outcome = profile_resilient(
            &mut source,
            ProfilingAlgorithm::BinaryOptimized,
            &ProfilerConfig::default(),
            &RetryPolicy::default(),
            &Tracer::disabled(),
        )
        .expect("profiles");
        let back: QualityGrid =
            icm_json::from_str(&icm_json::to_string(&outcome.quality)).expect("round-trips");
        assert_eq!(back, outcome.quality);
        let stats: ResilienceStats =
            icm_json::from_str(&icm_json::to_string(&outcome.stats)).expect("round-trips");
        assert_eq!(stats, outcome.stats);
    }

    #[test]
    fn retry_events_and_backoff_are_deterministic() {
        let trace = || {
            let (tracer, recorder) = Tracer::recording(4096);
            let mut source = FlakySource::new(|call, _, _| call % 3 == 1);
            let outcome = profile_resilient(
                &mut source,
                ProfilingAlgorithm::BinaryOptimized,
                &ProfilerConfig::default(),
                &RetryPolicy::default(),
                &tracer,
            )
            .expect("profiles");
            (recorder.events(), outcome.stats)
        };
        let (events_a, stats_a) = trace();
        let (events_b, stats_b) = trace();
        assert_eq!(events_a, events_b, "same faults, same trace");
        assert_eq!(stats_a, stats_b);
        let retries = events_a.iter().filter(|e| e.name == "probe_retry").count() as u64;
        assert_eq!(retries, stats_a.retries);
        let retry = events_a
            .iter()
            .find(|e| e.name == "probe_retry")
            .expect("at least one retry");
        assert!(retry.num("backoff_s").expect("field") > 0.0);
        assert!(retry.str("error").expect("field").contains("injected"));
    }

    #[test]
    fn median_handles_even_and_odd() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert!(median(&mut []).is_nan());
    }
}
