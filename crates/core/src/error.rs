use std::error::Error;
use std::fmt;

/// Error type for model construction and prediction.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A curve or matrix was constructed from malformed data.
    InvalidData(String),
    /// The underlying testbed failed to execute a profiling run.
    Testbed(String),
    /// A prediction was requested with a malformed pressure vector.
    BadPressureVector(String),
    /// Profiling produced something unusable (e.g. a non-positive solo
    /// runtime).
    Profiling(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidData(msg) => write!(f, "invalid model data: {msg}"),
            ModelError::Testbed(msg) => write!(f, "testbed failure: {msg}"),
            ModelError::BadPressureVector(msg) => write!(f, "bad pressure vector: {msg}"),
            ModelError::Profiling(msg) => write!(f, "profiling failure: {msg}"),
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let err = ModelError::InvalidData("rows differ in length".into());
        assert!(err.to_string().contains("rows differ"));
        let err = ModelError::Testbed("host down".into());
        assert!(err.to_string().contains("host down"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<ModelError>();
    }

    #[test]
    fn every_variant_has_a_distinct_display_prefix() {
        let variants = [
            ModelError::InvalidData("rows differ".into()),
            ModelError::Testbed("host down".into()),
            ModelError::BadPressureVector("length 3, expected 8".into()),
            ModelError::Profiling("non-positive solo runtime".into()),
        ];
        let expected = [
            "invalid model data: rows differ",
            "testbed failure: host down",
            "bad pressure vector: length 3, expected 8",
            "profiling failure: non-positive solo runtime",
        ];
        let rendered: Vec<String> = variants.iter().map(ModelError::to_string).collect();
        assert_eq!(rendered, expected);
        // Errors travel by value through the resilient retry loop — the
        // clone must stay comparable to the original.
        for v in &variants {
            assert_eq!(v, &v.clone());
        }
    }
}
