//! The assembled interference-aware performance model (§3.4) and its
//! builder.

use icm_rng::Rng;

use crate::curve::SensitivityCurve;
use crate::error::ModelError;
use crate::heterogeneity::{
    select_policy, HomogeneousInterference, MappingPolicy, PolicyEvaluation, DEFAULT_TIE_TOLERANCE,
};
use icm_obs::{Tracer, Value};

use crate::profiling::{profile_traced, ProfileSource, ProfilerConfig, ProfilingAlgorithm};
use crate::propagation::PropagationMatrix;
use crate::score::ReporterCurve;
use crate::stats::mean;
use crate::testbed::Testbed;

/// The complete interference model of one distributed application: the
/// three profiled components of §3.4 —
///
/// 1. its **bubble score** (interference it generates),
/// 2. its **propagation matrix** (sensitivity curves per pressure over
///    interfering-node counts, Fig. 3), and
/// 3. its best **heterogeneity mapping policy** (Table 2).
///
/// Given the per-node pressures an arbitrary placement would expose the
/// application to, [`predict`](InterferenceModel::predict) returns the
/// expected normalized execution time.
///
/// Models serialize with serde so a profiled fleet can be persisted.
#[derive(Debug, Clone, PartialEq)]
pub struct InterferenceModel {
    app: String,
    solo_seconds: f64,
    bubble_score: f64,
    propagation: PropagationMatrix,
    policy: MappingPolicy,
    policy_evaluations: Vec<PolicyEvaluation>,
    tie_tolerance: f64,
    profiling_cost: f64,
    reporter_curve: ReporterCurve,
}

icm_json::impl_json!(struct InterferenceModel {
    app,
    solo_seconds,
    bubble_score,
    propagation,
    policy,
    policy_evaluations,
    tie_tolerance,
    profiling_cost,
    reporter_curve,
});

impl InterferenceModel {
    /// Application name.
    pub fn app(&self) -> &str {
        &self.app
    }

    /// Interference-free runtime in seconds (profiled baseline).
    pub fn solo_seconds(&self) -> f64 {
        self.solo_seconds
    }

    /// The interference intensity this application *generates* (Table 4).
    pub fn bubble_score(&self) -> f64 {
        self.bubble_score
    }

    /// The propagation matrix (Fig. 3 curves).
    pub fn propagation(&self) -> &PropagationMatrix {
        &self.propagation
    }

    /// The selected heterogeneity mapping policy (Table 2).
    pub fn policy(&self) -> MappingPolicy {
        self.policy
    }

    /// Accuracy of every candidate policy on the profiling samples
    /// (Fig. 4); empty if the policy was forced by the caller.
    pub fn policy_evaluations(&self) -> &[PolicyEvaluation] {
        &self.policy_evaluations
    }

    /// Fraction of the `n × m` interference settings that profiling
    /// actually measured (Table 3 cost).
    pub fn profiling_cost(&self) -> f64 {
        self.profiling_cost
    }

    /// The reporter calibration curve used for bubble scoring.
    pub fn reporter_curve(&self) -> &ReporterCurve {
        &self.reporter_curve
    }

    /// Number of hosts the application spans (length predictions expect).
    pub fn hosts(&self) -> usize {
        self.propagation.hosts()
    }

    /// Predicts the normalized execution time under per-node bubble
    /// (or bubble-equivalent) pressures.
    ///
    /// `pressures` must have exactly [`hosts`](Self::hosts) entries, one
    /// per host the application occupies; `0` means no interference on
    /// that host. Entries may be fractional bubble scores of co-runners.
    ///
    /// # Panics
    ///
    /// Panics if the vector length differs from [`hosts`](Self::hosts) or
    /// contains negative/non-finite values; use
    /// [`try_predict`](Self::try_predict) for a fallible variant.
    pub fn predict(&self, pressures: &[f64]) -> f64 {
        self.try_predict(pressures)
            .unwrap_or_else(|err| panic!("{err}"))
    }

    /// Fallible variant of [`predict`](Self::predict).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadPressureVector`] on length mismatch or
    /// invalid entries.
    pub fn try_predict(&self, pressures: &[f64]) -> Result<f64, ModelError> {
        if pressures.len() != self.hosts() {
            return Err(ModelError::BadPressureVector(format!(
                "expected {} per-host pressures for `{}`, got {}",
                self.hosts(),
                self.app,
                pressures.len()
            )));
        }
        for &p in pressures {
            if !p.is_finite() || p < 0.0 {
                return Err(ModelError::BadPressureVector(format!(
                    "pressures must be non-negative and finite, got {p}"
                )));
            }
        }
        let hom = self
            .policy
            .convert_with_tolerance(pressures, self.tie_tolerance);
        Ok(self.propagation.predict(hom.pressure, hom.nodes))
    }

    /// Predicts absolute seconds instead of a normalized time.
    ///
    /// # Errors
    ///
    /// See [`try_predict`](Self::try_predict).
    pub fn predict_seconds(&self, pressures: &[f64]) -> Result<f64, ModelError> {
        Ok(self.try_predict(pressures)? * self.solo_seconds)
    }

    /// The homogeneous `(pressure, nodes)` coordinates this model's
    /// policy maps a heterogeneous vector to (diagnostic; Fig. 5).
    pub fn convert(&self, pressures: &[f64]) -> HomogeneousInterference {
        self.policy
            .convert_with_tolerance(pressures, self.tie_tolerance)
    }
}

/// The naive comparison model of §2.2 / §5.2: heterogeneity is converted
/// with a fixed `N+1 max` policy (the best single static choice), and
/// propagation is assumed *proportional* — interference on `j` of `m`
/// nodes contributes `j/m` of the full-cluster slowdown.
#[derive(Debug, Clone, PartialEq)]
pub struct NaiveModel {
    app: String,
    solo_seconds: f64,
    bubble_score: f64,
    full_pressure_curve: SensitivityCurve,
    hosts: usize,
    tie_tolerance: f64,
}

icm_json::impl_json!(struct NaiveModel {
    app,
    solo_seconds,
    bubble_score,
    full_pressure_curve,
    hosts,
    tie_tolerance,
});

impl NaiveModel {
    /// Derives the naive model from a fully built interference model
    /// (it uses only the all-nodes column of the propagation matrix).
    pub fn from_model(model: &InterferenceModel) -> Self {
        let m = model.hosts();
        let mut values = Vec::with_capacity(model.propagation.max_pressure() + 1);
        values.push(1.0);
        for i in 1..=model.propagation.max_pressure() {
            values.push(model.propagation.at(i, m).max(1.0));
        }
        Self {
            app: model.app().to_owned(),
            solo_seconds: model.solo_seconds(),
            bubble_score: model.bubble_score(),
            full_pressure_curve: SensitivityCurve::new(values)
                .expect("column of a valid matrix forms a valid curve"),
            hosts: m,
            tie_tolerance: model.tie_tolerance,
        }
    }

    /// Application name.
    pub fn app(&self) -> &str {
        &self.app
    }

    /// Interference-free runtime in seconds.
    pub fn solo_seconds(&self) -> f64 {
        self.solo_seconds
    }

    /// Bubble score (shared with the full model).
    pub fn bubble_score(&self) -> f64 {
        self.bubble_score
    }

    /// Number of hosts the application spans.
    pub fn hosts(&self) -> usize {
        self.hosts
    }

    /// Naive prediction of the normalized execution time.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadPressureVector`] on malformed input.
    pub fn try_predict(&self, pressures: &[f64]) -> Result<f64, ModelError> {
        if pressures.len() != self.hosts {
            return Err(ModelError::BadPressureVector(format!(
                "expected {} per-host pressures for `{}`, got {}",
                self.hosts,
                self.app,
                pressures.len()
            )));
        }
        for &p in pressures {
            if !p.is_finite() || p < 0.0 {
                return Err(ModelError::BadPressureVector(format!(
                    "pressures must be non-negative and finite, got {p}"
                )));
            }
        }
        let hom = MappingPolicy::NPlus1Max.convert_with_tolerance(pressures, self.tie_tolerance);
        let full = self.full_pressure_curve.value_at(hom.pressure);
        Ok(1.0 + (full - 1.0) * hom.nodes / self.hosts as f64)
    }

    /// Panicking variant of [`try_predict`](Self::try_predict).
    ///
    /// # Panics
    ///
    /// Panics on malformed input.
    pub fn predict(&self, pressures: &[f64]) -> f64 {
        self.try_predict(pressures)
            .unwrap_or_else(|err| panic!("{err}"))
    }
}

/// Builds an [`InterferenceModel`] by driving profiling runs against a
/// [`Testbed`] — the end-to-end §3.4/§4.1 procedure.
///
/// # Example
///
/// ```no_run
/// use icm_core::model::ModelBuilder;
/// use icm_core::profiling::ProfilingAlgorithm;
/// # fn demo(testbed: &mut dyn icm_core::Testbed) -> Result<(), icm_core::ModelError> {
/// let model = ModelBuilder::new("M.milc")
///     .algorithm(ProfilingAlgorithm::BinaryOptimized)
///     .policy_samples(60)
///     .build(testbed)?;
/// println!("bubble score: {:.1}", model.bubble_score());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ModelBuilder {
    app: String,
    hosts: Option<usize>,
    algorithm: ProfilingAlgorithm,
    config: ProfilerConfig,
    forced_policy: Option<MappingPolicy>,
    policy_samples: usize,
    solo_repeats: usize,
    score_repeats: usize,
    tie_tolerance: f64,
    seed: u64,
    tracer: Tracer,
}

impl ModelBuilder {
    /// Starts building a model for the named application with the paper's
    /// defaults: binary-optimized profiling, 60 policy samples, automatic
    /// policy selection.
    pub fn new(app: impl Into<String>) -> Self {
        Self {
            app: app.into(),
            hosts: None,
            algorithm: ProfilingAlgorithm::BinaryOptimized,
            config: ProfilerConfig::default(),
            forced_policy: None,
            policy_samples: 60,
            solo_repeats: 3,
            score_repeats: 5,
            tie_tolerance: DEFAULT_TIE_TOLERANCE,
            seed: 0xBEEF,
            tracer: Tracer::disabled(),
        }
    }

    /// Attaches a tracer: the build emits phase spans (`solo`,
    /// `reporter_curve`, `bubble_score`, `profile`, `policy`), per-probe
    /// events, and a final `model_built` summary event.
    pub fn tracer(&mut self, tracer: Tracer) -> &mut Self {
        self.tracer = tracer;
        self
    }

    /// Number of hosts the application spans during profiling (default:
    /// the whole cluster).
    pub fn hosts(&mut self, hosts: usize) -> &mut Self {
        self.hosts = Some(hosts);
        self
    }

    /// Profiling algorithm for the propagation matrix.
    pub fn algorithm(&mut self, algorithm: ProfilingAlgorithm) -> &mut Self {
        self.algorithm = algorithm;
        self
    }

    /// Profiler tuning (binary-search epsilon, random seed).
    pub fn profiler_config(&mut self, config: ProfilerConfig) -> &mut Self {
        self.config = config;
        self
    }

    /// Forces a mapping policy instead of selecting one from samples.
    pub fn policy(&mut self, policy: MappingPolicy) -> &mut Self {
        self.forced_policy = Some(policy);
        self
    }

    /// Number of random heterogeneous configurations used for policy
    /// selection (the paper samples 60 on the private cluster, 100 on
    /// EC2).
    pub fn policy_samples(&mut self, samples: usize) -> &mut Self {
        self.policy_samples = samples;
        self
    }

    /// Repeated solo runs to average for the baseline.
    pub fn solo_repeats(&mut self, repeats: usize) -> &mut Self {
        self.solo_repeats = repeats.max(1);
        self
    }

    /// Repeated reporter co-runs to average for the bubble score.
    pub fn score_repeats(&mut self, repeats: usize) -> &mut Self {
        self.score_repeats = repeats.max(1);
        self
    }

    /// Pressure tie tolerance for heterogeneity conversion.
    pub fn tie_tolerance(&mut self, tolerance: f64) -> &mut Self {
        self.tie_tolerance = tolerance;
        self
    }

    /// Seed for the random heterogeneous policy samples.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Runs the full profiling procedure against `testbed`.
    ///
    /// # Errors
    ///
    /// Propagates testbed failures, and returns
    /// [`ModelError::Profiling`] if measured data is unusable (e.g. a
    /// non-positive solo runtime).
    pub fn build(&self, testbed: &mut dyn Testbed) -> Result<InterferenceModel, ModelError> {
        let m = self.hosts.unwrap_or_else(|| testbed.cluster_hosts());
        if m == 0 || m > testbed.cluster_hosts() {
            return Err(ModelError::Profiling(format!(
                "app hosts {m} invalid for a {}-host cluster",
                testbed.cluster_hosts()
            )));
        }
        let n = testbed.max_pressure();

        let build_span = self.tracer.span(
            "model_build",
            &[
                ("app", Value::from(self.app.as_str())),
                ("hosts", Value::from(m)),
            ],
        );

        // 1. Solo baseline.
        let stage = self.tracer.span("solo", &[]);
        let zeros = vec![0.0; m];
        let solo_runs: Vec<f64> = (0..self.solo_repeats)
            .map(|_| testbed.run_app(&self.app, &zeros))
            .collect::<Result<_, _>>()?;
        let solo = mean(&solo_runs);
        if !solo.is_finite() || solo <= 0.0 {
            return Err(ModelError::Profiling(format!(
                "solo runtime of `{}` measured as {solo}",
                self.app
            )));
        }
        stage.end_with(&[("seconds", Value::from(solo))]);

        // 2. Reporter calibration curve (bubble vs reporter).
        let stage = self.tracer.span("reporter_curve", &[]);
        let mut reporter_values = Vec::with_capacity(n + 1);
        for p in 0..=n {
            reporter_values.push(testbed.reporter_slowdown_with_bubble(p as f64)?);
        }
        // The pressure-0 reporter run defines "no slowdown"; normalize the
        // curve to it so measurement noise at the baseline cancels.
        let baseline = reporter_values[0];
        if !baseline.is_finite() || baseline <= 0.0 {
            return Err(ModelError::Profiling(format!(
                "reporter baseline measured as {baseline}"
            )));
        }
        let normalized: Vec<f64> = reporter_values
            .iter()
            .map(|v| (v / baseline).max(1.0))
            .collect();
        let reporter_curve = ReporterCurve::from_slowdowns(normalized)?;
        stage.end_with(&[("baseline", Value::from(baseline))]);

        // 3. Bubble score.
        let stage = self.tracer.span("bubble_score", &[]);
        let score_runs: Vec<f64> = (0..self.score_repeats)
            .map(|_| testbed.reporter_slowdown_with_app(&self.app))
            .collect::<Result<_, _>>()?;
        let bubble_score = reporter_curve.score_for_slowdown(mean(&score_runs) / baseline);
        stage.end_with(&[("score", Value::from(bubble_score))]);

        // 4. Propagation matrix via the selected profiling algorithm.
        let mut source = TestbedSource {
            testbed,
            app: &self.app,
            solo,
            hosts: m,
            max_pressure: n,
        };
        let profiled = profile_traced(&mut source, self.algorithm, &self.config, &self.tracer)?;

        // 5. Heterogeneity policy.
        let stage = self.tracer.span("policy", &[]);
        let (policy, evaluations) = match self.forced_policy {
            Some(policy) => (policy, Vec::new()),
            None => {
                let samples = self.sample_heterogeneous(testbed, m, n, solo)?;
                let evaluations = crate::heterogeneity::evaluate_policies(
                    &profiled.matrix,
                    &samples,
                    self.tie_tolerance,
                );
                let best = select_policy(&profiled.matrix, &samples, self.tie_tolerance);
                (best.policy, evaluations)
            }
        };
        stage.end_with(&[("policy", Value::from(policy.to_string()))]);

        self.tracer.event(
            "model_built",
            &[
                ("app", Value::from(self.app.as_str())),
                ("solo_seconds", Value::from(solo)),
                ("bubble_score", Value::from(bubble_score)),
                ("policy", Value::from(policy.to_string())),
                ("profiling_cost", Value::from(profiled.cost)),
                ("probes", Value::from(profiled.measured.len())),
            ],
        );
        build_span.end();

        Ok(InterferenceModel {
            app: self.app.clone(),
            solo_seconds: solo,
            bubble_score,
            propagation: profiled.matrix,
            policy,
            policy_evaluations: evaluations,
            tie_tolerance: self.tie_tolerance,
            profiling_cost: profiled.cost,
            reporter_curve,
        })
    }

    /// Draws random heterogeneous configurations and measures them — the
    /// §3.3 sampling procedure.
    fn sample_heterogeneous(
        &self,
        testbed: &mut dyn Testbed,
        m: usize,
        n: usize,
        solo: f64,
    ) -> Result<Vec<(Vec<f64>, f64)>, ModelError> {
        let mut rng = Rng::from_seed(self.seed);
        let mut samples = Vec::with_capacity(self.policy_samples);
        for _ in 0..self.policy_samples {
            let mut pressures: Vec<f64>;
            loop {
                pressures = (0..m)
                    .map(|_| f64::from(rng.gen_range(0..=n as u32)))
                    .collect();
                // A configuration with at least two distinct non-zero
                // levels actually exercises heterogeneity.
                let nonzero: Vec<u64> = pressures
                    .iter()
                    .filter(|&&p| p > 0.0)
                    .map(|&p| p as u64)
                    .collect();
                if !nonzero.is_empty() {
                    break;
                }
            }
            let seconds = testbed.run_app(&self.app, &pressures)?;
            samples.push((pressures, seconds / solo));
        }
        Ok(samples)
    }
}

/// Measures only the reporter calibration curve and an application's
/// bubble score, without building a full propagation model — the Table 4
/// measurement in isolation.
///
/// # Errors
///
/// Propagates testbed failures; returns [`ModelError::Profiling`] if the
/// reporter baseline is unusable.
pub fn measure_bubble_score(
    testbed: &mut dyn Testbed,
    app: &str,
    repeats: usize,
) -> Result<f64, ModelError> {
    let n = testbed.max_pressure();
    let mut reporter_values = Vec::with_capacity(n + 1);
    for p in 0..=n {
        reporter_values.push(testbed.reporter_slowdown_with_bubble(p as f64)?);
    }
    let baseline = reporter_values[0];
    if !baseline.is_finite() || baseline <= 0.0 {
        return Err(ModelError::Profiling(format!(
            "reporter baseline measured as {baseline}"
        )));
    }
    let normalized: Vec<f64> = reporter_values
        .iter()
        .map(|v| (v / baseline).max(1.0))
        .collect();
    let curve = ReporterCurve::from_slowdowns(normalized)?;
    let runs: Vec<f64> = (0..repeats.max(1))
        .map(|_| testbed.reporter_slowdown_with_app(app))
        .collect::<Result<_, _>>()?;
    Ok(curve.score_for_slowdown(mean(&runs) / baseline))
}

/// Adapter exposing a [`Testbed`] as a [`ProfileSource`]: "j interfering
/// nodes at pressure i" places the bubbles on the *last* `j` of the app's
/// hosts (biasing toward worker nodes when the first host is a
/// coordinator master; the conversion policies are position-agnostic
/// anyway).
struct TestbedSource<'a> {
    testbed: &'a mut dyn Testbed,
    app: &'a str,
    solo: f64,
    hosts: usize,
    max_pressure: usize,
}

impl ProfileSource for TestbedSource<'_> {
    fn hosts(&self) -> usize {
        self.hosts
    }

    fn max_pressure(&self) -> usize {
        self.max_pressure
    }

    fn measure(&mut self, pressure: usize, nodes: usize) -> Result<f64, ModelError> {
        let mut pressures = vec![0.0; self.hosts];
        for slot in pressures.iter_mut().rev().take(nodes) {
            *slot = pressure as f64;
        }
        let seconds = self.testbed.run_app(self.app, &pressures)?;
        Ok(seconds / self.solo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::mock::MockTestbed;

    fn build_default() -> (InterferenceModel, MockTestbed) {
        let mut tb = MockTestbed::default();
        let model = ModelBuilder::new("mock")
            .policy_samples(24)
            .build(&mut tb)
            .expect("builds");
        (model, tb)
    }

    #[test]
    fn builder_produces_complete_model() {
        let (model, _) = build_default();
        assert_eq!(model.app(), "mock");
        assert!((model.solo_seconds() - 100.0).abs() < 1e-6);
        assert_eq!(model.hosts(), 8);
        assert_eq!(model.propagation().max_pressure(), 8);
        assert!(model.profiling_cost() > 0.0 && model.profiling_cost() <= 1.0);
        assert_eq!(model.policy_evaluations().len(), 4);
    }

    #[test]
    fn bubble_score_recovers_generated_intensity() {
        let (model, tb) = build_default();
        assert!(
            (model.bubble_score() - tb.generated_score).abs() < 0.3,
            "expected ≈{}, got {}",
            tb.generated_score,
            model.bubble_score()
        );
    }

    #[test]
    fn predictions_match_mock_ground_truth() {
        let (model, tb) = build_default();
        for pressures in [
            vec![8.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            vec![4.0, 4.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            vec![6.0, 3.0, 2.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            vec![2.0; 8],
        ] {
            let predicted = model.predict(&pressures);
            let truth = tb.truth(&pressures);
            let err = ((predicted - truth) / truth).abs();
            assert!(
                err < 0.05,
                "pressures {pressures:?}: predicted {predicted}, truth {truth}"
            );
        }
    }

    #[test]
    fn max_coupled_mock_selects_a_max_flavored_policy() {
        let (model, _) = build_default();
        assert!(
            matches!(
                model.policy(),
                MappingPolicy::NMax | MappingPolicy::NPlus1Max | MappingPolicy::AllMax
            ),
            "a coupling-0.9 app must not pick interpolate, got {}",
            model.policy()
        );
    }

    #[test]
    fn mean_coupled_mock_selects_interpolate() {
        let mut tb = MockTestbed {
            coupling: 0.0,
            ..MockTestbed::default()
        };
        let model = ModelBuilder::new("mock")
            .policy_samples(24)
            .build(&mut tb)
            .expect("builds");
        assert_eq!(model.policy(), MappingPolicy::Interpolate);
    }

    #[test]
    fn forced_policy_skips_sampling() {
        let mut tb = MockTestbed::default();
        let calls_before_sampling = {
            let mut probe = MockTestbed::default();
            let _ = ModelBuilder::new("mock")
                .policy(MappingPolicy::AllMax)
                .build(&mut probe)
                .expect("builds");
            probe.calls
        };
        let model = ModelBuilder::new("mock")
            .policy(MappingPolicy::AllMax)
            .build(&mut tb)
            .expect("builds");
        assert_eq!(model.policy(), MappingPolicy::AllMax);
        assert!(model.policy_evaluations().is_empty());
        // Forcing the policy must not run the 24+ sampling runs.
        assert_eq!(tb.calls, calls_before_sampling);
    }

    #[test]
    fn predict_validates_vector_length() {
        let (model, _) = build_default();
        let err = model.try_predict(&[1.0, 2.0]).unwrap_err();
        assert!(matches!(err, ModelError::BadPressureVector(_)));
    }

    #[test]
    fn predict_validates_values() {
        let (model, _) = build_default();
        assert!(model.try_predict(&[-1.0; 8]).is_err());
        assert!(model.try_predict(&[f64::NAN; 8]).is_err());
    }

    #[test]
    fn predict_seconds_scales_by_solo() {
        let (model, _) = build_default();
        let pressures = vec![4.0; 8];
        let normalized = model.predict(&pressures);
        let seconds = model.predict_seconds(&pressures).expect("valid");
        assert!((seconds - normalized * model.solo_seconds()).abs() < 1e-9);
    }

    #[test]
    fn no_interference_predicts_one() {
        let (model, _) = build_default();
        let t = model.predict(&[0.0; 8]);
        assert!((t - 1.0).abs() < 0.02, "got {t}");
    }

    #[test]
    fn naive_model_underestimates_coupled_propagation() {
        // The Fig. 2 motivation: for a barrier-coupled app, interference
        // on one node already causes most of the damage, which the
        // proportional naive model misses badly.
        let (model, tb) = build_default();
        let naive = NaiveModel::from_model(&model);
        let mut one = vec![0.0; 8];
        one[7] = 8.0;
        let truth = tb.truth(&one);
        let naive_pred = naive.predict(&one);
        let full_pred = model.predict(&one);
        assert!(
            naive_pred < truth - 0.2,
            "naive {naive_pred} should badly undershoot truth {truth}"
        );
        assert!(
            (full_pred - truth).abs() < 0.05,
            "full model {full_pred} should track truth {truth}"
        );
    }

    #[test]
    fn naive_model_agrees_at_full_interference() {
        let (model, _) = build_default();
        let naive = NaiveModel::from_model(&model);
        let all = vec![8.0; 8];
        let diff = (naive.predict(&all) - model.predict(&all)).abs();
        assert!(diff < 0.05, "at j=m both models share T[n][m], diff {diff}");
    }

    #[test]
    fn naive_model_validates_input() {
        let (model, _) = build_default();
        let naive = NaiveModel::from_model(&model);
        assert!(naive.try_predict(&[1.0]).is_err());
        assert!(naive.try_predict(&[-1.0; 8]).is_err());
    }

    #[test]
    fn build_rejects_bad_host_count() {
        let mut tb = MockTestbed::default();
        assert!(ModelBuilder::new("mock").hosts(0).build(&mut tb).is_err());
        assert!(ModelBuilder::new("mock").hosts(9).build(&mut tb).is_err());
    }

    #[test]
    fn reduced_host_span_model() {
        let mut tb = MockTestbed::default();
        let model = ModelBuilder::new("mock")
            .hosts(4)
            .policy_samples(12)
            .build(&mut tb)
            .expect("builds");
        assert_eq!(model.hosts(), 4);
        let t = model.predict(&[5.0, 0.0, 0.0, 0.0]);
        assert!(t > 1.0);
    }

    #[test]
    fn serde_round_trip_preserves_behaviour() {
        let (model, _) = build_default();
        let json = icm_json::to_string(&model);
        let back: InterferenceModel = icm_json::from_str(&json).expect("deserialize");
        assert_eq!(model.app(), back.app());
        assert_eq!(model.policy(), back.policy());
        assert_eq!(model.hosts(), back.hosts());
        for pressures in [
            vec![0.0; 8],
            vec![3.0; 8],
            vec![6.0, 2.0, 0.0, 0.0, 1.0, 0.0, 0.0, 4.0],
        ] {
            let a = model.predict(&pressures);
            let b = back.predict(&pressures);
            assert!(
                (a - b).abs() < 1e-9,
                "round-tripped model diverged: {a} vs {b}"
            );
        }
    }

    #[test]
    fn standalone_score_measurement_matches_full_build() {
        let mut tb = MockTestbed::default();
        let score = measure_bubble_score(&mut tb, "mock", 3).expect("measures");
        let (model, _) = build_default();
        assert!(
            (score - model.bubble_score()).abs() < 0.1,
            "standalone {score} vs model {}",
            model.bubble_score()
        );
    }

    #[test]
    fn seed_controls_policy_sampling() {
        let mut tb1 = MockTestbed::default();
        let m1 = ModelBuilder::new("mock")
            .policy_samples(10)
            .seed(1)
            .build(&mut tb1)
            .expect("builds");
        let mut tb2 = MockTestbed::default();
        let m2 = ModelBuilder::new("mock")
            .policy_samples(10)
            .seed(1)
            .build(&mut tb2)
            .expect("builds");
        assert_eq!(m1, m2, "same seed, same model");
    }
}
