//! Property-based tests of the model's core invariants.

use icm_core::{
    combine_scores, profile, FnSource, MappingPolicy, ProfilerConfig, ProfilingAlgorithm,
    PropagationMatrix, SensitivityCurve,
};
use proptest::prelude::*;

/// Monotone-ish normalized-time rows for a synthetic matrix.
fn arb_matrix() -> impl Strategy<Value = PropagationMatrix> {
    (1usize..6, 2usize..9).prop_flat_map(|(pressures, hosts)| {
        prop::collection::vec(prop::collection::vec(0.0..0.5f64, hosts), pressures).prop_map(
            move |increments| {
                let rows: Vec<Vec<f64>> = increments
                    .into_iter()
                    .enumerate()
                    .map(|(i, incs)| {
                        let mut row = vec![1.0];
                        let mut value = 1.0 + i as f64 * 0.05;
                        // first step from 1.0 to the row's level
                        for (j, inc) in incs.into_iter().enumerate() {
                            if j == 0 {
                                row.push(value);
                            } else {
                                value += inc;
                                row.push(value);
                            }
                        }
                        row
                    })
                    .collect();
                PropagationMatrix::new(rows).expect("constructed rows are valid")
            },
        )
    })
}

fn arb_pressures(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0..8.0f64, 1..=max_len)
}

proptest! {
    #[test]
    fn matrix_prediction_stays_within_cell_range(
        matrix in arb_matrix(),
        pressure in -2.0..12.0f64,
        nodes in -2.0..12.0f64,
    ) {
        let predicted = matrix.predict(pressure, nodes);
        let mut lo = 1.0f64;
        let mut hi = 1.0f64;
        for i in 1..=matrix.max_pressure() {
            for j in 0..=matrix.hosts() {
                lo = lo.min(matrix.at(i, j));
                hi = hi.max(matrix.at(i, j));
            }
        }
        prop_assert!(predicted >= lo - 1e-9 && predicted <= hi + 1e-9,
            "prediction {predicted} outside [{lo}, {hi}]");
    }

    #[test]
    fn matrix_prediction_zero_nodes_is_one(matrix in arb_matrix(), pressure in 0.0..10.0f64) {
        prop_assert!((matrix.predict(pressure, 0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn policy_conversions_preserve_bounds(pressures in arb_pressures(8)) {
        let max = pressures.iter().cloned().fold(0.0f64, f64::max);
        for policy in MappingPolicy::ALL {
            let hom = policy.convert(&pressures);
            prop_assert!(hom.pressure >= 0.0 && hom.pressure <= max + 1e-12,
                "{policy}: pressure {} out of [0, {max}]", hom.pressure);
            prop_assert!(hom.nodes >= 0.0 && hom.nodes <= pressures.len() as f64,
                "{policy}: nodes {} out of range", hom.nodes);
            if max == 0.0 {
                prop_assert_eq!(hom.nodes, 0.0);
            }
        }
    }

    #[test]
    fn policy_severity_ordering_holds(pressures in arb_pressures(8)) {
        let n = MappingPolicy::NMax.convert(&pressures);
        let n1 = MappingPolicy::NPlus1Max.convert(&pressures);
        let all = MappingPolicy::AllMax.convert(&pressures);
        prop_assert!(n.nodes <= n1.nodes + 1e-12);
        prop_assert!(n1.nodes <= all.nodes + 1e-12);
        prop_assert_eq!(n.pressure, all.pressure);
    }

    #[test]
    fn policy_conversion_is_permutation_invariant(pressures in arb_pressures(8)) {
        let mut sorted = pressures.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        for policy in MappingPolicy::ALL {
            let a = policy.convert(&pressures);
            let b = policy.convert(&sorted);
            prop_assert!((a.pressure - b.pressure).abs() < 1e-12);
            prop_assert!((a.nodes - b.nodes).abs() < 1e-12);
        }
    }

    #[test]
    fn curve_inversion_is_a_left_inverse_on_the_envelope(
        raw in prop::collection::vec(0.0..0.4f64, 2..10),
        probe in 0.0..1.0f64,
    ) {
        // Build a strictly increasing curve.
        let mut values = vec![1.0];
        for r in &raw {
            values.push(values.last().expect("non-empty") + r + 0.01);
        }
        let curve = SensitivityCurve::new(values).expect("valid");
        let p = probe * curve.max_pressure() as f64;
        let inverted = curve.invert(curve.value_at(p));
        prop_assert!((inverted - p).abs() < 1e-6, "p={p}, inverted={inverted}");
    }

    #[test]
    fn every_algorithm_profiles_any_monotone_source(
        severity in 0.01..0.4f64,
        shape in 0.2..2.0f64,
        seed in any::<u64>(),
    ) {
        for algorithm in [
            ProfilingAlgorithm::BinaryBrute,
            ProfilingAlgorithm::BinaryOptimized,
            ProfilingAlgorithm::random30(),
            ProfilingAlgorithm::random50(),
            ProfilingAlgorithm::Full,
        ] {
            let mut source = FnSource::new(8, 8, |i, j| {
                1.0 + severity * i as f64 * (j as f64 / 8.0).powf(shape)
            });
            let result = profile(
                &mut source,
                algorithm,
                &ProfilerConfig { epsilon: 0.04, seed },
            ).expect("profiles");
            prop_assert!(result.cost > 0.0 && result.cost <= 1.0);
            prop_assert_eq!(result.matrix.max_pressure(), 8);
            prop_assert_eq!(result.matrix.hosts(), 8);
            // The reconstruction respects the source's corner exactly.
            let truth_corner = 1.0 + severity * 8.0;
            prop_assert!((result.matrix.at(8, 8) - truth_corner).abs() < 1e-9);
        }
    }

    #[test]
    fn combine_scores_is_commutative_and_bounded(
        a in 0.0..8.0f64,
        b in 0.0..8.0f64,
    ) {
        let ab = combine_scores(&[a, b], 0.0);
        let ba = combine_scores(&[b, a], 0.0);
        prop_assert!((ab - ba).abs() < 1e-12);
        let hi = a.max(b);
        if a > 0.0 && b > 0.0 {
            prop_assert!(ab >= hi - 1e-12, "combined below max");
            prop_assert!(ab <= hi + 1.0 + 1e-12, "combined above max+1");
        }
    }
}
