//! Property-style tests of the model's core invariants, driven by seeded
//! deterministic loops over `icm-rng` (vendored; no external
//! property-testing framework). Each test replays a fixed pseudo-random
//! case list, so a failure reproduces exactly and prints its case index.

use icm_core::{
    combine_scores, profile, FnSource, MappingPolicy, ProfilerConfig, ProfilingAlgorithm,
    PropagationMatrix, SensitivityCurve,
};
use icm_rng::Rng;

/// Cases per property; the old proptest default was 256.
const CASES: usize = 256;

/// Monotone-ish normalized-time rows for a synthetic matrix.
fn random_matrix(rng: &mut Rng) -> PropagationMatrix {
    let pressures = rng.gen_range(1..6usize);
    let hosts = rng.gen_range(2..9usize);
    let rows: Vec<Vec<f64>> = (0..pressures)
        .map(|i| {
            let mut row = vec![1.0];
            let mut value = 1.0 + i as f64 * 0.05;
            // first step from 1.0 to the row's level
            for j in 0..hosts {
                if j == 0 {
                    row.push(value);
                } else {
                    value += rng.gen_f64_range(0.0, 0.5);
                    row.push(value);
                }
            }
            row
        })
        .collect();
    PropagationMatrix::new(rows).expect("constructed rows are valid")
}

fn random_pressures(rng: &mut Rng, max_len: usize) -> Vec<f64> {
    let len = rng.gen_range(1..=max_len);
    (0..len).map(|_| rng.gen_f64_range(0.0, 8.0)).collect()
}

#[test]
fn matrix_prediction_stays_within_cell_range() {
    let mut rng = Rng::from_seed(0xC0_0001);
    for case in 0..CASES {
        let matrix = random_matrix(&mut rng);
        let pressure = rng.gen_f64_range(-2.0, 12.0);
        let nodes = rng.gen_f64_range(-2.0, 12.0);
        let predicted = matrix.predict(pressure, nodes);
        let mut lo = 1.0f64;
        let mut hi = 1.0f64;
        for i in 1..=matrix.max_pressure() {
            for j in 0..=matrix.hosts() {
                lo = lo.min(matrix.at(i, j));
                hi = hi.max(matrix.at(i, j));
            }
        }
        assert!(
            predicted >= lo - 1e-9 && predicted <= hi + 1e-9,
            "case {case}: prediction {predicted} outside [{lo}, {hi}]"
        );
    }
}

#[test]
fn matrix_prediction_zero_nodes_is_one() {
    let mut rng = Rng::from_seed(0xC0_0002);
    for case in 0..CASES {
        let matrix = random_matrix(&mut rng);
        let pressure = rng.gen_f64_range(0.0, 10.0);
        assert!(
            (matrix.predict(pressure, 0.0) - 1.0).abs() < 1e-12,
            "case {case}: zero interfering nodes must predict 1.0"
        );
    }
}

#[test]
fn policy_conversions_preserve_bounds() {
    let mut rng = Rng::from_seed(0xC0_0003);
    for case in 0..CASES {
        let pressures = random_pressures(&mut rng, 8);
        let max = pressures.iter().cloned().fold(0.0f64, f64::max);
        for policy in MappingPolicy::ALL {
            let hom = policy.convert(&pressures);
            assert!(
                hom.pressure >= 0.0 && hom.pressure <= max + 1e-12,
                "case {case}: {policy}: pressure {} out of [0, {max}]",
                hom.pressure
            );
            assert!(
                hom.nodes >= 0.0 && hom.nodes <= pressures.len() as f64,
                "case {case}: {policy}: nodes {} out of range",
                hom.nodes
            );
            if max == 0.0 {
                assert_eq!(hom.nodes, 0.0, "case {case}");
            }
        }
    }
}

#[test]
fn policy_severity_ordering_holds() {
    let mut rng = Rng::from_seed(0xC0_0004);
    for case in 0..CASES {
        let pressures = random_pressures(&mut rng, 8);
        let n = MappingPolicy::NMax.convert(&pressures);
        let n1 = MappingPolicy::NPlus1Max.convert(&pressures);
        let all = MappingPolicy::AllMax.convert(&pressures);
        assert!(n.nodes <= n1.nodes + 1e-12, "case {case}");
        assert!(n1.nodes <= all.nodes + 1e-12, "case {case}");
        assert_eq!(n.pressure, all.pressure, "case {case}");
    }
}

#[test]
fn policy_conversion_is_permutation_invariant() {
    let mut rng = Rng::from_seed(0xC0_0005);
    for case in 0..CASES {
        let pressures = random_pressures(&mut rng, 8);
        let mut sorted = pressures.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        for policy in MappingPolicy::ALL {
            let a = policy.convert(&pressures);
            let b = policy.convert(&sorted);
            assert!((a.pressure - b.pressure).abs() < 1e-12, "case {case}");
            assert!((a.nodes - b.nodes).abs() < 1e-12, "case {case}");
        }
    }
}

#[test]
fn curve_inversion_is_a_left_inverse_on_the_envelope() {
    let mut rng = Rng::from_seed(0xC0_0006);
    for case in 0..CASES {
        // Build a strictly increasing curve.
        let steps = rng.gen_range(2..10usize);
        let mut values = vec![1.0];
        for _ in 0..steps {
            let r = rng.gen_f64_range(0.0, 0.4);
            values.push(values.last().expect("non-empty") + r + 0.01);
        }
        let curve = SensitivityCurve::new(values).expect("valid");
        let p = rng.gen_f64() * curve.max_pressure() as f64;
        let inverted = curve.invert(curve.value_at(p));
        assert!(
            (inverted - p).abs() < 1e-6,
            "case {case}: p={p}, inverted={inverted}"
        );
    }
}

#[test]
fn every_algorithm_profiles_any_monotone_source() {
    let mut rng = Rng::from_seed(0xC0_0007);
    // Profiling is the expensive path; 64 cases × 5 algorithms is plenty.
    for case in 0..CASES / 4 {
        let severity = rng.gen_f64_range(0.01, 0.4);
        let shape = rng.gen_f64_range(0.2, 2.0);
        let seed = rng.next_u64();
        for algorithm in [
            ProfilingAlgorithm::BinaryBrute,
            ProfilingAlgorithm::BinaryOptimized,
            ProfilingAlgorithm::random30(),
            ProfilingAlgorithm::random50(),
            ProfilingAlgorithm::Full,
        ] {
            let mut source = FnSource::new(8, 8, |i, j| {
                1.0 + severity * i as f64 * (j as f64 / 8.0).powf(shape)
            });
            let result = profile(
                &mut source,
                algorithm,
                &ProfilerConfig {
                    epsilon: 0.04,
                    seed,
                },
            )
            .expect("profiles");
            assert!(
                result.cost > 0.0 && result.cost <= 1.0,
                "case {case}: cost {} out of (0, 1]",
                result.cost
            );
            assert_eq!(result.matrix.max_pressure(), 8, "case {case}");
            assert_eq!(result.matrix.hosts(), 8, "case {case}");
            // The reconstruction respects the source's corner exactly.
            let truth_corner = 1.0 + severity * 8.0;
            assert!(
                (result.matrix.at(8, 8) - truth_corner).abs() < 1e-9,
                "case {case}: corner mismatch"
            );
        }
    }
}

#[test]
fn combine_scores_is_commutative_and_bounded() {
    let mut rng = Rng::from_seed(0xC0_0008);
    for case in 0..CASES {
        let a = rng.gen_f64_range(0.0, 8.0);
        let b = rng.gen_f64_range(0.0, 8.0);
        let ab = combine_scores(&[a, b], 0.0);
        let ba = combine_scores(&[b, a], 0.0);
        assert!((ab - ba).abs() < 1e-12, "case {case}: not commutative");
        let hi = a.max(b);
        if a > 0.0 && b > 0.0 {
            assert!(ab >= hi - 1e-12, "case {case}: combined below max");
            assert!(ab <= hi + 1.0 + 1e-12, "case {case}: combined above max+1");
        }
    }
}
