//! Strict recursive-descent JSON parser.
//!
//! Accepts exactly the JSON grammar (RFC 8259) with three deliberate
//! tightenings that matter for a scientific store format:
//!
//! * duplicate object keys are an error (silently keeping one side hides
//!   corrupted or hand-edited model files);
//! * `NaN` / `Infinity` tokens are rejected (they are not JSON, and a
//!   model containing them is meaningless);
//! * nesting deeper than [`crate::MAX_DEPTH`] is an error, so corrupt
//!   input cannot overflow the stack.

use crate::{Json, JsonError, MAX_DEPTH};

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns [`JsonError`] (with byte offset) on any syntax violation,
/// duplicate object key, or trailing non-whitespace content.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError::msg(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal (expected `{word}`)")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than MAX_DEPTH"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::String),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.err(&format!("duplicate object key `{key}`")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes in one go.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is valid UTF-8 (it is a &str) and we only
                // stopped on ASCII boundaries, so the slice is valid.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonError> {
        let c = self.peek().ok_or_else(|| self.err("truncated escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'b' => '\u{08}',
            b'f' => '\u{0C}',
            b'u' => return self.unicode_escape(),
            _ => return Err(self.err("invalid escape character")),
        })
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let nibble = match d {
                b'0'..=b'9' => u32::from(d - b'0'),
                b'a'..=b'f' => u32::from(d - b'a') + 10,
                b'A'..=b'F' => u32::from(d - b'A') + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            code = code * 16 + nibble;
            self.pos += 1;
        }
        Ok(code)
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let first = self.hex4()?;
        // Surrogate pair handling.
        if (0xD800..0xDC00).contains(&first) {
            if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                self.pos += 2;
                let second = self.hex4()?;
                if !(0xDC00..0xE000).contains(&second) {
                    return Err(self.err("invalid low surrogate"));
                }
                let combined = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                return char::from_u32(combined).ok_or_else(|| self.err("invalid surrogate pair"));
            }
            return Err(self.err("lone high surrogate"));
        }
        if (0xDC00..0xE000).contains(&first) {
            return Err(self.err("lone low surrogate"));
        }
        char::from_u32(first).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` or non-zero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number (missing digits)")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("invalid number (missing fraction digits)"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("invalid number (missing exponent digits)"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let slice = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII by construction");
        let n: f64 = slice
            .parse()
            .map_err(|_| self.err("number out of representable range"))?;
        if !n.is_finite() {
            // e.g. `1e999` overflows to infinity — not a usable model value.
            return Err(self.err("number overflows f64"));
        }
        Ok(Json::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("-12.5e-1").unwrap(), Json::Number(-1.25));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::String("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": null}], "c": ""}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Json::String(String::new())));
        let a = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(a[0], Json::Number(1.0));
        assert_eq!(a[1].get("b"), Some(&Json::Null));
    }

    #[test]
    fn rejects_duplicate_keys() {
        let err = parse(r#"{"a":1,"a":2}"#).unwrap_err();
        assert!(err.to_string().contains("duplicate object key"), "{err}");
    }

    #[test]
    fn rejects_nan_and_infinity_tokens() {
        for bad in ["NaN", "nan", "Infinity", "-Infinity", "inf"] {
            assert!(parse(bad).is_err(), "{bad} must not parse");
        }
        assert!(parse("1e999").is_err(), "overflow to inf must not parse");
    }

    #[test]
    fn rejects_truncated_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"abc",
            r#"{"a"}"#,
            r#"{"a":}"#,
            "tru",
            "nul",
            "-",
            "1.",
            "1e",
            "\"\\u12\"",
            "\"\\ud800\"",
        ] {
            assert!(parse(bad).is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn rejects_trailing_garbage_and_json5isms() {
        for bad in [
            "1 2",
            "{} []",
            "[1,]",
            "{\"a\":1,}",
            "'single'",
            "01",
            "+1",
            ".5",
        ] {
            assert!(parse(bad).is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn rejects_overdeep_nesting() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        let err = parse(&deep).unwrap_err();
        assert!(err.to_string().contains("MAX_DEPTH"), "{err}");
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            parse("\"\\ud83e\\udd80\"").unwrap(),
            Json::String("🦀".into())
        );
    }

    #[test]
    fn unicode_passthrough() {
        assert_eq!(parse("\"héllo\"").unwrap(), Json::String("héllo".into()));
    }
}
