//! Crash-safe file persistence: atomic writes and a generational,
//! checksummed snapshot store.
//!
//! Two layers:
//!
//! * [`atomic_write`] — the tmp-write + fsync + rename idiom every
//!   durable writer in the workspace shares (model stores, results
//!   documents, world snapshots). A reader never observes a torn file:
//!   it sees either the old bytes or the new bytes.
//! * [`SnapshotStore`] — a directory of numbered snapshot generations
//!   (`gen-000042.icmsnap`), each framed with a header carrying a
//!   format version, an FNV-1a 64 checksum, and the payload length.
//!   Loading walks generations newest-first and falls back to the
//!   previous good generation when the newest is torn or corrupt, so a
//!   crash mid-checkpoint (or a flipped bit on disk) costs at most one
//!   checkpoint interval — never the whole run.
//!
//! The framing is deliberately independent of the payload format: the
//! store checksums opaque bytes, and callers layer their own versioned
//! JSON payload (e.g. `icm-manager`'s `WorldSnapshot`) on top.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Writes `bytes` to `path` atomically: write a sibling temp file,
/// fsync it, then rename over the destination.
///
/// On POSIX filesystems the rename is atomic, so a concurrent reader
/// (or a reader after a crash) sees either the complete old contents or
/// the complete new contents, never a prefix. The containing directory
/// is fsynced best-effort afterwards so the rename itself is durable.
///
/// The temp file lives next to the destination (same directory, suffix
/// `.tmp`) so the rename cannot cross a filesystem boundary.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let tmp: PathBuf = {
        let mut name = path.file_name().unwrap_or_default().to_os_string();
        name.push(".tmp");
        match dir {
            Some(d) => d.join(name),
            None => PathBuf::from(name),
        }
    };
    let mut file = File::create(&tmp)?;
    file.write_all(bytes)?;
    file.sync_all()?;
    drop(file);
    fs::rename(&tmp, path)?;
    // Durability of the rename needs a directory fsync; not all
    // platforms allow opening a directory for sync, so best-effort.
    if let Some(d) = dir {
        if let Ok(dirf) = File::open(d) {
            let _ = dirf.sync_all();
        }
    }
    Ok(())
}

/// FNV-1a 64-bit checksum of `bytes`.
///
/// Not cryptographic — it guards against torn writes and bit rot, not
/// adversaries. Chosen because it is tiny, dependency-free, and has no
/// degenerate all-zero fixed point for non-empty input.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Store framing version (the header's `v1`). Independent of any
/// payload version the caller embeds.
pub const STORE_VERSION: u64 = 1;

const SNAP_EXT: &str = "icmsnap";
const HEADER_MAGIC: &str = "icmsnap";

/// Why a single snapshot generation failed to load.
///
/// `SnapshotStore::load_latest` treats every variant except plain I/O
/// trouble as "this generation is damaged, try the previous one".
#[derive(Debug, Clone, PartialEq)]
pub enum LoadError {
    /// The file could not be read at all.
    Io(String),
    /// The first line is not a valid `icmsnap` header.
    BadHeader(String),
    /// The store framing version is newer than this build understands.
    UnknownVersion(u64),
    /// The payload is shorter or longer than the header promised
    /// (classic torn write).
    LengthMismatch {
        /// Byte count the header promised.
        expected: usize,
        /// Byte count actually present.
        got: usize,
    },
    /// The payload bytes do not hash to the header's checksum.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the bytes on disk.
        got: u64,
    },
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "snapshot io error: {e}"),
            LoadError::BadHeader(e) => write!(f, "bad snapshot header: {e}"),
            LoadError::UnknownVersion(v) => {
                write!(f, "unknown snapshot store version {v}")
            }
            LoadError::LengthMismatch { expected, got } => write!(
                f,
                "torn snapshot: header promised {expected} payload bytes, found {got}"
            ),
            LoadError::ChecksumMismatch { expected, got } => write!(
                f,
                "corrupt snapshot: checksum {got:016x} != recorded {expected:016x}"
            ),
        }
    }
}

impl std::error::Error for LoadError {}

/// Why `SnapshotStore::load_latest` could not produce any payload.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// The store directory could not be read.
    Io(String),
    /// Generations exist but every single one failed to load. Carries
    /// the per-generation failures, newest first.
    NoneValid(Vec<(u64, LoadError)>),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "snapshot store io error: {e}"),
            StoreError::NoneValid(tried) => {
                write!(f, "no valid snapshot generation (tried {}):", tried.len())?;
                for (generation, err) in tried {
                    write!(f, " gen {generation}: {err};")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// A directory of numbered, checksummed snapshot generations.
///
/// Writes are atomic ([`atomic_write`]); reads verify the checksum and
/// fall back to older generations on damage. Generation numbers only
/// grow, so "latest" is simply the highest number present.
#[derive(Debug, Clone)]
pub struct SnapshotStore {
    dir: PathBuf,
}

impl SnapshotStore {
    /// Opens (creating if needed) a snapshot store rooted at `dir`.
    pub fn open(dir: &Path) -> io::Result<SnapshotStore> {
        fs::create_dir_all(dir)?;
        Ok(SnapshotStore {
            dir: dir.to_path_buf(),
        })
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_of(&self, generation: u64) -> PathBuf {
        self.dir.join(format!("gen-{generation:06}.{SNAP_EXT}"))
    }

    /// Generation numbers currently on disk, ascending.
    pub fn generations(&self) -> io::Result<Vec<u64>> {
        let mut generations = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(stem) = name
                .strip_prefix("gen-")
                .and_then(|rest| rest.strip_suffix(&format!(".{SNAP_EXT}")))
            else {
                continue;
            };
            if let Ok(generation) = stem.parse::<u64>() {
                generations.push(generation);
            }
        }
        generations.sort_unstable();
        Ok(generations)
    }

    /// Persists `payload` as a new generation and returns its number.
    pub fn save(&self, payload: &[u8]) -> io::Result<u64> {
        let generation = self.generations()?.last().copied().unwrap_or(0) + 1;
        let mut framed = format!(
            "{HEADER_MAGIC} v{STORE_VERSION} {checksum:016x} {len}\n",
            checksum = fnv1a64(payload),
            len = payload.len()
        )
        .into_bytes();
        framed.extend_from_slice(payload);
        atomic_write(&self.path_of(generation), &framed)?;
        Ok(generation)
    }

    /// Loads one specific generation, verifying framing and checksum.
    pub fn load(&self, generation: u64) -> Result<Vec<u8>, LoadError> {
        let mut bytes = Vec::new();
        File::open(self.path_of(generation))
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|e| LoadError::Io(e.to_string()))?;
        let newline = bytes
            .iter()
            .position(|&b| b == b'\n')
            .ok_or_else(|| LoadError::BadHeader("missing header line".into()))?;
        let header = std::str::from_utf8(&bytes[..newline])
            .map_err(|_| LoadError::BadHeader("header is not utf-8".into()))?;
        let fields: Vec<&str> = header.split(' ').collect();
        if fields.len() != 4 || fields[0] != HEADER_MAGIC {
            return Err(LoadError::BadHeader(format!("malformed header {header:?}")));
        }
        let version: u64 = fields[1]
            .strip_prefix('v')
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| LoadError::BadHeader(format!("bad version field {:?}", fields[1])))?;
        if version != STORE_VERSION {
            return Err(LoadError::UnknownVersion(version));
        }
        let expected_checksum = u64::from_str_radix(fields[2], 16)
            .map_err(|_| LoadError::BadHeader(format!("bad checksum field {:?}", fields[2])))?;
        let expected_len: usize = fields[3]
            .parse()
            .map_err(|_| LoadError::BadHeader(format!("bad length field {:?}", fields[3])))?;
        let payload = &bytes[newline + 1..];
        if payload.len() != expected_len {
            return Err(LoadError::LengthMismatch {
                expected: expected_len,
                got: payload.len(),
            });
        }
        let got_checksum = fnv1a64(payload);
        if got_checksum != expected_checksum {
            return Err(LoadError::ChecksumMismatch {
                expected: expected_checksum,
                got: got_checksum,
            });
        }
        Ok(payload.to_vec())
    }

    /// Deletes old generations, keeping the newest `keep_last` plus —
    /// always — the newest generation that actually loads.
    ///
    /// Periodic checkpointing would otherwise grow the store without
    /// bound. The extra guarantee matters when the newest files are torn
    /// or corrupt: a prune that only counted filenames could delete the
    /// one generation [`SnapshotStore::load_latest`] would have fallen
    /// back to. Unparseable (non-`gen-*`) files are never touched.
    ///
    /// Returns the generation numbers removed, ascending. A
    /// `keep_last` of zero behaves like one: the store never prunes
    /// itself empty while a loadable generation exists.
    pub fn prune(&self, keep_last: usize) -> io::Result<Vec<u64>> {
        let generations = self.generations()?;
        let keep_last = keep_last.max(1);
        if generations.len() <= keep_last {
            return Ok(Vec::new());
        }
        let newest_loadable = generations
            .iter()
            .rev()
            .copied()
            .find(|&generation| self.load(generation).is_ok());
        let cutoff = generations[generations.len() - keep_last];
        let mut removed = Vec::new();
        for &generation in &generations {
            if generation >= cutoff || Some(generation) == newest_loadable {
                continue;
            }
            fs::remove_file(self.path_of(generation))?;
            removed.push(generation);
        }
        Ok(removed)
    }

    /// Loads the newest generation that verifies, falling back through
    /// older ones when the newest is torn or corrupt.
    ///
    /// Returns `Ok(None)` for an empty store, and `Err(NoneValid)` —
    /// with every per-generation failure — only when generations exist
    /// but none load.
    pub fn load_latest(&self) -> Result<Option<(u64, Vec<u8>)>, StoreError> {
        let generations = self
            .generations()
            .map_err(|e| StoreError::Io(e.to_string()))?;
        let mut failures = Vec::new();
        for &generation in generations.iter().rev() {
            match self.load(generation) {
                Ok(payload) => return Ok(Some((generation, payload))),
                Err(err) => failures.push((generation, err)),
            }
        }
        if failures.is_empty() {
            Ok(None)
        } else {
            Err(StoreError::NoneValid(failures))
        }
    }
}

/// Appends `bytes` to `path`, creating it if absent. The counterpart to
/// [`atomic_write`] for growing logs (JSONL traces on resume).
pub fn append(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut file = OpenOptions::new().create(true).append(true).open(path)?;
    file.write_all(bytes)?;
    file.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("icm-json-fs-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_replaces_contents() {
        let dir = tmpdir("aw");
        let path = dir.join("doc.json");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second, longer").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second, longer");
        assert!(
            !dir.join("doc.json.tmp").exists(),
            "temp file must not linger after rename"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn save_load_round_trips_and_generations_grow() {
        let dir = tmpdir("gen");
        let store = SnapshotStore::open(&dir).unwrap();
        assert_eq!(store.load_latest().unwrap(), None);
        assert_eq!(store.save(b"one").unwrap(), 1);
        assert_eq!(store.save(b"two").unwrap(), 2);
        assert_eq!(store.generations().unwrap(), vec![1, 2]);
        assert_eq!(store.load(1).unwrap(), b"one");
        let (generation, payload) = store.load_latest().unwrap().unwrap();
        assert_eq!((generation, payload.as_slice()), (2, b"two".as_slice()));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_newest_falls_back_to_previous_generation() {
        let dir = tmpdir("torn");
        let store = SnapshotStore::open(&dir).unwrap();
        store.save(b"good payload").unwrap();
        store.save(b"newer payload").unwrap();
        // Simulate a torn write: chop the newest file mid-payload.
        let newest = dir.join("gen-000002.icmsnap");
        let full = fs::read(&newest).unwrap();
        fs::write(&newest, &full[..full.len() - 4]).unwrap();
        assert!(matches!(
            store.load(2),
            Err(LoadError::LengthMismatch { .. })
        ));
        let (generation, payload) = store.load_latest().unwrap().unwrap();
        assert_eq!(
            (generation, payload.as_slice()),
            (1, b"good payload".as_slice())
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flipped_byte_fails_checksum_and_falls_back() {
        let dir = tmpdir("flip");
        let store = SnapshotStore::open(&dir).unwrap();
        store.save(b"generation one").unwrap();
        store.save(b"generation two").unwrap();
        let newest = dir.join("gen-000002.icmsnap");
        let mut bytes = fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40; // flip one bit inside the payload
        fs::write(&newest, &bytes).unwrap();
        assert!(matches!(
            store.load(2),
            Err(LoadError::ChecksumMismatch { .. })
        ));
        let (generation, _) = store.load_latest().unwrap().unwrap();
        assert_eq!(generation, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_store_version_is_rejected() {
        let dir = tmpdir("ver");
        let store = SnapshotStore::open(&dir).unwrap();
        store.save(b"payload").unwrap();
        let path = dir.join("gen-000001.icmsnap");
        let text = String::from_utf8(fs::read(&path).unwrap()).unwrap();
        fs::write(&path, text.replacen("icmsnap v1 ", "icmsnap v9 ", 1)).unwrap();
        assert_eq!(store.load(1), Err(LoadError::UnknownVersion(9)));
        assert!(matches!(store.load_latest(), Err(StoreError::NoneValid(_))));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_generation_corrupt_reports_all_failures() {
        let dir = tmpdir("all-bad");
        let store = SnapshotStore::open(&dir).unwrap();
        store.save(b"alpha").unwrap();
        store.save(b"beta").unwrap();
        for generation in [1u64, 2] {
            fs::write(dir.join(format!("gen-{generation:06}.icmsnap")), b"garbage").unwrap();
        }
        match store.load_latest() {
            Err(StoreError::NoneValid(tried)) => {
                assert_eq!(tried.len(), 2);
                assert_eq!(tried[0].0, 2, "failures reported newest first");
            }
            other => panic!("expected NoneValid, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_bounds_the_store_and_keeps_the_newest() {
        let dir = tmpdir("prune");
        let store = SnapshotStore::open(&dir).unwrap();
        for payload in [b"g1", b"g2", b"g3", b"g4", b"g5"] {
            store.save(payload).unwrap();
        }
        let removed = store.prune(2).unwrap();
        assert_eq!(removed, vec![1, 2, 3]);
        assert_eq!(store.generations().unwrap(), vec![4, 5]);
        let (generation, payload) = store.load_latest().unwrap().unwrap();
        assert_eq!((generation, payload.as_slice()), (5, b"g5".as_slice()));
        // Pruning again is a no-op.
        assert!(store.prune(2).unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_never_deletes_the_newest_loadable_generation() {
        let dir = tmpdir("prune-loadable");
        let store = SnapshotStore::open(&dir).unwrap();
        for payload in [b"g1", b"g2", b"g3", b"g4"] {
            store.save(payload).unwrap();
        }
        // Corrupt the two newest generations: the newest *loadable* one
        // is now gen 2, which a filename-count prune would delete.
        for generation in [3u64, 4] {
            fs::write(dir.join(format!("gen-{generation:06}.icmsnap")), b"junk").unwrap();
        }
        let removed = store.prune(1).unwrap();
        assert_eq!(
            removed,
            vec![1, 3],
            "gen 2 must survive, it is the fallback"
        );
        assert_eq!(store.generations().unwrap(), vec![2, 4]);
        let (generation, payload) = store.load_latest().unwrap().unwrap();
        assert_eq!((generation, payload.as_slice()), (2, b"g2".as_slice()));
        // keep_last = 0 is clamped: the store never prunes itself empty.
        assert!(store.prune(0).unwrap().is_empty());
        assert!(store.load_latest().unwrap().is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_grows_a_log() {
        let dir = tmpdir("append");
        let path = dir.join("trace.jsonl");
        append(&path, b"line 1\n").unwrap();
        append(&path, b"line 2\n").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"line 1\nline 2\n");
        fs::remove_dir_all(&dir).unwrap();
    }
}
