//! Serialization of [`Json`] trees to text.

use crate::Json;

/// Appends the compact form of `value` to `out`.
pub(crate) fn write_compact(value: &Json, out: &mut String) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Number(n) => write_number(*n, out),
        Json::String(s) => write_string(s, out),
        Json::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Json::Object(fields) => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

/// Appends the pretty (two-space indented) form of `value` to `out`.
pub(crate) fn write_pretty(value: &Json, indent: usize, out: &mut String) {
    match value {
        Json::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
        }
        Json::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_string(key, out);
                out.push_str(": ");
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
        }
        leaf => write_compact(leaf, out),
    }
}

fn push_indent(indent: usize, out: &mut String) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Writes a number. Rust's shortest-round-trip `Display` already prints
/// integer-valued doubles without a fractional part (`2`, not `2.0`) and
/// never produces locale-dependent output. Non-finite values (which
/// [`crate::ToJson`] for `f64` should have mapped to null already)
/// degrade to `null` rather than emitting invalid JSON.
fn write_number(n: f64, out: &mut String) {
    if n.is_finite() {
        // JSON has no negative zero distinct from zero worth preserving,
        // and `-0` would parse back as `0` anyway; normalize for
        // byte-stable output across arithmetic that flips the sign bit.
        let n = if n == 0.0 { 0.0 } else { n };
        out.push_str(&format!("{n}"));
    } else {
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compact(v: &Json) -> String {
        v.to_text()
    }

    #[test]
    fn scalars() {
        assert_eq!(compact(&Json::Null), "null");
        assert_eq!(compact(&Json::Bool(true)), "true");
        assert_eq!(compact(&Json::Number(-1.5)), "-1.5");
        assert_eq!(compact(&Json::Number(-0.0)), "0");
        assert_eq!(compact(&Json::String("hi".into())), "\"hi\"");
    }

    #[test]
    fn control_characters_escape_as_unicode() {
        assert_eq!(compact(&Json::String("\u{1}".into())), "\"\\u0001\"");
    }

    #[test]
    fn pretty_matches_expected_layout() {
        let v = Json::object([
            ("a", Json::Number(1.0)),
            ("b", Json::Array(vec![Json::Number(1.0), Json::Null])),
            ("c", Json::Array(vec![])),
            ("d", Json::Object(vec![])),
        ]);
        assert_eq!(
            v.to_text_pretty(),
            "{\n  \"a\": 1,\n  \"b\": [\n    1,\n    null\n  ],\n  \"c\": [],\n  \"d\": {}\n}\n"
        );
    }
}
