//! Write-ahead journal of committed replies.
//!
//! Every reply the server acknowledges is appended here — checksummed,
//! flushed, and (when `sync` is on) fsynced — *before* the bytes go to
//! the client. An acknowledged reply is therefore durable by
//! construction: `kill -9` can lose work in flight, never work the
//! client saw.
//!
//! Line format, one entry per line:
//!
//! ```text
//! <fnv1a64-hex16> <seq> <reply-line>\n
//! ```
//!
//! The checksum covers `"<seq> <reply-line>"`. Recovery reads entries
//! in order and stops at the first damaged line (torn tail after a
//! crash), truncating the file there so the resumed server appends
//! exactly where the uninterrupted run would have — journals stay
//! byte-identical across kills.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use icm_json::fs::fnv1a64;

/// One recovered journal entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// Commit sequence number, 1-based and contiguous.
    pub seq: u64,
    /// The reply line exactly as it was acknowledged (no newline).
    pub reply_line: String,
}

/// Journal I/O or integrity failure.
#[derive(Debug)]
pub struct JournalError(String);

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "reply journal: {}", self.0)
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        Self(e.to_string())
    }
}

/// The append-only committed-reply journal.
#[derive(Debug)]
pub struct LineJournal {
    path: PathBuf,
    file: File,
    next_seq: u64,
    sync: bool,
}

impl LineJournal {
    /// Opens (or creates) the journal at `path`, recovering every
    /// intact entry and truncating a torn tail.
    ///
    /// `sync` controls fsync-per-commit: on for real daemons, off for
    /// in-process load drivers and benches where the filesystem is
    /// scratch.
    ///
    /// # Errors
    ///
    /// I/O failure, or a *mid-file* integrity break (damage that is not
    /// a torn tail means the file was edited or rotted — refusing is
    /// safer than silently dropping committed history).
    pub fn open(path: &Path, sync: bool) -> Result<(Self, Vec<JournalEntry>), JournalError> {
        let mut text = String::new();
        match File::open(path) {
            Ok(mut f) => {
                // Committed entries are always valid UTF-8; raw bytes
                // are read so a torn multi-byte sequence in the tail
                // cannot fail the whole recovery.
                let mut bytes = Vec::new();
                f.read_to_end(&mut bytes)?;
                text = String::from_utf8_lossy(&bytes).into_owned();
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        let mut entries = Vec::new();
        let mut good_bytes: u64 = 0;
        let mut damaged = false;
        for line in text.split_inclusive('\n') {
            let Some(entry) = parse_entry(line.trim_end_matches('\n'), entries.len() as u64 + 1)
            else {
                damaged = true;
                break;
            };
            if !line.ends_with('\n') {
                // A checksummed but unterminated final line is still a
                // torn write (the newline never hit the disk).
                damaged = true;
                break;
            }
            good_bytes += line.len() as u64;
            entries.push(entry);
        }
        if damaged {
            // Only a *tail* (one final damaged line) may be truncated;
            // content after the damaged line would be committed history
            // beyond a hole, and dropping it silently loses ACKed
            // replies.
            let remainder = &text[good_bytes as usize..];
            if let Some(pos) = remainder.find('\n') {
                if pos + 1 < remainder.len() {
                    return Err(JournalError(format!(
                        "mid-file damage at byte {good_bytes}: intact entries follow the \
                         damaged line"
                    )));
                }
            }
        }
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(path)?;
        file.set_len(good_bytes)?;
        file.seek(SeekFrom::End(0))?;
        if sync {
            file.sync_all()?;
        }
        let next_seq = entries.len() as u64 + 1;
        Ok((
            Self {
                path: path.to_path_buf(),
                file,
                next_seq,
                sync,
            },
            entries,
        ))
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The sequence number the next commit will take.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Durably appends `reply_line` as the next committed reply and
    /// returns its sequence number. The caller must only release the
    /// reply to the client *after* this returns.
    ///
    /// # Errors
    ///
    /// I/O failure; the entry must then be treated as not committed.
    pub fn commit(&mut self, reply_line: &str) -> Result<u64, JournalError> {
        let seq = self.next_seq;
        let body = format!("{seq} {reply_line}");
        let line = format!("{:016x} {body}\n", fnv1a64(body.as_bytes()));
        self.file.write_all(line.as_bytes())?;
        if self.sync {
            self.file.sync_data()?;
        } else {
            self.file.flush()?;
        }
        self.next_seq += 1;
        Ok(seq)
    }
}

fn parse_entry(line: &str, expected_seq: u64) -> Option<JournalEntry> {
    let (checksum_hex, body) = line.split_once(' ')?;
    if checksum_hex.len() != 16 {
        return None;
    }
    let checksum = u64::from_str_radix(checksum_hex, 16).ok()?;
    if fnv1a64(body.as_bytes()) != checksum {
        return None;
    }
    let (seq_text, reply_line) = body.split_once(' ')?;
    let seq: u64 = seq_text.parse().ok()?;
    if seq != expected_seq {
        return None;
    }
    Some(JournalEntry {
        seq,
        reply_line: reply_line.to_owned(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("icm-journal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir.join("journal.log")
    }

    #[test]
    fn commits_are_recovered_in_order() {
        let path = scratch("order");
        {
            let (mut journal, entries) = LineJournal::open(&path, false).unwrap();
            assert!(entries.is_empty());
            assert_eq!(journal.commit(r#"{"id":"a"}"#).unwrap(), 1);
            assert_eq!(journal.commit(r#"{"id":"b"}"#).unwrap(), 2);
        }
        let (journal, entries) = LineJournal::open(&path, false).unwrap();
        assert_eq!(journal.next_seq(), 3);
        assert_eq!(
            entries,
            vec![
                JournalEntry {
                    seq: 1,
                    reply_line: r#"{"id":"a"}"#.into()
                },
                JournalEntry {
                    seq: 2,
                    reply_line: r#"{"id":"b"}"#.into()
                },
            ]
        );
        fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn a_torn_tail_is_truncated_and_appending_continues_cleanly() {
        let path = scratch("torn");
        {
            let (mut journal, _) = LineJournal::open(&path, false).unwrap();
            journal.commit("alpha").unwrap();
            journal.commit("beta").unwrap();
        }
        // Tear the tail mid-entry.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let (mut journal, entries) = LineJournal::open(&path, false).unwrap();
        assert_eq!(entries.len(), 1, "torn second entry is dropped");
        assert_eq!(journal.next_seq(), 2);
        journal.commit("beta").unwrap();
        drop(journal);
        // The recovered-and-reappended journal is byte-identical to an
        // uninterrupted one.
        let reference = scratch("torn-ref");
        let (mut journal, _) = LineJournal::open(&reference, false).unwrap();
        journal.commit("alpha").unwrap();
        journal.commit("beta").unwrap();
        drop(journal);
        assert_eq!(fs::read(&path).unwrap(), fs::read(&reference).unwrap());
        fs::remove_dir_all(path.parent().unwrap()).unwrap();
        fs::remove_dir_all(reference.parent().unwrap()).unwrap();
    }

    #[test]
    fn mid_file_damage_is_refused_not_skipped() {
        let path = scratch("midfile");
        {
            let (mut journal, _) = LineJournal::open(&path, false).unwrap();
            journal.commit("alpha").unwrap();
            journal.commit("beta").unwrap();
        }
        let mut text = fs::read_to_string(&path).unwrap();
        // Corrupt the FIRST entry while the second stays intact.
        text.replace_range(0..1, "z");
        fs::write(&path, &text).unwrap();
        let err = LineJournal::open(&path, false).unwrap_err();
        assert!(err.to_string().contains("mid-file damage"), "{err}");
        fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }
}
