//! The serving engine: a deterministic request processor with deadline
//! budgets, admission control, graceful degradation, and write-ahead
//! crash safety.
//!
//! # The virtual clock
//!
//! Every scheduling decision — queue wait, deadline refusal, overload
//! shedding, cache staleness — runs on a *virtual* clock in integer
//! microseconds. Arrivals carry explicit virtual stamps (`at_ms`), and
//! each operation is charged a fixed deterministic cost. Two runs fed
//! the same frames therefore make byte-identical decisions and emit
//! byte-identical replies, no matter how the OS schedules them; wall
//! time is measured separately into a [`QuantileSketch`] side channel
//! that never touches a reply. This is the manager's determinism
//! contract extended to traffic.
//!
//! # Crash safety
//!
//! Three files under the state directory cooperate:
//!
//! * `intake.log` — every accepted frame, appended *before* it is
//!   processed;
//! * `journal.log` — every reply, appended *before* it is released
//!   (write-ahead: an acknowledged reply is durable by construction);
//! * `checkpoints/` — periodic [`ServerSnapshot`] generations through
//!   [`SnapshotStore`], pruned to a bounded count.
//!
//! Recovery loads the newest usable checkpoint, then re-feeds the
//! intake suffix through the same engine: replies that were already
//! committed are *verified byte-for-byte* against the journal (a
//! mismatch is corruption, not a shrug), replies past the journal's
//! torn tail are committed fresh. `kill -9` at any instant loses no
//! acknowledged reply and leaves the journal byte-identical to an
//! uninterrupted run's.

use std::collections::VecDeque;
use std::path::Path;
use std::time::Instant;

use icm_json::fs::SnapshotStore;
use icm_json::{Json, JsonError};
use icm_manager::snapshot::{WorldSnapshot, WORLD_SNAPSHOT_VERSION};
use icm_manager::{Fleet, ManagedRun, ManagerConfig};
use icm_obs::{QuantileSketch, Tracer};
use icm_placement::{anneal_unconstrained, AnnealConfig};
use icm_simcluster::SimTestbed;

use crate::cache::{CacheEntry, PredictionCache};
use crate::error::ServerError;
use crate::frame::Frame;
use crate::journal::{JournalEntry, LineJournal};
use crate::protocol::{ErrorCode, Reply, Request, RequestKind};
use crate::queue::{Admission, AdmissionQueue, Pending};
use crate::world::{build_world, context_for, fleet_cost, ServerConfig};

/// Virtual cost of a fresh model prediction (microseconds).
pub const PREDICT_FULL_COST_US: u64 = 2_000;
/// Virtual cost of serving a cached prediction.
pub const PREDICT_CACHED_COST_US: u64 = 50;
/// Virtual cost of folding in one observation.
pub const OBSERVE_COST_US: u64 = 500;
/// Virtual base cost of a placement search.
pub const PLACE_BASE_COST_US: u64 = 1_000;
/// Virtual cost per annealing iteration of a placement search.
pub const PLACE_PER_ITERATION_COST_US: u64 = 10;
/// Virtual cost of one supervised manager tick.
pub const TICK_COST_US: u64 = 20_000;
/// Virtual cost of a status or shutdown request.
pub const STATUS_COST_US: u64 = 20;
/// Virtual cost charged for a typed refusal (deadline, unknown app,
/// open circuit) — refusing is cheap but not free.
pub const REJECT_COST_US: u64 = 10;

/// Current server snapshot payload version.
pub const SERVER_SNAPSHOT_VERSION: u64 = 1;

/// Reply counters, by outcome. They travel in snapshots so `status`
/// replies stay byte-identical across a kill and resume.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    /// Requests executed to an `ok` reply.
    pub completed: u64,
    /// `ok` replies served stale from the cache under saturation.
    pub degraded: u64,
    /// Requests shed with `overloaded`.
    pub shed: u64,
    /// Requests refused with `deadline_exceeded`.
    pub deadline_exceeded: u64,
    /// Requests refused with a typed `error` reply.
    pub refused: u64,
    /// Frames refused before parsing (oversized, invalid UTF-8,
    /// truncated).
    pub malformed: u64,
}

icm_json::impl_json!(struct Counters {
    completed,
    degraded,
    shed,
    deadline_exceeded,
    refused,
    malformed,
});

/// The complete serializable state of a quiescent server (empty
/// queue): the supervised world plus the serving layer around it.
#[derive(Debug, Clone)]
pub struct ServerSnapshot {
    /// Payload format version ([`SERVER_SNAPSHOT_VERSION`]).
    pub version: u64,
    /// The server configuration the world was built with.
    pub config: ServerConfig,
    /// The supervised world (testbed, fleet, manager run, tracer).
    pub world: WorldSnapshot,
    /// The virtual clock, microseconds.
    pub clock_us: u64,
    /// Largest arrival stamp accepted so far (monotonicity clamp).
    pub last_arrival_us: u64,
    /// Admission stamps handed out so far.
    pub admit_stamp: u64,
    /// Committed replies reflected in this snapshot's state.
    pub journal_seq: u64,
    /// Intake entries reflected in this snapshot's state.
    pub intake_seq: u64,
    /// The prediction cache, entries and LRU stamps included.
    pub cache: Vec<CacheEntry>,
    /// Reply counters at snapshot time.
    pub counters: Counters,
    /// Whether a shutdown had been accepted.
    pub shutting_down: bool,
}

icm_json::impl_json!(struct ServerSnapshot {
    version,
    config,
    world,
    clock_us,
    last_arrival_us,
    admit_stamp,
    journal_seq,
    intake_seq,
    cache,
    counters,
    shutting_down,
});

impl ServerSnapshot {
    /// Parses snapshot text, rejecting unknown versions before a full
    /// decode.
    ///
    /// # Errors
    ///
    /// A [`JsonError`] describing the version or payload problem.
    pub fn parse(text: &str) -> Result<Self, JsonError> {
        let value = icm_json::parse(text)?;
        let version = value
            .get("version")
            .and_then(Json::as_f64)
            .ok_or_else(|| JsonError::msg("ServerSnapshot: missing `version`"))?;
        if version != SERVER_SNAPSHOT_VERSION as f64 {
            return Err(JsonError::msg(format!(
                "ServerSnapshot: version {version} (this build reads {SERVER_SNAPSHOT_VERSION})"
            )));
        }
        use icm_json::FromJson;
        Self::from_json(&value)
    }
}

/// How an accepted frame is recorded in the intake log, so recovery can
/// re-feed malformed frames as faithfully as clean ones.
fn intake_record(frame: &Frame) -> String {
    let value = match frame {
        Frame::Line(line) => Json::object([
            ("frame", Json::String("line".into())),
            ("data", Json::String(line.clone())),
        ]),
        Frame::Oversized(bytes) => Json::object([
            ("frame", Json::String("oversized".into())),
            ("bytes", Json::Number(*bytes as f64)),
        ]),
        Frame::InvalidUtf8 => Json::object([("frame", Json::String("bad_utf8".into()))]),
        Frame::Truncated => Json::object([("frame", Json::String("truncated".into()))]),
        Frame::Eof => Json::object([("frame", Json::String("eof".into()))]),
    };
    icm_json::to_string(&value)
}

fn parse_intake_record(line: &str) -> Result<Frame, ServerError> {
    let value =
        icm_json::parse(line).map_err(|e| ServerError::new(format!("intake record: {e}")))?;
    let kind = value
        .get("frame")
        .and_then(Json::as_str)
        .ok_or_else(|| ServerError::new("intake record: missing `frame`"))?;
    Ok(match kind {
        "line" => Frame::Line(
            value
                .get("data")
                .and_then(Json::as_str)
                .ok_or_else(|| ServerError::new("intake record: missing `data`"))?
                .to_owned(),
        ),
        "oversized" => {
            Frame::Oversized(value.get("bytes").and_then(Json::as_f64).unwrap_or(0.0) as usize)
        }
        "bad_utf8" => Frame::InvalidUtf8,
        "truncated" => Frame::Truncated,
        "eof" => Frame::Eof,
        other => {
            return Err(ServerError::new(format!(
                "intake record: unknown frame kind `{other}`"
            )))
        }
    })
}

/// The persistent placement daemon.
pub struct Server {
    config: ServerConfig,
    manager_config: ManagerConfig,
    testbed: SimTestbed,
    fleet: Fleet,
    run: ManagedRun,
    tracer: Tracer,
    queue: AdmissionQueue,
    cache: PredictionCache,
    clock_us: u64,
    last_arrival_us: u64,
    admit_stamp: u64,
    counters: Counters,
    shutting_down: bool,
    journal: Option<LineJournal>,
    intake: Option<LineJournal>,
    store: Option<SnapshotStore>,
    /// Journal entries recovery must re-produce byte-for-byte before
    /// any fresh commit is allowed.
    verify: VecDeque<JournalEntry>,
    replaying: bool,
    commits_since_checkpoint: u64,
    wall_ns: QuantileSketch,
    committed_total: u64,
    /// Intake entries the current state reflects (consumed frames).
    intake_pos: u64,
}

impl Server {
    /// Starts a daemon. With a state directory, persistence is armed
    /// (intake log, write-ahead journal, periodic checkpoints) and a
    /// previous life's state is recovered: newest usable checkpoint,
    /// then deterministic re-execution of the intake suffix, verifying
    /// already-committed replies byte-for-byte.
    ///
    /// # Errors
    ///
    /// World construction, persistence I/O, or an integrity break
    /// (journal/checkpoint corruption that recovery cannot prove safe).
    pub fn start(config: ServerConfig, state_dir: Option<&Path>) -> Result<Self, ServerError> {
        let tracer = Tracer::disabled();
        let (store, snapshot, journal, journal_entries, intake, intake_entries) = match state_dir {
            None => (None, None, None, Vec::new(), None, Vec::new()),
            Some(dir) => {
                std::fs::create_dir_all(dir)?;
                let store = SnapshotStore::open(&dir.join("checkpoints"))?;
                let snapshot = load_snapshot(&store)?;
                let (journal, journal_entries) =
                    LineJournal::open(&dir.join("journal.log"), config.sync)?;
                let (intake, intake_entries) =
                    LineJournal::open(&dir.join("intake.log"), config.sync)?;
                (
                    Some(store),
                    snapshot,
                    Some(journal),
                    journal_entries,
                    Some(intake),
                    intake_entries,
                )
            }
        };
        let mut server = match snapshot {
            Some(snapshot) => {
                if (journal_entries.len() as u64) < snapshot.journal_seq {
                    return Err(ServerError::new(format!(
                        "journal holds {} entries but the checkpoint reflects {} — \
                         committed history is missing",
                        journal_entries.len(),
                        snapshot.journal_seq
                    )));
                }
                if (intake_entries.len() as u64) < snapshot.intake_seq {
                    return Err(ServerError::new(format!(
                        "intake log holds {} entries but the checkpoint reflects {} — \
                         accepted frames are missing",
                        intake_entries.len(),
                        snapshot.intake_seq
                    )));
                }
                let mut testbed = SimTestbed::restore(snapshot.world.testbed);
                testbed.set_tracer(tracer.clone());
                Self {
                    manager_config: snapshot.world.config,
                    queue: AdmissionQueue::new(snapshot.config.queue_capacity),
                    cache: PredictionCache::restore(snapshot.config.cache_capacity, snapshot.cache),
                    clock_us: snapshot.clock_us,
                    last_arrival_us: snapshot.last_arrival_us,
                    admit_stamp: snapshot.admit_stamp,
                    counters: snapshot.counters,
                    shutting_down: snapshot.shutting_down,
                    committed_total: snapshot.journal_seq,
                    config: snapshot.config,
                    testbed,
                    fleet: snapshot.world.fleet,
                    run: snapshot.world.run,
                    tracer,
                    journal,
                    intake,
                    store,
                    verify: VecDeque::new(),
                    replaying: false,
                    commits_since_checkpoint: 0,
                    wall_ns: QuantileSketch::new(),
                    intake_pos: snapshot.intake_seq,
                }
            }
            None => {
                let (testbed, fleet, manager_config, run) = build_world(&config)?;
                Self {
                    queue: AdmissionQueue::new(config.queue_capacity),
                    cache: PredictionCache::new(config.cache_capacity),
                    clock_us: 0,
                    last_arrival_us: 0,
                    admit_stamp: 0,
                    counters: Counters::default(),
                    shutting_down: false,
                    committed_total: 0,
                    config,
                    manager_config,
                    testbed,
                    fleet,
                    run,
                    tracer,
                    journal,
                    intake,
                    store,
                    verify: VecDeque::new(),
                    replaying: false,
                    commits_since_checkpoint: 0,
                    wall_ns: QuantileSketch::new(),
                    intake_pos: 0,
                }
            }
        };
        // Re-execute the intake suffix. Replies up to the journal's
        // recovered tail must re-materialize byte-for-byte; anything
        // past it is committed fresh (it was computed but never
        // acknowledged before the crash).
        let resume_intake = server.intake_pos;
        server.verify = journal_entries
            .into_iter()
            .skip(server.committed_total as usize)
            .collect();
        server.replaying = true;
        for entry in intake_entries.into_iter().skip(resume_intake as usize) {
            let frame = parse_intake_record(&entry.reply_line)?;
            server.ingest(&frame)?;
        }
        server.replaying = false;
        if let Some(stale) = server.verify.pop_front() {
            return Err(ServerError::new(format!(
                "journal entry {} was committed but deterministic replay never \
                 re-produced it",
                stale.seq
            )));
        }
        Ok(server)
    }

    /// The server configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The supervised fleet.
    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }

    /// Mutable fleet access (attach quality grids before serving).
    pub fn fleet_mut(&mut self) -> &mut Fleet {
        &mut self.fleet
    }

    /// The virtual clock, microseconds.
    pub fn clock_us(&self) -> u64 {
        self.clock_us
    }

    /// Reply counters so far.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Pending request count.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Total committed replies over the server's whole life.
    pub fn committed(&self) -> u64 {
        self.committed_total
    }

    /// Frames consumed over the server's whole life (recovered lives
    /// included). A scripted driver resuming after a crash skips this
    /// many frames of its script — the intake log already owns them.
    pub fn consumed_frames(&self) -> u64 {
        self.intake_pos
    }

    /// Whether a shutdown request has been accepted.
    pub fn shutting_down(&self) -> bool {
        self.shutting_down
    }

    /// Wall-clock per-frame handling latency (nanoseconds), the side
    /// channel kept out of every reply.
    pub fn wall_latency_ns(&self) -> &QuantileSketch {
        &self.wall_ns
    }

    /// Handles one frame, returning the reply lines released by it —
    /// its own reply when served immediately, typed refusals, and any
    /// replies for queued requests whose virtual service completed
    /// before this frame's arrival stamp.
    ///
    /// # Errors
    ///
    /// Only daemon-stopping trouble (persistence I/O, integrity);
    /// malformed frames and invalid requests produce typed replies.
    pub fn handle_frame(&mut self, frame: &Frame) -> Result<Vec<String>, ServerError> {
        let begin = Instant::now();
        let out = self.ingest(frame);
        self.wall_ns.observe(begin.elapsed().as_nanos() as f64);
        out
    }

    /// Drains every pending request (end of input or explicit flush)
    /// and returns the released reply lines.
    ///
    /// # Errors
    ///
    /// See [`Server::handle_frame`].
    pub fn finish(&mut self) -> Result<Vec<String>, ServerError> {
        let mut replies = Vec::new();
        while let Some(pending) = self.queue.pop_next() {
            self.process(pending, &mut replies)?;
        }
        self.maybe_checkpoint()?;
        Ok(replies)
    }

    fn ingest(&mut self, frame: &Frame) -> Result<Vec<String>, ServerError> {
        if matches!(frame, Frame::Eof) {
            return Ok(Vec::new());
        }
        if !self.replaying {
            if let Some(intake) = &mut self.intake {
                intake.commit(&intake_record(frame))?;
            }
        }
        let mut replies = Vec::new();
        match frame {
            Frame::Eof => {}
            Frame::Oversized(bytes) => {
                self.counters.malformed += 1;
                let reply = Reply::Error {
                    id: None,
                    code: ErrorCode::OversizedFrame,
                    detail: format!(
                        "frame of {bytes} bytes exceeds {} — discarded to its newline",
                        crate::frame::MAX_FRAME_BYTES
                    ),
                };
                self.commit(reply, &mut replies)?;
            }
            Frame::InvalidUtf8 => {
                self.counters.malformed += 1;
                let reply = Reply::Error {
                    id: None,
                    code: ErrorCode::InvalidUtf8,
                    detail: "frame is not valid UTF-8".into(),
                };
                self.commit(reply, &mut replies)?;
            }
            Frame::Truncated => {
                self.counters.malformed += 1;
                let reply = Reply::Error {
                    id: None,
                    code: ErrorCode::TruncatedFrame,
                    detail: "stream ended mid-frame".into(),
                };
                self.commit(reply, &mut replies)?;
            }
            Frame::Line(line) => match Request::parse(line) {
                Err(refusal) => {
                    self.counters.refused += 1;
                    let reply = Reply::Error {
                        id: refusal.id,
                        code: refusal.code,
                        detail: refusal.detail,
                    };
                    self.commit(reply, &mut replies)?;
                }
                Ok(request) => self.accept(request, &mut replies)?,
            },
        }
        // Only now is the frame fully reflected in server state.
        // Checkpoints fire exclusively at this boundary (and at
        // `finish`), so a snapshot always describes a whole number of
        // consumed frames — recovery resumes at an exact frame edge.
        self.intake_pos += 1;
        self.maybe_checkpoint()?;
        Ok(replies)
    }

    fn accept(&mut self, request: Request, replies: &mut Vec<String>) -> Result<(), ServerError> {
        let arrival_us = match request.at_ms {
            Some(ms) => ms.saturating_mul(1_000).max(self.last_arrival_us),
            None => self.clock_us.max(self.last_arrival_us),
        };
        self.last_arrival_us = arrival_us;
        self.advance_to(arrival_us, replies)?;
        if self.shutting_down {
            self.counters.refused += 1;
            let reply = Reply::Error {
                id: Some(request.id),
                code: ErrorCode::ShuttingDown,
                detail: "the server is draining".into(),
            };
            return self.commit(reply, replies);
        }
        let cost_us = estimate_cost(&request.kind);
        self.admit_stamp += 1;
        let incoming_id = request.id.clone();
        let interactive = request.at_ms.is_none();
        let pending = Pending {
            admitted: self.admit_stamp,
            arrival_us,
            request,
            cost_us,
        };
        match self.queue.admit(pending) {
            Admission::Admitted => {}
            Admission::RejectedIncoming => {
                self.counters.shed += 1;
                let reply = Reply::Overloaded {
                    id: incoming_id,
                    retry_after_us: self.queue.backlog_us(),
                };
                self.commit(reply, replies)?;
            }
            Admission::Evicted(victim) => {
                self.counters.shed += 1;
                let reply = Reply::Overloaded {
                    id: victim.request.id,
                    retry_after_us: self.queue.backlog_us(),
                };
                self.commit(reply, replies)?;
            }
        }
        if interactive {
            // No declared arrival stamp means "now, and I am waiting":
            // the server is idle between frames, so everything pending is
            // served before the next frame is read. Trace-driven load
            // (explicit `at_ms`) queues and drains on virtual time.
            while let Some(next) = self.queue.pop_next() {
                self.process(next, replies)?;
            }
        }
        Ok(())
    }

    fn advance_to(&mut self, until_us: u64, replies: &mut Vec<String>) -> Result<(), ServerError> {
        loop {
            if self.clock_us >= until_us {
                return Ok(());
            }
            if self.queue.is_empty() {
                self.clock_us = until_us;
                return Ok(());
            }
            let pending = self.queue.pop_next().expect("queue is non-empty");
            self.process(pending, replies)?;
        }
    }

    fn process(&mut self, pending: Pending, replies: &mut Vec<String>) -> Result<(), ServerError> {
        let start_us = self.clock_us.max(pending.arrival_us);
        let wait_us = start_us - pending.arrival_us;
        let budget_us = pending.request.deadline_ms.saturating_mul(1_000);
        let id = pending.request.id.clone();
        let refuse =
            |server: &mut Self, code: ErrorCode, detail: String, replies: &mut Vec<String>| {
                server.clock_us = start_us + REJECT_COST_US;
                server.counters.refused += 1;
                server.commit(
                    Reply::Error {
                        id: Some(id.clone()),
                        code,
                        detail,
                    },
                    replies,
                )
            };
        match pending.request.kind.clone() {
            RequestKind::Predict { app, corunners } => {
                let Some((index, pressures, key)) = context_for(&self.fleet, &app, &corunners)
                else {
                    return refuse(
                        self,
                        ErrorCode::UnknownApp,
                        format!("`{app}` (or a corunner) is not in the supervised fleet"),
                        replies,
                    );
                };
                let saturated = self.queue.backlog_us() > self.config.saturation_us;
                if saturated {
                    if let Some(entry) =
                        self.cache
                            .get(&app, &key, start_us, self.config.cache_max_age_us)
                    {
                        if entry.quality == "defaulted" {
                            return refuse(
                                self,
                                ErrorCode::CircuitOpen,
                                format!(
                                    "a degraded answer for `{app}` under `{key}` would rest \
                                     on defaulted model cells"
                                ),
                                replies,
                            );
                        }
                        if wait_us + PREDICT_CACHED_COST_US > budget_us {
                            return self.refuse_deadline(
                                id,
                                start_us,
                                budget_us,
                                wait_us + PREDICT_CACHED_COST_US,
                                replies,
                            );
                        }
                        self.clock_us = start_us + PREDICT_CACHED_COST_US;
                        self.counters.completed += 1;
                        self.counters.degraded += 1;
                        let latency_us = self.clock_us - pending.arrival_us;
                        let reply = Reply::Ok {
                            id,
                            degraded: true,
                            latency_us,
                            payload: Json::object([
                                ("app", Json::String(app)),
                                ("key", Json::String(key)),
                                ("predicted", Json::Number(entry.predicted)),
                                ("quality", Json::String(entry.quality)),
                                ("cached", Json::Bool(true)),
                            ]),
                        };
                        return self.commit(reply, replies);
                    }
                }
                if wait_us + PREDICT_FULL_COST_US > budget_us {
                    return self.refuse_deadline(
                        id,
                        start_us,
                        budget_us,
                        wait_us + PREDICT_FULL_COST_US,
                        replies,
                    );
                }
                let online = &self.fleet.apps()[index].online;
                let predicted = match online.predict_for(&key, &pressures) {
                    Ok(value) => value,
                    Err(e) => return refuse(self, ErrorCode::Unavailable, e.to_string(), replies),
                };
                let quality = match self.fleet.apps()[index].quality.as_ref() {
                    None => icm_core::ModelQuality::Measured.as_str(),
                    Some(grid) => {
                        let hom = online.base().convert(&pressures);
                        grid.at_hom(hom.pressure, hom.nodes).as_str()
                    }
                };
                self.clock_us = start_us + PREDICT_FULL_COST_US;
                self.cache
                    .put(&app, &key, predicted, quality, self.clock_us);
                self.counters.completed += 1;
                let latency_us = self.clock_us - pending.arrival_us;
                let reply = Reply::Ok {
                    id,
                    degraded: false,
                    latency_us,
                    payload: Json::object([
                        ("app", Json::String(app)),
                        ("key", Json::String(key)),
                        ("predicted", Json::Number(predicted)),
                        ("quality", Json::String(quality.to_owned())),
                        ("cached", Json::Bool(false)),
                    ]),
                };
                self.commit(reply, replies)
            }
            RequestKind::Observe {
                app,
                corunners,
                normalized,
            } => {
                let Some((index, pressures, key)) = context_for(&self.fleet, &app, &corunners)
                else {
                    return refuse(
                        self,
                        ErrorCode::UnknownApp,
                        format!("`{app}` (or a corunner) is not in the supervised fleet"),
                        replies,
                    );
                };
                if wait_us + OBSERVE_COST_US > budget_us {
                    return self.refuse_deadline(
                        id,
                        start_us,
                        budget_us,
                        wait_us + OBSERVE_COST_US,
                        replies,
                    );
                }
                let online = &mut self.fleet.apps_mut()[index].online;
                if let Err(e) = online.observe_for(&key, &pressures, normalized) {
                    return refuse(self, ErrorCode::Unavailable, e.to_string(), replies);
                }
                let observations = online.observations();
                self.cache.invalidate_app(&app);
                self.clock_us = start_us + OBSERVE_COST_US;
                self.counters.completed += 1;
                let latency_us = self.clock_us - pending.arrival_us;
                let reply = Reply::Ok {
                    id,
                    degraded: false,
                    latency_us,
                    payload: Json::object([
                        ("app", Json::String(app)),
                        ("key", Json::String(key)),
                        ("observations", Json::Number(observations as f64)),
                    ]),
                };
                self.commit(reply, replies)
            }
            RequestKind::Place { iterations } => {
                let cost_us = PLACE_BASE_COST_US + PLACE_PER_ITERATION_COST_US * iterations;
                if wait_us + cost_us > budget_us {
                    return self.refuse_deadline(
                        id,
                        start_us,
                        budget_us,
                        wait_us + cost_us,
                        replies,
                    );
                }
                let anneal_config = AnnealConfig {
                    iterations: iterations as usize,
                    seed: self
                        .config
                        .seed
                        .wrapping_add(pending.admitted.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                    lanes: self.manager_config.search_lanes.max(1),
                    ..AnnealConfig::default()
                };
                let fleet = &self.fleet;
                let result = match anneal_unconstrained(
                    fleet.problem(),
                    |state| fleet_cost(fleet, state),
                    &anneal_config,
                ) {
                    Ok(result) => result,
                    Err(e) => return refuse(self, ErrorCode::Unavailable, e.to_string(), replies),
                };
                self.clock_us = start_us + cost_us;
                self.counters.completed += 1;
                let latency_us = self.clock_us - pending.arrival_us;
                let reply = Reply::Ok {
                    id,
                    degraded: false,
                    latency_us,
                    payload: Json::object([
                        ("cost", Json::Number(result.cost)),
                        ("evaluations", Json::Number(result.evaluations as f64)),
                        ("best_iteration", Json::Number(result.best_iteration as f64)),
                    ]),
                };
                self.commit(reply, replies)
            }
            RequestKind::Tick => {
                if self.run.is_done(&self.manager_config) {
                    return refuse(
                        self,
                        ErrorCode::Unavailable,
                        "the supervised run has reached its horizon".into(),
                        replies,
                    );
                }
                if wait_us + TICK_COST_US > budget_us {
                    return self.refuse_deadline(
                        id,
                        start_us,
                        budget_us,
                        wait_us + TICK_COST_US,
                        replies,
                    );
                }
                if let Err(e) = self.run.step(
                    &mut self.testbed,
                    &mut self.fleet,
                    &self.manager_config,
                    &self.tracer,
                ) {
                    return refuse(self, ErrorCode::Unavailable, e.to_string(), replies);
                }
                self.clock_us = start_us + TICK_COST_US;
                self.counters.completed += 1;
                let latency_us = self.clock_us - pending.arrival_us;
                let reply = Reply::Ok {
                    id,
                    degraded: false,
                    latency_us,
                    payload: Json::object([
                        ("tick", Json::Number((self.run.next_tick() - 1) as f64)),
                        ("violation_s", Json::Number(self.run.violation_seconds())),
                    ]),
                };
                self.commit(reply, replies)
            }
            RequestKind::Status => {
                if wait_us + STATUS_COST_US > budget_us {
                    return self.refuse_deadline(
                        id,
                        start_us,
                        budget_us,
                        wait_us + STATUS_COST_US,
                        replies,
                    );
                }
                self.clock_us = start_us + STATUS_COST_US;
                self.counters.completed += 1;
                let latency_us = self.clock_us - pending.arrival_us;
                let reply = Reply::Ok {
                    id,
                    degraded: false,
                    latency_us,
                    payload: Json::object([
                        ("clock_us", Json::Number(self.clock_us as f64)),
                        ("queue_len", Json::Number(self.queue.len() as f64)),
                        ("backlog_us", Json::Number(self.queue.backlog_us() as f64)),
                        ("cache_entries", Json::Number(self.cache.len() as f64)),
                        ("committed", Json::Number(self.committed_total as f64)),
                        ("completed", Json::Number(self.counters.completed as f64)),
                        ("degraded", Json::Number(self.counters.degraded as f64)),
                        ("shed", Json::Number(self.counters.shed as f64)),
                        (
                            "deadline_exceeded",
                            Json::Number(self.counters.deadline_exceeded as f64),
                        ),
                        ("refused", Json::Number(self.counters.refused as f64)),
                        ("malformed", Json::Number(self.counters.malformed as f64)),
                        ("next_tick", Json::Number(self.run.next_tick() as f64)),
                    ]),
                };
                self.commit(reply, replies)
            }
            RequestKind::Shutdown => {
                self.shutting_down = true;
                self.clock_us = start_us + STATUS_COST_US;
                self.counters.completed += 1;
                let latency_us = self.clock_us - pending.arrival_us;
                let reply = Reply::Ok {
                    id,
                    degraded: false,
                    latency_us,
                    payload: Json::object([("draining", Json::Number(self.queue.len() as f64))]),
                };
                self.commit(reply, replies)
            }
        }
    }

    fn refuse_deadline(
        &mut self,
        id: String,
        start_us: u64,
        budget_us: u64,
        needed_us: u64,
        replies: &mut Vec<String>,
    ) -> Result<(), ServerError> {
        self.clock_us = start_us + REJECT_COST_US;
        self.counters.deadline_exceeded += 1;
        self.commit(
            Reply::DeadlineExceeded {
                id,
                budget_us,
                needed_us,
            },
            replies,
        )
    }

    /// Write-ahead commits a reply, then releases it: journal first
    /// (verified against recovered history during replay), client
    /// second.
    fn commit(&mut self, reply: Reply, replies: &mut Vec<String>) -> Result<(), ServerError> {
        let line = reply.to_line();
        match self.verify.pop_front() {
            Some(expected) => {
                if expected.reply_line != line {
                    return Err(ServerError::new(format!(
                        "replay diverged from the committed journal at seq {}: journal has \
                         {:?}, replay produced {:?}",
                        expected.seq, expected.reply_line, line
                    )));
                }
            }
            None => {
                if let Some(journal) = &mut self.journal {
                    journal.commit(&line)?;
                }
            }
        }
        self.committed_total += 1;
        self.commits_since_checkpoint += 1;
        replies.push(line);
        Ok(())
    }

    fn maybe_checkpoint(&mut self) -> Result<(), ServerError> {
        if self.replaying
            || self.config.checkpoint_every == 0
            || self.commits_since_checkpoint < self.config.checkpoint_every
            || !self.queue.is_empty()
        {
            return Ok(());
        }
        let Some(store) = &self.store else {
            return Ok(());
        };
        let snapshot = self.snapshot();
        store.save(icm_json::to_string(&snapshot).as_bytes())?;
        store.prune(self.config.keep_checkpoints)?;
        self.commits_since_checkpoint = 0;
        Ok(())
    }

    /// Captures the server's state. Meaningful only when the queue is
    /// empty (checkpoints are taken at quiescent commits); pending
    /// requests are deliberately not serialized — they were never
    /// acknowledged, and recovery re-feeds them from the intake log.
    pub fn snapshot(&self) -> ServerSnapshot {
        ServerSnapshot {
            version: SERVER_SNAPSHOT_VERSION,
            config: self.config.clone(),
            world: WorldSnapshot {
                version: WORLD_SNAPSHOT_VERSION,
                testbed: self.testbed.snapshot(),
                config: self.manager_config.clone(),
                fleet: self.fleet.clone(),
                run: self.run.clone(),
                tracer: self.tracer.state(),
                rngs: Vec::new(),
                trace_path: None,
                trace_bytes: 0,
            },
            clock_us: self.clock_us,
            last_arrival_us: self.last_arrival_us,
            admit_stamp: self.admit_stamp,
            journal_seq: self.committed_total,
            intake_seq: self.intake_pos,
            cache: self.cache.entries().to_vec(),
            counters: self.counters.clone(),
            shutting_down: self.shutting_down,
        }
    }
}

fn estimate_cost(kind: &RequestKind) -> u64 {
    match kind {
        RequestKind::Predict { .. } => PREDICT_FULL_COST_US,
        RequestKind::Observe { .. } => OBSERVE_COST_US,
        RequestKind::Place { iterations } => {
            PLACE_BASE_COST_US + PLACE_PER_ITERATION_COST_US * iterations
        }
        RequestKind::Tick => TICK_COST_US,
        RequestKind::Status | RequestKind::Shutdown => STATUS_COST_US,
    }
}

/// Loads the newest checkpoint that passes both the store's integrity
/// checks and the snapshot format check, skipping damaged generations.
fn load_snapshot(store: &SnapshotStore) -> Result<Option<ServerSnapshot>, ServerError> {
    let mut generations = store.generations()?;
    generations.reverse();
    let mut failures = Vec::new();
    for generation in generations {
        let outcome = store
            .load(generation)
            .map_err(|e| e.to_string())
            .and_then(|bytes| String::from_utf8(bytes).map_err(|e| e.to_string()))
            .and_then(|text| ServerSnapshot::parse(&text).map_err(|e| e.to_string()));
        match outcome {
            Ok(snapshot) => return Ok(Some(snapshot)),
            Err(err) => failures.push(format!("generation {generation}: {err}")),
        }
    }
    if failures.is_empty() {
        Ok(None)
    } else {
        Err(ServerError::new(format!(
            "no usable checkpoint: {}",
            failures.join("; ")
        )))
    }
}
