//! Line framing with hard bounds: the reader that stands between
//! arbitrary client bytes and the request parser.
//!
//! Damage is confined to the frame it arrives on. An oversized line is
//! consumed to its newline (in bounded chunks, never buffered whole)
//! and surfaced as [`Frame::Oversized`]; invalid UTF-8 surfaces as
//! [`Frame::InvalidUtf8`]; a stream that ends without a final newline
//! surfaces as [`Frame::Truncated`]. The next call picks up cleanly at
//! the next line — no desync, no unbounded memory, no panic.

use std::io::{self, BufRead};

/// Hard bound on a single frame, header and payload included.
pub const MAX_FRAME_BYTES: usize = 64 * 1024;

/// One framing outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A complete, UTF-8, in-bounds line (newline stripped).
    Line(String),
    /// The line outgrew [`MAX_FRAME_BYTES`]; it was drained to its
    /// newline and discarded. Carries the byte count consumed.
    Oversized(usize),
    /// The line is not valid UTF-8; it was consumed whole.
    InvalidUtf8,
    /// The stream ended mid-line (no trailing newline); the partial
    /// bytes were discarded.
    Truncated,
    /// Clean end of stream.
    Eof,
}

/// A bounded line reader over any [`BufRead`].
#[derive(Debug)]
pub struct FrameReader<R> {
    inner: R,
    limit: usize,
}

impl<R: BufRead> FrameReader<R> {
    /// Wraps `inner` with the default [`MAX_FRAME_BYTES`] bound.
    pub fn new(inner: R) -> Self {
        Self::with_limit(inner, MAX_FRAME_BYTES)
    }

    /// Wraps `inner` with an explicit frame bound (min 1).
    pub fn with_limit(inner: R, limit: usize) -> Self {
        Self {
            inner,
            limit: limit.max(1),
        }
    }

    /// Reads the next frame.
    ///
    /// # Errors
    ///
    /// Only genuine I/O failure from the underlying reader; malformed
    /// *content* is always a typed [`Frame`], never `Err`.
    pub fn next_frame(&mut self) -> io::Result<Frame> {
        let mut buf: Vec<u8> = Vec::new();
        loop {
            let chunk = self.inner.fill_buf()?;
            if chunk.is_empty() {
                // EOF. Whatever is buffered has no newline.
                return Ok(if buf.is_empty() {
                    Frame::Eof
                } else {
                    Frame::Truncated
                });
            }
            match chunk.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    let overflow = buf.len() + pos > self.limit;
                    if !overflow {
                        buf.extend_from_slice(&chunk[..pos]);
                    }
                    let consumed = buf.len() + pos + 1; // best-effort count
                    self.inner.consume(pos + 1);
                    if overflow {
                        return Ok(Frame::Oversized(consumed));
                    }
                    return Ok(match String::from_utf8(buf) {
                        Ok(line) => Frame::Line(line),
                        Err(_) => Frame::InvalidUtf8,
                    });
                }
                None => {
                    let len = chunk.len();
                    if buf.len() + len > self.limit {
                        // Too big already: stop buffering, drain to the
                        // newline in bounded chunks.
                        let mut consumed = buf.len();
                        buf.clear();
                        buf.shrink_to_fit();
                        loop {
                            let chunk = self.inner.fill_buf()?;
                            if chunk.is_empty() {
                                return Ok(Frame::Truncated);
                            }
                            match chunk.iter().position(|&b| b == b'\n') {
                                Some(pos) => {
                                    consumed += pos + 1;
                                    self.inner.consume(pos + 1);
                                    return Ok(Frame::Oversized(consumed));
                                }
                                None => {
                                    consumed += chunk.len();
                                    let n = chunk.len();
                                    self.inner.consume(n);
                                }
                            }
                        }
                    }
                    buf.extend_from_slice(chunk);
                    self.inner.consume(len);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn frames(bytes: &[u8], limit: usize) -> Vec<Frame> {
        let mut reader = FrameReader::with_limit(Cursor::new(bytes.to_vec()), limit);
        let mut out = Vec::new();
        loop {
            let frame = reader.next_frame().expect("in-memory reads cannot fail");
            let eof = frame == Frame::Eof;
            out.push(frame);
            if eof {
                return out;
            }
        }
    }

    #[test]
    fn clean_lines_stream_through() {
        let got = frames(b"one\ntwo\n", 1024);
        assert_eq!(
            got,
            vec![
                Frame::Line("one".into()),
                Frame::Line("two".into()),
                Frame::Eof
            ]
        );
    }

    #[test]
    fn an_oversized_line_is_drained_and_the_next_line_survives() {
        let mut bytes = vec![b'x'; 100];
        bytes.push(b'\n');
        bytes.extend_from_slice(b"after\n");
        let got = frames(&bytes, 16);
        assert_eq!(got.len(), 3);
        assert!(matches!(got[0], Frame::Oversized(n) if n >= 100));
        assert_eq!(got[1], Frame::Line("after".into()));
    }

    #[test]
    fn invalid_utf8_is_typed_and_does_not_desync() {
        let got = frames(b"\xff\xfe\xfd\nok\n", 1024);
        assert_eq!(
            got,
            vec![Frame::InvalidUtf8, Frame::Line("ok".into()), Frame::Eof]
        );
    }

    #[test]
    fn a_truncated_tail_is_typed() {
        let got = frames(b"complete\npartial", 1024);
        assert_eq!(
            got,
            vec![Frame::Line("complete".into()), Frame::Truncated, Frame::Eof]
        );
    }

    #[test]
    fn an_unterminated_oversized_stream_is_truncated_not_buffered() {
        let bytes = vec![b'y'; 4096];
        let got = frames(&bytes, 64);
        assert_eq!(got, vec![Frame::Truncated, Frame::Eof]);
    }
}
