//! The server's single error type — everything that can stop the
//! daemon itself, as opposed to refusing one request with a typed
//! reply.

use std::error::Error;
use std::fmt;

/// A failure that prevents the server from continuing: world
/// construction, persistence I/O, or a snapshot/journal integrity
/// break. Per-request trouble never takes this shape — it becomes a
/// typed reply instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerError {
    message: String,
}

impl ServerError {
    /// Creates an error from any displayable cause.
    pub fn new(message: impl fmt::Display) -> Self {
        Self {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "server error: {}", self.message)
    }
}

impl Error for ServerError {}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        Self::new(e)
    }
}

impl From<icm_core::ModelError> for ServerError {
    fn from(e: icm_core::ModelError) -> Self {
        Self::new(e)
    }
}

impl From<icm_manager::ManagerError> for ServerError {
    fn from(e: icm_manager::ManagerError) -> Self {
        Self::new(e)
    }
}

impl From<icm_placement::PlacementError> for ServerError {
    fn from(e: icm_placement::PlacementError) -> Self {
        Self::new(e)
    }
}

impl From<icm_simcluster::TestbedError> for ServerError {
    fn from(e: icm_simcluster::TestbedError) -> Self {
        Self::new(e)
    }
}

impl From<crate::journal::JournalError> for ServerError {
    fn from(e: crate::journal::JournalError) -> Self {
        Self::new(e)
    }
}
