//! The wire protocol: strictly validated requests and typed replies.
//!
//! One request per line, one reply per line, both `icm-json`. Parsing
//! is total: every malformed input maps to a typed [`ErrorCode`] — the
//! serving loop never panics on client bytes and never desyncs, because
//! framing damage is confined to the one line it arrived on.
//!
//! Time in the protocol is *virtual*: arrival stamps (`at_ms`) and
//! deadline budgets (`deadline_ms`) are client-declared virtual
//! milliseconds, and every latency the server reports
//! (`latency_us`, `retry_after_us`) is in virtual microseconds on the
//! same clock. Wall time never appears on the wire — that keeps every
//! reply, and therefore the committed-reply journal, byte-identical
//! across same-seed replays (see `crate::clock`).

use icm_json::Json;

/// Upper bound on `place` iteration requests — a client cannot buy an
/// unbounded amount of annealing with one line.
pub const MAX_PLACE_ITERATIONS: u64 = 10_000;

/// What a request asks the server to do.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestKind {
    /// Predict the normalized runtime of `app` co-located with
    /// `corunners` (fleet names) on every host of its span.
    Predict {
        /// Fleet application to predict for.
        app: String,
        /// Co-located fleet applications (order-insensitive).
        corunners: Vec<String>,
    },
    /// Feed a measured normalized runtime back into `app`'s online
    /// model under the same co-location context.
    Observe {
        /// Fleet application that was measured.
        app: String,
        /// Co-located fleet applications during the measurement.
        corunners: Vec<String>,
        /// Measured normalized runtime (≥ 1.0 is typical).
        normalized: f64,
    },
    /// Run a bounded placement search over the current fleet and
    /// report the best pooled cost found.
    Place {
        /// Annealing iterations (per lane), capped at
        /// [`MAX_PLACE_ITERATIONS`].
        iterations: u64,
    },
    /// Advance the supervised run by one manager tick.
    Tick,
    /// Report server state: clock, queue depth, counters.
    Status,
    /// Drain the queue and stop serving.
    Shutdown,
}

/// A validated request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the reply.
    pub id: String,
    /// The operation.
    pub kind: RequestKind,
    /// Admission priority: higher survives overload longer (the
    /// manager's shed ordering, applied to traffic).
    pub priority: u32,
    /// Virtual deadline budget in milliseconds, measured from arrival.
    pub deadline_ms: u64,
    /// Virtual arrival stamp in milliseconds. Omitted means "now" (the
    /// server clock at intake), so interactive use never queues.
    pub at_ms: Option<u64>,
}

/// Typed reason a request (or frame) was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame is not valid UTF-8.
    InvalidUtf8,
    /// The frame exceeds the reader's size bound.
    OversizedFrame,
    /// The stream ended mid-frame (no trailing newline).
    TruncatedFrame,
    /// The line is not valid JSON.
    MalformedJson,
    /// The line parsed, but is not a JSON object.
    NotAnObject,
    /// A required field is absent.
    MissingField,
    /// A field has the wrong type or an out-of-range value.
    BadField,
    /// `kind` names no operation this server provides.
    UnknownKind,
    /// The named application is not in the supervised fleet.
    UnknownApp,
    /// A degraded answer would rest on `Defaulted` model cells; the
    /// circuit breaker refuses to serve it.
    CircuitOpen,
    /// The server is draining after a shutdown request.
    ShuttingDown,
    /// The supervised run cannot perform the operation (e.g. ticking a
    /// finished horizon).
    Unavailable,
}

impl ErrorCode {
    /// Stable wire name of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::InvalidUtf8 => "invalid_utf8",
            Self::OversizedFrame => "oversized_frame",
            Self::TruncatedFrame => "truncated_frame",
            Self::MalformedJson => "malformed_json",
            Self::NotAnObject => "not_an_object",
            Self::MissingField => "missing_field",
            Self::BadField => "bad_field",
            Self::UnknownKind => "unknown_kind",
            Self::UnknownApp => "unknown_app",
            Self::CircuitOpen => "circuit_open",
            Self::ShuttingDown => "shutting_down",
            Self::Unavailable => "unavailable",
        }
    }
}

/// A typed reply. Exactly one is emitted per frame the server accepts
/// from the stream, in commit order.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// The request was executed.
    Ok {
        /// Echo of the request id.
        id: String,
        /// `true` when the answer came from the stale-prediction cache
        /// under saturation rather than a fresh model evaluation.
        degraded: bool,
        /// Virtual end-to-end latency (queue wait + service) in
        /// microseconds.
        latency_us: u64,
        /// Operation-specific result.
        payload: Json,
    },
    /// The request (or its frame) was refused with a typed reason.
    Error {
        /// Echo of the request id when one could be recovered; `None`
        /// for frames too damaged to carry one.
        id: Option<String>,
        /// The typed reason.
        code: ErrorCode,
        /// Human-readable detail (stable, deterministic text).
        detail: String,
    },
    /// Executing the request would overrun its virtual deadline budget;
    /// nothing was executed.
    DeadlineExceeded {
        /// Echo of the request id.
        id: String,
        /// The budget the request declared, in microseconds.
        budget_us: u64,
        /// Queue wait plus service cost the server predicted, in
        /// microseconds.
        needed_us: u64,
    },
    /// The bounded queue is saturated and this request lost the
    /// priority comparison; nothing was executed.
    Overloaded {
        /// Echo of the request id.
        id: String,
        /// Estimated virtual drain time of the backlog — retry after
        /// this many microseconds.
        retry_after_us: u64,
    },
}

impl Reply {
    /// The wire line for this reply (no trailing newline).
    pub fn to_line(&self) -> String {
        let value = match self {
            Reply::Ok {
                id,
                degraded,
                latency_us,
                payload,
            } => Json::object([
                ("id", Json::String(id.clone())),
                ("status", Json::String("ok".into())),
                ("degraded", Json::Bool(*degraded)),
                ("latency_us", Json::Number(*latency_us as f64)),
                ("payload", payload.clone()),
            ]),
            Reply::Error { id, code, detail } => Json::object([
                (
                    "id",
                    match id {
                        Some(id) => Json::String(id.clone()),
                        None => Json::Null,
                    },
                ),
                ("status", Json::String("error".into())),
                ("code", Json::String(code.as_str().into())),
                ("detail", Json::String(detail.clone())),
            ]),
            Reply::DeadlineExceeded {
                id,
                budget_us,
                needed_us,
            } => Json::object([
                ("id", Json::String(id.clone())),
                ("status", Json::String("deadline_exceeded".into())),
                ("budget_us", Json::Number(*budget_us as f64)),
                ("needed_us", Json::Number(*needed_us as f64)),
            ]),
            Reply::Overloaded { id, retry_after_us } => Json::object([
                ("id", Json::String(id.clone())),
                ("status", Json::String("overloaded".into())),
                ("retry_after_us", Json::Number(*retry_after_us as f64)),
            ]),
        };
        icm_json::to_string(&value)
    }

    /// The request id this reply answers, when one was recoverable.
    pub fn id(&self) -> Option<&str> {
        match self {
            Reply::Ok { id, .. }
            | Reply::DeadlineExceeded { id, .. }
            | Reply::Overloaded { id, .. } => Some(id),
            Reply::Error { id, .. } => id.as_deref(),
        }
    }

    /// Whether this reply is a typed refusal (`error` status).
    pub fn is_error(&self) -> bool {
        matches!(self, Reply::Error { .. })
    }
}

/// A parse failure carrying whatever id could be recovered, so even a
/// refusal can be correlated by the client.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseRefusal {
    /// Recovered request id, if the frame got far enough to carry one.
    pub id: Option<String>,
    /// The typed reason.
    pub code: ErrorCode,
    /// Deterministic detail text.
    pub detail: String,
}

impl ParseRefusal {
    fn new(id: Option<String>, code: ErrorCode, detail: impl Into<String>) -> Self {
        Self {
            id,
            code,
            detail: detail.into(),
        }
    }
}

fn non_negative_int(value: &Json, field: &str) -> Result<u64, String> {
    let number = value
        .as_f64()
        .ok_or_else(|| format!("`{field}` must be a number, got {}", value.kind()))?;
    if !(number.is_finite() && number >= 0.0 && number.fract() == 0.0) {
        return Err(format!("`{field}` must be a non-negative integer"));
    }
    Ok(number as u64)
}

fn string_field(object: &Json, field: &str) -> Result<String, ParseRefusal> {
    let id = recover_id(object);
    match object.get(field) {
        None => Err(ParseRefusal::new(
            id,
            ErrorCode::MissingField,
            format!("`{field}` is required"),
        )),
        Some(value) => value.as_str().map(str::to_owned).ok_or_else(|| {
            ParseRefusal::new(
                id,
                ErrorCode::BadField,
                format!("`{field}` must be a string, got {}", value.kind()),
            )
        }),
    }
}

fn string_list_field(object: &Json, field: &str) -> Result<Vec<String>, ParseRefusal> {
    let id = recover_id(object);
    let Some(value) = object.get(field) else {
        return Err(ParseRefusal::new(
            id,
            ErrorCode::MissingField,
            format!("`{field}` is required"),
        ));
    };
    let items = value.as_array().ok_or_else(|| {
        ParseRefusal::new(
            id.clone(),
            ErrorCode::BadField,
            format!("`{field}` must be an array, got {}", value.kind()),
        )
    })?;
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        let name = item.as_str().ok_or_else(|| {
            ParseRefusal::new(
                id.clone(),
                ErrorCode::BadField,
                format!("`{field}` entries must be strings, got {}", item.kind()),
            )
        })?;
        out.push(name.to_owned());
    }
    Ok(out)
}

fn recover_id(object: &Json) -> Option<String> {
    object.get("id").and_then(Json::as_str).map(str::to_owned)
}

impl Request {
    /// Default deadline budget (virtual ms) for a request kind.
    pub fn default_deadline_ms(kind: &RequestKind) -> u64 {
        match kind {
            RequestKind::Predict { .. } | RequestKind::Observe { .. } => 10,
            RequestKind::Place { .. } => 100,
            RequestKind::Tick => 200,
            RequestKind::Status | RequestKind::Shutdown => 50,
        }
    }

    /// Parses one request line with strict validation.
    ///
    /// # Errors
    ///
    /// A [`ParseRefusal`] with a typed [`ErrorCode`] and whatever `id`
    /// the frame managed to carry.
    pub fn parse(line: &str) -> Result<Request, ParseRefusal> {
        let value = icm_json::parse(line)
            .map_err(|e| ParseRefusal::new(None, ErrorCode::MalformedJson, e.to_string()))?;
        if value.as_object().is_none() {
            return Err(ParseRefusal::new(
                None,
                ErrorCode::NotAnObject,
                format!("a request must be a JSON object, got {}", value.kind()),
            ));
        }
        let id = recover_id(&value);
        let id = match id {
            Some(id) if !id.is_empty() => id,
            Some(_) => {
                return Err(ParseRefusal::new(
                    None,
                    ErrorCode::BadField,
                    "`id` must be a non-empty string",
                ))
            }
            None => {
                return Err(ParseRefusal::new(
                    None,
                    ErrorCode::MissingField,
                    "`id` is required",
                ))
            }
        };
        let refuse = |code, detail: String| ParseRefusal::new(Some(id.clone()), code, detail);
        let kind_name = string_field(&value, "kind")?;
        let kind = match kind_name.as_str() {
            "predict" => RequestKind::Predict {
                app: string_field(&value, "app")?,
                corunners: string_list_field(&value, "corunners")?,
            },
            "observe" => {
                let normalized = match value.get("normalized") {
                    None => {
                        return Err(refuse(
                            ErrorCode::MissingField,
                            "`normalized` is required".into(),
                        ))
                    }
                    Some(v) => v
                        .as_f64()
                        .filter(|n| n.is_finite() && *n > 0.0)
                        .ok_or_else(|| {
                            refuse(
                                ErrorCode::BadField,
                                "`normalized` must be a finite positive number".into(),
                            )
                        })?,
                };
                RequestKind::Observe {
                    app: string_field(&value, "app")?,
                    corunners: string_list_field(&value, "corunners")?,
                    normalized,
                }
            }
            "place" => {
                let iterations = match value.get("iterations") {
                    None => 400,
                    Some(v) => non_negative_int(v, "iterations")
                        .map_err(|detail| refuse(ErrorCode::BadField, detail))?,
                };
                if iterations == 0 || iterations > MAX_PLACE_ITERATIONS {
                    return Err(refuse(
                        ErrorCode::BadField,
                        format!("`iterations` must be in 1..={MAX_PLACE_ITERATIONS}"),
                    ));
                }
                RequestKind::Place { iterations }
            }
            "tick" => RequestKind::Tick,
            "status" => RequestKind::Status,
            "shutdown" => RequestKind::Shutdown,
            other => {
                return Err(refuse(
                    ErrorCode::UnknownKind,
                    format!("unknown kind `{other}`"),
                ))
            }
        };
        let priority = match value.get("priority") {
            None => 1,
            Some(v) => {
                let p = non_negative_int(v, "priority")
                    .map_err(|detail| refuse(ErrorCode::BadField, detail))?;
                u32::try_from(p)
                    .map_err(|_| refuse(ErrorCode::BadField, "`priority` exceeds u32".into()))?
            }
        };
        let deadline_ms = match value.get("deadline_ms") {
            None => Self::default_deadline_ms(&kind),
            Some(v) => {
                let d = non_negative_int(v, "deadline_ms")
                    .map_err(|detail| refuse(ErrorCode::BadField, detail))?;
                if d == 0 {
                    return Err(refuse(
                        ErrorCode::BadField,
                        "`deadline_ms` must be at least 1".into(),
                    ));
                }
                d
            }
        };
        let at_ms = match value.get("at_ms") {
            None => None,
            Some(v) => Some(
                non_negative_int(v, "at_ms")
                    .map_err(|detail| refuse(ErrorCode::BadField, detail))?,
            ),
        };
        Ok(Request {
            id,
            kind,
            priority,
            deadline_ms,
            at_ms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_minimal_predict_request_parses_with_defaults() {
        let req = Request::parse(r#"{"id":"r1","kind":"predict","app":"M.milc","corunners":[]}"#)
            .expect("parses");
        assert_eq!(req.id, "r1");
        assert_eq!(req.priority, 1);
        assert_eq!(req.deadline_ms, 10);
        assert_eq!(req.at_ms, None);
        assert!(matches!(req.kind, RequestKind::Predict { .. }));
    }

    #[test]
    fn refusals_are_typed_and_carry_the_id_when_possible() {
        let cases: Vec<(&str, ErrorCode, Option<&str>)> = vec![
            ("not json", ErrorCode::MalformedJson, None),
            ("[1,2]", ErrorCode::NotAnObject, None),
            (r#"{"kind":"status"}"#, ErrorCode::MissingField, None),
            (r#"{"id":"x"}"#, ErrorCode::MissingField, Some("x")),
            (
                r#"{"id":"x","kind":"frobnicate"}"#,
                ErrorCode::UnknownKind,
                Some("x"),
            ),
            (
                r#"{"id":"x","kind":"predict"}"#,
                ErrorCode::MissingField,
                Some("x"),
            ),
            (
                r#"{"id":"x","kind":"predict","app":"a","corunners":[1]}"#,
                ErrorCode::BadField,
                Some("x"),
            ),
            (
                r#"{"id":"x","kind":"status","priority":-1}"#,
                ErrorCode::BadField,
                Some("x"),
            ),
            (
                r#"{"id":"x","kind":"status","deadline_ms":0}"#,
                ErrorCode::BadField,
                Some("x"),
            ),
            (
                r#"{"id":"x","kind":"place","iterations":99999}"#,
                ErrorCode::BadField,
                Some("x"),
            ),
        ];
        for (line, code, id) in cases {
            let refusal = Request::parse(line).expect_err(line);
            assert_eq!(refusal.code, code, "{line}");
            assert_eq!(refusal.id.as_deref(), id, "{line}");
        }
    }

    #[test]
    fn replies_serialize_to_stable_single_lines() {
        let ok = Reply::Ok {
            id: "r1".into(),
            degraded: true,
            latency_us: 2050,
            payload: Json::object([("predicted", Json::Number(1.25))]),
        };
        let line = ok.to_line();
        assert!(!line.contains('\n'));
        assert!(line.contains(r#""status":"ok""#));
        assert!(line.contains(r#""degraded":true"#));
        let err = Reply::Error {
            id: None,
            code: ErrorCode::OversizedFrame,
            detail: "too big".into(),
        };
        assert!(err.to_line().contains(r#""code":"oversized_frame""#));
        assert!(err.is_error());
        assert_eq!(err.id(), None);
        let over = Reply::Overloaded {
            id: "r9".into(),
            retry_after_us: 1500,
        };
        assert!(over.to_line().contains(r#""retry_after_us":1500"#));
        assert_eq!(over.id(), Some("r9"));
    }
}
