//! `icm-server` — a crash-survivable placement daemon.
//!
//! The daemon owns a supervised world — profiled interference models,
//! a packed [`icm_manager::Fleet`], and a resumable
//! [`icm_manager::ManagedRun`] — and serves placement, prediction, and
//! observation requests over a line-delimited `icm-json` protocol on
//! stdin/stdout or a unix socket. Its robustness envelope:
//!
//! * **Strict validation** ([`protocol`], [`frame`]): every malformed,
//!   oversized, truncated, or non-UTF-8 frame maps to a typed error
//!   reply; the loop never panics on client bytes and never desyncs.
//! * **Deadline budgets** ([`server`]): each request carries a virtual
//!   deadline; requests that cannot finish inside it are refused with a
//!   typed `deadline_exceeded` before any work is wasted.
//! * **Backpressure** ([`queue`]): a bounded queue sheds the lowest-
//!   priority request (the manager's shed ordering applied to traffic)
//!   with a typed `overloaded` reply quoting a retry horizon.
//! * **Graceful degradation** ([`cache`]): under saturation, `predict`
//!   serves stale-but-bounded cached answers marked `degraded: true`,
//!   and circuit-breaks when a cached answer would rest on `Defaulted`
//!   model cells.
//! * **Crash safety** ([`journal`], [`server`]): a write-ahead reply
//!   journal plus an intake log and periodic checkpoints make `kill -9`
//!   lose no acknowledged reply — recovery re-executes the intake
//!   suffix and proves the regenerated replies byte-identical.
//!
//! All scheduling runs on a deterministic virtual clock; wall time is
//! observed into a side-channel sketch and never put on the wire, so
//! same-seed runs commit byte-identical journals.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod error;
pub mod frame;
pub mod journal;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod world;

pub use cache::{CacheEntry, PredictionCache};
pub use error::ServerError;
pub use frame::{Frame, FrameReader, MAX_FRAME_BYTES};
pub use journal::{JournalEntry, JournalError, LineJournal};
pub use protocol::{ErrorCode, ParseRefusal, Reply, Request, RequestKind};
pub use queue::{Admission, AdmissionQueue, Pending};
pub use server::{Counters, Server, ServerSnapshot, SERVER_SNAPSHOT_VERSION};
pub use world::{build_world, AppSpec, ServerConfig};
