//! LRU cache of sensitivity-curve predictions — the graceful-
//! degradation reservoir.
//!
//! When the annealer (and everything behind it) is saturated, `predict`
//! requests are answered from here: stale but bounded — an entry older
//! than the configured maximum age is never served — and every such
//! reply is marked `degraded: true` on the wire. Entries remember the
//! model-cell quality backing them; a degraded answer that would rest
//! on `Defaulted` cells trips the circuit breaker (a typed
//! `circuit_open` refusal) instead of being served, mirroring the
//! manager's defaulted-cell breaker for reactions.
//!
//! Eviction is least-recently-used on an explicit integer use stamp, so
//! cache behavior replays deterministically and the whole cache can
//! travel in a server snapshot.

/// One cached prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEntry {
    /// Fleet application predicted for.
    pub app: String,
    /// Co-runner signature (sorted distinct names joined with `+`).
    pub key: String,
    /// The cached normalized-runtime prediction.
    pub predicted: f64,
    /// Quality grade of the model cells behind it (`measured`,
    /// `interpolated`, `defaulted`).
    pub quality: String,
    /// Virtual store time in microseconds — bounds staleness.
    pub stored_us: u64,
    /// Last-use stamp for LRU eviction.
    pub used: u64,
}

icm_json::impl_json!(struct CacheEntry { app, key, predicted, quality, stored_us, used });

/// The LRU prediction cache.
#[derive(Debug, Clone)]
pub struct PredictionCache {
    entries: Vec<CacheEntry>,
    capacity: usize,
    clock: u64,
}

impl PredictionCache {
    /// An empty cache bounded at `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            entries: Vec::new(),
            capacity: capacity.max(1),
            clock: 0,
        }
    }

    /// Rebuilds a cache from snapshotted entries (oldest stamps and
    /// all); `clock` resumes past the largest use stamp.
    pub fn restore(capacity: usize, entries: Vec<CacheEntry>) -> Self {
        let clock = entries.iter().map(|e| e.used).max().unwrap_or(0);
        let mut cache = Self {
            entries,
            capacity: capacity.max(1),
            clock,
        };
        cache.entries.truncate(cache.capacity);
        cache
    }

    /// The entries, for snapshotting.
    pub fn entries(&self) -> &[CacheEntry] {
        &self.entries
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up `(app, key)`, refusing entries older than `max_age_us`
    /// at virtual time `now_us`. A hit refreshes the LRU stamp.
    pub fn get(
        &mut self,
        app: &str,
        key: &str,
        now_us: u64,
        max_age_us: u64,
    ) -> Option<CacheEntry> {
        let i = self
            .entries
            .iter()
            .position(|e| e.app == app && e.key == key)?;
        if now_us.saturating_sub(self.entries[i].stored_us) > max_age_us {
            return None;
        }
        self.clock += 1;
        self.entries[i].used = self.clock;
        Some(self.entries[i].clone())
    }

    /// Inserts or refreshes a prediction, evicting the least-recently-
    /// used entry when full.
    pub fn put(&mut self, app: &str, key: &str, predicted: f64, quality: &str, now_us: u64) {
        self.clock += 1;
        if let Some(entry) = self
            .entries
            .iter_mut()
            .find(|e| e.app == app && e.key == key)
        {
            entry.predicted = predicted;
            entry.quality = quality.to_owned();
            entry.stored_us = now_us;
            entry.used = self.clock;
            return;
        }
        if self.entries.len() == self.capacity {
            if let Some(lru) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.used)
                .map(|(i, _)| i)
            {
                self.entries.remove(lru);
            }
        }
        self.entries.push(CacheEntry {
            app: app.to_owned(),
            key: key.to_owned(),
            predicted,
            quality: quality.to_owned(),
            stored_us: now_us,
            used: self.clock,
        });
    }

    /// Drops every entry for `app` — called when an observation lands,
    /// since the online correction it feeds invalidates cached
    /// predictions for that application.
    pub fn invalidate_app(&mut self, app: &str) {
        self.entries.retain(|e| e.app != app);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_refresh_and_staleness_is_bounded() {
        let mut cache = PredictionCache::new(4);
        cache.put("a", "b+c", 1.25, "measured", 1000);
        let hit = cache.get("a", "b+c", 1500, 1000).expect("fresh hit");
        assert_eq!(hit.predicted, 1.25);
        assert!(
            cache.get("a", "b+c", 2001 + 1000, 1000).is_none(),
            "entries beyond max age are never served"
        );
        assert!(cache.get("a", "other", 1500, 1000).is_none());
    }

    #[test]
    fn eviction_is_least_recently_used() {
        let mut cache = PredictionCache::new(2);
        cache.put("a", "x", 1.0, "measured", 0);
        cache.put("b", "x", 1.1, "measured", 0);
        cache.get("a", "x", 0, u64::MAX); // refresh `a`
        cache.put("c", "x", 1.2, "measured", 0); // evicts `b`
        assert!(cache.get("b", "x", 0, u64::MAX).is_none());
        assert!(cache.get("a", "x", 0, u64::MAX).is_some());
        assert!(cache.get("c", "x", 0, u64::MAX).is_some());
    }

    #[test]
    fn observations_invalidate_an_apps_entries() {
        let mut cache = PredictionCache::new(4);
        cache.put("a", "x", 1.0, "measured", 0);
        cache.put("a", "y", 1.1, "measured", 0);
        cache.put("b", "x", 1.2, "measured", 0);
        cache.invalidate_app("a");
        assert_eq!(cache.len(), 1);
        assert!(cache.get("b", "x", 0, u64::MAX).is_some());
    }

    #[test]
    fn restore_round_trips_through_json() {
        let mut cache = PredictionCache::new(4);
        cache.put("a", "x", 1.0, "interpolated", 42);
        cache.get("a", "x", 50, u64::MAX);
        let text = icm_json::to_string(&cache.entries().to_vec());
        let entries: Vec<CacheEntry> = icm_json::from_str(&text).expect("round-trips");
        let mut back = PredictionCache::restore(4, entries);
        let hit = back.get("a", "x", 60, u64::MAX).expect("survives");
        assert_eq!(hit.quality, "interpolated");
    }
}
