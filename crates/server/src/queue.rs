//! Bounded admission queue with priority-aware shedding.
//!
//! The queue holds at most `capacity` pending requests. When a request
//! arrives at a full queue, the *shed candidate* — lowest priority,
//! ties broken toward the newest admission — is refused with a typed
//! `Overloaded` reply instead of growing memory. This is the manager's
//! shed ordering ([`icm_manager::Fleet::shed_candidate`]: lowest
//! priority first, ties toward the lexicographically larger name)
//! applied to traffic, with admission order standing in for the name.
//!
//! Service order is the mirror image: highest priority first, FIFO
//! within a priority. All ordering is on explicit integer stamps, so a
//! replayed arrival trace makes identical decisions every time.

use crate::protocol::Request;

/// One admitted request waiting for service.
#[derive(Debug, Clone, PartialEq)]
pub struct Pending {
    /// Admission stamp: unique, monotone across the server's life.
    pub admitted: u64,
    /// Virtual arrival time in microseconds.
    pub arrival_us: u64,
    /// The validated request.
    pub request: Request,
    /// Predicted service cost in virtual microseconds.
    pub cost_us: u64,
}

/// Outcome of an admission attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum Admission {
    /// The request was queued.
    Admitted,
    /// The queue was full and the *incoming* request lost the priority
    /// comparison.
    RejectedIncoming,
    /// The queue was full; a previously queued request was evicted to
    /// make room (the caller owes it an `Overloaded` reply).
    Evicted(Pending),
}

/// The bounded queue.
#[derive(Debug)]
pub struct AdmissionQueue {
    items: Vec<Pending>,
    capacity: usize,
}

impl AdmissionQueue {
    /// An empty queue bounded at `capacity` (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            items: Vec::new(),
            capacity: capacity.max(1),
        }
    }

    /// Pending request count.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total predicted service cost of everything pending, in virtual
    /// microseconds — the estimated drain time quoted in `Overloaded`
    /// replies.
    pub fn backlog_us(&self) -> u64 {
        self.items.iter().map(|p| p.cost_us).sum()
    }

    /// Admits `pending`, shedding the lowest-priority request (ties
    /// toward the newest admission) when full.
    pub fn admit(&mut self, pending: Pending) -> Admission {
        if self.items.len() < self.capacity {
            self.items.push(pending);
            return Admission::Admitted;
        }
        // Shed candidate over queued ∪ {incoming}: lowest priority,
        // ties toward the newest admission stamp.
        let mut victim: Option<usize> = None; // None = the incoming one
        let mut victim_key = (pending.request.priority, pending.admitted);
        for (i, item) in self.items.iter().enumerate() {
            let key = (item.request.priority, item.admitted);
            if key.0 < victim_key.0 || (key.0 == victim_key.0 && key.1 > victim_key.1) {
                victim = Some(i);
                victim_key = key;
            }
        }
        match victim {
            None => Admission::RejectedIncoming,
            Some(i) => {
                let evicted = self.items.remove(i);
                self.items.push(pending);
                Admission::Evicted(evicted)
            }
        }
    }

    /// Removes and returns the next request to serve: highest priority,
    /// FIFO (oldest admission) within a priority.
    pub fn pop_next(&mut self) -> Option<Pending> {
        let mut best: Option<usize> = None;
        for (i, item) in self.items.iter().enumerate() {
            best = match best {
                None => Some(i),
                Some(b) => {
                    let cur = &self.items[b];
                    let better = item.request.priority > cur.request.priority
                        || (item.request.priority == cur.request.priority
                            && item.admitted < cur.admitted);
                    if better {
                        Some(i)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        best.map(|i| self.items.remove(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::RequestKind;

    fn pending(admitted: u64, priority: u32, cost_us: u64) -> Pending {
        Pending {
            admitted,
            arrival_us: 0,
            request: Request {
                id: format!("r{admitted}"),
                kind: RequestKind::Status,
                priority,
                deadline_ms: 10,
                at_ms: None,
            },
            cost_us,
        }
    }

    #[test]
    fn service_order_is_priority_then_fifo() {
        let mut q = AdmissionQueue::new(8);
        for p in [pending(1, 1, 10), pending(2, 3, 10), pending(3, 3, 10)] {
            assert_eq!(q.admit(p), Admission::Admitted);
        }
        assert_eq!(q.backlog_us(), 30);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop_next().map(|p| p.admitted)).collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn overload_sheds_the_lowest_priority_newest_first() {
        let mut q = AdmissionQueue::new(2);
        q.admit(pending(1, 2, 10));
        q.admit(pending(2, 1, 10));
        // Incoming higher priority evicts the queued priority-1 item.
        match q.admit(pending(3, 3, 10)) {
            Admission::Evicted(victim) => assert_eq!(victim.admitted, 2),
            other => panic!("expected eviction, got {other:?}"),
        }
        // Incoming lowest priority is itself refused.
        assert_eq!(q.admit(pending(4, 0, 10)), Admission::RejectedIncoming);
        // Priority tie: the newest admission is the victim — the
        // incoming request.
        assert_eq!(q.admit(pending(5, 2, 10)), Admission::RejectedIncoming);
        assert_eq!(q.len(), 2);
    }
}
