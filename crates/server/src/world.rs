//! The daemon's world: configuration, fleet construction, and the
//! placement-cost arithmetic its `predict`/`place` answers rest on.
//!
//! The server owns exactly what the endurance experiment owns — a
//! simulated testbed, a supervised [`Fleet`] with online models, and a
//! resumable [`icm_manager::ManagedRun`] — built deterministically from
//! a seed, so a daemon restarted from scratch with the same
//! [`ServerConfig`] reconstructs the same world bit for bit.

use icm_core::model::ModelBuilder;
use icm_core::{OnlineModel, ProfilingAlgorithm};
use icm_manager::{Fleet, ManagedApp, ManagedRun, ManagerConfig};
use icm_placement::{PlacementError, PlacementState, QosConfig};
use icm_simcluster::SimTestbed;
use icm_workloads::{Catalog, TestbedBuilder};

use crate::error::ServerError;

/// Hosts every supervised application spans.
pub const SPAN: usize = 4;
/// Placement slots per host.
pub const SLOTS_PER_HOST: usize = 2;

/// One application the daemon supervises.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppSpec {
    /// Catalog name.
    pub name: String,
    /// Shedding priority (higher survives longer).
    pub priority: u32,
}

icm_json::impl_json!(struct AppSpec { name, priority });

/// Daemon configuration. Everything that shapes deterministic behavior
/// lives here and travels inside every snapshot, so a resumed daemon
/// can never disagree with the world it is resuming.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// Master seed for testbed, profiling and placement randomness.
    pub seed: u64,
    /// Reduced profiling grids for smoke tests and CI.
    pub fast: bool,
    /// The supervised applications.
    pub apps: Vec<AppSpec>,
    /// Bounded request-queue capacity (requests).
    pub queue_capacity: usize,
    /// LRU prediction-cache capacity (entries).
    pub cache_capacity: usize,
    /// Oldest cached prediction the degraded path may serve, in virtual
    /// microseconds.
    pub cache_max_age_us: u64,
    /// Queue backlog (virtual microseconds of pending service) beyond
    /// which `predict` degrades to the cache.
    pub saturation_us: u64,
    /// Committed replies between [`WorldSnapshot`]-carrying
    /// checkpoints; `0` disables checkpointing.
    ///
    /// [`WorldSnapshot`]: icm_manager::snapshot::WorldSnapshot
    pub checkpoint_every: u64,
    /// Checkpoint generations to keep when pruning.
    pub keep_checkpoints: usize,
    /// fsync the journal and intake log on every append. On for real
    /// daemons; off for in-process load drivers and benches.
    pub sync: bool,
}

icm_json::impl_json!(struct ServerConfig {
    seed,
    fast,
    apps,
    queue_capacity,
    cache_capacity,
    cache_max_age_us,
    saturation_us,
    checkpoint_every,
    keep_checkpoints,
    sync,
});

impl ServerConfig {
    /// The default daemon configuration for a seed: a small supervised
    /// fleet, an 8-deep queue, a 64-entry cache serving entries up to
    /// 60 virtual seconds stale, checkpoints every 32 commits keeping
    /// the last 4 generations.
    pub fn new(seed: u64, fast: bool) -> Self {
        let apps = if fast {
            vec![("M.milc", 2), ("H.KM", 1)]
        } else {
            vec![("M.milc", 3), ("M.Gems", 2), ("H.KM", 1)]
        };
        Self {
            seed,
            fast,
            apps: apps
                .into_iter()
                .map(|(name, priority)| AppSpec {
                    name: name.to_owned(),
                    priority,
                })
                .collect(),
            queue_capacity: 8,
            cache_capacity: 64,
            cache_max_age_us: 60_000_000,
            saturation_us: 4_000,
            checkpoint_every: 32,
            keep_checkpoints: 4,
            sync: true,
        }
    }

    /// The manager configuration the supervised run uses: an
    /// effectively unbounded horizon (the daemon ticks on demand), warm
    /// re-anneal budgets, no scripted environment drift.
    pub fn manager_config(&self) -> ManagerConfig {
        ManagerConfig {
            ticks: 1_000_000,
            seed: self.seed,
            migration_cost_s: 30.0,
            initial_iterations: if self.fast { 600 } else { 1500 },
            reanneal_iterations: if self.fast { 250 } else { 400 },
            slo_trip_after: 2,
            qos: QosConfig {
                qos_fraction: 0.6,
                ..QosConfig::default()
            },
            search_lanes: 2,
            environment: None,
            ..ManagerConfig::default()
        }
    }
}

/// Builds the daemon's world from scratch: profiles every supervised
/// application on the paper's 8-host private testbed at the deployment
/// span, packs the fleet, and runs the cold initial placement.
///
/// # Errors
///
/// Model, fleet-geometry and manager failures.
pub fn build_world(
    config: &ServerConfig,
) -> Result<(SimTestbed, Fleet, ManagerConfig, ManagedRun), ServerError> {
    let mut adapter = TestbedBuilder::new(&Catalog::paper())
        .seed(config.seed)
        .build();
    let hosts = adapter.sim().cluster().hosts();
    let mut managed = Vec::with_capacity(config.apps.len());
    let mut built: Vec<(String, icm_core::InterferenceModel)> = Vec::new();
    for spec in &config.apps {
        let model = match built.iter().find(|(name, _)| name == &spec.name) {
            Some((_, model)) => model.clone(),
            None => {
                let mut builder = ModelBuilder::new(spec.name.as_str());
                builder
                    .algorithm(ProfilingAlgorithm::BinaryOptimized)
                    .policy_samples(if config.fast { 12 } else { 60 })
                    .solo_repeats(if config.fast { 1 } else { 3 })
                    .seed(config.seed.wrapping_add(0x40DE1))
                    .hosts(SPAN);
                let model = builder.build(&mut adapter)?;
                built.push((spec.name.clone(), model.clone()));
                model
            }
        };
        managed.push(ManagedApp::new(
            spec.name.clone(),
            spec.priority,
            OnlineModel::new(model),
        ));
    }
    let fleet = Fleet::new(hosts, SLOTS_PER_HOST, SPAN, managed)?;
    let testbed = adapter.into_sim();
    let manager_config = config.manager_config();
    let run = ManagedRun::start(&testbed, &fleet, &manager_config, true)?;
    Ok((testbed, fleet, manager_config, run))
}

/// The co-location context of one fleet application under a declared
/// co-runner set: the bubble-pressure vector on every host of its span
/// and the co-runner signature key the online model's per-key
/// corrections hang off.
///
/// Returns `None` when `app` or a co-runner is not in the fleet.
pub fn context_for(
    fleet: &Fleet,
    app: &str,
    corunners: &[String],
) -> Option<(usize, Vec<f64>, String)> {
    let index = fleet.apps().iter().position(|a| a.name == app)?;
    let mut names: Vec<&str> = Vec::new();
    let mut pressure = 0.0;
    for corunner in corunners {
        let other = fleet.apps().iter().find(|a| &a.name == corunner)?;
        if names.contains(&other.name.as_str()) {
            continue;
        }
        names.push(other.name.as_str());
        pressure += other.online.base().bubble_score();
    }
    names.sort_unstable();
    let key = if names.is_empty() {
        "none".to_owned()
    } else {
        names.join("+")
    };
    Some((index, vec![pressure; fleet.span()], key))
}

/// The pooled fleet cost of a candidate placement: the sum over live
/// applications of predicted normalized runtime × solo seconds, the
/// same objective the manager's searches minimize (without crash
/// suspicion, which a placement *query* has no business pricing).
///
/// # Errors
///
/// Propagates predictor failures.
pub fn fleet_cost(fleet: &Fleet, state: &PlacementState) -> Result<f64, PlacementError> {
    let problem = fleet.problem();
    let per_host = problem.slots_per_host();
    let real = fleet.apps().len();
    let mut residents: Vec<Vec<usize>> = vec![Vec::new(); problem.hosts()];
    let mut app_hosts: Vec<Vec<usize>> = vec![Vec::new(); real];
    for (slot, &w) in state.assignment().iter().enumerate() {
        let host = slot / per_host;
        if w < real {
            residents[host].push(w);
            app_hosts[w].push(host);
        }
    }
    for list in &mut residents {
        list.sort_unstable();
    }
    let mut total = 0.0;
    for (i, app) in fleet.apps().iter().enumerate() {
        let mut pressures = Vec::with_capacity(app_hosts[i].len());
        let mut names: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
        for &host in &app_hosts[i] {
            let mut pressure = 0.0;
            for &j in &residents[host] {
                if j == i {
                    continue;
                }
                pressure += fleet.apps()[j].online.base().bubble_score();
                names.insert(fleet.apps()[j].name.as_str());
            }
            pressures.push(pressure);
        }
        let key = if names.is_empty() {
            "none".to_owned()
        } else {
            names.into_iter().collect::<Vec<_>>().join("+")
        };
        let predicted = app
            .online
            .predict_for(&key, &pressures)
            .map_err(|e| PlacementError::Predictor(e.to_string()))?;
        total += predicted * app.online.base().solo_seconds();
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_round_trips_through_json() {
        let config = ServerConfig::new(2016, true);
        let text = icm_json::to_string(&config);
        let back: ServerConfig = icm_json::from_str(&text).expect("round-trips");
        assert_eq!(config, back);
    }

    #[test]
    fn context_resolves_fleet_members_and_refuses_strangers() {
        let config = ServerConfig::new(2016, true);
        let (_, fleet, _, _) = build_world(&config).expect("builds");
        let (index, pressures, key) =
            context_for(&fleet, "M.milc", &["H.KM".to_owned()]).expect("resolves");
        assert_eq!(index, 0);
        assert_eq!(pressures.len(), SPAN);
        assert!(pressures[0] > 0.0);
        assert_eq!(key, "H.KM");
        let (_, zero, none_key) = context_for(&fleet, "H.KM", &[]).expect("resolves");
        assert_eq!(none_key, "none");
        assert_eq!(zero, vec![0.0; SPAN]);
        assert!(context_for(&fleet, "nope", &[]).is_none());
        assert!(context_for(&fleet, "M.milc", &["nope".to_owned()]).is_none());
    }
}
