//! The `icm-server` daemon binary.
//!
//! ```text
//! icm-server [--state DIR] [--input FILE] [--socket PATH]
//!            [--seed N] [--fast] [--checkpoint-every N]
//!            [--no-sync] [--kill-after-commits N] [--quiet]
//! ```
//!
//! By default the daemon reads request lines from stdin and writes
//! reply lines to stdout. `--input` serves a scripted request file
//! instead; `--socket` (unix) accepts one connection at a time and
//! serves it. With `--state DIR`, crash safety is armed: acknowledged
//! replies are journaled write-ahead, accepted frames logged, and the
//! world checkpointed — a killed daemon restarted on the same directory
//! resumes with nothing acknowledged lost.
//!
//! `--kill-after-commits N` aborts the process (SIGABRT, no cleanup —
//! the moral equivalent of `kill -9`) after the Nth committed reply.
//! It exists for crash drills: tests and `verify.sh` use it to prove
//! recovery instead of trusting it.

use std::io::{BufReader, Read, Write};
use std::path::PathBuf;
use std::process::ExitCode;

use icm_server::frame::{Frame, FrameReader};
use icm_server::server::Server;
use icm_server::world::ServerConfig;

struct Options {
    state: Option<PathBuf>,
    input: Option<PathBuf>,
    socket: Option<PathBuf>,
    seed: u64,
    fast: bool,
    checkpoint_every: Option<u64>,
    no_sync: bool,
    kill_after_commits: Option<u64>,
    quiet: bool,
}

fn parse_options() -> Result<Options, String> {
    let mut options = Options {
        state: None,
        input: None,
        socket: None,
        seed: 2016,
        fast: false,
        checkpoint_every: None,
        no_sync: false,
        kill_after_commits: None,
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--state" => options.state = Some(PathBuf::from(value("--state")?)),
            "--input" => options.input = Some(PathBuf::from(value("--input")?)),
            "--socket" => options.socket = Some(PathBuf::from(value("--socket")?)),
            "--seed" => {
                options.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--fast" => options.fast = true,
            "--checkpoint-every" => {
                options.checkpoint_every = Some(
                    value("--checkpoint-every")?
                        .parse()
                        .map_err(|e| format!("--checkpoint-every: {e}"))?,
                );
            }
            "--no-sync" => options.no_sync = true,
            "--kill-after-commits" => {
                options.kill_after_commits = Some(
                    value("--kill-after-commits")?
                        .parse()
                        .map_err(|e| format!("--kill-after-commits: {e}"))?,
                );
            }
            "--quiet" => options.quiet = true,
            "--help" | "-h" => {
                println!(
                    "usage: icm-server [--state DIR] [--input FILE] [--socket PATH] \
                     [--seed N] [--fast] [--checkpoint-every N] [--no-sync] \
                     [--kill-after-commits N] [--quiet]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if options.input.is_some() && options.socket.is_some() {
        return Err("--input and --socket are mutually exclusive".into());
    }
    Ok(options)
}

/// Pumps one frame stream through the server, writing reply lines to
/// `out`. Returns the number of replies written.
fn serve_stream(
    server: &mut Server,
    reader: &mut FrameReader<impl std::io::BufRead>,
    out: &mut impl Write,
    kill_after: Option<u64>,
) -> Result<u64, String> {
    let mut written = 0u64;
    loop {
        let frame = reader.next_frame().map_err(|e| e.to_string())?;
        let done = matches!(frame, Frame::Eof);
        let replies = if done {
            server.finish().map_err(|e| e.to_string())?
        } else {
            server.handle_frame(&frame).map_err(|e| e.to_string())?
        };
        for line in &replies {
            writeln!(out, "{line}").map_err(|e| e.to_string())?;
            written += 1;
            if let Some(limit) = kill_after {
                if server.committed() >= limit {
                    // Crash drill: die without unwinding, flushing, or
                    // checkpointing — recovery must cope with exactly
                    // this.
                    std::process::abort();
                }
            }
        }
        out.flush().map_err(|e| e.to_string())?;
        if done || server.shutting_down() && server.queue_len() == 0 {
            if done {
                return Ok(written);
            }
            let tail = server.finish().map_err(|e| e.to_string())?;
            for line in &tail {
                writeln!(out, "{line}").map_err(|e| e.to_string())?;
                written += 1;
            }
            out.flush().map_err(|e| e.to_string())?;
            return Ok(written);
        }
    }
}

fn run() -> Result<(), String> {
    let options = parse_options()?;
    let mut config = ServerConfig::new(options.seed, options.fast);
    if let Some(every) = options.checkpoint_every {
        config.checkpoint_every = every;
    }
    if options.no_sync {
        config.sync = false;
    }
    let mut server = Server::start(config, options.state.as_deref()).map_err(|e| e.to_string())?;
    if !options.quiet {
        eprintln!(
            "icm-server: world ready (seed {}, {} apps, {} replies already committed)",
            server.config().seed,
            server.config().apps.len(),
            server.committed()
        );
    }
    let kill_after = options.kill_after_commits;
    if let Some(path) = &options.socket {
        #[cfg(unix)]
        {
            use std::os::unix::net::UnixListener;
            let _ = std::fs::remove_file(path);
            let listener = UnixListener::bind(path).map_err(|e| e.to_string())?;
            if !options.quiet {
                eprintln!("icm-server: listening on {}", path.display());
            }
            loop {
                let (stream, _) = listener.accept().map_err(|e| e.to_string())?;
                let mut out = stream.try_clone().map_err(|e| e.to_string())?;
                let mut reader = FrameReader::new(BufReader::new(stream));
                serve_stream(&mut server, &mut reader, &mut out, kill_after)?;
                if server.shutting_down() {
                    let _ = std::fs::remove_file(path);
                    return Ok(());
                }
            }
        }
        #[cfg(not(unix))]
        {
            return Err("--socket requires a unix platform".into());
        }
    }
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    match &options.input {
        Some(path) => {
            let file = std::fs::File::open(path).map_err(|e| e.to_string())?;
            let mut reader = FrameReader::new(BufReader::new(file));
            // A scripted input file is a durable request queue: a
            // restarted daemon skips the frames its previous life
            // already consumed (they live in the intake log and were
            // re-applied by recovery).
            for _ in 0..server.consumed_frames() {
                if matches!(reader.next_frame().map_err(|e| e.to_string())?, Frame::Eof) {
                    break;
                }
            }
            serve_stream(&mut server, &mut reader, &mut out, kill_after)?;
        }
        None => {
            let stdin = std::io::stdin();
            let mut reader = FrameReader::new(BufReader::new(LockedStdin(stdin.lock())));
            serve_stream(&mut server, &mut reader, &mut out, kill_after)?;
        }
    }
    Ok(())
}

/// Adapter so the frame reader can own a buffered stdin lock.
struct LockedStdin(std::io::StdinLock<'static>);

impl Read for LockedStdin {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.0.read(buf)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("icm-server: {message}");
            ExitCode::FAILURE
        }
    }
}
