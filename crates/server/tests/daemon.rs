//! End-to-end daemon tests: the robustness envelope exercised through
//! the same engine the binary runs, plus a *process-level* crash drill
//! that really aborts a child process mid-stream and proves recovery.

use std::path::{Path, PathBuf};

use icm_json::Json;
use icm_server::frame::Frame;
use icm_server::server::Server;
use icm_server::world::ServerConfig;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("icm-daemon-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn feed(server: &mut Server, line: &str) -> Vec<Json> {
    server
        .handle_frame(&Frame::Line(line.to_owned()))
        .expect("frame handled")
        .iter()
        .map(|l| icm_json::parse(l).expect("reply parses"))
        .collect()
}

fn status_of(reply: &Json) -> &str {
    reply.get("status").and_then(Json::as_str).expect("status")
}

fn fast_config() -> ServerConfig {
    let mut config = ServerConfig::new(2016, true);
    config.sync = false;
    config
}

#[test]
fn interactive_requests_round_trip_without_persistence() {
    let mut server = Server::start(fast_config(), None).expect("starts");
    // Interactive (no at_ms) requests are served before the next frame.
    let replies = feed(
        &mut server,
        r#"{"id":"p1","kind":"predict","app":"M.milc","corunners":["H.KM"]}"#,
    );
    assert_eq!(replies.len(), 1);
    assert_eq!(status_of(&replies[0]), "ok");
    assert_eq!(
        replies[0].get("degraded").and_then(Json::as_bool),
        Some(false)
    );
    let predicted = replies[0]
        .get("payload")
        .and_then(|p| p.get("predicted"))
        .and_then(Json::as_f64)
        .expect("prediction");
    assert!(predicted >= 1.0, "co-located runtime dilates: {predicted}");

    let replies = feed(
        &mut server,
        r#"{"id":"o1","kind":"observe","app":"M.milc","corunners":["H.KM"],"normalized":1.31}"#,
    );
    assert_eq!(status_of(&replies[0]), "ok");

    let replies = feed(
        &mut server,
        r#"{"id":"pl1","kind":"place","iterations":120,"deadline_ms":500}"#,
    );
    assert_eq!(status_of(&replies[0]), "ok");
    assert!(
        replies[0]
            .get("payload")
            .and_then(|p| p.get("cost"))
            .and_then(Json::as_f64)
            .expect("cost")
            > 0.0
    );

    let replies = feed(&mut server, r#"{"id":"t1","kind":"tick"}"#);
    assert_eq!(status_of(&replies[0]), "ok");

    let replies = feed(&mut server, r#"{"id":"s1","kind":"status"}"#);
    assert_eq!(status_of(&replies[0]), "ok");
    let completed = replies[0]
        .get("payload")
        .and_then(|p| p.get("completed"))
        .and_then(Json::as_f64)
        .expect("completed");
    assert_eq!(completed, 5.0);

    // Malformed frames get typed errors and never poison the loop.
    let replies = feed(&mut server, "this is not json");
    assert_eq!(status_of(&replies[0]), "error");
    assert_eq!(
        replies[0].get("code").and_then(Json::as_str),
        Some("malformed_json")
    );
    let replies = feed(
        &mut server,
        r#"{"id":"u1","kind":"predict","app":"nope","corunners":[]}"#,
    );
    assert_eq!(
        replies[0].get("code").and_then(Json::as_str),
        Some("unknown_app")
    );

    // Shutdown drains, then refuses.
    let replies = feed(&mut server, r#"{"id":"x1","kind":"shutdown"}"#);
    assert_eq!(status_of(&replies[0]), "ok");
    assert!(server.shutting_down());
    let replies = feed(&mut server, r#"{"id":"late","kind":"status"}"#);
    assert_eq!(
        replies[0].get("code").and_then(Json::as_str),
        Some("shutting_down")
    );
}

#[test]
fn bursts_shed_typed_overloads_and_admitted_requests_meet_deadlines() {
    let mut server = Server::start(fast_config(), None).expect("starts");
    let capacity = server.config().queue_capacity;
    let burst = capacity + 6;
    let mut statuses: Vec<Json> = Vec::new();
    for i in 0..burst {
        statuses.extend(feed(
            &mut server,
            &format!(
                r#"{{"id":"b{i}","kind":"predict","app":"M.milc","corunners":[],"deadline_ms":50,"at_ms":1000}}"#
            ),
        ));
    }
    // Everything so far queued or shed — drain with a later arrival.
    statuses.extend(feed(
        &mut server,
        r#"{"id":"drain","kind":"status","at_ms":5000}"#,
    ));
    statuses.extend(
        server
            .finish()
            .expect("drains")
            .iter()
            .map(|l| icm_json::parse(l).unwrap()),
    );
    let shed: Vec<&Json> = statuses
        .iter()
        .filter(|r| status_of(r) == "overloaded")
        .collect();
    let ok: Vec<&Json> = statuses.iter().filter(|r| status_of(r) == "ok").collect();
    assert_eq!(shed.len(), burst - capacity, "typed sheds beyond capacity");
    for reply in &shed {
        assert!(
            reply
                .get("retry_after_us")
                .and_then(Json::as_f64)
                .expect("retry horizon")
                > 0.0
        );
    }
    // Every admitted request completed inside its declared budget.
    assert_eq!(ok.len(), capacity + 1, "admitted burst + drain status");
    for reply in &ok {
        if reply.get("id").and_then(Json::as_str) == Some("drain") {
            continue;
        }
        let latency = reply
            .get("latency_us")
            .and_then(Json::as_f64)
            .expect("latency");
        assert!(latency <= 50_000.0, "within the 50ms budget: {latency}");
    }
    assert_eq!(server.counters().shed, (burst - capacity) as u64);
}

#[test]
fn saturation_serves_degraded_answers_and_deadlines_refuse_late_work() {
    let mut server = Server::start(fast_config(), None).expect("starts");
    // Warm the cache with a fresh interactive prediction.
    let replies = feed(
        &mut server,
        r#"{"id":"warm","kind":"predict","app":"M.milc","corunners":["H.KM"]}"#,
    );
    assert_eq!(status_of(&replies[0]), "ok");
    // Saturate the backlog with placement work, then ask again: the
    // high-priority predict is served first, sees the saturated queue,
    // and answers from the cache, marked degraded.
    let mut replies = Vec::new();
    for i in 0..4 {
        replies.extend(feed(
            &mut server,
            &format!(
                r#"{{"id":"w{i}","kind":"place","iterations":500,"priority":1,"deadline_ms":900,"at_ms":1000}}"#
            ),
        ));
    }
    replies.extend(feed(
        &mut server,
        r#"{"id":"hot","kind":"predict","app":"M.milc","corunners":["H.KM"],"priority":5,"deadline_ms":50,"at_ms":1000}"#,
    ));
    replies.extend(
        server
            .finish()
            .expect("drains")
            .iter()
            .map(|l| icm_json::parse(l).unwrap()),
    );
    let hot = replies
        .iter()
        .find(|r| r.get("id").and_then(Json::as_str) == Some("hot"))
        .expect("hot reply");
    assert_eq!(status_of(hot), "ok");
    assert_eq!(hot.get("degraded").and_then(Json::as_bool), Some(true));
    assert_eq!(
        hot.get("payload")
            .and_then(|p| p.get("cached"))
            .and_then(Json::as_bool),
        Some(true)
    );
    assert!(server.counters().degraded >= 1);

    // A tight deadline that cannot cover queue wait + service is
    // refused before any work is burned.
    let mut replies = Vec::new();
    for i in 0..4 {
        replies.extend(feed(
            &mut server,
            &format!(
                r#"{{"id":"z{i}","kind":"place","iterations":500,"deadline_ms":900,"at_ms":20000}}"#
            ),
        ));
    }
    replies.extend(feed(
        &mut server,
        r#"{"id":"late","kind":"predict","app":"M.milc","corunners":[],"priority":0,"deadline_ms":1,"at_ms":20000}"#,
    ));
    replies.extend(
        server
            .finish()
            .expect("drains")
            .iter()
            .map(|l| icm_json::parse(l).unwrap()),
    );
    let late = replies
        .iter()
        .find(|r| r.get("id").and_then(Json::as_str) == Some("late"))
        .expect("late reply");
    assert_eq!(status_of(late), "deadline_exceeded");
    assert!(
        late.get("needed_us")
            .and_then(Json::as_f64)
            .expect("needed")
            > late
                .get("budget_us")
                .and_then(Json::as_f64)
                .expect("budget")
    );
}

#[test]
fn the_circuit_opens_when_a_degraded_answer_would_rest_on_defaulted_cells() {
    let mut server = Server::start(fast_config(), None).expect("starts");
    let row = r#"["Defaulted","Defaulted","Defaulted","Defaulted","Defaulted"]"#;
    let grid_text = format!(r#"{{"n":8,"m":4,"cells":[{}]}}"#, vec![row; 8].join(","));
    let grid: icm_core::QualityGrid = icm_json::from_str(&grid_text).expect("grid parses");
    for app in server.fleet_mut().apps_mut() {
        app.quality = Some(grid.clone());
    }
    // Fresh predictions still serve (marked with their quality)…
    let replies = feed(
        &mut server,
        r#"{"id":"warm","kind":"predict","app":"M.milc","corunners":["H.KM"]}"#,
    );
    assert_eq!(status_of(&replies[0]), "ok");
    assert_eq!(
        replies[0]
            .get("payload")
            .and_then(|p| p.get("quality"))
            .and_then(Json::as_str),
        Some("defaulted")
    );
    // …but the degraded path refuses to lean on them.
    let mut replies = Vec::new();
    for i in 0..4 {
        replies.extend(feed(
            &mut server,
            &format!(
                r#"{{"id":"w{i}","kind":"place","iterations":500,"priority":1,"deadline_ms":900,"at_ms":1000}}"#
            ),
        ));
    }
    replies.extend(feed(
        &mut server,
        r#"{"id":"hot","kind":"predict","app":"M.milc","corunners":["H.KM"],"priority":5,"deadline_ms":50,"at_ms":1000}"#,
    ));
    replies.extend(
        server
            .finish()
            .expect("drains")
            .iter()
            .map(|l| icm_json::parse(l).unwrap()),
    );
    let hot = replies
        .iter()
        .find(|r| r.get("id").and_then(Json::as_str) == Some("hot"))
        .expect("hot reply");
    assert_eq!(status_of(hot), "error");
    assert_eq!(hot.get("code").and_then(Json::as_str), Some("circuit_open"));
}

// ---------------------------------------------------------------------
// The process-level crash drill.
//
// A child process (this same test binary, re-executed with an env
// marker) serves a fixed scripted stream against a state directory and
// `abort()`s after N committed replies — no unwinding, no flushing, no
// goodbye. The parent then reruns the child on the same directory to
// completion and proves the journal byte-identical to an uninterrupted
// run's. This is `kill -9` by another name, without the signal-
// delivery race.
// ---------------------------------------------------------------------

const CHILD_STATE: &str = "ICM_DAEMON_CHILD_STATE";
const CHILD_KILL_AFTER: &str = "ICM_DAEMON_CHILD_KILL_AFTER";

/// The scripted stream the crash drill serves: bursts that overload the
/// queue, malformed and damaged frames, observations that move the
/// model, and enough traffic to cross several checkpoints.
fn drill_frames() -> Vec<Frame> {
    let mut frames = Vec::new();
    for round in 0u64..6 {
        let at = 1_000 + round * 400;
        for i in 0..4 {
            frames.push(Frame::Line(format!(
                r#"{{"id":"r{round}-{i}","kind":"predict","app":"M.milc","corunners":["H.KM"],"priority":{i},"deadline_ms":80,"at_ms":{at}}}"#
            )));
        }
        frames.push(Frame::Line(format!(
            r#"{{"id":"o{round}","kind":"observe","app":"M.milc","corunners":["H.KM"],"normalized":1.2{round},"at_ms":{at}}}"#,
        )));
        if round % 2 == 0 {
            frames.push(Frame::Line("{broken json".to_owned()));
            frames.push(Frame::InvalidUtf8);
            frames.push(Frame::Oversized(200_000));
        }
        frames.push(Frame::Line(format!(
            r#"{{"id":"s{round}","kind":"status","at_ms":{}}}"#,
            at + 300
        )));
    }
    frames
}

fn run_drill_child(state: &Path, kill_after: Option<u64>) {
    let mut config = ServerConfig::new(2016, true);
    config.sync = false; // abort() keeps kernel-buffered writes; only power loss would not
    config.checkpoint_every = 5;
    config.keep_checkpoints = 2;
    let mut server = Server::start(config, Some(state)).expect("child starts");
    // A recovered life resumes the script where the dead one stopped —
    // frames up to `consumed_frames` live in the intake log and were
    // already re-applied by recovery.
    let consumed = server.consumed_frames() as usize;
    for frame in drill_frames().into_iter().skip(consumed) {
        server.handle_frame(&frame).expect("child serves");
        if let Some(limit) = kill_after {
            if server.committed() >= limit {
                std::process::abort();
            }
        }
    }
    server.finish().expect("child drains");
}

/// Child hook: when the env marker is set, this "test" is the crash
/// drill's child process. Without the marker it does nothing.
#[test]
fn crash_drill_child() {
    let Ok(state) = std::env::var(CHILD_STATE) else {
        return;
    };
    let kill_after = std::env::var(CHILD_KILL_AFTER)
        .ok()
        .map(|v| v.parse().expect("kill-after parses"));
    run_drill_child(Path::new(&state), kill_after);
}

fn spawn_child(state: &Path, kill_after: Option<u64>) -> std::process::Output {
    let exe = std::env::current_exe().expect("own path");
    let mut cmd = std::process::Command::new(exe);
    cmd.args(["--exact", "crash_drill_child", "--nocapture"])
        .env(CHILD_STATE, state)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null());
    match kill_after {
        Some(n) => cmd.env(CHILD_KILL_AFTER, n.to_string()),
        None => cmd.env_remove(CHILD_KILL_AFTER),
    };
    cmd.output().expect("child runs")
}

#[test]
fn kill_dash_nine_loses_no_acknowledged_reply() {
    let reference = scratch("drill-ref");
    let crashed = scratch("drill-crash");

    // Uninterrupted reference run.
    let out = spawn_child(&reference, None);
    assert!(out.status.success(), "reference child failed: {out:?}");

    // Crashed run: abort mid-stream, then resume on the same state.
    let out = spawn_child(&crashed, Some(12));
    assert!(!out.status.success(), "the child must die mid-stream");
    let partial = std::fs::read(crashed.join("journal.log")).expect("partial journal");
    assert!(!partial.is_empty(), "the crashed run committed replies");
    let out = spawn_child(&crashed, None);
    assert!(out.status.success(), "recovery failed: {out:?}");

    // No acknowledged reply was lost, none was altered: the recovered
    // journal is byte-identical to the uninterrupted run's.
    let a = std::fs::read(reference.join("journal.log")).expect("reference journal");
    let b = std::fs::read(crashed.join("journal.log")).expect("recovered journal");
    assert!(!a.is_empty());
    assert_eq!(a, b, "journals diverge after kill -9 + recovery");
    assert!(
        b.len() >= partial.len(),
        "recovery never shrinks committed history"
    );
    assert!(
        b.starts_with(&partial[..partial.len().saturating_sub(200)]),
        "recovered journal extends the crashed prefix"
    );

    // Checkpoint pruning bounded the store in both lives.
    let generations = std::fs::read_dir(crashed.join("checkpoints"))
        .expect("checkpoint dir")
        .count();
    assert!(
        (1..=3).contains(&generations),
        "pruning keeps the store bounded, got {generations}"
    );

    let _ = std::fs::remove_dir_all(&reference);
    let _ = std::fs::remove_dir_all(&crashed);
}

#[test]
fn same_seed_reruns_commit_byte_identical_journals() {
    let a = scratch("det-a");
    let b = scratch("det-b");
    for dir in [&a, &b] {
        let mut config = ServerConfig::new(2016, true);
        config.sync = false;
        config.checkpoint_every = 7;
        let mut server = Server::start(config, Some(dir)).expect("starts");
        for frame in drill_frames() {
            server.handle_frame(&frame).expect("serves");
        }
        server.finish().expect("drains");
    }
    let journal_a = std::fs::read(a.join("journal.log")).expect("journal a");
    let journal_b = std::fs::read(b.join("journal.log")).expect("journal b");
    assert!(!journal_a.is_empty());
    assert_eq!(journal_a, journal_b, "same seed, same frames, same bytes");
    let _ = std::fs::remove_dir_all(&a);
    let _ = std::fs::remove_dir_all(&b);
}

#[test]
fn snapshots_refuse_unknown_versions() {
    use icm_server::server::ServerSnapshot;
    let err = ServerSnapshot::parse(r#"{"version":99}"#).expect_err("refused");
    assert!(err.to_string().contains("version"), "{err}");
}
