//! Seeded fuzz-style tests for the protocol boundary: random byte
//! soup through the frame reader, mutated requests through the full
//! server. The adversary is deterministic (`icm-rng`), so a failure
//! reproduces exactly — and the invariants are the envelope's:
//! malformed input yields one typed frame or reply, never a panic,
//! never a desynced stream, never an `Err` from in-memory I/O.

use std::io::{BufReader, Cursor};

use icm_rng::{split_seed, Rng};
use icm_server::frame::{Frame, FrameReader, MAX_FRAME_BYTES};
use icm_server::server::Server;
use icm_server::world::ServerConfig;

const REPLY_STATUSES: [&str; 4] = ["ok", "error", "deadline_exceeded", "overloaded"];

fn fast_config(seed: u64) -> ServerConfig {
    let mut config = ServerConfig::new(seed, true);
    config.sync = false;
    config
}

/// A seeded stream of hostile bytes: newline-rich, brace-rich, with
/// deliberate non-UTF-8 runs and the occasional enormous line.
fn byte_soup(rng: &mut Rng, len: usize) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(len);
    while bytes.len() < len {
        let roll = rng.next_u64() % 100;
        if roll < 12 {
            bytes.push(b'\n');
        } else if roll < 20 {
            bytes.push(0xF0 + (rng.next_u64() % 16) as u8); // invalid UTF-8 lead bytes
        } else if roll < 24 {
            // A long run without a newline, to stress the bounded drain.
            let run = 64 + (rng.next_u64() % 512) as usize;
            bytes.extend(std::iter::repeat_n(b'x', run));
        } else {
            const ALPHABET: &[u8] = b"{}[]\",:abcdefghijklmnop0123456789 \t";
            bytes.push(ALPHABET[(rng.next_u64() % ALPHABET.len() as u64) as usize]);
        }
    }
    bytes
}

fn drain_frames(bytes: &[u8], buf_capacity: usize, limit: usize) -> Vec<Frame> {
    let mut reader = FrameReader::with_limit(
        BufReader::with_capacity(buf_capacity, Cursor::new(bytes.to_vec())),
        limit,
    );
    let mut frames = Vec::new();
    loop {
        let frame = reader.next_frame().expect("in-memory reads cannot fail");
        let eof = frame == Frame::Eof;
        frames.push(frame);
        if eof {
            return frames;
        }
    }
}

#[test]
fn random_byte_soup_never_panics_or_stalls_the_frame_reader() {
    for stream in 0..32u64 {
        let mut rng = Rng::from_seed(split_seed(0xF0_5EED, stream));
        let soup = byte_soup(&mut rng, 2_048);
        // Tiny buffer capacities force frame assembly across many
        // fill_buf boundaries; a small limit forces the oversized path.
        let frames = drain_frames(&soup, 7, 96);
        assert_eq!(*frames.last().unwrap(), Frame::Eof);
        // Every byte is accounted for by some frame; a Line's content
        // plus its newline can never exceed the limit.
        for frame in &frames {
            if let Frame::Line(line) = frame {
                assert!(
                    line.len() <= 96,
                    "line of {} bytes leaked past limit",
                    line.len()
                );
                assert!(!line.contains('\n'), "newline leaked into a frame");
            }
        }
        // Determinism: the same soup re-read with a different buffer
        // capacity yields the identical frame sequence.
        assert_eq!(frames, drain_frames(&soup, 101, 96));
    }
}

/// A valid interactive predict request to mutate.
fn valid_predict(id: &str) -> String {
    format!(
        "{{\"id\":\"{id}\",\"kind\":\"predict\",\"app\":\"M.milc\",\
         \"corunners\":[\"H.KM\"],\"priority\":3,\"deadline_ms\":100}}"
    )
}

#[test]
fn every_prefix_truncation_of_a_valid_request_yields_one_typed_reply() {
    let mut server = Server::start(fast_config(2016), None).expect("starts");
    let line = valid_predict("whole");
    for cut in 0..=line.len() {
        let replies = server
            .handle_frame(&Frame::Line(line[..cut].to_owned()))
            .expect("handled");
        assert_eq!(replies.len(), 1, "cut at {cut}: one reply per frame");
        let reply = icm_json::parse(&replies[0]).expect("reply is valid JSON");
        let status = reply
            .get("status")
            .and_then(icm_json::Json::as_str)
            .expect("typed status");
        if cut == line.len() {
            assert_eq!(status, "ok", "the untruncated request succeeds");
        } else {
            assert_eq!(status, "error", "cut at {cut} must be refused");
        }
    }
}

#[test]
fn a_seeded_barrage_of_hostile_frames_never_desyncs_the_server() {
    let mut all_replies = Vec::new();
    for attempt in 0..2 {
        let mut server = Server::start(fast_config(2016), None).expect("starts");
        let mut rng = Rng::from_seed(split_seed(0xBAD_F00D, 9));
        let mut replies = Vec::new();
        let mut frames = 0u64;
        for i in 0..400u64 {
            let roll = rng.next_u64() % 100;
            let frame = if roll < 25 {
                Frame::Line(valid_predict(&format!("req-{i}")))
            } else if roll < 55 {
                // Splice a valid request: truncate at a random byte.
                let line = valid_predict(&format!("mut-{i}"));
                let cut = (rng.next_u64() % line.len() as u64) as usize;
                Frame::Line(line[..cut].to_owned())
            } else if roll < 70 {
                // Random garbage line from printable soup.
                let soup = byte_soup(&mut rng, 48);
                Frame::Line(String::from_utf8_lossy(&soup).replace('\n', " "))
            } else if roll < 80 {
                Frame::InvalidUtf8
            } else if roll < 90 {
                Frame::Oversized(MAX_FRAME_BYTES + (rng.next_u64() % 4_096) as usize)
            } else {
                Frame::Truncated
            };
            frames += 1;
            let lines = server.handle_frame(&frame).expect("never an engine error");
            assert_eq!(lines.len(), 1, "frame {i}: exactly one reply per frame");
            for line in lines {
                let reply = icm_json::parse(&line).expect("every reply is valid JSON");
                let status = reply
                    .get("status")
                    .and_then(icm_json::Json::as_str)
                    .expect("typed status");
                assert!(
                    REPLY_STATUSES.contains(&status),
                    "unknown reply status {status}"
                );
                replies.push(line);
            }
        }
        // After the barrage the stream is still in sync: a clean status
        // request round-trips and reports every frame accounted for.
        let lines = server
            .handle_frame(&Frame::Line(
                "{\"id\":\"after\",\"kind\":\"status\",\"priority\":9,\"deadline_ms\":100}"
                    .to_owned(),
            ))
            .expect("status handled");
        assert_eq!(lines.len(), 1);
        let reply = icm_json::parse(&lines[0]).expect("parses");
        assert_eq!(
            reply.get("id").and_then(icm_json::Json::as_str),
            Some("after")
        );
        assert_eq!(
            reply.get("status").and_then(icm_json::Json::as_str),
            Some("ok")
        );
        let counters = server.counters();
        let accounted = counters.completed
            + counters.shed
            + counters.deadline_exceeded
            + counters.refused
            + counters.malformed;
        assert_eq!(
            accounted,
            frames + 1,
            "every frame lands in exactly one counter bucket"
        );
        assert!(
            counters.malformed > 0,
            "the barrage exercised framing errors"
        );
        assert!(counters.refused > 0, "the barrage exercised parse refusals");
        assert!(counters.completed > 0, "valid requests still completed");
        all_replies.push(replies);
        let _ = attempt;
    }
    // Same seed, fresh server: byte-identical reply stream. Virtual
    // time keeps wall jitter off the wire.
    assert_eq!(all_replies[0], all_replies[1], "replies are deterministic");
}
