//! Wall-time self-profiling: a side channel **outside** the
//! deterministic event stream.
//!
//! Traces are byte-identical across same-seed runs precisely because no
//! wall-clock time ever enters them — yet we still need to know where
//! real time goes (simulated runs, model builds, annealing). The
//! resolution is a strict split: spans and [`Tracer::wall_scope`]
//! guards record their *wall* durations into a [`WallProfile`] held
//! next to the sink, never through it. The profile is dumped as a
//! separate `profile.json`; the JSONL trace does not change by a single
//! byte whether profiling is on or off (asserted end-to-end in
//! `tests/observability.rs`). See `DESIGN.md` §8.

use std::collections::BTreeMap;
use std::time::Duration;

use icm_json::{Json, ToJson};

/// Decade bucket upper bounds in nanoseconds: 1µs, 10µs, … 10s. A
/// duration lands in the first bucket whose bound it does not exceed;
/// anything above 10s goes to the overflow bucket.
pub const WALL_BOUNDS_NS: [u64; 8] = [
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
];

/// Wall-duration statistics for one span or scope name: count, total,
/// extremes and a decade-bucket histogram (see [`WALL_BOUNDS_NS`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WallStats {
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
    buckets: [u64; WALL_BOUNDS_NS.len() + 1],
}

impl Default for WallStats {
    fn default() -> Self {
        Self {
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            buckets: [0; WALL_BOUNDS_NS.len() + 1],
        }
    }
}

impl WallStats {
    /// Records one wall duration.
    pub fn record(&mut self, elapsed: Duration) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.buckets[crate::bucket::fixed_index(&WALL_BOUNDS_NS, &ns)] += 1;
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Total recorded nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.total_ns
    }

    /// Shortest recorded duration in nanoseconds (`None` when empty).
    pub fn min_ns(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min_ns)
    }

    /// Longest recorded duration in nanoseconds (`None` when empty).
    pub fn max_ns(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max_ns)
    }

    /// Mean duration in nanoseconds (`None` when empty).
    pub fn mean_ns(&self) -> Option<f64> {
        (self.count > 0).then(|| self.total_ns as f64 / self.count as f64)
    }

    /// Per-bucket counts (`WALL_BOUNDS_NS.len() + 1` entries, the last
    /// being the overflow bucket).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }
}

impl ToJson for WallStats {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("count".to_owned(), self.count.to_json()),
            ("total_ns".to_owned(), self.total_ns.to_json()),
            (
                "min_ns".to_owned(),
                self.min_ns().unwrap_or_default().to_json(),
            ),
            (
                "max_ns".to_owned(),
                self.max_ns().unwrap_or_default().to_json(),
            ),
            (
                "mean_ns".to_owned(),
                self.mean_ns().unwrap_or_default().to_json(),
            ),
            (
                "buckets".to_owned(),
                Json::Array(self.buckets.iter().map(|c| c.to_json()).collect()),
            ),
        ])
    }
}

/// Per-name wall-duration histograms, keyed by span/scope name.
///
/// The registry is a `BTreeMap`, so serialization is deterministically
/// *ordered* — the recorded durations themselves are wall-clock
/// measurements and naturally vary run to run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WallProfile {
    spans: BTreeMap<String, WallStats>,
}

impl WallProfile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one duration under `name`.
    pub fn record(&mut self, name: &str, elapsed: Duration) {
        self.spans
            .entry(name.to_owned())
            .or_default()
            .record(elapsed);
    }

    /// Stats for one name.
    pub fn get(&self, name: &str) -> Option<&WallStats> {
        self.spans.get(name)
    }

    /// All recorded names with their stats, sorted by name.
    pub fn spans(&self) -> impl Iterator<Item = (&str, &WallStats)> {
        self.spans.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Renders a compact human-readable table (one line per name).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("wall-time profile (side channel; not part of the trace)\n");
        for (name, stats) in self.spans() {
            out.push_str(&format!(
                "  {:<24}{:>8} calls  total {:>12}  mean {:>12}  max {:>12}\n",
                name,
                stats.count(),
                format_ns(stats.total_ns() as f64),
                format_ns(stats.mean_ns().unwrap_or_default()),
                format_ns(stats.max_ns().unwrap_or_default() as f64),
            ));
        }
        out
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

impl ToJson for WallProfile {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            (
                "bounds_ns".to_owned(),
                Json::Array(WALL_BOUNDS_NS.iter().map(|b| b.to_json()).collect()),
            ),
            (
                "spans".to_owned(),
                Json::Object(
                    self.spans
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_accumulate_and_bucket() {
        let mut stats = WallStats::default();
        stats.record(Duration::from_nanos(500)); // bucket 0 (≤ 1µs)
        stats.record(Duration::from_micros(5)); // bucket 1 (≤ 10µs)
        stats.record(Duration::from_secs(20)); // overflow bucket
        assert_eq!(stats.count(), 3);
        assert_eq!(stats.min_ns(), Some(500));
        assert_eq!(stats.max_ns(), Some(20_000_000_000));
        assert_eq!(stats.bucket_counts()[0], 1);
        assert_eq!(stats.bucket_counts()[1], 1);
        assert_eq!(*stats.bucket_counts().last().expect("overflow"), 1);
    }

    #[test]
    fn empty_stats_have_no_extremes() {
        let stats = WallStats::default();
        assert_eq!(stats.min_ns(), None);
        assert_eq!(stats.max_ns(), None);
        assert_eq!(stats.mean_ns(), None);
    }

    #[test]
    fn profile_serializes_sorted_by_name() {
        let mut profile = WallProfile::new();
        profile.record("zebra", Duration::from_micros(2));
        profile.record("alpha", Duration::from_micros(1));
        profile.record("zebra", Duration::from_micros(4));
        let text = icm_json::to_string(&profile);
        let a = text.find("\"alpha\"").expect("alpha present");
        let z = text.find("\"zebra\"").expect("zebra present");
        assert!(a < z, "BTreeMap keys must serialize sorted");
        assert_eq!(profile.get("zebra").expect("recorded").count(), 2);
        assert!(text.starts_with(r#"{"bounds_ns":[1000,"#));
    }

    #[test]
    fn render_lists_each_name() {
        let mut profile = WallProfile::new();
        profile.record("anneal", Duration::from_millis(3));
        let text = profile.render();
        assert!(text.contains("anneal"));
        assert!(text.contains("1 calls"));
        assert!(text.contains("3.00 ms"));
    }
}
