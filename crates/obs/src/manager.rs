//! Event vocabulary of the `icm-manager` supervisory loop.
//!
//! The manager narrates its control loop into a trace using four event
//! kinds. Centralizing the names here keeps the emitter (`icm-manager`)
//! and every consumer (`icm-trace` summaries, report sections, replay
//! tests) agreeing on the vocabulary by construction rather than by
//! string coincidence.
//!
//! The manager only emits events on *eventful* ticks — a quiet tick
//! (no detection, no action) is silent, so a managed run with faults
//! disabled produces a byte-identical trace to an unmanaged one.

/// One supervisory epoch boundary with at least one observation worth
/// recording. Fields: `tick`, plus per-app observations.
pub const MANAGER_TICK: &str = "manager_tick";

/// The manager detected a condition requiring a reaction: a host
/// entering a crash window, a straggling application, a sustained SLO
/// violation, or a drift trip. Fields: `tick`, `kind`, `app`/`host`.
pub const MANAGER_DETECTION: &str = "manager_detection";

/// The manager executed a typed action (migrate, re-anneal, shed,
/// circuit-break). Fields: `tick`, `kind`, plus action payload.
pub const MANAGER_ACTION: &str = "manager_action";

/// A previously detected failure has been fully absorbed: the affected
/// applications are placed on live hosts and back under their bound.
/// Fields: `tick`, `latency_s` (detection → recovery, simulated).
pub const MANAGER_RECOVERY: &str = "manager_recovery";

/// End-of-horizon accounting for one supervised run, emitted by the
/// *caller* (e.g. the recovery experiment) rather than the loop itself,
/// so the managed/unmanaged trace-equality contract is preserved.
/// Fields: `managed`, `violation_s`.
pub const MANAGER_OUTCOME: &str = "manager_outcome";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manager_event_names_are_distinct_and_prefixed() {
        let names = [
            MANAGER_TICK,
            MANAGER_DETECTION,
            MANAGER_ACTION,
            MANAGER_RECOVERY,
            MANAGER_OUTCOME,
        ];
        for (i, a) in names.iter().enumerate() {
            assert!(a.starts_with("manager_"), "{a} must carry the prefix");
            for b in &names[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
