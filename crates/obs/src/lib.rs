//! Deterministic structured tracing and metrics for the ICM workspace.
//!
//! The paper's central claims are *cost/trajectory* claims — profiling
//! takes O(N) testbed runs instead of O(N²) pairings (Table 3), and the
//! placement search converges to near-optimal mappings (Figs. 10/11).
//! This crate makes those trajectories observable: instrumented code
//! emits typed [`Event`]s and [`Span`]s through a cloneable [`Tracer`]
//! handle into a pluggable [`Sink`] — a no-op sink whose disabled-path
//! cost is a single pointer check, an in-memory ring-buffer
//! [`Recorder`], or a [`JsonlSink`] writing one `icm-json` object per
//! line.
//!
//! # Determinism
//!
//! Events are **never** stamped with wall-clock time. The [`Clock`]
//! carries two deterministic coordinates:
//!
//! * `step` — a monotonic counter incremented once per emitted event,
//! * `sim_s` — cumulative *simulated* seconds, advanced explicitly by
//!   the simulator (`SimTestbed` adds each run's simulated duration).
//!
//! Both derive purely from the computation, so a traced run at a fixed
//! seed produces a byte-identical JSONL file every time — traces can be
//! diffed, cached and replayed. See `DESIGN.md` §8.
//!
//! Wall-clock timings still exist — as a strictly separate side channel:
//! [`Tracer::enable_wall_profiling`] makes spans and
//! [`Tracer::wall_scope`] guards record wall durations into a
//! [`WallProfile`] (dumped as `profile.json`) without ever touching the
//! event stream, so profiling a run cannot perturb its trace.
//!
//! # Example
//!
//! ```
//! use icm_obs::{Tracer, Value};
//!
//! let (tracer, recorder) = Tracer::recording(1024);
//! tracer.advance_sim(12.5);
//! tracer.event("probe", &[("pressure", Value::from(3u64)), ("slowdown", 1.4.into())]);
//!
//! let events = recorder.events();
//! assert_eq!(events.len(), 1);
//! assert_eq!(events[0].name, "probe");
//! assert_eq!(events[0].sim_s, 12.5);
//! let line = icm_json::to_string(&events[0]);
//! assert_eq!(
//!     line,
//!     r#"{"step":1,"sim_s":12.5,"name":"probe","fields":{"pressure":3,"slowdown":1.4}}"#
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use icm_json::{FromJson, Json, JsonError, ToJson};

pub mod bucket;
pub mod manager;
mod metrics;
pub mod provenance;
mod reader;
mod sink;
mod sketch;
mod telemetry;
mod wall;

pub use metrics::{Histogram, Metrics};
pub use provenance::{
    DetectionInput, ObservationRef, OutcomeRef, PlacementRef, ProvenanceRecord, QOS_VIOLATION,
};
pub use reader::{parse_events, read_jsonl_file, TraceError};
pub use sink::{JsonlSink, NullSink, Recorder, SharedBuf, Sink};
pub use sketch::{QuantileSketch, DEFAULT_MAX_BUCKETS};
pub use telemetry::{
    HealthSnapshot, Telemetry, TelemetryConfig, TelemetrySink, TELEMETRY_BYTE_BUDGET,
};
pub use wall::{WallProfile, WallStats, WALL_BOUNDS_NS};

/// A typed field value attached to an [`Event`].
///
/// Numbers serialize through `icm-json` as `f64`, so integers are exact
/// up to 2⁵³ — far beyond any counter in this workspace. On the read
/// side every JSON number deserializes as [`Value::F64`] (JSON does not
/// distinguish integer kinds), which keeps serialize → parse →
/// serialize byte-identical.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Boolean flag.
    Bool(bool),
    /// Unsigned counter.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Measurement.
    F64(f64),
    /// Label.
    Str(String),
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl Value {
    /// Numeric payload, unifying the three number variants.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(v) => Some(v as f64),
            Value::I64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    /// String payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }
}

impl ToJson for Value {
    fn to_json(&self) -> Json {
        match self {
            Value::Bool(b) => Json::Bool(*b),
            Value::U64(v) => Json::Number(*v as f64),
            Value::I64(v) => Json::Number(*v as f64),
            Value::F64(v) => v.to_json(),
            Value::Str(s) => Json::String(s.clone()),
        }
    }
}

impl FromJson for Value {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Bool(b) => Ok(Value::Bool(*b)),
            Json::Number(n) => Ok(Value::F64(*n)),
            Json::String(s) => Ok(Value::Str(s.clone())),
            other => Err(JsonError::msg(format!(
                "field value must be bool, number or string, found {}",
                other.kind()
            ))),
        }
    }
}

/// One structured trace event.
///
/// Serializes as a single compact JSON object —
/// `{"step":…,"sim_s":…,"name":…,"fields":{…}}` — one per line in a
/// JSONL trace. Field order is insertion order, so a deterministic
/// emitter produces byte-identical lines.
///
/// The `step` counter doubles as the event's **id**: it is assigned
/// monotonically per sink and never from wall time, so the same
/// computation assigns the same ids every run. Events may carry a
/// `causes` list of earlier event ids — the causal edges
/// `icm-trace explain` walks. An empty `causes` list is elided from the
/// JSON so pre-provenance traces and cause-free events serialize
/// byte-identically to before.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Monotonic event counter (1-based; assigned by the [`Tracer`]).
    /// Doubles as the deterministic event id `causes` entries refer to.
    pub step: u64,
    /// Cumulative simulated seconds when the event was emitted.
    pub sim_s: f64,
    /// Event name, e.g. `"probe"` or `"run.begin"`.
    pub name: String,
    /// Ids (`step` values) of earlier events that caused this one.
    /// Empty for root events; elided from the JSON when empty.
    pub causes: Vec<u64>,
    /// Typed key–value payload, in emission order.
    pub fields: Vec<(String, Value)>,
}

impl Event {
    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Numeric field shortcut.
    pub fn num(&self, name: &str) -> Option<f64> {
        self.field(name).and_then(Value::as_f64)
    }

    /// String field shortcut.
    pub fn str(&self, name: &str) -> Option<&str> {
        self.field(name).and_then(Value::as_str)
    }
}

impl ToJson for Event {
    fn to_json(&self) -> Json {
        let mut outer = Vec::with_capacity(5);
        outer.push(("step".to_owned(), Json::Number(self.step as f64)));
        outer.push(("sim_s".to_owned(), self.sim_s.to_json()));
        outer.push(("name".to_owned(), Json::String(self.name.clone())));
        if !self.causes.is_empty() {
            outer.push((
                "causes".to_owned(),
                Json::Array(
                    self.causes
                        .iter()
                        .map(|&id| Json::Number(id as f64))
                        .collect(),
                ),
            ));
        }
        outer.push((
            "fields".to_owned(),
            Json::Object(
                self.fields
                    .iter()
                    .map(|(k, v)| (k.clone(), v.to_json()))
                    .collect(),
            ),
        ));
        Json::Object(outer)
    }
}

impl FromJson for Event {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let outer = icm_json::expect_object(value, "Event")?;
        let has_causes = icm_json::find_field(outer, "causes").is_some();
        let expected = if has_causes { 5 } else { 4 };
        if outer.len() != expected {
            return Err(JsonError::msg(format!(
                "Event: expected exactly step/sim_s/name/[causes/]fields, found {} keys",
                outer.len()
            )));
        }
        let step: u64 = icm_json::parse_field(outer, "Event", "step")?;
        let sim_s: f64 = icm_json::parse_field(outer, "Event", "sim_s")?;
        let name: String = icm_json::parse_field(outer, "Event", "name")?;
        let causes: Vec<u64> = if has_causes {
            icm_json::parse_field(outer, "Event", "causes")?
        } else {
            Vec::new()
        };
        let fields_json = icm_json::find_field(outer, "fields")
            .ok_or_else(|| JsonError::msg("Event: missing field `fields`"))?;
        let pairs = icm_json::expect_object(fields_json, "Event.fields")?;
        let mut fields = Vec::with_capacity(pairs.len());
        for (k, v) in pairs {
            fields.push((
                k.clone(),
                Value::from_json(v).map_err(|e| e.in_field("Event", k))?,
            ));
        }
        Ok(Event {
            step,
            sim_s,
            name,
            causes,
            fields,
        })
    }
}

/// A deterministic timestamp: event counter plus simulated seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stamp {
    /// Monotonic event counter.
    pub step: u64,
    /// Cumulative simulated seconds.
    pub sim_s: f64,
}

/// The deterministic clock every event is stamped from.
///
/// Wall-clock time never enters a trace: `step` counts emitted events
/// and `sim_s` is advanced explicitly with the simulation. Identical
/// computations therefore stamp identical timestamps, which is what
/// makes same-seed traces byte-identical (and traces resumable — a
/// replay re-derives the exact same clock).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Clock {
    step: u64,
    sim_s: f64,
}

impl Clock {
    /// A clock at step 0, zero simulated seconds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the event counter and returns the new stamp.
    pub fn tick(&mut self) -> Stamp {
        self.step += 1;
        Stamp {
            step: self.step,
            sim_s: self.sim_s,
        }
    }

    /// Adds simulated seconds. A negative, NaN or infinite delta is a
    /// caller bug: debug builds panic on it; release builds saturate to
    /// a no-op so a buggy caller can never rewind or poison the clock.
    pub fn advance_sim(&mut self, seconds: f64) {
        debug_assert!(
            seconds.is_finite() && seconds >= 0.0,
            "Clock::advance_sim: invalid delta {seconds} (release builds ignore it)"
        );
        if seconds.is_finite() && seconds > 0.0 {
            self.sim_s += seconds;
        }
    }

    /// Current stamp without advancing.
    pub fn now(&self) -> Stamp {
        Stamp {
            step: self.step,
            sim_s: self.sim_s,
        }
    }

    /// A clock positioned at an arbitrary point, for resuming a trace
    /// from a savestate. A non-finite or negative `sim_s` is clamped to
    /// zero (mirroring [`Clock::advance_sim`]'s refusal to poison the
    /// clock).
    pub fn at(step: u64, sim_s: f64) -> Self {
        Self {
            step,
            sim_s: if sim_s.is_finite() && sim_s > 0.0 {
                sim_s
            } else {
                0.0
            },
        }
    }
}

/// Portable position of a [`Tracer`]: everything needed to make a
/// resumed run stamp events exactly where an uninterrupted run would
/// have. Captured with [`Tracer::state`], reapplied with
/// [`Tracer::restore_state`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TracerState {
    /// Monotonic event counter (the `step` of the last emitted event).
    pub step: u64,
    /// Cumulative simulated seconds.
    pub sim_s: f64,
    /// Next span id to assign.
    pub next_span: u64,
}

icm_json::impl_json!(struct TracerState { step, sim_s, next_span });

struct Inner {
    clock: Clock,
    sink: Box<dyn Sink>,
    next_span: u64,
    /// Wall-time side channel (`None` until enabled). Lives next to the
    /// sink but never writes through it, so enabling it cannot change
    /// the deterministic event stream.
    wall: Option<WallProfile>,
    /// Telemetry aggregation handle (`None` unless constructed via
    /// [`Tracer::with_telemetry`]). Direct observations through it
    /// never touch the event stream — see `telemetry.rs`.
    telemetry: Option<Telemetry>,
}

/// Cloneable handle instrumented code emits through.
///
/// A disabled tracer (the default) costs one `Option` check per call —
/// hot paths additionally guard field construction behind
/// [`enabled`](Tracer::enabled). All clones of a tracer share one sink
/// and one [`Clock`].
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Rc<RefCell<Inner>>>,
}

// `Tracer` holds a `dyn Sink`, so `Debug` prints only liveness + clock.
impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            None => f.write_str("Tracer(disabled)"),
            Some(inner) => {
                let stamp = inner.borrow().clock.now();
                write!(f, "Tracer(step {}, sim_s {})", stamp.step, stamp.sim_s)
            }
        }
    }
}

impl Tracer {
    /// A tracer that drops everything (the near-zero-cost default).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Wraps an arbitrary sink.
    pub fn with_sink<S: Sink + 'static>(sink: S) -> Self {
        Self {
            inner: Some(Rc::new(RefCell::new(Inner {
                clock: Clock::new(),
                sink: Box::new(sink),
                next_span: 0,
                wall: None,
                telemetry: None,
            }))),
        }
    }

    /// Wraps a [`TelemetrySink`] and keeps a handle onto its shared
    /// [`Telemetry`] accumulator, enabling the direct
    /// [`telemetry_count`](Self::telemetry_count) /
    /// [`telemetry_observe`](Self::telemetry_observe) /
    /// [`telemetry_merge_sketch`](Self::telemetry_merge_sketch) paths
    /// in addition to event-stream aggregation.
    pub fn with_telemetry(sink: TelemetrySink) -> Self {
        let handle = sink.handle();
        let tracer = Self::with_sink(sink);
        if let Some(inner) = &tracer.inner {
            inner.borrow_mut().telemetry = Some(handle);
        }
        tracer
    }

    /// A tracer recording into an in-memory ring buffer of `capacity`
    /// events; the returned [`Recorder`] handle reads them back.
    pub fn recording(capacity: usize) -> (Self, Recorder) {
        let recorder = Recorder::with_capacity(capacity);
        (Self::with_sink(recorder.clone()), recorder)
    }

    /// A tracer that discards every event but has wall-time profiling
    /// enabled — the cheapest way to profile a computation without
    /// collecting a trace.
    pub fn wall_only() -> Self {
        let tracer = Self::with_sink(NullSink);
        tracer.enable_wall_profiling();
        tracer
    }

    /// A tracer appending JSONL to a freshly created file.
    ///
    /// # Errors
    ///
    /// Propagates file-creation failures.
    pub fn jsonl_file(path: &std::path::Path) -> std::io::Result<Self> {
        Ok(Self::with_sink(JsonlSink::create(path)?))
    }

    /// A tracer appending JSONL to an existing file without truncating
    /// it — the resume-path counterpart of [`Tracer::jsonl_file`].
    /// Combine with [`Tracer::restore_state`] so appended events
    /// continue the prior stamp sequence.
    ///
    /// # Errors
    ///
    /// Propagates file-open failures.
    pub fn jsonl_file_append(path: &std::path::Path) -> std::io::Result<Self> {
        Ok(Self::with_sink(JsonlSink::append(path)?))
    }

    /// Captures the tracer's position (clock + span counter) for a
    /// savestate. A disabled tracer reports the zero state.
    pub fn state(&self) -> TracerState {
        match &self.inner {
            None => TracerState::default(),
            Some(inner) => {
                let borrow = inner.borrow();
                let stamp = borrow.clock.now();
                TracerState {
                    step: stamp.step,
                    sim_s: stamp.sim_s,
                    next_span: borrow.next_span,
                }
            }
        }
    }

    /// Repositions the clock and span counter from a captured
    /// [`TracerState`], so events emitted next continue the saved
    /// run's stamp sequence exactly. A no-op on a disabled tracer.
    pub fn restore_state(&self, state: &TracerState) {
        if let Some(inner) = &self.inner {
            let mut borrow = inner.borrow_mut();
            borrow.clock = Clock::at(state.step, state.sim_s);
            borrow.next_span = state.next_span;
        }
    }

    /// Whether events are being recorded. Instrumentation with
    /// expensive field construction should check this first.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Emits one event with the given fields and returns its id (the
    /// assigned `step`; 0 on a disabled tracer, which never appears as
    /// a real id — steps are 1-based).
    pub fn event(&self, name: &str, fields: &[(&str, Value)]) -> u64 {
        self.emit(name, &[], fields)
    }

    /// Emits one event carrying causal links to earlier events and
    /// returns its id. Ids of 0 (from a disabled tracer) are filtered
    /// out so disabled-path callers can pass captured ids verbatim.
    pub fn event_caused(&self, name: &str, causes: &[u64], fields: &[(&str, Value)]) -> u64 {
        self.emit(name, causes, fields)
    }

    fn emit(&self, name: &str, causes: &[u64], fields: &[(&str, Value)]) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        let mut inner = inner.borrow_mut();
        let stamp = inner.clock.tick();
        let event = Event {
            step: stamp.step,
            sim_s: stamp.sim_s,
            name: name.to_owned(),
            causes: causes.iter().copied().filter(|&id| id != 0).collect(),
            fields: fields
                .iter()
                .map(|(k, v)| ((*k).to_owned(), v.clone()))
                .collect(),
        };
        inner.sink.record(&event);
        stamp.step
    }

    /// Opens a span: emits `"<name>.begin"` carrying a fresh `span` id
    /// plus `fields`, and returns a guard whose [`Span::end`] (or drop)
    /// emits the matching `"<name>.end"`.
    pub fn span(&self, name: &str, fields: &[(&str, Value)]) -> Span {
        let Some(inner) = &self.inner else {
            return Span {
                tracer: Tracer::disabled(),
                name: String::new(),
                id: 0,
                ended: true,
                wall_start: None,
            };
        };
        let (id, wall) = {
            let mut borrow = inner.borrow_mut();
            borrow.next_span += 1;
            (borrow.next_span, borrow.wall.is_some())
        };
        let mut all = Vec::with_capacity(fields.len() + 1);
        all.push(("span", Value::U64(id)));
        all.extend_from_slice(fields);
        self.event(&format!("{name}.begin"), &all);
        Span {
            tracer: self.clone(),
            name: name.to_owned(),
            id,
            ended: false,
            wall_start: wall.then(std::time::Instant::now),
        }
    }

    /// Adds simulated seconds to the shared clock.
    pub fn advance_sim(&self, seconds: f64) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().clock.advance_sim(seconds);
        }
    }

    /// Turns on the wall-time side channel (see [`WallProfile`]): from
    /// now on every completed [`Span`] and [`wall_scope`](Self::wall_scope)
    /// records its wall duration, keyed by name, strictly outside the
    /// event stream. Returns `false` on a disabled tracer (nothing to
    /// attach the profile to).
    pub fn enable_wall_profiling(&self) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        let mut inner = inner.borrow_mut();
        if inner.wall.is_none() {
            inner.wall = Some(WallProfile::new());
        }
        true
    }

    /// Whether the wall-time side channel is collecting.
    pub fn wall_profiling_enabled(&self) -> bool {
        match &self.inner {
            Some(inner) => inner.borrow().wall.is_some(),
            None => false,
        }
    }

    /// Records one wall duration under `name` (no-op unless
    /// [`enable_wall_profiling`](Self::enable_wall_profiling) was called).
    pub fn record_wall(&self, name: &str, elapsed: std::time::Duration) {
        if let Some(inner) = &self.inner {
            if let Some(wall) = inner.borrow_mut().wall.as_mut() {
                wall.record(name, elapsed);
            }
        }
    }

    /// Times a scope on the wall clock *without emitting any event*:
    /// the returned guard records its elapsed wall time under `name`
    /// when dropped. When profiling is off (the default) the guard does
    /// nothing and the wall clock is never read — safe to leave in hot
    /// paths.
    pub fn wall_scope(&self, name: &'static str) -> WallScope {
        WallScope {
            target: self
                .wall_profiling_enabled()
                .then(|| (self.clone(), std::time::Instant::now())),
            name,
        }
    }

    /// Snapshot of the wall-time profile (`None` when profiling is off).
    pub fn wall_profile(&self) -> Option<WallProfile> {
        self.inner
            .as_ref()
            .and_then(|inner| inner.borrow().wall.clone())
    }

    /// Current deterministic timestamp (zero when disabled).
    pub fn now(&self) -> Stamp {
        match &self.inner {
            Some(inner) => inner.borrow().clock.now(),
            None => Stamp {
                step: 0,
                sim_s: 0.0,
            },
        }
    }

    /// Flushes the sink (e.g. a buffered JSONL writer).
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().sink.flush();
        }
    }

    /// The attached telemetry accumulator, if this tracer was built
    /// with [`with_telemetry`](Self::with_telemetry). Hot paths with
    /// expensive aggregation (e.g. per-iteration sketches) should check
    /// this first, mirroring [`enabled`](Self::enabled).
    pub fn telemetry(&self) -> Option<Telemetry> {
        self.inner
            .as_ref()
            .and_then(|inner| inner.borrow().telemetry.clone())
    }

    /// Adds `n` to a telemetry health counter. Emits **no** event — the
    /// raw trace of a telemetry-on run stays byte-identical to a
    /// telemetry-off run. No-op without attached telemetry.
    pub fn telemetry_count(&self, name: &str, n: u64) {
        if let Some(telemetry) = self.telemetry() {
            telemetry.count(name, n);
        }
    }

    /// Observes one value into a telemetry series at the current
    /// simulated time. Emits **no** event. No-op without telemetry.
    pub fn telemetry_observe(&self, name: &str, value: f64) {
        if let Some(telemetry) = self.telemetry() {
            telemetry.observe(name, self.now().sim_s, value);
        }
    }

    /// Merges a pre-built sketch (e.g. built on a worker thread) into a
    /// telemetry series — the exact-merge path the anneal lanes use.
    /// Emits **no** event. No-op without telemetry.
    pub fn telemetry_merge_sketch(&self, name: &str, sketch: &QuantileSketch) {
        if let Some(telemetry) = self.telemetry() {
            telemetry.merge_series_sketch(name, self.now().sim_s, sketch);
        }
    }
}

/// Guard for an open span; see [`Tracer::span`].
#[derive(Debug)]
pub struct Span {
    tracer: Tracer,
    name: String,
    id: u64,
    ended: bool,
    /// Set only while wall profiling is on; read back at span end. Wall
    /// time flows exclusively into the side channel, never into events.
    wall_start: Option<std::time::Instant>,
}

impl Span {
    /// The span id carried by the begin/end events (0 when disabled).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Ends the span with extra result fields.
    pub fn end_with(mut self, fields: &[(&str, Value)]) {
        self.emit_end(fields);
    }

    /// Ends the span without extra fields.
    pub fn end(mut self) {
        self.emit_end(&[]);
    }

    fn emit_end(&mut self, fields: &[(&str, Value)]) {
        if self.ended {
            return;
        }
        self.ended = true;
        let mut all = Vec::with_capacity(fields.len() + 1);
        all.push(("span", Value::U64(self.id)));
        all.extend_from_slice(fields);
        self.tracer.event(&format!("{}.end", self.name), &all);
        if let Some(start) = self.wall_start.take() {
            self.tracer.record_wall(&self.name, start.elapsed());
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.emit_end(&[]);
    }
}

/// Guard returned by [`Tracer::wall_scope`]: records its elapsed wall
/// time (under the scope name) into the wall-time side channel on drop,
/// emitting **no** event. Inert when profiling is off.
#[derive(Debug)]
pub struct WallScope {
    target: Option<(Tracer, std::time::Instant)>,
    name: &'static str,
}

impl Drop for WallScope {
    fn drop(&mut self) {
        if let Some((tracer, start)) = self.target.take() {
            tracer.record_wall(self.name, start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert() {
        let tracer = Tracer::disabled();
        assert!(!tracer.enabled());
        tracer.event("x", &[("a", 1.0.into())]);
        tracer.advance_sim(5.0);
        assert_eq!(
            tracer.now(),
            Stamp {
                step: 0,
                sim_s: 0.0
            }
        );
        let span = tracer.span("s", &[]);
        assert_eq!(span.id(), 0);
        span.end();
    }

    #[test]
    fn events_are_stamped_monotonically() {
        let (tracer, recorder) = Tracer::recording(16);
        tracer.event("a", &[]);
        tracer.advance_sim(2.5);
        tracer.event("b", &[]);
        let events = recorder.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].step, 1);
        assert_eq!(events[0].sim_s, 0.0);
        assert_eq!(events[1].step, 2);
        assert_eq!(events[1].sim_s, 2.5);
    }

    #[test]
    fn clock_accepts_zero_and_positive_deltas() {
        let mut clock = Clock::new();
        clock.advance_sim(0.0);
        assert_eq!(clock.now().sim_s, 0.0);
        clock.advance_sim(3.0);
        assert_eq!(clock.now().sim_s, 3.0);
    }

    #[test]
    fn restored_tracer_continues_the_stamp_sequence() {
        // Run A: uninterrupted.
        let (full, full_rec) = Tracer::recording(16);
        full.event("a", &[]);
        full.advance_sim(1.5);
        let _span = full.span("work", &[]); // consumes a span id
        full.event("b", &[]);

        // Run B: same prefix, then save/restore into a fresh tracer.
        let (prefix, _prefix_rec) = Tracer::recording(16);
        prefix.event("a", &[]);
        prefix.advance_sim(1.5);
        let _span2 = prefix.span("work", &[]);
        let saved = prefix.state();
        let restored: TracerState =
            icm_json::from_str(&icm_json::to_string(&saved)).expect("state round-trips");
        assert_eq!(saved, restored);

        let (resumed, resumed_rec) = Tracer::recording(16);
        resumed.restore_state(&restored);
        resumed.event("b", &[]);

        let full_events = full_rec.events();
        let tail = resumed_rec.events();
        assert_eq!(tail.len(), 1);
        assert_eq!(full_events.last().unwrap(), &tail[0]);
        assert_eq!(resumed.now().step, full.now().step);
    }

    #[test]
    fn disabled_tracer_state_is_zero_and_restore_is_a_noop() {
        let tracer = Tracer::disabled();
        assert_eq!(tracer.state(), TracerState::default());
        tracer.restore_state(&TracerState {
            step: 9,
            sim_s: 1.0,
            next_span: 2,
        });
        assert_eq!(tracer.now().step, 0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "advance_sim")]
    fn clock_panics_on_negative_delta_in_debug() {
        Clock::new().advance_sim(-1.0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "advance_sim")]
    fn clock_panics_on_nan_delta_in_debug() {
        Clock::new().advance_sim(f64::NAN);
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn clock_saturates_bad_deltas_in_release() {
        let mut clock = Clock::new();
        clock.advance_sim(-1.0);
        clock.advance_sim(f64::NAN);
        clock.advance_sim(f64::INFINITY);
        assert_eq!(clock.now().sim_s, 0.0, "bad deltas must be no-ops");
        clock.advance_sim(3.0);
        assert_eq!(clock.now().sim_s, 3.0);
    }

    #[test]
    fn telemetry_is_absent_unless_attached() {
        let (tracer, recorder) = Tracer::recording(4);
        assert!(tracer.telemetry().is_none());
        // The direct paths are inert — no telemetry and no events.
        tracer.telemetry_count("x", 1);
        tracer.telemetry_observe("y", 1.0);
        tracer.telemetry_merge_sketch("z", &QuantileSketch::new());
        assert!(recorder.events().is_empty());
        assert!(Tracer::disabled().telemetry().is_none());
    }

    #[test]
    fn spans_emit_begin_and_end_with_matching_id() {
        let (tracer, recorder) = Tracer::recording(16);
        let span = tracer.span("run", &[("app", "milc".into())]);
        tracer.event("inside", &[]);
        span.end_with(&[("seconds", 10.0.into())]);
        let events = recorder.events();
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["run.begin", "inside", "run.end"]);
        assert_eq!(events[0].num("span"), events[2].num("span"));
        assert_eq!(events[0].str("app"), Some("milc"));
        assert_eq!(events[2].num("seconds"), Some(10.0));
    }

    #[test]
    fn dropped_span_still_ends() {
        let (tracer, recorder) = Tracer::recording(16);
        {
            let _span = tracer.span("scope", &[]);
        }
        let names: Vec<String> = recorder.events().into_iter().map(|e| e.name).collect();
        assert_eq!(names, ["scope.begin", "scope.end"]);
    }

    #[test]
    fn event_json_round_trips_exactly() {
        let event = Event {
            step: 7,
            sim_s: 123.25,
            name: "probe".into(),
            causes: Vec::new(),
            fields: vec![
                ("pressure".into(), Value::U64(3)),
                ("ok".into(), Value::Bool(true)),
                ("slowdown".into(), Value::F64(1.75)),
                ("app".into(), Value::Str("M.milc".into())),
            ],
        };
        let text = icm_json::to_string(&event);
        let back: Event = icm_json::from_str(&text).expect("parses");
        // Numbers come back as F64 — re-serialization is byte-identical.
        assert_eq!(icm_json::to_string(&back), text);
        assert_eq!(back.num("pressure"), Some(3.0));
        assert_eq!(back.str("app"), Some("M.milc"));
        assert_eq!(back.field("ok").and_then(Value::as_bool), Some(true));
    }

    #[test]
    fn event_json_rejects_wrong_shapes() {
        for bad in [
            r#"{"step":1,"sim_s":0,"name":"x"}"#,
            r#"{"step":1,"sim_s":0,"name":"x","fields":{},"extra":1}"#,
            r#"{"step":-1,"sim_s":0,"name":"x","fields":{}}"#,
            r#"{"step":1,"sim_s":0,"name":"x","fields":{"a":[1]}}"#,
            r#"{"step":1,"sim_s":0,"name":7,"fields":{}}"#,
            r#"{"step":1,"sim_s":0,"name":"x","causes":{},"fields":{}}"#,
            r#"{"step":1,"sim_s":0,"name":"x","causes":[1],"fields":{},"extra":1}"#,
            r#"[1,2,3]"#,
        ] {
            assert!(icm_json::from_str::<Event>(bad).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn causes_serialize_between_name_and_fields_and_round_trip() {
        let event = Event {
            step: 9,
            sim_s: 4.5,
            name: "manager_detection".into(),
            causes: vec![3, 7],
            fields: vec![("kind".into(), Value::Str("drift".into()))],
        };
        let text = icm_json::to_string(&event);
        assert_eq!(
            text,
            r#"{"step":9,"sim_s":4.5,"name":"manager_detection","causes":[3,7],"fields":{"kind":"drift"}}"#
        );
        let back: Event = icm_json::from_str(&text).expect("parses");
        assert_eq!(back.causes, vec![3, 7]);
        assert_eq!(icm_json::to_string(&back), text);
    }

    #[test]
    fn empty_causes_are_elided_from_the_json() {
        let (tracer, recorder) = Tracer::recording(4);
        let id = tracer.event("probe", &[("x", Value::U64(1))]);
        assert_eq!(id, 1);
        let line = icm_json::to_string(&recorder.events()[0]);
        assert!(
            !line.contains("causes"),
            "cause-free event grew a key: {line}"
        );
    }

    #[test]
    fn event_caused_links_events_and_filters_disabled_ids() {
        let (tracer, recorder) = Tracer::recording(8);
        let a = tracer.event("a", &[]);
        let b = tracer.event_caused("b", &[a, 0], &[]);
        assert_eq!((a, b), (1, 2));
        let events = recorder.events();
        assert_eq!(events[1].causes, vec![1], "0 ids (disabled tracer) dropped");
        // A disabled tracer returns id 0 and records nothing.
        assert_eq!(Tracer::disabled().event_caused("c", &[a], &[]), 0);
    }

    #[test]
    fn clones_share_one_clock_and_sink() {
        let (tracer, recorder) = Tracer::recording(16);
        let clone = tracer.clone();
        clone.event("from-clone", &[]);
        tracer.event("from-original", &[]);
        let events = recorder.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].step, 2);
    }

    #[test]
    fn debug_formats_both_states() {
        assert_eq!(format!("{:?}", Tracer::disabled()), "Tracer(disabled)");
        let (tracer, _recorder) = Tracer::recording(4);
        assert!(format!("{tracer:?}").contains("step 0"));
    }

    #[test]
    fn wall_profiling_is_off_by_default_and_inert_when_disabled() {
        let (tracer, _recorder) = Tracer::recording(4);
        assert!(!tracer.wall_profiling_enabled());
        assert_eq!(tracer.wall_profile(), None);
        // Scopes and spans are inert without the side channel.
        drop(tracer.wall_scope("x"));
        tracer.span("s", &[]).end();
        assert_eq!(tracer.wall_profile(), None);
        // A fully disabled tracer cannot enable it at all.
        assert!(!Tracer::disabled().enable_wall_profiling());
        assert!(!Tracer::disabled().wall_profiling_enabled());
        drop(Tracer::disabled().wall_scope("x"));
    }

    #[test]
    fn spans_and_scopes_record_wall_durations() {
        let (tracer, recorder) = Tracer::recording(16);
        assert!(tracer.enable_wall_profiling());
        tracer.span("run", &[]).end();
        {
            let _scope = tracer.wall_scope("hot_loop");
        }
        tracer.record_wall("manual", std::time::Duration::from_micros(3));
        let profile = tracer.wall_profile().expect("profiling on");
        assert_eq!(profile.get("run").expect("span recorded").count(), 1);
        assert_eq!(profile.get("hot_loop").expect("scope recorded").count(), 1);
        assert_eq!(profile.get("manual").expect("manual recorded").count(), 1);
        // The side channel added nothing to the event stream: only the
        // span's begin/end pair is there, and wall scopes emitted nothing.
        let names: Vec<String> = recorder.events().into_iter().map(|e| e.name).collect();
        assert_eq!(names, ["run.begin", "run.end"]);
    }

    #[test]
    fn wall_only_tracer_profiles_without_keeping_events() {
        let tracer = Tracer::wall_only();
        assert!(tracer.wall_profiling_enabled());
        tracer.span("work", &[]).end();
        let profile = tracer.wall_profile().expect("profiling on");
        assert_eq!(profile.get("work").expect("recorded").count(), 1);
    }

    #[test]
    fn enabling_wall_profiling_twice_keeps_the_profile() {
        let (tracer, _recorder) = Tracer::recording(4);
        tracer.enable_wall_profiling();
        tracer.record_wall("x", std::time::Duration::from_nanos(10));
        tracer.enable_wall_profiling();
        let profile = tracer.wall_profile().expect("still on");
        assert_eq!(profile.get("x").expect("kept").count(), 1);
    }
}
