//! A deterministic, mergeable quantile sketch over log buckets.
//!
//! DDSketch-style: each observation lands in the integer bucket given
//! by [`bucket::log_index`], so the sketch is pure integer bookkeeping —
//! two same-seed runs build bit-identical sketches, and serialization
//! is byte-identical. Quantile answers are bucket midpoints, within
//! [`RELATIVE_ERROR`](crate::bucket::RELATIVE_ERROR) of the exact
//! sorted-reference quantile (tested below).
//!
//! Merging two sketches adds their bucket counts — while both are under
//! the bucket cap, `merge(sketch(A), sketch(B))` has exactly the
//! buckets of `sketch(A ++ B)`, which is what lets anneal lanes sketch
//! independently on worker threads and combine losslessly afterwards.
//!
//! Memory is bounded: at most `max_buckets` live buckets. On overflow
//! the *lowest* buckets collapse into their neighbor (counted in
//! [`collapsed`](QuantileSketch::collapsed)), deliberately sacrificing
//! resolution at the cheap end to keep tail quantiles (p90/p99) exact
//! to the error bound — tails are what interference management cares
//! about.

use std::collections::BTreeMap;

use icm_json::{Json, ToJson};

use crate::bucket;

/// Default live-bucket cap. 2⁵ sub-buckets per octave means 128 buckets
/// span 4 decades of dynamic range before any collapse happens.
pub const DEFAULT_MAX_BUCKETS: usize = 128;

/// Mergeable log-bucket quantile sketch (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    /// Log-bucket index → observation count (positive normal values).
    buckets: BTreeMap<i64, u64>,
    /// Observations below `f64::MIN_POSITIVE` (zero, negatives,
    /// subnormals); they sit below every bucket in quantile order.
    low: u64,
    /// Non-finite observations — counted, never bucketed or summed.
    non_finite: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    max_buckets: usize,
    collapsed: u64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::with_max_buckets(DEFAULT_MAX_BUCKETS)
    }
}

impl QuantileSketch {
    /// An empty sketch with the default bucket cap.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty sketch holding at most `max_buckets` live buckets
    /// (min 2 — collapse needs a surviving neighbor).
    pub fn with_max_buckets(max_buckets: usize) -> Self {
        Self {
            buckets: BTreeMap::new(),
            low: 0,
            non_finite: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            max_buckets: max_buckets.max(2),
            collapsed: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        self.count += 1;
        if !value.is_finite() {
            self.non_finite += 1;
            return;
        }
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        match bucket::log_index(value) {
            Some(index) => {
                *self.buckets.entry(index).or_insert(0) += 1;
                self.enforce_cap();
            }
            None => self.low += 1,
        }
    }

    /// Merges another sketch in. Bucket counts add index-by-index, so
    /// while both sides are under the cap this is *exact*: the result
    /// has precisely the buckets of the concatenated observation
    /// streams.
    pub fn merge(&mut self, other: &QuantileSketch) {
        for (&index, &count) in &other.buckets {
            *self.buckets.entry(index).or_insert(0) += count;
        }
        self.low += other.low;
        self.non_finite += other.non_finite;
        self.count += other.count;
        self.collapsed += other.collapsed;
        if other.finite_count() > 0 {
            self.sum += other.sum;
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.enforce_cap();
    }

    /// Collapses lowest buckets into their upward neighbor until the
    /// cap holds. Deterministic, and biased to preserve the tail.
    fn enforce_cap(&mut self) {
        while self.buckets.len() > self.max_buckets {
            let (_, count) = self.buckets.pop_first().expect("len > cap ≥ 2");
            let (_, neighbor) = self.buckets.iter_mut().next().expect("cap ≥ 2 survivors");
            *neighbor += count;
            self.collapsed += count;
        }
    }

    /// The quantile `q` in `[0, 1]` over the finite observations, as a
    /// bucket midpoint clamped to the observed `[min, max]`. `None`
    /// when no finite observation was recorded.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let finite = self.finite_count();
        if finite == 0 {
            return None;
        }
        // 0-based rank of the order statistic: q = 0 → minimum,
        // q = 1 → maximum, linear in between (nearest rank).
        let rank = (q.clamp(0.0, 1.0) * (finite - 1) as f64).round() as u64;
        if rank < self.low {
            return Some(self.min);
        }
        let mut seen = self.low;
        for (&index, &count) in &self.buckets {
            seen += count;
            if rank < seen {
                return Some(bucket::bucket_mid(index).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Total observations (including non-finite ones).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Finite observations — the population quantiles answer over.
    pub fn finite_count(&self) -> u64 {
        self.count - self.non_finite
    }

    /// Observations below the bucketable range (zero or negative).
    pub fn low_count(&self) -> u64 {
        self.low
    }

    /// Non-finite observations.
    pub fn non_finite_count(&self) -> u64 {
        self.non_finite
    }

    /// Observations whose bucket was collapsed away by the memory cap.
    pub fn collapsed(&self) -> u64 {
        self.collapsed
    }

    /// Live bucket count (bounded by the cap).
    pub fn bucket_len(&self) -> usize {
        self.buckets.len()
    }

    /// Sum of finite observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest finite observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.finite_count() > 0).then_some(self.min)
    }

    /// Largest finite observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.finite_count() > 0).then_some(self.max)
    }

    /// Mean of finite observations (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        let finite = self.finite_count();
        (finite > 0).then(|| self.sum / finite as f64)
    }

    /// Whether nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Number of finite observations strictly above `threshold`, exact
    /// when `threshold` is a bucket lower edge (e.g. a power of two).
    pub fn count_above(&self, threshold: f64) -> u64 {
        let cut = bucket::log_index(threshold);
        let bucketed: u64 = self
            .buckets
            .iter()
            .filter(|(&i, _)| match cut {
                Some(c) => i > c || (i == c && bucket::bucket_lower(i) > threshold),
                None => true,
            })
            .map(|(_, &c)| c)
            .sum();
        bucketed
    }
}

impl ToJson for QuantileSketch {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("count".to_owned(), self.count.to_json()),
            ("low".to_owned(), self.low.to_json()),
            ("non_finite".to_owned(), self.non_finite.to_json()),
            ("collapsed".to_owned(), self.collapsed.to_json()),
            ("sum".to_owned(), self.sum.to_json()),
            ("min".to_owned(), self.min().unwrap_or(0.0).to_json()),
            ("max".to_owned(), self.max().unwrap_or(0.0).to_json()),
            (
                "error".to_owned(),
                Json::Number(crate::bucket::RELATIVE_ERROR),
            ),
            (
                "buckets".to_owned(),
                Json::Array(
                    self.buckets
                        .iter()
                        .map(|(&i, &c)| {
                            Json::Array(vec![Json::Number(i as f64), Json::Number(c as f64)])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket::RELATIVE_ERROR;
    use crate::Histogram;
    use icm_rng::Rng;

    fn seeded_stream(seed: u64, n: usize, scale: f64) -> Vec<f64> {
        let mut rng = Rng::from_seed(seed);
        (0..n).map(|_| rng.gen_f64() * scale + 1e-6).collect()
    }

    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let rank = (q * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank]
    }

    #[test]
    fn quantiles_stay_within_the_documented_relative_error() {
        for seed in [1u64, 42, 2016] {
            let values = seeded_stream(seed, 4096, 250.0);
            // The error bound is the *uncollapsed* contract: give the
            // sketch room for the full [1e-6, 250) range so the bucket
            // cap never trades away the low end (that tradeoff has its
            // own test below).
            let mut sketch = QuantileSketch::with_max_buckets(4096);
            for &v in &values {
                sketch.observe(v);
            }
            assert_eq!(sketch.collapsed(), 0, "cap must not fire here");
            let mut sorted = values.clone();
            sorted.sort_by(f64::total_cmp);
            for q in [0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 1.0] {
                let exact = exact_quantile(&sorted, q);
                let approx = sketch.quantile(q).expect("non-empty");
                let rel = ((approx - exact) / exact).abs();
                assert!(
                    rel <= RELATIVE_ERROR + 1e-12,
                    "seed {seed} q{q}: {approx} vs exact {exact} (rel {rel})"
                );
            }
        }
    }

    #[test]
    fn merging_an_empty_sketch_is_the_identity() {
        let mut sketch = QuantileSketch::new();
        for v in [1.0, 2.5, 9.0] {
            sketch.observe(v);
        }
        let before = sketch.clone();
        sketch.merge(&QuantileSketch::new());
        assert_eq!(sketch, before, "empty merge must change nothing");
        // And merging *into* an empty sketch reproduces the other side.
        let mut empty = QuantileSketch::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn disjoint_range_merge_is_exact() {
        let lows = seeded_stream(7, 500, 1.0); // (0, 1]
        let highs: Vec<f64> = seeded_stream(8, 500, 1.0)
            .into_iter()
            .map(|v| v + 1000.0)
            .collect();
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        let mut both = QuantileSketch::new();
        for &v in &lows {
            a.observe(v);
            both.observe(v);
        }
        for &v in &highs {
            b.observe(v);
            both.observe(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.buckets, both.buckets, "merge must be bucket-exact");
        assert_eq!(merged.count(), both.count());
        assert_eq!(merged.min(), both.min());
        assert_eq!(merged.max(), both.max());
        for q in [0.1, 0.5, 0.9] {
            assert_eq!(merged.quantile(q), both.quantile(q));
        }
        // The halves are separated, so the median splits them exactly.
        assert!(merged.quantile(0.25).expect("non-empty") < 2.0);
        assert!(merged.quantile(0.75).expect("non-empty") > 999.0);
    }

    #[test]
    fn merge_order_does_not_matter() {
        let mut parts: Vec<QuantileSketch> = Vec::new();
        for lane in 0..4u64 {
            let mut s = QuantileSketch::new();
            for &v in &seeded_stream(lane + 10, 300, 50.0) {
                s.observe(v);
            }
            parts.push(s);
        }
        let mut forward = QuantileSketch::new();
        for p in &parts {
            forward.merge(p);
        }
        let mut backward = QuantileSketch::new();
        for p in parts.iter().rev() {
            backward.merge(p);
        }
        assert_eq!(forward.buckets, backward.buckets);
        assert_eq!(forward.count(), backward.count());
        for q in [0.5, 0.99] {
            assert_eq!(forward.quantile(q), backward.quantile(q));
        }
    }

    #[test]
    fn zero_negative_and_non_finite_observations_are_partitioned() {
        let mut sketch = QuantileSketch::new();
        sketch.observe(0.0);
        sketch.observe(-3.0);
        sketch.observe(f64::NAN);
        sketch.observe(f64::INFINITY);
        sketch.observe(5.0);
        assert_eq!(sketch.count(), 5);
        assert_eq!(sketch.finite_count(), 3);
        assert_eq!(sketch.low_count(), 2);
        assert_eq!(sketch.non_finite_count(), 2);
        assert_eq!(sketch.min(), Some(-3.0));
        assert_eq!(sketch.max(), Some(5.0));
        // Low observations rank below every bucket: p0 is the true min.
        assert_eq!(sketch.quantile(0.0), Some(-3.0));
        assert_eq!(sketch.quantile(1.0), Some(5.0));
    }

    #[test]
    fn bucket_cap_collapses_the_low_end_and_keeps_the_tail() {
        let mut sketch = QuantileSketch::with_max_buckets(8);
        // A 6-decade sweep forces far more than 8 distinct buckets.
        let values = seeded_stream(3, 2000, 1.0);
        for (i, &v) in values.iter().enumerate() {
            sketch.observe(v * 10f64.powi((i % 6) as i32));
        }
        assert!(sketch.bucket_len() <= 8, "cap must hold");
        assert!(sketch.collapsed() > 0, "collapse must have happened");
        assert_eq!(sketch.count(), 2000);
        // The top decade is intact: p99 still answers near the maximum.
        let p99 = sketch.quantile(0.99).expect("non-empty");
        let max = sketch.max().expect("non-empty");
        assert!(
            p99 > max / 100.0,
            "tail resolution lost: p99 {p99} max {max}"
        );
    }

    #[test]
    fn sketch_agrees_with_histogram_overflow_buckets() {
        // `Histogram::slowdown`'s top bound (4.0) is a power of two —
        // a log-bucket lower edge — so "overflowed the histogram" and
        // "sketched strictly above 4.0" must count identical
        // observations.
        let mut hist = Histogram::slowdown();
        let mut sketch = QuantileSketch::new();
        // Half-integer values: every one is a log-bucket *edge*, so no
        // observation straddles the 4.0 cut inside one bucket.
        let mut rng = Rng::from_seed(11);
        let values: Vec<f64> = (0..1000)
            .map(|_| (rng.next_u64() % 16 + 1) as f64 * 0.5)
            .collect();
        for &v in &values {
            hist.observe(v);
            sketch.observe(v);
        }
        let overflow = *hist.bucket_counts().last().expect("overflow bucket");
        assert!(overflow > 0, "stream must actually overflow");
        assert_eq!(sketch.count_above(4.0), overflow);
        // NaN goes to the histogram's overflow bucket but is excluded
        // from the sketch's bucketed population — the interaction is
        // explicit, not accidental.
        hist.observe(f64::NAN);
        sketch.observe(f64::NAN);
        assert_eq!(
            *hist.bucket_counts().last().expect("overflow bucket"),
            overflow + 1
        );
        assert_eq!(sketch.count_above(4.0), overflow);
        assert_eq!(sketch.non_finite_count(), 1);
    }

    #[test]
    fn serialization_is_deterministic_and_compact() {
        let build = || {
            let mut s = QuantileSketch::new();
            for &v in &seeded_stream(5, 200, 30.0) {
                s.observe(v);
            }
            icm_json::to_string(&s)
        };
        let text = build();
        assert_eq!(text, build(), "same stream must serialize identically");
        assert!(text.contains("\"buckets\":[["));
        assert!(
            text.len() < 4096,
            "sketch JSON must stay small: {}",
            text.len()
        );
    }

    #[test]
    fn empty_sketch_answers_no_quantiles() {
        let sketch = QuantileSketch::new();
        assert!(sketch.is_empty());
        assert_eq!(sketch.quantile(0.5), None);
        assert_eq!(sketch.min(), None);
        assert_eq!(sketch.max(), None);
        assert_eq!(sketch.mean(), None);
        let mut nan_only = QuantileSketch::new();
        nan_only.observe(f64::NAN);
        assert_eq!(nan_only.quantile(0.5), None, "no finite population");
    }
}
