//! Pluggable event sinks: no-op, in-memory ring buffer, JSONL writer.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::rc::Rc;

use icm_json::ToJson;

use crate::Event;

/// Destination for trace events.
///
/// Sinks receive every event emitted through an enabled
/// [`Tracer`](crate::Tracer); they must not reorder or drop events other
/// than as documented (the ring buffer drops the *oldest* on overflow).
pub trait Sink {
    /// Records one event.
    fn record(&mut self, event: &Event);

    /// Flushes buffered output; a no-op for unbuffered sinks.
    fn flush(&mut self) {}
}

/// Discards every event.
///
/// Useful as an explicit stand-in where a `Sink` value is required; the
/// cheaper way to disable tracing entirely is
/// [`Tracer::disabled`](crate::Tracer::disabled), which skips event
/// construction altogether.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&mut self, _event: &Event) {}
}

#[derive(Debug)]
struct Ring {
    capacity: usize,
    events: VecDeque<Event>,
    dropped: u64,
}

/// In-memory ring-buffer sink keeping the newest `capacity` events.
///
/// The handle is cheaply cloneable; the clone given to the tracer and
/// the clone kept by the caller share one buffer, so events can be read
/// back after (or during) the traced computation.
#[derive(Debug, Clone)]
pub struct Recorder {
    shared: Rc<RefCell<Ring>>,
}

impl Recorder {
    /// A recorder holding at most `capacity` events (min 1). On
    /// overflow the oldest event is dropped and counted.
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            shared: Rc::new(RefCell::new(Ring {
                capacity,
                events: VecDeque::with_capacity(capacity),
                dropped: 0,
            })),
        }
    }

    /// Snapshot of the buffered events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.shared.borrow().events.iter().cloned().collect()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.shared.borrow().events.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events dropped to overflow so far.
    pub fn dropped(&self) -> u64 {
        self.shared.borrow().dropped
    }

    /// Clears the buffer (the drop counter is kept).
    pub fn clear(&self) {
        self.shared.borrow_mut().events.clear();
    }
}

impl Sink for Recorder {
    fn record(&mut self, event: &Event) {
        let mut ring = self.shared.borrow_mut();
        if ring.events.len() == ring.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(event.clone());
    }
}

/// Writes one compact `icm-json` object per event, newline-terminated
/// (JSONL). Output is byte-identical for identical event streams.
///
/// I/O errors are counted, not propagated — tracing must never abort
/// the computation it observes; check [`io_errors`](Self::io_errors)
/// after flushing if delivery matters.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    out: W,
    io_errors: u64,
}

impl JsonlSink<BufWriter<File>> {
    /// Creates (truncating) a JSONL trace file.
    ///
    /// # Errors
    ///
    /// Propagates file-creation failures.
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(Self::new(BufWriter::new(File::create(path)?)))
    }

    /// Opens (creating if absent) a JSONL trace file for appending —
    /// the resume path, where earlier events must be preserved.
    ///
    /// # Errors
    ///
    /// Propagates file-open failures.
    pub fn append(path: &Path) -> io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Self::new(BufWriter::new(file)))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wraps any writer.
    pub fn new(out: W) -> Self {
        Self { out, io_errors: 0 }
    }

    /// Number of write/flush failures so far.
    pub fn io_errors(&self) -> u64 {
        self.io_errors
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> W {
        let _ = self.out.flush();
        self.out
    }
}

impl<W: Write> Sink for JsonlSink<W> {
    fn record(&mut self, event: &Event) {
        let mut line = event.to_json().to_text();
        line.push('\n');
        if self.out.write_all(line.as_bytes()).is_err() {
            self.io_errors += 1;
        }
    }

    fn flush(&mut self) {
        if self.out.flush().is_err() {
            self.io_errors += 1;
        }
    }
}

/// A cloneable in-memory byte buffer implementing [`Write`] — lets
/// tests (and the byte-identical determinism suite) capture a
/// [`JsonlSink`]'s exact output without touching the filesystem.
#[derive(Debug, Clone, Default)]
pub struct SharedBuf {
    bytes: Rc<RefCell<Vec<u8>>>,
}

impl SharedBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy of the bytes written so far.
    pub fn contents(&self) -> Vec<u8> {
        self.bytes.borrow().clone()
    }

    /// The contents as UTF-8 text (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.bytes.borrow()).into_owned()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.bytes.borrow_mut().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Tracer, Value};

    fn event(step: u64, name: &str) -> Event {
        Event {
            step,
            sim_s: 0.0,
            name: name.to_owned(),
            causes: Vec::new(),
            fields: Vec::new(),
        }
    }

    #[test]
    fn null_sink_accepts_everything() {
        let mut sink = NullSink;
        sink.record(&event(1, "x"));
        sink.flush();
    }

    #[test]
    fn ring_buffer_overflow_keeps_newest() {
        let mut recorder = Recorder::with_capacity(3);
        for i in 1..=5 {
            recorder.record(&event(i, &format!("e{i}")));
        }
        let names: Vec<String> = recorder.events().into_iter().map(|e| e.name).collect();
        assert_eq!(names, ["e3", "e4", "e5"], "oldest two dropped");
        assert_eq!(recorder.dropped(), 2);
        assert_eq!(recorder.len(), 3);
    }

    #[test]
    fn ring_capacity_is_at_least_one() {
        let mut recorder = Recorder::with_capacity(0);
        recorder.record(&event(1, "a"));
        recorder.record(&event(2, "b"));
        assert_eq!(recorder.len(), 1);
        assert_eq!(recorder.events()[0].name, "b");
    }

    #[test]
    fn ring_wraparound_preserves_emission_order_across_many_wraps() {
        let mut recorder = Recorder::with_capacity(4);
        for i in 1..=11 {
            recorder.record(&event(i, &format!("e{i}")));
        }
        // Two full wraps plus three: the window is the newest four, in
        // exactly the order they were recorded.
        let steps: Vec<u64> = recorder.events().into_iter().map(|e| e.step).collect();
        assert_eq!(steps, [8, 9, 10, 11]);
        assert!(steps.windows(2).all(|w| w[0] < w[1]), "order preserved");
        assert_eq!(recorder.dropped(), 7);
    }

    #[test]
    fn ring_refills_in_order_after_clear() {
        let mut recorder = Recorder::with_capacity(3);
        for i in 1..=5 {
            recorder.record(&event(i, "x"));
        }
        recorder.clear();
        for i in 6..=10 {
            recorder.record(&event(i, "y"));
        }
        let steps: Vec<u64> = recorder.events().into_iter().map(|e| e.step).collect();
        assert_eq!(steps, [8, 9, 10], "wraparound restarts cleanly after clear");
        assert_eq!(recorder.dropped(), 2 + 2);
    }

    #[test]
    fn recorder_clear_keeps_drop_counter() {
        let mut recorder = Recorder::with_capacity(1);
        recorder.record(&event(1, "a"));
        recorder.record(&event(2, "b"));
        recorder.clear();
        assert!(recorder.is_empty());
        assert_eq!(recorder.dropped(), 1);
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let buf = SharedBuf::new();
        let tracer = Tracer::with_sink(JsonlSink::new(buf.clone()));
        tracer.event("a", &[("k", Value::U64(1))]);
        tracer.event("b", &[]);
        tracer.flush();
        let text = buf.text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            r#"{"step":1,"sim_s":0,"name":"a","fields":{"k":1}}"#
        );
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn jsonl_sink_counts_io_errors() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("nope"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Err(io::Error::other("nope"))
            }
        }
        let mut sink = JsonlSink::new(Broken);
        sink.record(&event(1, "x"));
        sink.flush();
        assert_eq!(sink.io_errors(), 2);
    }
}
