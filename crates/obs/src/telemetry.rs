//! Constant-memory streaming telemetry: windowed rollups, health
//! counters and periodic snapshots derived from the event stream.
//!
//! The raw JSONL trace grows linearly with ticks × hosts — unusable for
//! long-lived or cluster-scale runs. [`TelemetrySink`] is the
//! constant-memory alternative: it consumes the *same* deterministic
//! event stream (replacing the JSONL sink, or teeing into it) and folds
//! every event into bounded aggregates:
//!
//! * **Series** — per-signal windowed rollups keyed on the simulated
//!   seconds clock: count/sum/min/max plus a [`QuantileSketch`] per
//!   window, ring-bounded at `max_windows` windows, plus one all-time
//!   sketch. At most `max_series` series exist; later signals are
//!   counted as dropped, never allocated.
//! * **Counters / sums** — health bookkeeping (manager actions by
//!   kind, faults by kind, probe/checkpoint/resume counts,
//!   violation-seconds, …), capped at `max_keys`.
//! * **Snapshots** — a [`HealthSnapshot`] of the accumulator is pushed
//!   every `snapshot_every_s` simulated seconds into a ring of
//!   `max_snapshots`.
//!
//! Everything is integer/BTreeMap bookkeeping over deterministic
//! inputs, so same-seed runs serialize byte-identical telemetry
//! artifacts, and the artifact's size is bounded by
//! [`TELEMETRY_BYTE_BUDGET`] no matter how long the run was (both
//! enforced in `tests/telemetry.rs` and `scripts/verify.sh`).
//!
//! Producers that emit no events on purpose (the manager's quiet ticks
//! are contractually silent) can still feed telemetry through
//! [`Tracer::telemetry_count`](crate::Tracer::telemetry_count) /
//! [`telemetry_observe`](crate::Tracer::telemetry_observe) — direct
//! aggregate updates that never touch the event stream, keeping raw
//! traces byte-identical to telemetry-off runs.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use icm_json::{Json, ToJson};

use crate::sink::Sink;
use crate::sketch::QuantileSketch;
use crate::Event;

/// Upper bound, in bytes, on a serialized telemetry artifact
/// ([`Telemetry::to_text`]). The ring bounds and caps in
/// [`TelemetryConfig::default`] keep any run — however long — under
/// this budget; `tests/telemetry.rs` enforces it on a 10× stretched
/// managed run.
pub const TELEMETRY_BYTE_BUDGET: usize = 256 * 1024;

/// Sizing knobs for the telemetry accumulator. Every cap is a hard
/// bound — overflow is counted, never allocated.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryConfig {
    /// Rollup window width in simulated seconds.
    pub window_s: f64,
    /// Windows retained per series (ring; oldest dropped).
    pub max_windows: usize,
    /// Distinct series allocated before overflow counting kicks in.
    pub max_series: usize,
    /// Distinct counter/sum keys allocated before overflow counting.
    pub max_keys: usize,
    /// Simulated seconds between health snapshots.
    pub snapshot_every_s: f64,
    /// Snapshots retained (ring; oldest dropped).
    pub max_snapshots: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            window_s: 600.0,
            max_windows: 16,
            max_series: 48,
            max_keys: 128,
            snapshot_every_s: 3_000.0,
            max_snapshots: 8,
        }
    }
}

/// One rollup window: simulated-time bucket `index` (i.e. the window
/// covers `[index·window_s, (index+1)·window_s)`).
#[derive(Debug, Clone, PartialEq)]
struct Window {
    index: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    sketch: QuantileSketch,
}

impl Window {
    fn new(index: u64) -> Self {
        Self {
            index,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sketch: QuantileSketch::with_max_buckets(32),
        }
    }

    fn observe(&mut self, value: f64) {
        self.count += 1;
        if value.is_finite() {
            self.sum += value;
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.sketch.observe(value);
    }

    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("w".to_owned(), self.index.to_json()),
            ("count".to_owned(), self.count.to_json()),
            ("sum".to_owned(), self.sum.to_json()),
            (
                "min".to_owned(),
                if self.min.is_finite() { self.min } else { 0.0 }.to_json(),
            ),
            (
                "max".to_owned(),
                if self.max.is_finite() { self.max } else { 0.0 }.to_json(),
            ),
            (
                "p50".to_owned(),
                self.sketch.quantile(0.5).unwrap_or(0.0).to_json(),
            ),
            (
                "p99".to_owned(),
                self.sketch.quantile(0.99).unwrap_or(0.0).to_json(),
            ),
        ])
    }
}

/// One named signal: ring of windows plus an all-time sketch.
#[derive(Debug, Clone, PartialEq, Default)]
struct Series {
    total: QuantileSketch,
    windows: VecDeque<Window>,
    dropped_windows: u64,
}

impl Series {
    fn observe(&mut self, window_index: u64, value: f64, max_windows: usize) {
        self.total.observe(value);
        match self.windows.back_mut() {
            // The clock is monotone, so a stale index only appears when
            // several signals interleave inside one window; fold into
            // the newest window rather than reordering the ring.
            Some(last) if last.index >= window_index => last.observe(value),
            _ => {
                let mut w = Window::new(window_index);
                w.observe(value);
                self.windows.push_back(w);
                while self.windows.len() > max_windows {
                    self.windows.pop_front();
                    self.dropped_windows += 1;
                }
            }
        }
    }

    fn merge_sketch(&mut self, window_index: u64, sketch: &QuantileSketch, max_windows: usize) {
        self.total.merge(sketch);
        match self.windows.back_mut() {
            Some(last) if last.index >= window_index => last.merge_from(sketch),
            _ => {
                let mut w = Window::new(window_index);
                w.merge_from(sketch);
                self.windows.push_back(w);
                while self.windows.len() > max_windows {
                    self.windows.pop_front();
                    self.dropped_windows += 1;
                }
            }
        }
    }

    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("count".to_owned(), self.total.count().to_json()),
            ("sum".to_owned(), self.total.sum().to_json()),
            ("min".to_owned(), self.total.min().unwrap_or(0.0).to_json()),
            ("max".to_owned(), self.total.max().unwrap_or(0.0).to_json()),
            (
                "p50".to_owned(),
                self.total.quantile(0.5).unwrap_or(0.0).to_json(),
            ),
            (
                "p99".to_owned(),
                self.total.quantile(0.99).unwrap_or(0.0).to_json(),
            ),
            ("dropped_windows".to_owned(), self.dropped_windows.to_json()),
            ("sketch".to_owned(), self.total.to_json()),
            (
                "windows".to_owned(),
                Json::Array(self.windows.iter().map(Window::to_json).collect()),
            ),
        ])
    }
}

impl Window {
    fn merge_from(&mut self, sketch: &QuantileSketch) {
        self.count += sketch.count();
        if sketch.finite_count() > 0 {
            self.sum += sketch.sum();
            self.min = self.min.min(sketch.min().unwrap_or(f64::INFINITY));
            self.max = self.max.max(sketch.max().unwrap_or(f64::NEG_INFINITY));
        }
        self.sketch.merge(sketch);
    }
}

/// A point-in-time copy of the health accumulator: every counter and
/// sum plus the recovery-latency quantiles, stamped with the
/// deterministic clock. Serialized via `icm-json`.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthSnapshot {
    /// Event-counter stamp at snapshot time.
    pub step: u64,
    /// Simulated seconds at snapshot time.
    pub sim_s: f64,
    /// Events folded into telemetry so far.
    pub events: u64,
    /// Monotone health counters (manager ticks/actions, faults, …).
    pub counters: BTreeMap<String, u64>,
    /// Accumulated seconds-valued health sums (violation time, action
    /// cost, wasted fault time, …).
    pub sums: BTreeMap<String, f64>,
    /// Recovery-latency sketch at snapshot time.
    pub recovery_latency: QuantileSketch,
}

impl ToJson for HealthSnapshot {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("step".to_owned(), self.step.to_json()),
            ("sim_s".to_owned(), self.sim_s.to_json()),
            ("events".to_owned(), self.events.to_json()),
            ("counters".to_owned(), self.counters.to_json()),
            ("sums".to_owned(), self.sums.to_json()),
            (
                "recovery_latency".to_owned(),
                self.recovery_latency.to_json(),
            ),
        ])
    }
}

/// Span begin bookkeeping for duration series and anneal attribution.
#[derive(Debug, Clone)]
struct OpenSpan {
    name: String,
    sim_s: f64,
    rule: Option<String>,
}

#[derive(Debug)]
struct TelemetryInner {
    config: TelemetryConfig,
    events: u64,
    series: BTreeMap<String, Series>,
    counters: BTreeMap<String, u64>,
    sums: BTreeMap<String, f64>,
    recovery_latency: QuantileSketch,
    open_spans: BTreeMap<u64, OpenSpan>,
    snapshots: VecDeque<HealthSnapshot>,
    next_snapshot_s: f64,
    last_step: u64,
    last_sim_s: f64,
    dropped_series: u64,
    dropped_keys: u64,
    dropped_snapshots: u64,
}

/// Cloneable handle onto one telemetry accumulator. All clones — the
/// one inside a [`TelemetrySink`], the one a caller keeps for
/// serialization, the one the [`Tracer`](crate::Tracer) holds for
/// direct observations — share state.
#[derive(Debug, Clone)]
pub struct Telemetry {
    shared: Rc<RefCell<TelemetryInner>>,
}

/// Event fields that are identifiers, not measurements — excluded from
/// the generic per-field rollup.
const FIELD_DENY: [&str; 4] = ["span", "seed", "tick", "id"];

impl Telemetry {
    /// A fresh accumulator.
    pub fn new(config: TelemetryConfig) -> Self {
        let next_snapshot_s = config.snapshot_every_s;
        Self {
            shared: Rc::new(RefCell::new(TelemetryInner {
                config,
                events: 0,
                series: BTreeMap::new(),
                counters: BTreeMap::new(),
                sums: BTreeMap::new(),
                recovery_latency: QuantileSketch::new(),
                open_spans: BTreeMap::new(),
                snapshots: VecDeque::new(),
                next_snapshot_s,
                last_step: 0,
                last_sim_s: 0.0,
                dropped_series: 0,
                dropped_keys: 0,
                dropped_snapshots: 0,
            })),
        }
    }

    /// Folds one trace event into the aggregates.
    pub fn record_event(&self, event: &Event) {
        let mut inner = self.shared.borrow_mut();
        inner.events += 1;
        inner.last_step = event.step;
        inner.fold(event);
        inner.maybe_snapshot(event.step, event.sim_s);
        inner.last_sim_s = event.sim_s;
    }

    /// Adds `n` to a health counter (direct path — no event involved).
    pub fn count(&self, name: &str, n: u64) {
        let mut inner = self.shared.borrow_mut();
        inner.bump(name, n);
    }

    /// Observes one value into the named series at simulated time
    /// `sim_s` (direct path — no event involved).
    pub fn observe(&self, name: &str, sim_s: f64, value: f64) {
        let mut inner = self.shared.borrow_mut();
        inner.observe_series(name, sim_s, value);
        let (step, last) = (inner.last_step, inner.last_sim_s.max(sim_s));
        inner.maybe_snapshot(step, last);
        inner.last_sim_s = last;
    }

    /// Merges a pre-built sketch (e.g. one per anneal lane, merged
    /// exactly) into the named series at simulated time `sim_s`.
    pub fn merge_series_sketch(&self, name: &str, sim_s: f64, sketch: &QuantileSketch) {
        if sketch.is_empty() {
            return;
        }
        let mut inner = self.shared.borrow_mut();
        let Some(key) = inner.series_key(name) else {
            return;
        };
        let (window, cap) = (inner.window_index(sim_s), inner.config.max_windows);
        inner
            .series
            .entry(key)
            .or_default()
            .merge_sketch(window, sketch, cap);
    }

    /// Takes a health snapshot right now, regardless of cadence.
    pub fn snapshot_now(&self, step: u64, sim_s: f64) {
        let mut inner = self.shared.borrow_mut();
        inner.push_snapshot(step, sim_s);
    }

    /// Events folded so far.
    pub fn events(&self) -> u64 {
        self.shared.borrow().events
    }

    /// Current value of a health counter.
    pub fn counter(&self, name: &str) -> u64 {
        self.shared
            .borrow()
            .counters
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Current value of a health sum.
    pub fn sum(&self, name: &str) -> f64 {
        self.shared.borrow().sums.get(name).copied().unwrap_or(0.0)
    }

    /// Names of the allocated series, sorted.
    pub fn series_names(&self) -> Vec<String> {
        self.shared.borrow().series.keys().cloned().collect()
    }

    /// Number of retained health snapshots.
    pub fn snapshot_count(&self) -> usize {
        self.shared.borrow().snapshots.len()
    }

    /// The current health accumulator as a snapshot (not pushed into
    /// the ring).
    pub fn health(&self) -> HealthSnapshot {
        let inner = self.shared.borrow();
        inner.health(inner.last_step, inner.last_sim_s)
    }

    /// The full telemetry artifact. Bounded: its serialized size stays
    /// under [`TELEMETRY_BYTE_BUDGET`] regardless of run length.
    pub fn to_json(&self) -> Json {
        let inner = self.shared.borrow();
        Json::Object(vec![
            (
                "budget_bytes".to_owned(),
                (TELEMETRY_BYTE_BUDGET as u64).to_json(),
            ),
            ("window_s".to_owned(), inner.config.window_s.to_json()),
            (
                "snapshot_every_s".to_owned(),
                inner.config.snapshot_every_s.to_json(),
            ),
            ("events".to_owned(), inner.events.to_json()),
            (
                "dropped".to_owned(),
                Json::Object(vec![
                    ("series".to_owned(), inner.dropped_series.to_json()),
                    ("keys".to_owned(), inner.dropped_keys.to_json()),
                    ("snapshots".to_owned(), inner.dropped_snapshots.to_json()),
                ]),
            ),
            (
                "health".to_owned(),
                inner.health(inner.last_step, inner.last_sim_s).to_json(),
            ),
            (
                "series".to_owned(),
                Json::Object(
                    inner
                        .series
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            ),
            (
                "snapshots".to_owned(),
                Json::Array(inner.snapshots.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }

    /// The artifact as compact JSON text plus trailing newline — what
    /// `icm-experiments --telemetry FILE` writes.
    pub fn to_text(&self) -> String {
        let mut text = self.to_json().to_text();
        text.push('\n');
        text
    }
}

impl TelemetryInner {
    fn window_index(&self, sim_s: f64) -> u64 {
        if sim_s.is_finite() && sim_s > 0.0 {
            (sim_s / self.config.window_s).floor() as u64
        } else {
            0
        }
    }

    fn series_key(&mut self, name: &str) -> Option<String> {
        if self.series.contains_key(name) {
            return Some(name.to_owned());
        }
        if self.series.len() >= self.config.max_series {
            self.dropped_series += 1;
            return None;
        }
        Some(name.to_owned())
    }

    fn observe_series(&mut self, name: &str, sim_s: f64, value: f64) {
        let Some(key) = self.series_key(name) else {
            return;
        };
        let (window, cap) = (self.window_index(sim_s), self.config.max_windows);
        self.series
            .entry(key)
            .or_default()
            .observe(window, value, cap);
    }

    fn bump(&mut self, name: &str, n: u64) {
        if !self.counters.contains_key(name) && self.counters.len() >= self.config.max_keys {
            self.dropped_keys += 1;
            return;
        }
        *self.counters.entry(name.to_owned()).or_insert(0) += n;
    }

    fn add_sum(&mut self, name: &str, delta: f64) {
        if !self.sums.contains_key(name) && self.sums.len() >= self.config.max_keys {
            self.dropped_keys += 1;
            return;
        }
        *self.sums.entry(name.to_owned()).or_insert(0.0) += delta;
    }

    fn fold(&mut self, event: &Event) {
        let name = event.name.as_str();
        match name {
            crate::manager::MANAGER_TICK => self.bump("manager.eventful_ticks", 1),
            crate::manager::MANAGER_DETECTION => {
                let kind = event.str("kind").unwrap_or("unknown").to_owned();
                self.bump(&format!("manager.detections.{kind}"), 1);
            }
            crate::manager::MANAGER_ACTION => {
                let kind = event.str("kind").unwrap_or("unknown").to_owned();
                self.bump(&format!("manager.actions.{kind}"), 1);
                if let Some(cost) = event.num("cost_s") {
                    self.add_sum("manager.action_cost_s", cost);
                }
            }
            crate::manager::MANAGER_RECOVERY => {
                self.bump("manager.recoveries", 1);
                if let Some(latency) = event.num("latency_s") {
                    self.recovery_latency.observe(latency);
                    self.observe_series("manager.recovery_latency_s", event.sim_s, latency);
                }
            }
            crate::manager::MANAGER_OUTCOME => {
                let side = match event.field("managed").and_then(crate::Value::as_bool) {
                    Some(true) => "managed",
                    Some(false) => "unmanaged",
                    None => "unknown",
                };
                self.bump(&format!("manager.outcomes.{side}"), 1);
                if let Some(v) = event.num("violation_s") {
                    self.add_sum(&format!("manager.violation_s.{side}"), v);
                }
            }
            "probe" => {
                self.bump("testbed.probes", 1);
            }
            "fault" => {
                let kind = event.str("kind").unwrap_or("unknown").to_owned();
                self.bump(&format!("testbed.faults.{kind}"), 1);
                if let Some(w) = event.num("wasted_s") {
                    self.add_sum("testbed.fault_wasted_s", w);
                }
            }
            "checkpoint" => self.bump("testbed.checkpoints", 1),
            "resume" => {
                self.bump("testbed.resumes", 1);
                if let Some(cost) = event.num("cost_s") {
                    self.add_sum("testbed.resume_cost_s", cost);
                }
            }
            _ => {}
        }

        if let Some(base) = name.strip_suffix(".begin") {
            if let Some(span) = event.num("span") {
                self.open_spans.insert(
                    span as u64,
                    OpenSpan {
                        name: base.to_owned(),
                        sim_s: event.sim_s,
                        rule: event.str("rule").map(str::to_owned),
                    },
                );
                // Bounded: a producer that loses `.end` events must not
                // leak memory here.
                while self.open_spans.len() > 256 {
                    self.open_spans.pop_first();
                }
            }
            return;
        }
        if name.ends_with(".end") {
            if let Some(open) = event
                .num("span")
                .and_then(|id| self.open_spans.remove(&(id as u64)))
            {
                self.observe_series(
                    &format!("span.{}.sim_s", open.name),
                    event.sim_s,
                    event.sim_s - open.sim_s,
                );
                if open.name == "anneal" {
                    let rule = open.rule.as_deref().unwrap_or("unknown").to_owned();
                    self.bump(&format!("anneal.{rule}.searches"), 1);
                    if let Some(a) = event.num("accepted") {
                        self.bump(&format!("anneal.{rule}.accepted"), a as u64);
                    }
                    if let Some(e) = event.num("evaluations") {
                        self.bump(&format!("anneal.{rule}.evaluations"), e as u64);
                    }
                    if let Some(cost) = event.num("cost") {
                        self.observe_series(&format!("anneal.{rule}.cost"), event.sim_s, cost);
                    }
                }
            }
            return;
        }

        // Generic rollup: every numeric measurement on a point event
        // becomes a windowed series named `{event}.{field}`.
        for (key, value) in &event.fields {
            if FIELD_DENY.contains(&key.as_str()) {
                continue;
            }
            if let Some(v) = value.as_f64() {
                self.observe_series(&format!("{name}.{key}"), event.sim_s, v);
            }
        }
    }

    fn maybe_snapshot(&mut self, step: u64, sim_s: f64) {
        while sim_s >= self.next_snapshot_s {
            let at = self.next_snapshot_s;
            self.push_snapshot(step, at);
            self.next_snapshot_s += self.config.snapshot_every_s;
        }
    }

    fn push_snapshot(&mut self, step: u64, sim_s: f64) {
        let snapshot = self.health(step, sim_s);
        self.snapshots.push_back(snapshot);
        while self.snapshots.len() > self.config.max_snapshots {
            self.snapshots.pop_front();
            self.dropped_snapshots += 1;
        }
    }

    fn health(&self, step: u64, sim_s: f64) -> HealthSnapshot {
        HealthSnapshot {
            step,
            sim_s,
            events: self.events,
            counters: self.counters.clone(),
            sums: self.sums.clone(),
            recovery_latency: self.recovery_latency.clone(),
        }
    }
}

/// A [`Sink`] that folds events into a [`Telemetry`] accumulator —
/// *replacing* the raw JSONL sink (constant memory, no raw lines) or
/// *teeing* into it (aggregates plus the unchanged byte-identical raw
/// trace).
pub struct TelemetrySink {
    telemetry: Telemetry,
    inner: Option<Box<dyn Sink>>,
}

impl TelemetrySink {
    /// Replace mode: events are aggregated and dropped.
    pub fn new(telemetry: Telemetry) -> Self {
        Self {
            telemetry,
            inner: None,
        }
    }

    /// Tee mode: events are aggregated *and* forwarded unchanged to
    /// `inner`, so the raw trace stays byte-identical to a run without
    /// telemetry.
    pub fn tee<S: Sink + 'static>(telemetry: Telemetry, inner: S) -> Self {
        Self {
            telemetry,
            inner: Some(Box::new(inner)),
        }
    }

    /// Another handle onto the shared accumulator.
    pub fn handle(&self) -> Telemetry {
        self.telemetry.clone()
    }
}

impl Sink for TelemetrySink {
    fn record(&mut self, event: &Event) {
        self.telemetry.record_event(event);
        if let Some(inner) = &mut self.inner {
            inner.record(event);
        }
    }

    fn flush(&mut self) {
        if let Some(inner) = &mut self.inner {
            inner.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{JsonlSink, SharedBuf, Tracer, Value};

    fn event(step: u64, sim_s: f64, name: &str, fields: &[(&str, Value)]) -> Event {
        Event {
            step,
            sim_s,
            name: name.to_owned(),
            causes: Vec::new(),
            fields: fields
                .iter()
                .map(|(k, v)| ((*k).to_owned(), v.clone()))
                .collect(),
        }
    }

    #[test]
    fn events_fold_into_windowed_series() {
        let t = Telemetry::new(TelemetryConfig {
            window_s: 10.0,
            ..TelemetryConfig::default()
        });
        for i in 0..50u64 {
            t.record_event(&event(
                i + 1,
                i as f64,
                "probe",
                &[("residual", Value::F64(i as f64 / 50.0))],
            ));
        }
        assert_eq!(t.counter("testbed.probes"), 50);
        assert_eq!(t.events(), 50);
        let names = t.series_names();
        assert!(names.contains(&"probe.residual".to_owned()), "{names:?}");
        let doc = t.to_json();
        let series = doc
            .get("series")
            .and_then(|s| s.get("probe.residual"))
            .expect("series present");
        assert_eq!(series.get("count").and_then(Json::as_f64), Some(50.0));
        let windows = series
            .get("windows")
            .and_then(Json::as_array)
            .expect("windows");
        assert_eq!(windows.len(), 5, "50s of 10s windows");
    }

    #[test]
    fn window_ring_and_series_cap_bound_memory() {
        let t = Telemetry::new(TelemetryConfig {
            window_s: 1.0,
            max_windows: 4,
            max_series: 2,
            ..TelemetryConfig::default()
        });
        for i in 0..100u64 {
            t.observe("a", i as f64, 1.0);
            t.observe("b", i as f64, 2.0);
            t.observe("c", i as f64, 3.0); // over the cap — dropped
        }
        assert_eq!(t.series_names(), ["a", "b"]);
        let doc = t.to_json();
        let a = doc.get("series").and_then(|s| s.get("a")).expect("a");
        let windows = a.get("windows").and_then(Json::as_array).expect("windows");
        assert_eq!(windows.len(), 4, "ring bound");
        assert_eq!(a.get("count").and_then(Json::as_f64), Some(100.0));
        assert_eq!(
            doc.get("dropped")
                .and_then(|d| d.get("series"))
                .and_then(Json::as_f64),
            Some(100.0)
        );
    }

    #[test]
    fn health_counters_track_the_manager_vocabulary() {
        let t = Telemetry::new(TelemetryConfig::default());
        t.record_event(&event(1, 5.0, "manager_tick", &[("tick", Value::U64(3))]));
        t.record_event(&event(
            2,
            6.0,
            "manager_detection",
            &[("tick", Value::U64(3)), ("kind", Value::from("host_down"))],
        ));
        t.record_event(&event(
            3,
            7.0,
            "manager_action",
            &[
                ("tick", Value::U64(3)),
                ("kind", Value::from("migrate")),
                ("cost_s", Value::F64(12.5)),
            ],
        ));
        t.record_event(&event(
            4,
            8.0,
            "manager_recovery",
            &[("tick", Value::U64(3)), ("latency_s", Value::F64(630.0))],
        ));
        t.record_event(&event(
            5,
            9.0,
            "manager_outcome",
            &[
                ("managed", Value::Bool(true)),
                ("violation_s", Value::F64(44.0)),
            ],
        ));
        assert_eq!(t.counter("manager.eventful_ticks"), 1);
        assert_eq!(t.counter("manager.detections.host_down"), 1);
        assert_eq!(t.counter("manager.actions.migrate"), 1);
        assert_eq!(t.counter("manager.recoveries"), 1);
        assert_eq!(t.sum("manager.action_cost_s"), 12.5);
        assert_eq!(t.sum("manager.violation_s.managed"), 44.0);
        let health = t.health();
        assert_eq!(health.recovery_latency.count(), 1);
        let p50 = health.recovery_latency.quantile(0.5).expect("one sample");
        assert!(
            ((p50 - 630.0) / 630.0).abs() <= crate::bucket::RELATIVE_ERROR,
            "recovery latency p50 {p50} too far from 630"
        );
    }

    #[test]
    fn spans_become_duration_series_and_anneal_attribution() {
        let t = Telemetry::new(TelemetryConfig::default());
        t.record_event(&event(
            1,
            100.0,
            "anneal.begin",
            &[
                ("span", Value::U64(9)),
                ("rule", Value::from("metropolis")),
                ("lanes", Value::U64(2)),
            ],
        ));
        t.record_event(&event(
            2,
            100.0,
            "anneal.end",
            &[
                ("span", Value::U64(9)),
                ("cost", Value::F64(3.25)),
                ("evaluations", Value::U64(400)),
                ("accepted", Value::U64(120)),
            ],
        ));
        assert_eq!(t.counter("anneal.metropolis.searches"), 1);
        assert_eq!(t.counter("anneal.metropolis.accepted"), 120);
        assert_eq!(t.counter("anneal.metropolis.evaluations"), 400);
        let names = t.series_names();
        assert!(names.contains(&"span.anneal.sim_s".to_owned()), "{names:?}");
        assert!(names.contains(&"anneal.metropolis.cost".to_owned()));
    }

    #[test]
    fn snapshots_fire_on_the_simulated_clock_and_stay_ring_bounded() {
        let t = Telemetry::new(TelemetryConfig {
            snapshot_every_s: 100.0,
            max_snapshots: 3,
            ..TelemetryConfig::default()
        });
        for i in 0..10u64 {
            t.record_event(&event(i + 1, (i * 150) as f64, "probe", &[]));
        }
        // 1350 simulated seconds → 13 cadence points, ring keeps 3.
        assert_eq!(t.snapshot_count(), 3);
        let doc = t.to_json();
        let snaps = doc
            .get("snapshots")
            .and_then(Json::as_array)
            .expect("snapshots");
        assert_eq!(snaps.len(), 3);
        assert!(
            doc.get("dropped")
                .and_then(|d| d.get("snapshots"))
                .and_then(Json::as_f64)
                .unwrap_or(0.0)
                > 0.0
        );
    }

    #[test]
    fn direct_observations_bypass_the_event_stream() {
        let buf = SharedBuf::new();
        let t = Telemetry::new(TelemetryConfig::default());
        let tracer =
            Tracer::with_telemetry(TelemetrySink::tee(t.clone(), JsonlSink::new(buf.clone())));
        tracer.telemetry_count("manager.ticks", 2);
        tracer.telemetry_observe("manager.tick.violation_s", 1.5);
        tracer.flush();
        assert_eq!(t.counter("manager.ticks"), 2);
        assert!(t
            .series_names()
            .contains(&"manager.tick.violation_s".to_owned()));
        assert!(
            buf.text().is_empty(),
            "direct telemetry must emit no events"
        );
    }

    #[test]
    fn tee_mode_forwards_the_identical_event_stream() {
        let plain_buf = SharedBuf::new();
        let plain = Tracer::with_sink(JsonlSink::new(plain_buf.clone()));
        let teed_buf = SharedBuf::new();
        let t = Telemetry::new(TelemetryConfig::default());
        let teed = Tracer::with_telemetry(TelemetrySink::tee(
            t.clone(),
            JsonlSink::new(teed_buf.clone()),
        ));
        for tracer in [&plain, &teed] {
            tracer.advance_sim(3.0);
            tracer.event("probe", &[("residual", Value::F64(0.25))]);
            let span = tracer.span("run", &[("kind", Value::from("solo"))]);
            tracer.advance_sim(10.0);
            span.end_with(&[("simulated_s", Value::F64(10.0))]);
            tracer.flush();
        }
        assert_eq!(plain_buf.text(), teed_buf.text(), "tee must not perturb");
        assert_eq!(t.events(), 3);
        assert_eq!(t.counter("testbed.probes"), 1);
    }

    #[test]
    fn same_stream_serializes_byte_identically() {
        let run = || {
            let t = Telemetry::new(TelemetryConfig::default());
            for i in 0..200u64 {
                t.record_event(&event(
                    i + 1,
                    i as f64 * 7.5,
                    "probe",
                    &[("residual", Value::F64((i % 17) as f64 / 16.0))],
                ));
            }
            t.count("manager.ticks", 3);
            t.to_text()
        };
        assert_eq!(run(), run());
    }
}
