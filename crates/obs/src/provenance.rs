//! Typed decision provenance: why the manager did what it did.
//!
//! The event stream records *what* happened; this module gives each
//! supervisory decision a structured, `icm-json`-serializable paper
//! trail — the probe observations behind a detection, the detection
//! inputs (score, threshold, streak) behind an action, the prediction
//! quality grade and candidate placement the action committed to, and
//! the eventually realized outcome with the violation-seconds it
//! incurred while in flight.
//!
//! Every `event` field here is an event **id**: the deterministic
//! `step` counter of the corresponding trace event (see
//! [`Event`](crate::Event)), or 0 when the run was untraced. The
//! records themselves are built unconditionally by the manager, so
//! provenance survives even trace-free runs — ids are simply absent.
//!
//! Nothing in this module emits events. Emission stays in the manager's
//! tick loop, preserving the invisibility contract: a quiet managed run
//! produces no detections, no actions, and therefore no provenance.

use icm_json::impl_json;

/// Event name for per-tick QoS violation attribution events.
///
/// Deliberately *not* prefixed `manager_`: violation events are emitted
/// from the shared managed/unmanaged accounting path, so they appear in
/// both traces identically and quiet managed runs stay byte-identical
/// to unmanaged ones (which assert no `manager_` events at all).
pub const QOS_VIOLATION: &str = "qos_violation";

/// Violation attributed to an injected or environmental fault the model
/// had no way to prevent (crash outage, straggler kill, drifted host).
pub const CAUSE_FAULT: &str = "fault";

/// Violation attributed to a model misprediction: the model predicted
/// the placement would meet its bound and the observation disagreed.
pub const CAUSE_MISPREDICT: &str = "mispredict";

/// Violation attributed to manager latency: a recovery was already in
/// flight, so the violation accrued while the reaction took effect.
pub const CAUSE_LATENCY: &str = "latency";

/// One probe observation the manager folded into its online model.
#[derive(Debug, Clone, PartialEq)]
pub struct ObservationRef {
    /// Trace event id of the `app_run` observation (0 if untraced).
    pub event: u64,
    /// Manager tick the observation landed on.
    pub tick: u64,
    /// Application observed.
    pub app: String,
    /// Slowdown the model predicted for this run.
    pub predicted: f64,
    /// Normalized slowdown actually observed.
    pub observed: f64,
}

impl_json!(struct ObservationRef {
    event,
    tick,
    app,
    predicted,
    observed,
});

/// The inputs that tripped one detection.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionInput {
    /// Trace event id of the `manager_detection` event (0 if untraced).
    pub event: u64,
    /// Detection kind (`DetectionKind::as_str` in `icm-manager`).
    pub kind: String,
    /// Application the detection concerns, when app-scoped.
    pub app: Option<String>,
    /// Host the detection concerns, when host-scoped.
    pub host: Option<u64>,
    /// Detector score at trip time (drift residual, SLO-violating
    /// normalized slowdown, …; 0 for host-down peeks).
    pub score: f64,
    /// Threshold the score was compared against.
    pub threshold: f64,
    /// Consecutive-signal streak length required to trip.
    pub streak: u64,
    /// Observations that fed the detector, most recent last.
    pub observations: Vec<ObservationRef>,
}

impl_json!(struct DetectionInput {
    event,
    kind,
    app,
    host,
    score,
    threshold,
    streak,
    observations,
});

/// A candidate placement an action committed an application to.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementRef {
    /// Application placed.
    pub app: String,
    /// Host ids the application's processes landed on (sorted, deduped).
    pub hosts: Vec<u64>,
}

impl_json!(struct PlacementRef {
    app,
    hosts,
});

/// The realized outcome an action was eventually linked to.
#[derive(Debug, Clone, PartialEq)]
pub struct OutcomeRef {
    /// Trace event id of the `manager_recovery` event (0 if untraced).
    pub event: u64,
    /// Tick the fleet was observed back within its QoS bound.
    pub tick: u64,
    /// Simulated seconds between reaction and recovery.
    pub latency_s: f64,
}

impl_json!(struct OutcomeRef {
    event,
    tick,
    latency_s,
});

/// Full provenance for one supervisory action: what the manager saw,
/// why it reacted, what it predicted, and what actually happened.
#[derive(Debug, Clone, PartialEq)]
pub struct ProvenanceRecord {
    /// 0-based index of the action within its run (matches
    /// `icm-trace explain --action N`).
    pub action_index: u64,
    /// Trace event id of the `manager_action` event (0 if untraced).
    pub event: u64,
    /// Manager tick the action fired on.
    pub tick: u64,
    /// Simulated seconds at action time.
    pub sim_s: f64,
    /// Action kind (`ActionKind::as_str` in `icm-manager`).
    pub kind: String,
    /// Application acted on, when app-scoped.
    pub app: Option<String>,
    /// Simulated-seconds cost charged for the action itself.
    pub cost_s: f64,
    /// Prediction quality grade justifying the action: `"measured"`,
    /// `"interpolated"` or `"defaulted"` from the model quality grid,
    /// or `"infeasible"` for sheds (justified by constraint breach,
    /// not by a prediction).
    pub quality: String,
    /// Slowdown the model predicted after the action.
    pub predicted_slowdown: f64,
    /// Slowdown observed on the next completed tick (0 until resolved).
    pub realized_slowdown: f64,
    /// Whether a completed tick has resolved the prediction yet.
    pub resolved: bool,
    /// Violation-seconds accrued on the tick that triggered the action.
    pub trigger_violation_s: f64,
    /// Violation-seconds still accrued on the resolving tick — the cost
    /// the action failed to avoid. `trigger_violation_s` minus this is
    /// the realized benefit.
    pub violation_incurred_s: f64,
    /// Candidate placements the action committed to (empty for sheds
    /// and circuit breaks).
    pub placement: Vec<PlacementRef>,
    /// Detections (with their observation chains) justifying the action.
    pub detections: Vec<DetectionInput>,
    /// Realized outcome, once the fleet recovered (`None` if the run
    /// ended first).
    pub outcome: Option<OutcomeRef>,
}

impl_json!(struct ProvenanceRecord {
    action_index,
    event,
    tick,
    sim_s,
    kind,
    app,
    cost_s,
    quality,
    predicted_slowdown,
    realized_slowdown,
    resolved,
    trigger_violation_s,
    violation_incurred_s,
    placement,
    detections,
    outcome,
});

impl ProvenanceRecord {
    /// Violation-seconds the action avoided relative to its trigger
    /// tick (clamped at zero: an action that did not pay off avoided
    /// nothing, it does not owe time back).
    pub fn avoided_violation_s(&self) -> f64 {
        (self.trigger_violation_s - self.violation_incurred_s).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ProvenanceRecord {
        ProvenanceRecord {
            action_index: 0,
            event: 42,
            tick: 3,
            sim_s: 120.5,
            kind: "re_anneal".into(),
            app: Some("M.milc".into()),
            cost_s: 0.0,
            quality: "measured".into(),
            predicted_slowdown: 1.2,
            realized_slowdown: 1.25,
            resolved: true,
            trigger_violation_s: 30.0,
            violation_incurred_s: 5.0,
            placement: vec![PlacementRef {
                app: "M.milc".into(),
                hosts: vec![0, 2],
            }],
            detections: vec![DetectionInput {
                event: 40,
                kind: "drift".into(),
                app: Some("M.milc".into()),
                host: None,
                score: 0.31,
                threshold: 0.2,
                streak: 2,
                observations: vec![ObservationRef {
                    event: 37,
                    tick: 2,
                    app: "M.milc".into(),
                    predicted: 1.1,
                    observed: 1.5,
                }],
            }],
            outcome: Some(OutcomeRef {
                event: 50,
                tick: 4,
                latency_s: 60.0,
            }),
        }
    }

    #[test]
    fn record_round_trips_through_json() {
        let record = sample();
        let text = icm_json::to_string(&record);
        let back: ProvenanceRecord = icm_json::from_str(&text).expect("parses");
        assert_eq!(back, record);
        assert_eq!(icm_json::to_string(&back), text);
    }

    #[test]
    fn avoided_violation_clamps_at_zero() {
        let mut record = sample();
        assert_eq!(record.avoided_violation_s(), 25.0);
        record.violation_incurred_s = 50.0;
        assert_eq!(record.avoided_violation_s(), 0.0);
    }

    #[test]
    fn cause_labels_are_distinct_and_unprefixed() {
        let labels = [CAUSE_FAULT, CAUSE_MISPREDICT, CAUSE_LATENCY];
        for (i, a) in labels.iter().enumerate() {
            for b in &labels[i + 1..] {
                assert_ne!(a, b);
            }
        }
        // The violation event must never look like a manager event —
        // quiet managed traces assert the absence of that prefix.
        assert!(!QOS_VIOLATION.starts_with("manager_"));
    }
}
