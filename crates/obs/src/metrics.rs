//! Counters, gauges and fixed-bucket histograms.
//!
//! The registry is deliberately plain data — `BTreeMap`s keyed by name —
//! so snapshots serialize deterministically (sorted keys) and two
//! same-seed runs produce identical metric JSON.

use std::collections::BTreeMap;

use icm_json::{Json, ToJson};

/// A fixed-bucket histogram.
///
/// `bounds = [b0, …, bk]` define `k + 2` buckets:
/// `(-∞, b0], (b0, b1], …, (bk, +∞)`. Fixed bounds keep merging and
/// serialization trivial and deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// A histogram over the given strictly increasing, finite bucket
    /// bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty, non-finite or not strictly
    /// increasing (bucket layout is static configuration; failing fast
    /// beats recording into garbage buckets).
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite and strictly increasing"
        );
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Buckets suited to normalized-runtime slowdown distributions
    /// (1.0× = no interference; the paper's worst cases sit near 3×).
    pub fn slowdown() -> Self {
        Self::new(&[1.0, 1.05, 1.1, 1.2, 1.35, 1.5, 1.75, 2.0, 2.5, 3.0, 4.0])
    }

    /// Records one observation (non-finite values are counted in
    /// `count` extremes but placed in the overflow bucket).
    pub fn observe(&mut self, value: f64) {
        self.counts[crate::bucket::fixed_index(&self.bounds, &value)] += 1;
        self.count += 1;
        if value.is_finite() {
            self.sum += value;
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
    }

    /// Bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (`bounds().len() + 1` entries, the last being
    /// the overflow bucket).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of finite observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of finite observations (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }

    /// Smallest finite observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        self.min.is_finite().then_some(self.min)
    }

    /// Largest finite observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        self.max.is_finite().then_some(self.max)
    }
}

impl ToJson for Histogram {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("bounds".to_owned(), self.bounds.to_json()),
            ("counts".to_owned(), self.counts.to_json()),
            ("count".to_owned(), self.count.to_json()),
            ("sum".to_owned(), self.sum.to_json()),
        ])
    }
}

/// A deterministic metrics registry: counters, gauges and histograms
/// keyed by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments a counter by 1 (creating it at 0).
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `delta` to a counter.
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Current counter value (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets a gauge to its latest value.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_owned(), value);
    }

    /// Latest gauge value.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Registers a histogram with explicit bucket bounds (replacing any
    /// existing histogram of that name).
    pub fn register_histogram(&mut self, name: &str, histogram: Histogram) {
        self.histograms.insert(name.to_owned(), histogram);
    }

    /// Records an observation, creating the histogram with
    /// [`Histogram::slowdown`] buckets on first use.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.histograms
            .entry(name.to_owned())
            .or_insert_with(Histogram::slowdown)
            .observe(value);
    }

    /// A registered histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }
}

impl ToJson for Metrics {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("counters".to_owned(), self.counters.to_json()),
            ("gauges".to_owned(), self.gauges.to_json()),
            (
                "histograms".to_owned(),
                Json::Object(
                    self.histograms
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let mut m = Metrics::new();
        assert_eq!(m.counter("probes"), 0);
        m.inc("probes");
        m.add("probes", 4);
        assert_eq!(m.counter("probes"), 5);
        assert_eq!(m.gauge("temp"), None);
        m.set_gauge("temp", 0.5);
        m.set_gauge("temp", 0.25);
        assert_eq!(m.gauge("temp"), Some(0.25));
    }

    #[test]
    fn histogram_buckets_observations() {
        let mut h = Histogram::new(&[1.0, 2.0, 3.0]);
        for v in [0.5, 1.0, 1.5, 2.5, 10.0] {
            h.observe(v);
        }
        assert_eq!(h.bucket_counts(), &[2, 1, 1, 1]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), Some(0.5));
        assert_eq!(h.max(), Some(10.0));
        let mean = h.mean().expect("non-empty");
        assert!((mean - 15.5 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn slowdown_histogram_covers_typical_range() {
        let mut h = Histogram::slowdown();
        h.observe(1.0);
        h.observe(1.4);
        h.observe(2.9);
        h.observe(7.0); // overflow bucket
        assert_eq!(h.count(), 4);
        assert_eq!(*h.bucket_counts().last().expect("overflow bucket"), 1);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    fn overflow_bucket_counts_boundary_and_nonfinite_values() {
        let mut h = Histogram::new(&[1.0, 2.0]);
        h.observe(2.0); // exactly the top bound: last *bounded* bucket
        h.observe(2.0 + f64::EPSILON * 4.0); // just above: overflow
        h.observe(f64::INFINITY); // non-finite: overflow
        h.observe(f64::NAN); // NaN compares false to every bound: overflow
        assert_eq!(h.bucket_counts(), &[0, 1, 3]);
        // Non-finite observations count, but never pollute the moments.
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 2.0 + (2.0 + f64::EPSILON * 4.0));
        assert_eq!(h.min(), Some(2.0));
        assert_eq!(h.max(), Some(2.0 + f64::EPSILON * 4.0));
    }

    #[test]
    fn only_overflow_observations_leave_extremes_empty() {
        let mut h = Histogram::new(&[1.0]);
        h.observe(f64::NEG_INFINITY);
        h.observe(f64::NAN);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 0.0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        // -inf is ≤ every bound, so it lands in the first bucket; NaN
        // falls through to overflow.
        assert_eq!(h.bucket_counts(), &[1, 1]);
    }

    #[test]
    fn gauge_overwrite_keeps_only_the_latest_value() {
        let mut m = Metrics::new();
        for v in [1.0, -3.5, 0.0, 42.25] {
            m.set_gauge("g", v);
        }
        assert_eq!(m.gauge("g"), Some(42.25), "gauges overwrite, not sum");
        // Overwriting with NaN is stored verbatim (a gauge reports what
        // it was last told, even if that was garbage).
        m.set_gauge("g", f64::NAN);
        assert!(m.gauge("g").expect("still present").is_nan());
        // Distinct names never alias.
        m.set_gauge("g2", 7.0);
        assert!(m.gauge("g").expect("g unchanged").is_nan());
        assert_eq!(m.gauge("g2"), Some(7.0));
    }

    #[test]
    fn registering_a_histogram_replaces_prior_observations() {
        let mut m = Metrics::new();
        m.observe("h", 1.2);
        m.register_histogram("h", Histogram::new(&[10.0]));
        assert_eq!(m.histogram("h").expect("replaced").count(), 0);
        m.observe("h", 3.0);
        assert_eq!(m.histogram("h").expect("present").bucket_counts(), &[1, 0]);
    }

    #[test]
    fn registry_auto_creates_slowdown_histograms() {
        let mut m = Metrics::new();
        m.observe("slowdowns", 1.3);
        m.observe("slowdowns", 1.6);
        let h = m.histogram("slowdowns").expect("created");
        assert_eq!(h.count(), 2);
        assert!(m.histogram("other").is_none());
    }

    #[test]
    fn snapshot_serializes_deterministically() {
        let build = || {
            let mut m = Metrics::new();
            m.inc("b");
            m.inc("a");
            m.set_gauge("g", 1.5);
            m.observe("h", 1.2);
            icm_json::to_string(&m)
        };
        let text = build();
        assert_eq!(text, build());
        // BTreeMap ordering: "a" before "b" regardless of insertion.
        let a = text.find("\"a\"").expect("a present");
        let b = text.find("\"b\"").expect("b present");
        assert!(a < b);
    }
}
