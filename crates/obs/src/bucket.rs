//! Shared bucket-index math for every histogram in the crate.
//!
//! Two families live here:
//!
//! * [`fixed_index`] — the linear scan over a small slice of explicit
//!   upper bounds used by [`Histogram`](crate::Histogram) and
//!   [`WallStats`](crate::WallStats). It existed as two hand-rolled
//!   copies before this module unified them.
//! * [`log_index`] and friends — logarithmic buckets for the
//!   [`QuantileSketch`](crate::QuantileSketch), DDSketch-style but
//!   derived purely from the IEEE-754 bit pattern: the index of a
//!   positive normal `f64` is its exponent field concatenated with the
//!   top [`SUB_BUCKET_BITS`] mantissa bits. That mapping is monotone,
//!   needs no `ln()`, and — crucially for the determinism contract — is
//!   exact integer arithmetic, so same-seed runs bucket identically on
//!   every platform.

/// Mantissa bits kept in a log-bucket index. Each power of two is split
/// into `2^SUB_BUCKET_BITS` sub-buckets.
pub const SUB_BUCKET_BITS: u32 = 5;

/// Worst-case relative error of a bucket midpoint against any value in
/// the bucket: `2^-(SUB_BUCKET_BITS + 1)` (= 1.5625% at 5 bits). The
/// sketch's quantile answers are within this bound of an exact sorted
/// reference (tested in `sketch.rs`).
pub const RELATIVE_ERROR: f64 = 1.0 / (1u64 << (SUB_BUCKET_BITS + 1)) as f64;

/// Bits shifted off an `f64`'s pattern to form its bucket index.
const SHIFT: u32 = 52 - SUB_BUCKET_BITS;

/// Log-bucket index of a positive normal `f64`; `None` for values that
/// are non-finite, non-positive or subnormal (the sketch counts those
/// separately — their relative-error story is different).
#[inline]
pub fn log_index(value: f64) -> Option<i64> {
    if value.is_finite() && value >= f64::MIN_POSITIVE {
        Some((value.to_bits() >> SHIFT) as i64)
    } else {
        None
    }
}

/// Inclusive lower edge of a log bucket.
pub fn bucket_lower(index: i64) -> f64 {
    f64::from_bits((index as u64) << SHIFT)
}

/// Exclusive upper edge of a log bucket.
pub fn bucket_upper(index: i64) -> f64 {
    f64::from_bits(((index + 1) as u64) << SHIFT)
}

/// Representative value for a log bucket: the midpoint of its edges,
/// which bounds the relative error by [`RELATIVE_ERROR`]. For the
/// topmost finite bucket (whose upper edge would be infinite) the lower
/// edge is returned.
pub fn bucket_mid(index: i64) -> f64 {
    let lower = bucket_lower(index);
    let upper = bucket_upper(index);
    if upper.is_finite() {
        lower / 2.0 + upper / 2.0
    } else {
        lower
    }
}

/// Index of the first bound `value` does not exceed; `bounds.len()` is
/// the overflow bucket. NaN compares false against every bound and so
/// always lands in overflow — the documented `Histogram` behavior.
#[inline]
pub fn fixed_index<T: PartialOrd>(bounds: &[T], value: &T) -> usize {
    bounds
        .iter()
        .position(|b| value <= b)
        .unwrap_or(bounds.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_index_is_monotone_over_positive_normals() {
        let values = [
            f64::MIN_POSITIVE,
            1e-300,
            0.001,
            0.5,
            0.999,
            1.0,
            1.0001,
            2.0,
            3.5,
            1000.0,
            1e18,
            f64::MAX,
        ];
        let indices: Vec<i64> = values
            .iter()
            .map(|&v| log_index(v).expect("normal"))
            .collect();
        assert!(
            indices.windows(2).all(|w| w[0] <= w[1]),
            "indices must be monotone: {indices:?}"
        );
    }

    #[test]
    fn log_index_rejects_non_positive_and_non_finite() {
        for bad in [0.0, -1.0, -0.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(log_index(bad), None, "{bad} must not bucket");
        }
        // Subnormals are excluded too (their buckets would not satisfy
        // the relative-error bound).
        assert_eq!(log_index(f64::MIN_POSITIVE / 2.0), None);
    }

    #[test]
    fn bucket_edges_contain_their_values_and_bound_the_error() {
        for &v in &[0.001, 0.9, 1.0, 1.49, 7.77, 12345.678, 9.9e200] {
            let i = log_index(v).expect("normal");
            let (lo, hi) = (bucket_lower(i), bucket_upper(i));
            assert!(lo <= v && v < hi, "{v} outside [{lo}, {hi})");
            let mid = bucket_mid(i);
            let rel = ((mid - v) / v).abs();
            assert!(
                rel <= RELATIVE_ERROR,
                "{v}: midpoint {mid} off by {rel} > {RELATIVE_ERROR}"
            );
        }
    }

    #[test]
    fn power_of_two_values_start_their_own_bucket() {
        for &v in &[0.25, 0.5, 1.0, 2.0, 4.0, 1024.0] {
            let i = log_index(v).expect("normal");
            assert_eq!(bucket_lower(i), v, "{v} must be a bucket lower edge");
        }
    }

    #[test]
    fn fixed_index_matches_the_historic_scan() {
        let bounds = [1.0, 2.0, 3.0];
        assert_eq!(fixed_index(&bounds, &0.5), 0);
        assert_eq!(fixed_index(&bounds, &1.0), 0, "bounds are inclusive");
        assert_eq!(fixed_index(&bounds, &2.5), 2);
        assert_eq!(fixed_index(&bounds, &3.0), 2);
        assert_eq!(fixed_index(&bounds, &4.0), 3, "overflow bucket");
        assert_eq!(fixed_index(&bounds, &f64::NAN), 3, "NaN overflows");
        let ns: [u64; 2] = [1_000, 10_000];
        assert_eq!(fixed_index(&ns, &500), 0);
        assert_eq!(fixed_index(&ns, &50_000), 2);
    }
}
