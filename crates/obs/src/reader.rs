//! Reading JSONL traces back into [`Event`]s.

use std::fmt;
use std::fs;
use std::path::Path;

use icm_json::FromJson;

use crate::Event;

/// A malformed trace: the offending 1-based line and what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line number within the trace (0 when the failure is not
    /// tied to a line, e.g. the file could not be read).
    pub line: usize,
    /// Human-readable description of the failure.
    pub msg: String,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "trace error: {}", self.msg)
        } else {
            write!(f, "trace error at line {}: {}", self.line, self.msg)
        }
    }
}

impl std::error::Error for TraceError {}

/// Parses a JSONL trace: one event object per line, blank lines
/// ignored.
///
/// # Errors
///
/// Returns a [`TraceError`] carrying the 1-based line number of the
/// first line that is not valid JSON or not a well-formed event object.
pub fn parse_events(text: &str) -> Result<Vec<Event>, TraceError> {
    let mut events = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let json = icm_json::parse(line).map_err(|e| TraceError {
            line: idx + 1,
            msg: e.to_string(),
        })?;
        let event = Event::from_json(&json).map_err(|e| TraceError {
            line: idx + 1,
            msg: e.to_string(),
        })?;
        events.push(event);
    }
    Ok(events)
}

/// Reads and parses a JSONL trace file.
///
/// # Errors
///
/// Returns a [`TraceError`] if the file cannot be read (line 0) or any
/// line fails to parse.
pub fn read_jsonl_file(path: &Path) -> Result<Vec<Event>, TraceError> {
    let text = fs::read_to_string(path).map_err(|e| TraceError {
        line: 0,
        msg: format!("cannot read {}: {e}", path.display()),
    })?;
    parse_events(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{JsonlSink, SharedBuf, Tracer, Value};

    #[test]
    fn round_trips_a_written_trace() {
        let buf = SharedBuf::new();
        let tracer = Tracer::with_sink(JsonlSink::new(buf.clone()));
        tracer.advance_sim(2.5);
        tracer.event("probe", &[("slowdown", Value::F64(1.4))]);
        tracer.event("done", &[("ok", Value::Bool(true))]);
        tracer.flush();

        let events = parse_events(&buf.text()).expect("valid trace");
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "probe");
        assert_eq!(events[0].sim_s, 2.5);
        assert_eq!(events[1].num("ok"), None);
        assert_eq!(events[1].field("ok"), Some(&Value::Bool(true)));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = "\n  \n{\"step\":1,\"sim_s\":0,\"name\":\"a\",\"fields\":{}}\n\n";
        let events = parse_events(text).expect("valid trace");
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn rejects_invalid_json_with_line_number() {
        let text = "{\"step\":1,\"sim_s\":0,\"name\":\"a\",\"fields\":{}}\nnot json\n";
        let err = parse_events(text).expect_err("second line is garbage");
        assert_eq!(err.line, 2);
    }

    #[test]
    fn rejects_well_formed_json_that_is_not_an_event() {
        let err = parse_events("{\"foo\":1}\n").expect_err("missing event keys");
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("line 1"), "{err}");
    }

    #[test]
    fn rejects_event_with_extra_keys() {
        let text = "{\"step\":1,\"sim_s\":0,\"name\":\"a\",\"fields\":{},\"extra\":0}\n";
        assert!(parse_events(text).is_err());
    }

    #[test]
    fn missing_file_reports_line_zero() {
        let err = read_jsonl_file(Path::new("/nonexistent/trace.jsonl")).expect_err("no file");
        assert_eq!(err.line, 0);
        assert!(err.to_string().starts_with("trace error:"), "{err}");
    }
}
