//! Deterministic inline-SVG chart primitives: line charts and grouped
//! bar charts.
//!
//! The generated markup references CSS custom properties (`var(--c1)`,
//! `var(--grid)`, …) instead of literal colors, so one SVG follows the
//! page's light/dark theme for free. All coordinates are formatted with
//! fixed precision, so identical inputs yield byte-identical markup.
//! Hover affordance comes from native `<title>` tooltips on every
//! marker and bar — no scripts.

use std::fmt::Write as _;

/// Escapes text for use inside XML attribute or element content.
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            other => out.push(other),
        }
    }
    out
}

/// One coordinate, formatted compactly and deterministically.
fn c(v: f64) -> String {
    format!("{v:.1}")
}

/// Tooltip/label value formatting: up to three decimals, trailing
/// zeros trimmed.
pub fn fmt_value(v: f64) -> String {
    let mut text = format!("{v:.3}");
    while text.contains('.') && (text.ends_with('0') || text.ends_with('.')) {
        text.pop();
    }
    if text.is_empty() || text == "-" {
        text = "0".to_owned();
    }
    text
}

fn nice_step(raw: f64) -> f64 {
    if raw <= 0.0 || !raw.is_finite() {
        return 1.0;
    }
    let mag = 10f64.powf(raw.log10().floor());
    let n = raw / mag;
    let nice = if n <= 1.0 {
        1.0
    } else if n <= 2.0 {
        2.0
    } else if n <= 2.5 {
        2.5
    } else if n <= 5.0 {
        5.0
    } else {
        10.0
    };
    nice * mag
}

/// Tick positions covering `[min, max]`, roughly `target` of them.
fn ticks(min: f64, max: f64, target: usize) -> (Vec<f64>, f64) {
    let span = (max - min).max(1e-9);
    let step = nice_step(span / target.max(1) as f64);
    let mut t = (min / step).ceil() * step;
    let mut out = Vec::new();
    while t <= max + step * 1e-6 {
        // Snap -0.0 and accumulated error to the grid.
        out.push((t / step).round() * step);
        t += step;
    }
    (out, step)
}

fn fmt_tick(v: f64, step: f64) -> String {
    if step >= 1.0 {
        format!("{v:.0}")
    } else if step >= 0.1 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Chart margins inside the SVG viewport.
const M_LEFT: f64 = 46.0;
const M_RIGHT: f64 = 10.0;
const M_TOP: f64 = 10.0;
const M_BOTTOM: f64 = 38.0;

/// A legend entry: display label plus the CSS color it is drawn with.
pub type LegendEntry = (String, String);

/// One line-chart series.
#[derive(Debug, Clone)]
pub struct LineSeries {
    /// Display label (legend + tooltips).
    pub label: String,
    /// CSS color, usually a `var(--…)` reference.
    pub color: String,
    /// `(x, y)` points in data space, in x order.
    pub points: Vec<(f64, f64)>,
}

/// A single-axis line chart with circle markers and native tooltips.
#[derive(Debug, Clone)]
pub struct LineChart {
    /// Viewport width in px.
    pub width: f64,
    /// Viewport height in px.
    pub height: f64,
    /// x-axis caption.
    pub x_label: String,
    /// y-axis caption.
    pub y_label: String,
    /// Whether the y scale is anchored at zero.
    pub y_from_zero: bool,
    /// The series, drawn in order.
    pub series: Vec<LineSeries>,
}

impl LineChart {
    /// Legend entries for the chart's series.
    pub fn legend(&self) -> Vec<LegendEntry> {
        self.series
            .iter()
            .map(|s| (s.label.clone(), s.color.clone()))
            .collect()
    }

    /// Renders the chart as a self-contained `<svg>` element.
    pub fn svg(&self) -> String {
        let points: Vec<(f64, f64)> = self.series.iter().flat_map(|s| s.points.clone()).collect();
        if points.is_empty() {
            return String::from("<svg class=\"chart\" role=\"img\"></svg>");
        }
        let x_min = points.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
        let x_max = points.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
        let mut y_min = points.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
        let mut y_max = points.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
        if self.y_from_zero {
            y_min = y_min.min(0.0);
        }
        if (y_max - y_min).abs() < 1e-9 {
            y_max = y_min + 1.0;
        }
        let pad = (y_max - y_min) * 0.06;
        y_max += pad;
        if !self.y_from_zero {
            y_min -= pad;
        }

        let plot_w = self.width - M_LEFT - M_RIGHT;
        let plot_h = self.height - M_TOP - M_BOTTOM;
        let sx = |x: f64| M_LEFT + (x - x_min) / (x_max - x_min).max(1e-9) * plot_w;
        let sy = |y: f64| M_TOP + plot_h - (y - y_min) / (y_max - y_min).max(1e-9) * plot_h;

        let mut out = String::new();
        let _ = write!(
            out,
            "<svg class=\"chart\" role=\"img\" viewBox=\"0 0 {} {}\" width=\"{}\" height=\"{}\">",
            c(self.width),
            c(self.height),
            c(self.width),
            c(self.height)
        );
        self.axes(&mut out, (x_min, x_max), (y_min, y_max), &sx, &sy);
        for series in &self.series {
            if series.points.is_empty() {
                continue;
            }
            let mut d = String::new();
            for (i, &(x, y)) in series.points.iter().enumerate() {
                let _ = write!(
                    d,
                    "{}{},{}",
                    if i == 0 { "M" } else { " L" },
                    c(sx(x)),
                    c(sy(y))
                );
            }
            let _ = write!(
                out,
                "<path d=\"{}\" fill=\"none\" stroke=\"{}\" stroke-width=\"2\" \
                 stroke-linejoin=\"round\" stroke-linecap=\"round\"/>",
                d, series.color
            );
            for &(x, y) in &series.points {
                let _ = write!(
                    out,
                    "<circle cx=\"{}\" cy=\"{}\" r=\"3\" fill=\"{}\" stroke=\"var(--panel)\" \
                     stroke-width=\"1\"><title>{} — {}: {}, {}: {}</title></circle>",
                    c(sx(x)),
                    c(sy(y)),
                    series.color,
                    escape(&series.label),
                    escape(&self.x_label),
                    fmt_value(x),
                    escape(&self.y_label),
                    fmt_value(y)
                );
            }
        }
        out.push_str("</svg>");
        out
    }

    fn axes(
        &self,
        out: &mut String,
        (x_min, x_max): (f64, f64),
        (y_min, y_max): (f64, f64),
        sx: &dyn Fn(f64) -> f64,
        sy: &dyn Fn(f64) -> f64,
    ) {
        let (yt, ystep) = ticks(y_min, y_max, 5);
        for t in &yt {
            let y = sy(*t);
            let _ = write!(
                out,
                "<line x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"var(--grid)\"/>",
                c(M_LEFT),
                c(y),
                c(self.width - M_RIGHT),
                c(y)
            );
            let _ = write!(
                out,
                "<text class=\"tick\" x=\"{}\" y=\"{}\" text-anchor=\"end\">{}</text>",
                c(M_LEFT - 6.0),
                c(y + 3.5),
                fmt_tick(*t, ystep)
            );
        }
        let (xt, xstep) = ticks(x_min, x_max, 6);
        let base = self.height - M_BOTTOM;
        for t in &xt {
            let x = sx(*t);
            let _ = write!(
                out,
                "<line x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"var(--axis)\"/>",
                c(x),
                c(base),
                c(x),
                c(base + 4.0)
            );
            let _ = write!(
                out,
                "<text class=\"tick\" x=\"{}\" y=\"{}\" text-anchor=\"middle\">{}</text>",
                c(x),
                c(base + 16.0),
                fmt_tick(*t, xstep)
            );
        }
        let _ = write!(
            out,
            "<line x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"var(--axis)\"/>",
            c(M_LEFT),
            c(base),
            c(self.width - M_RIGHT),
            c(base)
        );
        self.captions(out);
    }

    fn captions(&self, out: &mut String) {
        let _ = write!(
            out,
            "<text class=\"axis-label\" x=\"{}\" y=\"{}\" text-anchor=\"middle\">{}</text>",
            c(M_LEFT + (self.width - M_LEFT - M_RIGHT) / 2.0),
            c(self.height - 4.0),
            escape(&self.x_label)
        );
        let _ = write!(
            out,
            "<text class=\"axis-label\" x=\"12\" y=\"{}\" text-anchor=\"middle\" \
             transform=\"rotate(-90 12 {})\">{}</text>",
            c(M_TOP + (self.height - M_TOP - M_BOTTOM) / 2.0),
            c(M_TOP + (self.height - M_TOP - M_BOTTOM) / 2.0),
            escape(&self.y_label)
        );
    }
}

/// One bar-chart series: one value per group.
#[derive(Debug, Clone)]
pub struct BarSeries {
    /// Display label (legend + tooltips).
    pub label: String,
    /// CSS color, usually a `var(--…)` reference.
    pub color: String,
    /// One value per group (`group_labels.len()` entries).
    pub values: Vec<f64>,
}

/// A grouped bar chart: `series.len()` bars per group, anchored to the
/// zero baseline with 4px-rounded tops and 2px surface gaps.
#[derive(Debug, Clone)]
pub struct BarChart {
    /// Viewport width in px.
    pub width: f64,
    /// Viewport height in px.
    pub height: f64,
    /// x-axis caption.
    pub x_label: String,
    /// y-axis caption.
    pub y_label: String,
    /// One label per bar group.
    pub group_labels: Vec<String>,
    /// The series (bars within each group, in order).
    pub series: Vec<BarSeries>,
    /// Optional horizontal reference line `(value, label)`, drawn in
    /// the status color.
    pub hline: Option<(f64, String)>,
}

impl BarChart {
    /// Legend entries for the chart's series (plus the reference line).
    pub fn legend(&self) -> Vec<LegendEntry> {
        let mut entries: Vec<LegendEntry> = self
            .series
            .iter()
            .map(|s| (s.label.clone(), s.color.clone()))
            .collect();
        if let Some((_, label)) = &self.hline {
            entries.push((label.clone(), "var(--bad)".to_owned()));
        }
        entries
    }

    /// Renders the chart as a self-contained `<svg>` element.
    pub fn svg(&self) -> String {
        if self.group_labels.is_empty() || self.series.is_empty() {
            return String::from("<svg class=\"chart\" role=\"img\"></svg>");
        }
        let mut y_max = self
            .series
            .iter()
            .flat_map(|s| s.values.iter().copied())
            .fold(0.0f64, f64::max);
        if let Some((v, _)) = self.hline {
            y_max = y_max.max(v);
        }
        if y_max <= 0.0 {
            y_max = 1.0;
        }
        y_max *= 1.08;

        let plot_w = self.width - M_LEFT - M_RIGHT;
        let plot_h = self.height - M_TOP - M_BOTTOM;
        let base = self.height - M_BOTTOM;
        let sy = |y: f64| M_TOP + plot_h - (y / y_max) * plot_h;

        let groups = self.group_labels.len() as f64;
        let group_w = plot_w / groups;
        let gap = 2.0;
        let inner_w = (group_w * 0.72).max(4.0);
        let bars = self.series.len() as f64;
        let bar_w = ((inner_w - gap * (bars - 1.0)) / bars).max(2.0);

        let mut out = String::new();
        let _ = write!(
            out,
            "<svg class=\"chart\" role=\"img\" viewBox=\"0 0 {} {}\" width=\"{}\" height=\"{}\">",
            c(self.width),
            c(self.height),
            c(self.width),
            c(self.height)
        );

        let (yt, ystep) = ticks(0.0, y_max, 5);
        for t in &yt {
            let y = sy(*t);
            let _ = write!(
                out,
                "<line x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"var(--grid)\"/>",
                c(M_LEFT),
                c(y),
                c(self.width - M_RIGHT),
                c(y)
            );
            let _ = write!(
                out,
                "<text class=\"tick\" x=\"{}\" y=\"{}\" text-anchor=\"end\">{}</text>",
                c(M_LEFT - 6.0),
                c(y + 3.5),
                fmt_tick(*t, ystep)
            );
        }

        for (g, group_label) in self.group_labels.iter().enumerate() {
            let g0 = M_LEFT + g as f64 * group_w + (group_w - inner_w) / 2.0;
            for (s, series) in self.series.iter().enumerate() {
                let Some(&value) = series.values.get(g) else {
                    continue;
                };
                let x = g0 + s as f64 * (bar_w + gap);
                let top = sy(value.max(0.0));
                let h = (base - top).max(0.0);
                let r = 4.0f64.min(h).min(bar_w / 2.0);
                // Rounded top corners only, anchored to the baseline.
                let d = format!(
                    "M{x0},{b} L{x0},{yr} Q{x0},{t} {xr},{t} L{xr2},{t} Q{x1},{t} {x1},{yr} \
                     L{x1},{b} Z",
                    x0 = c(x),
                    x1 = c(x + bar_w),
                    xr = c(x + r),
                    xr2 = c(x + bar_w - r),
                    t = c(top),
                    yr = c(top + r),
                    b = c(base)
                );
                let _ = write!(
                    out,
                    "<path d=\"{}\" fill=\"{}\"><title>{} — {}: {}</title></path>",
                    d,
                    series.color,
                    escape(&series.label),
                    escape(group_label),
                    fmt_value(value)
                );
            }
            let _ = write!(
                out,
                "<text class=\"tick\" x=\"{}\" y=\"{}\" text-anchor=\"middle\">{}</text>",
                c(g0 + inner_w / 2.0),
                c(base + 16.0),
                escape(group_label)
            );
        }

        let _ = write!(
            out,
            "<line x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"var(--axis)\"/>",
            c(M_LEFT),
            c(base),
            c(self.width - M_RIGHT),
            c(base)
        );
        if let Some((value, label)) = &self.hline {
            let y = sy(*value);
            let _ = write!(
                out,
                "<line x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"var(--bad)\" \
                 stroke-width=\"2\" stroke-dasharray=\"6 4\"><title>{}: {}</title></line>",
                c(M_LEFT),
                c(y),
                c(self.width - M_RIGHT),
                c(y),
                escape(label),
                fmt_value(*value)
            );
        }

        let _ = write!(
            out,
            "<text class=\"axis-label\" x=\"{}\" y=\"{}\" text-anchor=\"middle\">{}</text>",
            c(M_LEFT + plot_w / 2.0),
            c(self.height - 4.0),
            escape(&self.x_label)
        );
        let _ = write!(
            out,
            "<text class=\"axis-label\" x=\"12\" y=\"{}\" text-anchor=\"middle\" \
             transform=\"rotate(-90 12 {})\">{}</text>",
            c(M_TOP + plot_h / 2.0),
            c(M_TOP + plot_h / 2.0),
            escape(&self.y_label)
        );
        out.push_str("</svg>");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line() -> LineChart {
        LineChart {
            width: 360.0,
            height: 230.0,
            x_label: "nodes".to_owned(),
            y_label: "normalized time".to_owned(),
            y_from_zero: true,
            series: vec![LineSeries {
                label: "real".to_owned(),
                color: "var(--c1)".to_owned(),
                points: vec![(0.0, 1.0), (4.0, 1.4), (8.0, 2.1)],
            }],
        }
    }

    #[test]
    fn line_chart_is_deterministic_and_tooltipped() {
        let chart = line();
        let a = chart.svg();
        assert_eq!(a, chart.svg());
        assert!(a.starts_with("<svg"));
        assert!(a.contains("<title>real — nodes: 4, normalized time: 1.4</title>"));
        assert!(a.contains("stroke-width=\"2\""));
    }

    #[test]
    fn bar_chart_anchors_to_baseline() {
        let chart = BarChart {
            width: 420.0,
            height: 230.0,
            x_label: "mix".to_owned(),
            y_label: "speedup".to_owned(),
            group_labels: vec!["HW1".to_owned(), "HW2".to_owned()],
            series: vec![BarSeries {
                label: "best".to_owned(),
                color: "var(--c1)".to_owned(),
                values: vec![1.2, 1.1],
            }],
            hline: Some((1.0, "no speedup".to_owned())),
        };
        let svg = chart.svg();
        assert!(svg.contains("<path d=\"M"));
        assert!(svg.contains("stroke-dasharray"));
        assert!(svg.contains("<title>best — HW1: 1.2</title>"));
        assert_eq!(
            chart.legend(),
            vec![
                ("best".to_owned(), "var(--c1)".to_owned()),
                ("no speedup".to_owned(), "var(--bad)".to_owned()),
            ]
        );
    }

    #[test]
    fn escaping_covers_markup_characters() {
        assert_eq!(escape("a<b & \"c\""), "a&lt;b &amp; &quot;c&quot;");
    }

    #[test]
    fn value_formatting_trims_zeros() {
        assert_eq!(fmt_value(1.0), "1");
        assert_eq!(fmt_value(1.25), "1.25");
        assert_eq!(fmt_value(0.5004), "0.5");
    }
}
