//! `icm-report` — figure-grade reporting on top of `icm-experiments`
//! results.
//!
//! Input is the machine-readable `results.json` written by
//! `icm-experiments` (see [`icm_experiments::results::ResultsDoc`]);
//! output is either a static, fully self-contained HTML page with
//! inline-SVG charts reproducing the shapes of the paper's Figures 2,
//! 3, 6/7 (Table 3), 10 and 11 — each with a paper-vs-measured
//! fidelity verdict — or a plain-text summary for CI logs.
//!
//! Everything is deterministic: same `results.json` in, byte-identical
//! HTML out. The page loads nothing from the network — no scripts, no
//! fonts, no images — so it can be checked into CI artifacts and read
//! offline indefinitely.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod html;
pub mod svg;
pub mod verdict;

use icm_experiments::fig10::Fig10Result;
use icm_experiments::fig11::Fig11Result;
use icm_experiments::fig2::Fig2Result;
use icm_experiments::fig3::Fig3Result;
use icm_experiments::flame::FlameGraph;
use icm_experiments::recovery::RecoveryResult;
use icm_experiments::results::ResultsDoc;
use icm_experiments::robustness::RobustnessResult;
use icm_experiments::serve::ServeResult;
use icm_experiments::table3::Table3Result;
use icm_json::{FromJson, Json};

use svg::{BarChart, BarSeries, LegendEntry, LineChart, LineSeries};
use verdict::{Status, Verdict, PAPER_TABLE3_COST_PCT};

pub use html::render_html;

/// One rendered chart plus its legend and an accessible data table.
#[derive(Debug, Clone)]
pub struct Chart {
    /// Caption shown above the chart (may be empty).
    pub caption: String,
    /// The inline `<svg>` markup.
    pub svg: String,
    /// Legend entries (label, CSS color).
    pub legend: Vec<LegendEntry>,
    /// Tabular view of the plotted data; first row is the header.
    pub table: Vec<Vec<String>>,
}

/// One report section: a figure (or the wall profile) with its verdict.
#[derive(Debug, Clone)]
pub struct Section {
    /// Anchor id (`fig2`, `fig3`, …).
    pub id: String,
    /// Display title.
    pub title: String,
    /// The paper claim this section checks.
    pub claim: String,
    /// Paper-vs-measured verdict.
    pub verdict: Verdict,
    /// Charts, in display order.
    pub charts: Vec<Chart>,
    /// Free-form remarks rendered under the charts.
    pub notes: Vec<String>,
}

/// The whole report.
#[derive(Debug, Clone)]
pub struct Report {
    /// Seed the experiments ran with.
    pub seed: u64,
    /// Whether reduced grids were used.
    pub fast: bool,
    /// Sections in paper order.
    pub sections: Vec<Section>,
}

impl Report {
    /// The worst verdict across sections (`Missing` counts as worse
    /// than `Warn` but better than `Fail` for CI purposes — a missing
    /// figure is an incomplete run, not a refuted claim).
    pub fn counts(&self) -> (usize, usize, usize, usize) {
        let mut counts = (0, 0, 0, 0);
        for section in &self.sections {
            match section.verdict.status {
                Status::Pass => counts.0 += 1,
                Status::Warn => counts.1 += 1,
                Status::Fail => counts.2 += 1,
                Status::Missing => counts.3 += 1,
            }
        }
        counts
    }

    /// Whether any section failed outright.
    pub fn has_failures(&self) -> bool {
        self.sections
            .iter()
            .any(|s| s.verdict.status == Status::Fail)
    }
}

fn chart_from_bar(caption: &str, chart: &BarChart) -> Chart {
    let mut table = Vec::with_capacity(chart.group_labels.len() + 1);
    let mut header = vec![chart.x_label.clone()];
    header.extend(chart.series.iter().map(|s| s.label.clone()));
    table.push(header);
    for (g, group) in chart.group_labels.iter().enumerate() {
        let mut row = vec![group.clone()];
        for series in &chart.series {
            row.push(
                series
                    .values
                    .get(g)
                    .map(|v| svg::fmt_value(*v))
                    .unwrap_or_default(),
            );
        }
        table.push(row);
    }
    Chart {
        caption: caption.to_owned(),
        svg: chart.svg(),
        legend: chart.legend(),
        table,
    }
}

fn chart_from_line(caption: &str, chart: &LineChart) -> Chart {
    let mut table = Vec::new();
    if let Some(first) = chart.series.first() {
        let mut header = vec![chart.x_label.clone()];
        header.extend(chart.series.iter().map(|s| s.label.clone()));
        table.push(header);
        for (i, &(x, _)) in first.points.iter().enumerate() {
            let mut row = vec![svg::fmt_value(x)];
            for series in &chart.series {
                row.push(
                    series
                        .points
                        .get(i)
                        .map(|p| svg::fmt_value(p.1))
                        .unwrap_or_default(),
                );
            }
            table.push(row);
        }
    }
    Chart {
        caption: caption.to_owned(),
        svg: chart.svg(),
        legend: chart.legend(),
        table,
    }
}

type SectionBody = (Verdict, Vec<Chart>, Vec<String>);

fn typed_section<T: FromJson>(
    doc: &ResultsDoc,
    id: &str,
    title: &str,
    claim: &str,
    build: impl FnOnce(&T) -> SectionBody,
) -> Section {
    let (verdict, charts, notes) = match doc.get(id) {
        None => (Verdict::missing(id), Vec::new(), Vec::new()),
        Some(json) => match T::from_json(json) {
            Ok(result) => build(&result),
            Err(err) => (
                Verdict {
                    status: Status::Fail,
                    detail: format!("cannot parse `{id}` result: {err}"),
                },
                Vec::new(),
                Vec::new(),
            ),
        },
    };
    Section {
        id: id.to_owned(),
        title: title.to_owned(),
        claim: claim.to_owned(),
        verdict,
        charts,
        notes,
    }
}

fn fig2_section(doc: &ResultsDoc) -> Section {
    typed_section(
        doc,
        "fig2",
        "Figure 2 — naive vs real interference",
        "Interference on a distributed app grows far beyond the naive proportional \
         expectation as more nodes host a co-runner.",
        |r: &Fig2Result| {
            let chart = BarChart {
                width: 460.0,
                height: 240.0,
                x_label: "interfering nodes".to_owned(),
                y_label: "normalized time".to_owned(),
                group_labels: r
                    .rows
                    .iter()
                    .map(|row| row.interfering_nodes.to_string())
                    .collect(),
                series: vec![
                    BarSeries {
                        label: "naive expectation".to_owned(),
                        color: "var(--c2)".to_owned(),
                        values: r.rows.iter().map(|row| row.naive_expected).collect(),
                    },
                    BarSeries {
                        label: "measured".to_owned(),
                        color: "var(--c1)".to_owned(),
                        values: r.rows.iter().map(|row| row.real).collect(),
                    },
                ],
                hline: None,
            };
            let caption = format!("{} with {} co-runners", r.app, r.corunner);
            let notes = vec![format!(
                "co-runner bubble score: {}",
                svg::fmt_value(r.corunner_score)
            )];
            (
                verdict::check_fig2(r),
                vec![chart_from_bar(&caption, &chart)],
                notes,
            )
        },
    )
}

fn ramp_color(index: usize, count: usize) -> String {
    let slot = if count <= 1 {
        8
    } else {
        1 + (index as f64 * 7.0 / (count - 1) as f64).round() as usize
    };
    format!("var(--r{slot})")
}

fn fig3_section(doc: &ResultsDoc) -> Section {
    typed_section(
        doc,
        "fig3",
        "Figure 3 — interference propagation",
        "Each distributed app slows down as interfering nodes and bubble pressure \
         grow; one curve per pressure, one panel per app.",
        |r: &Fig3Result| {
            let charts = r
                .apps
                .iter()
                .map(|app| {
                    let chart = LineChart {
                        width: 320.0,
                        height: 210.0,
                        x_label: "interfering nodes".to_owned(),
                        y_label: "normalized time".to_owned(),
                        y_from_zero: false,
                        series: app
                            .pressures
                            .iter()
                            .enumerate()
                            .map(|(p, pressure)| LineSeries {
                                label: format!("pressure {pressure}"),
                                color: ramp_color(p, app.pressures.len()),
                                points: app
                                    .node_counts
                                    .iter()
                                    .zip(app.curves.get(p).map_or(&[] as &[f64], Vec::as_slice))
                                    .map(|(&n, &y)| (n as f64, y))
                                    .collect(),
                            })
                            .collect(),
                    };
                    chart_from_line(&app.app, &chart)
                })
                .collect();
            (verdict::check_fig3(r), charts, Vec::new())
        },
    )
}

fn table3_section(doc: &ResultsDoc) -> Section {
    typed_section(
        doc,
        "table3",
        "Table 3 / Figures 6–7 — profiling cost and accuracy",
        "Binary-optimized profiling measures under a fifth of the setting space \
         while staying as accurate as much more expensive strategies.",
        |r: &Table3Result| {
            let algorithms: Vec<String> = r.averages.iter().map(|a| a.algorithm.clone()).collect();
            let cost = BarChart {
                width: 460.0,
                height: 240.0,
                x_label: "algorithm".to_owned(),
                y_label: "cost (% of settings)".to_owned(),
                group_labels: algorithms.clone(),
                series: vec![
                    BarSeries {
                        label: "measured".to_owned(),
                        color: "var(--c1)".to_owned(),
                        values: r.averages.iter().map(|a| a.cost_pct).collect(),
                    },
                    BarSeries {
                        label: "paper".to_owned(),
                        color: "var(--c4)".to_owned(),
                        values: PAPER_TABLE3_COST_PCT.to_vec(),
                    },
                ],
                hline: None,
            };
            let error = BarChart {
                width: 460.0,
                height: 240.0,
                x_label: "algorithm".to_owned(),
                y_label: "mean abs error (%)".to_owned(),
                group_labels: algorithms,
                series: vec![BarSeries {
                    label: "measured error".to_owned(),
                    color: "var(--c1)".to_owned(),
                    values: r.averages.iter().map(|a| a.error_pct).collect(),
                }],
                hline: None,
            };
            let hours: f64 = r.averages.iter().map(|a| a.cluster_hours).sum();
            (
                verdict::check_table3(r),
                vec![
                    chart_from_bar("profiling cost (Fig. 7)", &cost),
                    chart_from_bar("profiling error (Fig. 6)", &error),
                ],
                vec![format!(
                    "total simulated profiling time across algorithms: {} cluster-hours",
                    svg::fmt_value(hours)
                )],
            )
        },
    )
}

fn fig10_section(doc: &ResultsDoc) -> Section {
    typed_section(
        doc,
        "fig10",
        "Figure 10 — QoS-aware placement",
        "Placements chosen with the proposed model keep the QoS target inside its \
         bound; the naive model's placements often do not.",
        |r: &Fig10Result| {
            let value_of = |mix: &icm_experiments::fig10::QosMixOutcome, model: &str| {
                mix.outcomes
                    .iter()
                    .find(|o| o.model == model)
                    .map(|o| o.actual_target)
                    .unwrap_or(f64::NAN)
            };
            let chart = BarChart {
                width: 560.0,
                height: 240.0,
                x_label: "mix".to_owned(),
                y_label: "target normalized time".to_owned(),
                group_labels: r.mixes.iter().map(|m| m.mix.clone()).collect(),
                series: vec![
                    BarSeries {
                        label: "proposed model".to_owned(),
                        color: "var(--c1)".to_owned(),
                        values: r.mixes.iter().map(|m| value_of(m, "proposed")).collect(),
                    },
                    BarSeries {
                        label: "naive model".to_owned(),
                        color: "var(--c2)".to_owned(),
                        values: r.mixes.iter().map(|m| value_of(m, "naive")).collect(),
                    },
                ],
                hline: r.mixes.first().map(|m| (m.bound, "QoS bound".to_owned())),
            };
            let notes = vec![format!(
                "QoS fraction: {} (bound = 1/fraction on normalized time)",
                svg::fmt_value(r.qos_fraction)
            )];
            (
                verdict::check_fig10(r),
                vec![chart_from_bar("measured QoS-target time per mix", &chart)],
                notes,
            )
        },
    )
}

fn fig11_section(doc: &ResultsDoc) -> Section {
    typed_section(
        doc,
        "fig11",
        "Figure 11 — placement for performance",
        "Over the Table 5 mixes, the model-guided best placement speeds the mix up \
         over the worst placement, beating random and naive-model placement.",
        |r: &Fig11Result| {
            let chart = BarChart {
                width: 560.0,
                height: 240.0,
                x_label: "mix".to_owned(),
                y_label: "avg speedup vs worst".to_owned(),
                group_labels: r.mixes.iter().map(|m| m.mix.clone()).collect(),
                series: vec![
                    BarSeries {
                        label: "model-guided best".to_owned(),
                        color: "var(--c1)".to_owned(),
                        values: r.mixes.iter().map(|m| m.best_speedup).collect(),
                    },
                    BarSeries {
                        label: "random".to_owned(),
                        color: "var(--c3)".to_owned(),
                        values: r.mixes.iter().map(|m| m.random_speedup).collect(),
                    },
                    BarSeries {
                        label: "naive model".to_owned(),
                        color: "var(--c2)".to_owned(),
                        values: r.mixes.iter().map(|m| m.naive_speedup).collect(),
                    },
                ],
                hline: Some((1.0, "no speedup".to_owned())),
            };
            (
                verdict::check_fig11(r),
                vec![chart_from_bar("speedup per mix", &chart)],
                Vec::new(),
            )
        },
    )
}

fn serve_section(doc: &ResultsDoc) -> Section {
    typed_section(
        doc,
        "serve",
        "Serve — the placement daemon under load, killed and recovered",
        "A persistent placement daemon under scripted load answers inside declared \
         deadline budgets, sheds typed overload replies only when the queue bound is \
         exceeded, degrades gracefully to bounded-staleness cached predictions, and \
         loses no acknowledged reply across a mid-stream kill — its recovered \
         committed-reply journal is byte-identical to an uninterrupted run's.",
        |r: &ServeResult| {
            let outcomes = BarChart {
                width: 460.0,
                height: 240.0,
                x_label: "reply outcome".to_owned(),
                y_label: "replies".to_owned(),
                group_labels: vec![
                    "served".to_owned(),
                    "degraded".to_owned(),
                    "shed".to_owned(),
                    "deadline".to_owned(),
                    "errors".to_owned(),
                ],
                series: vec![BarSeries {
                    label: "replies".to_owned(),
                    color: "var(--c1)".to_owned(),
                    values: vec![
                        r.served as f64,
                        r.degraded as f64,
                        r.shed as f64,
                        r.deadline_exceeded as f64,
                        r.errors as f64,
                    ],
                }],
                hline: None,
            };
            let latency = BarChart {
                width: 380.0,
                height: 240.0,
                x_label: "virtual latency".to_owned(),
                y_label: "microseconds".to_owned(),
                group_labels: vec!["p50".to_owned(), "p99".to_owned()],
                series: vec![BarSeries {
                    label: "served requests".to_owned(),
                    color: "var(--c3)".to_owned(),
                    values: vec![r.p50_us, r.p99_us],
                }],
                hline: Some((r.deadline_budget_us as f64, "deadline budget".to_owned())),
            };
            let notes = vec![
                format!(
                    "{} frames ({} requests) served across a mid-stream kill; \
                     {} replies committed, {} lost",
                    r.frames, r.requests, r.committed, r.lost_committed
                ),
                format!(
                    "sustained {} served requests per virtual second; degraded \
                     fraction {:.3}",
                    svg::fmt_value(r.served_per_vs),
                    r.degraded_fraction
                ),
            ];
            (
                verdict::check_serve(r),
                vec![
                    chart_from_bar("reply outcomes under the scripted load", &outcomes),
                    chart_from_bar("virtual latency of served requests", &latency),
                ],
                notes,
            )
        },
    )
}

fn robustness_section(doc: &ResultsDoc) -> Section {
    typed_section(
        doc,
        "robustness",
        "Robustness — profiling under injected faults",
        "With transient probe failures, stragglers and corrupted measurements \
         injected, the resilient profiling driver still produces a full-coverage \
         model whose fidelity degrades monotonically with the fault rate, at a \
         bounded profiling-cost inflation.",
        |r: &RobustnessResult| {
            let fidelity = LineChart {
                width: 460.0,
                height: 240.0,
                x_label: "injected fault rate (%)".to_owned(),
                y_label: "mean model error (%)".to_owned(),
                y_from_zero: true,
                series: vec![
                    LineSeries {
                        label: "model error".to_owned(),
                        color: "var(--c1)".to_owned(),
                        points: r
                            .points
                            .iter()
                            .map(|p| (p.fault_pct, p.mean_error_pct))
                            .collect(),
                    },
                    LineSeries {
                        label: "defaulted cells".to_owned(),
                        color: "var(--c3)".to_owned(),
                        points: r
                            .points
                            .iter()
                            .map(|p| (p.fault_pct, p.mean_defaulted_pct))
                            .collect(),
                    },
                ],
            };
            let cost = LineChart {
                width: 460.0,
                height: 240.0,
                x_label: "injected fault rate (%)".to_owned(),
                y_label: "relative cost / degradation".to_owned(),
                y_from_zero: true,
                series: vec![
                    LineSeries {
                        label: "profiling-cost inflation (x)".to_owned(),
                        color: "var(--c2)".to_owned(),
                        points: r
                            .points
                            .iter()
                            .map(|p| (p.fault_pct, p.cost_inflation))
                            .collect(),
                    },
                    LineSeries {
                        label: "placement degradation (%)".to_owned(),
                        color: "var(--c4)".to_owned(),
                        points: r
                            .points
                            .iter()
                            .map(|p| (p.fault_pct, p.placement_degradation_pct))
                            .collect(),
                    },
                ],
            };
            let notes = r
                .points
                .last()
                .map(|worst| {
                    vec![format!(
                        "at {}% faults: {} retries, {} injected failures absorbed",
                        svg::fmt_value(worst.fault_pct),
                        worst.retries,
                        worst.injected_failures
                    )]
                })
                .unwrap_or_default();
            (
                verdict::check_robustness(r),
                vec![
                    chart_from_line("model fidelity vs fault rate", &fidelity),
                    chart_from_line("cost and placement impact", &cost),
                ],
                notes,
            )
        },
    )
}

fn recovery_section(doc: &ResultsDoc) -> Section {
    typed_section(
        doc,
        "recovery",
        "Recovery — self-healing runtime vs unmanaged baseline",
        "Under scripted host crashes and ambient drift, the supervisory control \
         loop (migration, incremental re-annealing, admission control) never \
         accumulates more QoS-violation time than an unmanaged run of the same \
         fleet, and strictly reduces it when failures strike.",
        |r: &RecoveryResult| {
            let violations = BarChart {
                width: 560.0,
                height: 240.0,
                x_label: "scenario".to_owned(),
                y_label: "QoS-violation time (s)".to_owned(),
                group_labels: r.points.iter().map(|p| p.label.clone()).collect(),
                series: vec![
                    BarSeries {
                        label: "managed".to_owned(),
                        color: "var(--c1)".to_owned(),
                        values: r.points.iter().map(|p| p.managed_violation_s).collect(),
                    },
                    BarSeries {
                        label: "unmanaged".to_owned(),
                        color: "var(--c2)".to_owned(),
                        values: r.points.iter().map(|p| p.unmanaged_violation_s).collect(),
                    },
                ],
                hline: None,
            };
            let actions = BarChart {
                width: 560.0,
                height: 240.0,
                x_label: "scenario".to_owned(),
                y_label: "manager actions".to_owned(),
                group_labels: r.points.iter().map(|p| p.label.clone()).collect(),
                series: vec![
                    BarSeries {
                        label: "migrations".to_owned(),
                        color: "var(--c1)".to_owned(),
                        values: r.points.iter().map(|p| p.migrations as f64).collect(),
                    },
                    BarSeries {
                        label: "re-anneals".to_owned(),
                        color: "var(--c3)".to_owned(),
                        values: r.points.iter().map(|p| p.reanneals as f64).collect(),
                    },
                    BarSeries {
                        label: "sheds".to_owned(),
                        color: "var(--c2)".to_owned(),
                        values: r.points.iter().map(|p| p.sheds as f64).collect(),
                    },
                    BarSeries {
                        label: "circuit breaks".to_owned(),
                        color: "var(--c4)".to_owned(),
                        values: r.points.iter().map(|p| p.circuit_breaks as f64).collect(),
                    },
                ],
                hline: None,
            };
            let mut notes = vec![format!(
                "{} supervisory ticks over {} applications ({})",
                r.ticks,
                r.apps.len(),
                r.apps.join(", ")
            )];
            if let Some(worst) = r
                .points
                .iter()
                .filter(|p| p.mean_recovery_latency_s > 0.0)
                .max_by(|a, b| a.avoided_violation_s.total_cmp(&b.avoided_violation_s))
            {
                notes.push(format!(
                    "`{}`: {} violation-seconds avoided, mean recovery latency {}s",
                    worst.label,
                    svg::fmt_value(worst.avoided_violation_s),
                    svg::fmt_value(worst.mean_recovery_latency_s)
                ));
            }
            (
                verdict::check_recovery(r),
                vec![
                    chart_from_bar("violation time: managed vs unmanaged", &violations),
                    chart_from_bar("reaction mix per scenario", &actions),
                ],
                notes,
            )
        },
    )
}

fn audit_body(r: &RecoveryResult) -> SectionBody {
    let verdict = verdict::check_audit(r);
    let scenarios = r.points.iter().filter(|p| !p.provenance.is_empty()).count();
    let actions: usize = r.points.iter().map(|p| p.provenance.len()).sum();
    if actions == 0 {
        return (verdict, Vec::new(), Vec::new());
    }

    // Per-kind realized benefit — the chart — plus the per-action
    // provenance table that backs it.
    let mut per_kind: Vec<(String, f64, f64)> = Vec::new();
    let mut table = vec![vec![
        "scenario".to_owned(),
        "action".to_owned(),
        "tick".to_owned(),
        "kind".to_owned(),
        "app".to_owned(),
        "quality".to_owned(),
        "predicted".to_owned(),
        "realized".to_owned(),
        "detections".to_owned(),
        "avoided (s)".to_owned(),
        "outcome".to_owned(),
    ]];
    for point in &r.points {
        for rec in &point.provenance {
            match per_kind.iter_mut().find(|k| k.0 == rec.kind) {
                Some(k) => {
                    k.1 += rec.avoided_violation_s();
                    k.2 += rec.cost_s;
                }
                None => per_kind.push((rec.kind.clone(), rec.avoided_violation_s(), rec.cost_s)),
            }
            let outcome = match (&rec.outcome, rec.resolved) {
                (Some(o), _) => format!("recovered in {}s", svg::fmt_value(o.latency_s)),
                (None, true) => "resolved".to_owned(),
                (None, false) => "unresolved".to_owned(),
            };
            table.push(vec![
                point.label.clone(),
                rec.action_index.to_string(),
                rec.tick.to_string(),
                rec.kind.clone(),
                rec.app.clone().unwrap_or_else(|| "(fleet)".to_owned()),
                rec.quality.clone(),
                svg::fmt_value(rec.predicted_slowdown),
                svg::fmt_value(rec.realized_slowdown),
                rec.detections.len().to_string(),
                svg::fmt_value(rec.avoided_violation_s()),
                outcome,
            ]);
        }
    }
    per_kind.sort_by(|a, b| a.0.cmp(&b.0));
    let chart = BarChart {
        width: 560.0,
        height: 240.0,
        x_label: "action kind".to_owned(),
        y_label: "seconds".to_owned(),
        group_labels: per_kind.iter().map(|k| k.0.clone()).collect(),
        series: vec![
            BarSeries {
                label: "violation avoided (s)".to_owned(),
                color: "var(--c1)".to_owned(),
                values: per_kind.iter().map(|k| k.1).collect(),
            },
            BarSeries {
                label: "action cost (s)".to_owned(),
                color: "var(--c2)".to_owned(),
                values: per_kind.iter().map(|k| k.2).collect(),
            },
        ],
        hline: None,
    };
    let mut chart = chart_from_bar("realized benefit per action kind", &chart);
    chart.table = table;
    let notes = vec![format!(
        "{actions} action(s) across {scenarios} eventful scenario(s) carry full provenance \
         (replay any of them with `icm-trace explain --action N`)"
    )];
    (verdict, vec![chart], notes)
}

/// Builds the decision-audit section. It reads the same `recovery`
/// result as [`recovery_section`] but renders its provenance payload:
/// one table row per manager action with the detections, prediction
/// quality and realized benefit behind it. Section id is `audit` so the
/// two sections anchor independently.
fn audit_section(doc: &ResultsDoc) -> Section {
    let (verdict, charts, notes) = match doc.get("recovery") {
        None => (Verdict::missing("recovery"), Vec::new(), Vec::new()),
        Some(json) => match RecoveryResult::from_json(json) {
            Ok(result) => audit_body(&result),
            Err(err) => (
                Verdict {
                    status: Status::Fail,
                    detail: format!("cannot parse `recovery` result: {err}"),
                },
                Vec::new(),
                Vec::new(),
            ),
        },
    };
    Section {
        id: "audit".to_owned(),
        title: "Decision audit — provenance of every manager action".to_owned(),
        claim: "Every mitigation action is auditable back to the detections and probe \
                observations that justified it, and model-driven reactions rest on \
                measured-quality predictions rather than defaulted model cells."
            .to_owned(),
        verdict,
        charts,
        notes,
    }
}

/// Builds the wall-time self-profiling section from a `profile.json`
/// document (the `--profile` side channel of `icm-experiments`).
fn profile_section(profile: &Json) -> Section {
    let mut rows: Vec<(String, f64, f64, f64)> = Vec::new();
    if let Some(spans) = profile.get("spans").and_then(Json::as_object) {
        for (name, stats) in spans {
            let num = |key: &str| stats.get(key).and_then(Json::as_f64).unwrap_or(0.0);
            rows.push((name.clone(), num("count"), num("total_ns"), num("mean_ns")));
        }
    }
    // Heaviest spans first; ties break on name so output is stable.
    rows.sort_by(|a, b| {
        b.2.partial_cmp(&a.2)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
    let total_ms: f64 = rows.iter().map(|r| r.2).sum::<f64>() / 1e6;
    let chart = BarChart {
        width: 560.0,
        height: 240.0,
        x_label: "span".to_owned(),
        y_label: "total wall time (ms)".to_owned(),
        group_labels: rows.iter().take(8).map(|r| r.0.clone()).collect(),
        series: vec![BarSeries {
            label: "wall time".to_owned(),
            color: "var(--c1)".to_owned(),
            values: rows.iter().take(8).map(|r| r.2 / 1e6).collect(),
        }],
        hline: None,
    };
    let mut table = vec![vec![
        "span".to_owned(),
        "count".to_owned(),
        "total ms".to_owned(),
        "mean µs".to_owned(),
    ]];
    for (name, count, total_ns, mean_ns) in &rows {
        table.push(vec![
            name.clone(),
            svg::fmt_value(*count),
            svg::fmt_value(total_ns / 1e6),
            svg::fmt_value(mean_ns / 1e3),
        ]);
    }
    let mut chart = chart_from_bar("heaviest spans", &chart);
    chart.table = table;
    Section {
        id: "profile".to_owned(),
        title: "Wall-time self-profiling".to_owned(),
        claim: "Wall durations are a side channel recorded next to the trace, never \
                through it — the deterministic event stream is byte-identical with \
                profiling on or off."
            .to_owned(),
        verdict: Verdict {
            status: Status::Pass,
            detail: format!(
                "{} spans profiled, {} ms total wall time",
                rows.len(),
                svg::fmt_value(total_ms)
            ),
        },
        charts: vec![chart],
        notes: Vec::new(),
    }
}

/// Builds the streaming-telemetry section from a telemetry artifact
/// (the `--telemetry` output of `icm-experiments`). The verdict checks
/// the artifact's own byte-budget contract: the serialized document
/// must fit under the `budget_bytes` it declares.
fn telemetry_section(telemetry: &Json) -> Section {
    let size = telemetry.to_text().len() + 1; // newline-terminated on disk
    let budget = telemetry
        .get("budget_bytes")
        .and_then(Json::as_f64)
        .unwrap_or(0.0) as usize;
    let events = telemetry
        .get("events")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    let snapshots = telemetry
        .get("snapshots")
        .and_then(Json::as_array)
        .map_or(0, <[Json]>::len);

    let mut series: Vec<(String, f64, f64, f64, f64, f64)> = Vec::new();
    if let Some(all) = telemetry.get("series").and_then(Json::as_object) {
        for (name, s) in all {
            let num = |key: &str| s.get(key).and_then(Json::as_f64).unwrap_or(0.0);
            series.push((
                name.clone(),
                num("count"),
                num("p50"),
                num("p99"),
                num("min"),
                num("max"),
            ));
        }
    }
    // Busiest series first; ties break on name so output is stable.
    series.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
    let chart = BarChart {
        width: 560.0,
        height: 240.0,
        x_label: "series".to_owned(),
        y_label: "observations".to_owned(),
        group_labels: series.iter().take(8).map(|s| s.0.clone()).collect(),
        series: vec![BarSeries {
            label: "observations".to_owned(),
            color: "var(--c1)".to_owned(),
            values: series.iter().take(8).map(|s| s.1).collect(),
        }],
        hline: None,
    };
    let mut table = vec![vec![
        "series".to_owned(),
        "count".to_owned(),
        "p50".to_owned(),
        "p99".to_owned(),
        "min".to_owned(),
        "max".to_owned(),
    ]];
    for (name, count, p50, p99, min, max) in &series {
        table.push(vec![
            name.clone(),
            svg::fmt_value(*count),
            svg::fmt_value(*p50),
            svg::fmt_value(*p99),
            svg::fmt_value(*min),
            svg::fmt_value(*max),
        ]);
    }
    let mut chart = chart_from_bar("busiest telemetry series", &chart);
    chart.table = table;

    let mut notes = vec![format!(
        "{events} events folded, {snapshots} health snapshots retained"
    )];
    if let Some(counters) = telemetry
        .get("health")
        .and_then(|h| h.get("counters"))
        .and_then(Json::as_object)
    {
        for (name, value) in counters {
            notes.push(format!(
                "{name}: {}",
                svg::fmt_value(value.as_f64().unwrap_or(0.0))
            ));
        }
    }

    let verdict = if budget == 0 {
        Verdict {
            status: Status::Fail,
            detail: "telemetry document declares no byte budget".to_owned(),
        }
    } else if size > budget {
        Verdict {
            status: Status::Fail,
            detail: format!("telemetry artifact is {size} bytes, over its {budget} byte budget"),
        }
    } else {
        Verdict {
            status: Status::Pass,
            detail: format!(
                "{} series in {size} bytes (budget {budget}) — constant-memory aggregation holds",
                series.len()
            ),
        }
    };
    Section {
        id: "telemetry".to_owned(),
        title: "Streaming telemetry".to_owned(),
        claim: "Windowed rollups, quantile sketches and health snapshots summarize a \
                run of any length in a bounded artifact — the raw trace can be \
                replaced (or teed) without losing the p50/p99 story."
            .to_owned(),
        verdict,
        charts: vec![chart],
        notes,
    }
}

/// Builds the span-flamegraph section from a reconstructed span tree
/// (the `--flame` input, an `icm-experiments --trace` JSONL file).
fn flame_section(graph: &FlameGraph) -> Section {
    let svg_markup = icm_experiments::flame::render_svg(graph);
    let mut table = vec![vec![
        "frame".to_owned(),
        "count".to_owned(),
        "total sim s".to_owned(),
        "steps".to_owned(),
    ]];
    let mut frames: Vec<(String, u64, f64, u64)> = Vec::new();
    fn walk(
        prefix: &str,
        children: &std::collections::BTreeMap<String, icm_experiments::flame::FlameNode>,
        out: &mut Vec<(String, u64, f64, u64)>,
    ) {
        for (name, node) in children {
            let path = if prefix.is_empty() {
                name.clone()
            } else {
                format!("{prefix}/{name}")
            };
            out.push((path.clone(), node.count, node.sim_s, node.steps));
            walk(&path, &node.children, out);
        }
    }
    walk("", &graph.root.children, &mut frames);
    frames.sort_by(|a, b| {
        b.2.total_cmp(&a.2)
            .then_with(|| b.3.cmp(&a.3))
            .then_with(|| a.0.cmp(&b.0))
    });
    for (path, count, sim_s, steps) in frames.iter().take(12) {
        table.push(vec![
            path.clone(),
            count.to_string(),
            svg::fmt_value(*sim_s),
            steps.to_string(),
        ]);
    }
    let critical = graph.critical_path();
    let verdict = if graph.is_empty() {
        Verdict {
            status: Status::Missing,
            detail: "trace contains no completed spans".to_owned(),
        }
    } else {
        Verdict {
            status: Status::Pass,
            detail: format!(
                "{} frames; critical path: {}",
                frames.len(),
                critical.join(" → ")
            ),
        }
    };
    Section {
        id: "flame".to_owned(),
        title: "Span flamegraph".to_owned(),
        claim: "Trace spans nest into a tree whose weights are simulated seconds — \
                the same trace always renders the same flamegraph, and the critical \
                path names where the simulated time went."
            .to_owned(),
        verdict,
        charts: vec![Chart {
            caption: "span tree (hover a frame for totals)".to_owned(),
            svg: svg_markup,
            legend: Vec::new(),
            table,
        }],
        notes: Vec::new(),
    }
}

/// Builds the full report from a results document and the optional side
/// documents: a `profile.json` wall-time dump, a `--telemetry` artifact
/// and a reconstructed span flamegraph.
pub fn build_report(
    doc: &ResultsDoc,
    profile: Option<&Json>,
    telemetry: Option<&Json>,
    flame: Option<&FlameGraph>,
) -> Report {
    let mut sections = vec![
        fig2_section(doc),
        fig3_section(doc),
        table3_section(doc),
        fig10_section(doc),
        fig11_section(doc),
        robustness_section(doc),
        recovery_section(doc),
        audit_section(doc),
        serve_section(doc),
    ];
    if let Some(profile) = profile {
        sections.push(profile_section(profile));
    }
    if let Some(telemetry) = telemetry {
        sections.push(telemetry_section(telemetry));
    }
    if let Some(flame) = flame {
        sections.push(flame_section(flame));
    }
    Report {
        seed: doc.seed,
        fast: doc.fast,
        sections,
    }
}

/// Renders the plain-text summary mode (for CI logs).
pub fn render_text(report: &Report) -> String {
    let mut out = format!(
        "icm report — seed {}, {} grids\n\n",
        report.seed,
        if report.fast { "fast" } else { "full" }
    );
    for section in &report.sections {
        out.push_str(&format!(
            "  {} {:<7} {}\n          {}\n",
            section.verdict.status.symbol(),
            section.verdict.status.label(),
            section.title,
            section.verdict.detail
        ));
        for note in &section.notes {
            out.push_str(&format!("          note: {note}\n"));
        }
    }
    let (pass, warn, fail, missing) = report.counts();
    out.push_str(&format!(
        "\noverall: {pass} pass, {warn} warn, {fail} fail, {missing} missing\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use icm_experiments::fig2::Fig2Row;
    use icm_json::ToJson;

    fn doc_with_fig2() -> ResultsDoc {
        let result = Fig2Result {
            app: "M.lmps".to_owned(),
            corunner: "C.libq".to_owned(),
            corunner_score: 0.42,
            rows: (0..=4)
                .map(|n| Fig2Row {
                    interfering_nodes: n,
                    naive_expected: 1.0 + n as f64 * 0.05,
                    real: 1.0 + n as f64 * 0.25,
                })
                .collect(),
        };
        let mut doc = ResultsDoc::new(7, true);
        doc.push("fig2", result.to_json());
        doc
    }

    #[test]
    fn report_marks_absent_experiments_missing() {
        let report = build_report(&doc_with_fig2(), None, None, None);
        assert_eq!(report.sections.len(), 9);
        assert_eq!(report.sections[0].verdict.status, Status::Pass);
        assert!(report.sections[1..]
            .iter()
            .all(|s| s.verdict.status == Status::Missing));
        assert!(!report.has_failures());
        assert_eq!(report.counts(), (1, 0, 0, 8));
    }

    #[test]
    fn html_is_self_contained_and_deterministic() {
        let report = build_report(&doc_with_fig2(), None, None, None);
        let page = render_html(&report);
        assert_eq!(page, render_html(&report), "byte-identical rendering");
        assert!(page.contains("Figure 2"));
        assert!(page.contains("<svg"));
        assert!(!page.contains("<script"));
        assert!(!page.contains("http://"));
        assert!(!page.contains("https://"));
        assert!(page.contains("prefers-color-scheme"));
    }

    #[test]
    fn text_mode_summarizes_verdicts() {
        let report = build_report(&doc_with_fig2(), None, None, None);
        let text = render_text(&report);
        assert!(text.contains("pass"));
        assert!(text.contains("missing"));
        assert!(text.contains("overall: 1 pass"));
    }

    #[test]
    fn corrupt_result_fails_loudly_not_silently() {
        let mut doc = ResultsDoc::new(1, true);
        doc.push("fig2", Json::String("not a fig2 result".to_owned()));
        let report = build_report(&doc, None, None, None);
        assert_eq!(report.sections[0].verdict.status, Status::Fail);
        assert!(report.has_failures());
        assert!(report.sections[0].verdict.detail.contains("cannot parse"));
    }

    #[test]
    fn telemetry_section_enforces_the_byte_budget() {
        let telemetry: Json = icm_json::from_str(
            r#"{"budget_bytes":262144,"window_s":600,"snapshot_every_s":3000,"events":12,
                "dropped":{"series":0,"keys":0,"snapshots":0},
                "health":{"step":12,"sim_s":100,"events":12,
                          "counters":{"manager.ticks.managed":4},"sums":{},
                          "recovery_latency":{"count":0,"low":0,"non_finite":0,"collapsed":0,
                                              "sum":0,"min":0,"max":0,"error":0.015625,"buckets":[]}},
                "series":{"testbed.run_s":{"count":12,"sum":120,"min":10,"max":10,
                                           "p50":10,"p99":10,"dropped_windows":0,
                                           "sketch":{},"windows":[]}},
                "snapshots":[]}"#,
        )
        .expect("parses");
        let section = telemetry_section(&telemetry);
        assert_eq!(section.verdict.status, Status::Pass);
        assert!(section.verdict.detail.contains("budget 262144"));
        assert!(section
            .notes
            .iter()
            .any(|n| n.contains("manager.ticks.managed")));
        assert_eq!(section.charts[0].table[1][0], "testbed.run_s");

        let over: Json = icm_json::from_str(r#"{"budget_bytes":8,"events":1}"#).expect("parses");
        let section = telemetry_section(&over);
        assert_eq!(section.verdict.status, Status::Fail, "over budget fails");
    }

    #[test]
    fn flame_section_embeds_the_svg_and_critical_path() {
        let (tracer, recorder) = icm_obs::Tracer::recording(16);
        let outer = tracer.span("deploy", &[]);
        let inner = tracer.span("run", &[]);
        tracer.advance_sim(5.0);
        inner.end();
        outer.end();
        let graph = icm_experiments::flame::build_flame(&recorder.events());
        let section = flame_section(&graph);
        assert_eq!(section.verdict.status, Status::Pass);
        assert!(section.verdict.detail.contains("deploy → run"));
        assert!(section.charts[0].svg.starts_with("<svg"));
        assert_eq!(section.charts[0].table[1][0], "deploy");
        assert_eq!(section.charts[0].table[2][0], "deploy/run");

        let empty = flame_section(&FlameGraph::default());
        assert_eq!(empty.verdict.status, Status::Missing);
    }

    #[test]
    fn optional_sections_append_in_order() {
        let telemetry: Json =
            icm_json::from_str(r#"{"budget_bytes":262144,"events":0,"series":{},"snapshots":[]}"#)
                .expect("parses");
        let graph = FlameGraph::default();
        let report = build_report(&doc_with_fig2(), None, Some(&telemetry), Some(&graph));
        assert_eq!(report.sections.len(), 11);
        assert_eq!(report.sections[9].id, "telemetry");
        assert_eq!(report.sections[10].id, "flame");
        let page = render_html(&report);
        assert!(page.contains("Streaming telemetry"));
        assert!(page.contains("Span flamegraph"));
    }

    #[test]
    fn audit_section_tables_every_action() {
        use icm_experiments::recovery::{RecoveryPoint, RecoveryResult};
        use icm_obs::{DetectionInput, OutcomeRef, ProvenanceRecord};
        let result = RecoveryResult {
            ticks: 6,
            apps: vec!["H.KM".to_owned()],
            points: vec![RecoveryPoint {
                label: "crash x1".to_owned(),
                crash_hosts: 1,
                drift_pressure: 0.0,
                managed_violation_s: 10.0,
                unmanaged_violation_s: 100.0,
                avoided_violation_s: 90.0,
                mean_recovery_latency_s: 120.0,
                migrations: 1,
                reanneals: 0,
                sheds: 0,
                circuit_breaks: 0,
                detections: 1,
                managed_meets_bound: 1,
                unmanaged_meets_bound: 0,
                provenance: vec![ProvenanceRecord {
                    action_index: 0,
                    event: 12,
                    tick: 2,
                    sim_s: 400.0,
                    kind: "migrate".to_owned(),
                    app: Some("H.KM".to_owned()),
                    cost_s: 12.5,
                    quality: "measured".to_owned(),
                    predicted_slowdown: 1.15,
                    realized_slowdown: 1.1,
                    resolved: true,
                    trigger_violation_s: 30.0,
                    violation_incurred_s: 5.0,
                    placement: Vec::new(),
                    detections: vec![DetectionInput {
                        event: 9,
                        kind: "host_down".to_owned(),
                        app: None,
                        host: Some(3),
                        score: 1.0,
                        threshold: 0.5,
                        streak: 1,
                        observations: Vec::new(),
                    }],
                    outcome: Some(OutcomeRef {
                        event: 20,
                        tick: 3,
                        latency_s: 120.0,
                    }),
                }],
            }],
        };
        let mut doc = ResultsDoc::new(7, true);
        doc.push("recovery", result.to_json());
        let report = build_report(&doc, None, None, None);
        let audit = report
            .sections
            .iter()
            .find(|s| s.id == "audit")
            .expect("audit section present");
        assert_eq!(audit.verdict.status, Status::Pass);
        assert!(audit.verdict.detail.contains("1 actions audited"));
        let table = &audit.charts[0].table;
        assert_eq!(table.len(), 2, "header plus one action row");
        assert_eq!(table[1][0], "crash x1");
        assert_eq!(table[1][3], "migrate");
        assert_eq!(table[1][5], "measured");
        assert!(table[1][10].contains("recovered in 120"));
        // The recovery section still renders independently beside it.
        assert!(report.sections.iter().any(|s| s.id == "recovery"));
        let page = render_html(&report);
        assert!(page.contains("Decision audit"));
    }

    #[test]
    fn profile_section_orders_spans_by_weight() {
        let profile: Json = icm_json::from_str(
            r#"{"bounds_ns":[1000],"spans":{
                "a.light":{"count":2,"total_ns":1000,"min_ns":400,"max_ns":600,"mean_ns":500,"buckets":[2,0]},
                "b.heavy":{"count":1,"total_ns":9000000,"min_ns":9000000,"max_ns":9000000,"mean_ns":9000000,"buckets":[0,1]}
            }}"#,
        )
        .expect("parses");
        let section = profile_section(&profile);
        assert_eq!(section.verdict.status, Status::Pass);
        assert!(section.verdict.detail.contains("2 spans"));
        let table = &section.charts[0].table;
        assert_eq!(table[1][0], "b.heavy", "heaviest span first");
        assert_eq!(table[2][0], "a.light");
    }
}
